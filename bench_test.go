// Benchmark harness: one target per experiment of EXPERIMENTS.md, so the
// paper's artifacts can be regenerated and timed with
//
//	go test -bench=. -benchmem
package radiobcast_test

import (
	"fmt"
	"testing"

	"radiobcast/internal/anonymity"
	"radiobcast/internal/baseline"
	"radiobcast/internal/cdetect"
	"radiobcast/internal/core"
	"radiobcast/internal/domset"
	"radiobcast/internal/experiments"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
	"radiobcast/internal/onebit"
	"radiobcast/internal/radio"
)

// benchFamilies is the family subset used for scaling benchmarks (the full
// 14-family sweep runs in the experiments harness; benchmarks track a
// representative spread: sparse/deep, planar, random, dense).
var benchFamilies = []string{"path", "grid", "gnp-sparse", "complete"}

var benchSizes = []int{64, 256, 1024}

func benchGraph(family string, n int) *graph.Graph {
	return graph.Families[family](n)
}

// BenchmarkFig1 regenerates the paper's Figure 1 (experiment FIG1).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Figure1()
		out, err := core.RunBroadcast(g, graph.Figure1Source, "µ", core.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if out.CompletionRound != 7 {
			b.Fatalf("completion %d", out.CompletionRound)
		}
	}
}

// BenchmarkLabeling measures λ construction (stages + labels; experiments
// L26/F31).
func BenchmarkLabeling(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range benchSizes {
			g := benchGraph(fam, n)
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Lambda(g, 0, core.BuildOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStages isolates the §2.1 sequence construction (experiment L26).
func BenchmarkStages(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph("gnp-sparse", n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildStages(g, 0, core.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinimalDomset measures the minimality pruning that powers DOM_i
// (experiment ABLDOM).
func BenchmarkMinimalDomset(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph("gnp-sparse", n)
		// Candidates: BFS layer 1; targets: layer 2.
		layers := g.Layers(0)
		if len(layers) < 3 {
			b.Skip("graph too shallow")
		}
		cand := nodeset.Of(g.N(), layers[1]...)
		targets := nodeset.Of(g.N(), layers[2]...)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := domset.MinimalSubset(g, cand, targets, domset.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBroadcastB runs the full labeled broadcast (experiment T29).
func BenchmarkBroadcastB(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range benchSizes {
			g := benchGraph(fam, n)
			l, err := core.Lambda(g, 0, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := core.RunBroadcastLabeled(g, l, 0, "m", nil)
					if err != nil {
						b.Fatal(err)
					}
					if !out.AllInformed {
						b.Fatal("incomplete broadcast")
					}
				}
			})
		}
	}
}

// BenchmarkBroadcastBack runs acknowledged broadcast (experiments T39/MSG).
func BenchmarkBroadcastBack(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range benchSizes {
			g := benchGraph(fam, n)
			l, err := core.LambdaAck(g, 0, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := core.RunAcknowledgedLabeled(g, l, 0, "m")
					if err != nil {
						b.Fatal(err)
					}
					if g.N() >= 2 && out.AckRound == 0 {
						b.Fatal("no ack")
					}
				}
			})
		}
	}
}

// BenchmarkCommonRound runs the Back→B composition (experiment CR).
func BenchmarkCommonRound(b *testing.B) {
	g := benchGraph("grid", 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.RunCommonRound(g, 0, "m", core.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := core.VerifyCommonRound(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastBarb runs the arbitrary-source algorithm (experiment ARB).
func BenchmarkBroadcastBarb(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range []int{64, 256} {
			g := benchGraph(fam, n)
			l, err := core.LambdaArb(g, 0, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			src := g.N() - 1
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := core.RunArbitraryLabeled(g, l, src, "m")
					if err != nil {
						b.Fatal(err)
					}
					if !out.AllKnowMu {
						b.Fatal("incomplete")
					}
				}
			})
		}
	}
}

// BenchmarkBaselines compares the comparison schemes (experiment BASE).
func BenchmarkBaselines(b *testing.B) {
	g := benchGraph("grid", 256)
	b.Run("roundrobin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.RunRoundRobin(g, 0, "m"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("colorrobin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.RunColorRobin(g, 0, "m"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("centralized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.RunCentralized(g, 0, "m"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCollisionDetection runs the anonymous beep-pipeline broadcast
// (experiment CD).
func BenchmarkCollisionDetection(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := benchGraph("grid", n)
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := cdetect.Run(g, 0, "µ")
				if err != nil {
					b.Fatal(err)
				}
				if !out.AllDecoded {
					b.Fatal("incomplete")
				}
			}
		})
	}
}

// BenchmarkFourCycle runs the impossibility check (experiment IMP).
func BenchmarkFourCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := anonymity.RunFourCycle(anonymity.PseudorandomProgram(uint64(i)), 200)
		if out.AntipodeInformed != 0 {
			b.Fatal("impossibility violated")
		}
	}
}

// BenchmarkOneBit verifies the §5 grid construction (experiment ONEBIT).
func BenchmarkOneBit(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("grid%dx%d", size, size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := onebit.GridScheme(size, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineParallel compares sequential and parallel engine modes on
// a dense graph (experiment PAR).
func BenchmarkEngineParallel(b *testing.B) {
	g := graph.GNPConnected(2000, 8.0/2000, 42)
	l, err := core.Lambda(g, 0, core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ps := core.NewBProtocols(l.Labels, 0, "m")
				res := radio.Run(g, ps, radio.Options{
					MaxRounds:       2*g.N() + 4,
					StopAfterSilent: 3,
					Workers:         workers,
				})
				if res.TotalTransmissions == 0 {
					b.Fatal("no traffic")
				}
			}
		})
	}
}

// BenchmarkExperimentRegistry times each experiment generator end to end in
// quick mode (the EXPERIMENTS.md regeneration path).
func BenchmarkExperimentRegistry(b *testing.B) {
	for _, e := range experiments.Registry {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Gen(experiments.Config{Quick: true, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
