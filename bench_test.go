// Benchmark harness: one target per experiment of EXPERIMENTS.md, so the
// paper's artifacts can be regenerated and timed with
//
//	go test -bench=. -benchmem
//
// Broadcast-level benchmarks go through the public radiobcast facade; the
// benchmarks of internal machinery (stage construction, dominating-set
// pruning, the experiment registry) keep their internal imports on purpose.
package radiobcast_test

import (
	"context"
	"fmt"
	"testing"

	"radiobcast"
	"radiobcast/internal/anonymity"
	"radiobcast/internal/cdetect"
	"radiobcast/internal/core"
	"radiobcast/internal/domset"
	"radiobcast/internal/experiments"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
	"radiobcast/internal/onebit"
)

// benchFamilies is the family subset used for scaling benchmarks (the full
// 14-family sweep runs in the experiments harness; benchmarks track a
// representative spread: sparse/deep, planar, random, dense).
var benchFamilies = []string{"path", "grid", "gnp-sparse", "complete"}

var benchSizes = []int{64, 256, 1024}

func benchNet(b *testing.B, family string, n int) *radiobcast.Network {
	b.Helper()
	net, err := radiobcast.Family(family, n)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkFig1 regenerates the paper's Figure 1 (experiment FIG1).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := radiobcast.Run(radiobcast.Figure1(), "b", radiobcast.WithMessage("µ"))
		if err != nil {
			b.Fatal(err)
		}
		if out.CompletionRound != 7 {
			b.Fatalf("completion %d", out.CompletionRound)
		}
	}
}

// BenchmarkLabeling measures λ construction (stages + labels; experiments
// L26/F31) through the facade's labeling step.
func BenchmarkLabeling(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range benchSizes {
			net := benchNet(b, fam, n)
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := radiobcast.LabelNetwork(net, "b"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSessionCacheMiss measures a Session's cold-path label request:
// cache lookup, single-flight registration, λ construction, and LRU
// insert. A fresh Session per iteration keeps every request a miss, so
// this is the end-to-end cost a daemon pays for a first-seen
// (graph, source, scheme) key; contrast with the warm path, which is a
// fingerprint lookup.
func BenchmarkSessionCacheMiss(b *testing.B) {
	for _, fam := range []string{"path", "grid"} {
		net := benchNet(b, fam, 1024)
		net.Graph.Freeze()
		net.Graph.Fingerprint()
		b.Run(fmt.Sprintf("%s/n=1024", fam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := radiobcast.NewSession()
				if _, err := sess.Label(context.Background(), net, "b"); err != nil {
					b.Fatal(err)
				}
				if st := sess.Stats(); st.Misses != 1 {
					b.Fatalf("stats = %+v, want exactly one miss", st)
				}
			}
		})
	}
}

// BenchmarkStages isolates the §2.1 sequence construction (experiment L26).
func BenchmarkStages(b *testing.B) {
	for _, n := range benchSizes {
		g := benchNet(b, "gnp-sparse", n).Graph
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildStages(g, 0, core.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinimalDomset measures the minimality pruning that powers DOM_i
// (experiment ABLDOM).
func BenchmarkMinimalDomset(b *testing.B) {
	for _, n := range benchSizes {
		g := benchNet(b, "gnp-sparse", n).Graph
		// Candidates: BFS layer 1; targets: layer 2.
		layers := g.Layers(0)
		if len(layers) < 3 {
			b.Skip("graph too shallow")
		}
		cand := nodeset.Of(g.N(), layers[1]...)
		targets := nodeset.Of(g.N(), layers[2]...)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := domset.MinimalSubset(g, cand, targets, domset.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRunLabeled labels once and times repeated facade runs over that
// labeling, reusing one Sim across iterations — the label-once/run-many
// steady state; check validates each outcome beyond AllInformed (may be
// nil).
func benchRunLabeled(b *testing.B, scheme string, sizes []int, check func(*radiobcast.Outcome) error, opts ...radiobcast.Option) {
	sim := radiobcast.NewSim()
	opts = append(opts, radiobcast.WithSim(sim))
	for _, fam := range benchFamilies {
		for _, n := range sizes {
			net := benchNet(b, fam, n)
			l, err := radiobcast.LabelNetwork(net, scheme)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := radiobcast.RunLabeled(l, opts...)
					if err != nil {
						b.Fatal(err)
					}
					if !out.AllInformed {
						b.Fatal("incomplete broadcast")
					}
					if check != nil {
						if err := check(out); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkBroadcastB runs the full labeled broadcast (experiment T29).
func BenchmarkBroadcastB(b *testing.B) {
	benchRunLabeled(b, "b", benchSizes, nil, radiobcast.WithMessage("m"))
}

// BenchmarkBroadcastBack runs acknowledged broadcast (experiments T39/MSG).
func BenchmarkBroadcastBack(b *testing.B) {
	benchRunLabeled(b, "back", benchSizes, func(out *radiobcast.Outcome) error {
		if out.Graph.N() >= 2 && out.AckRound == 0 {
			return fmt.Errorf("no ack")
		}
		return nil
	}, radiobcast.WithMessage("m"))
}

// BenchmarkCommonRound runs the Back→B composition (experiment CR); the
// composition is not a registered scheme, so it stays on the internal path.
func BenchmarkCommonRound(b *testing.B) {
	g := benchNet(b, "grid", 256).Graph
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := core.RunCommonRound(g, 0, "m", core.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := core.VerifyCommonRound(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastBarb runs the arbitrary-source algorithm (experiment
// ARB): one λarb labeling, broadcasts originating at the far corner.
func BenchmarkBroadcastBarb(b *testing.B) {
	for _, fam := range benchFamilies {
		for _, n := range []int{64, 256} {
			net := benchNet(b, fam, n)
			l, err := radiobcast.LabelNetwork(net, "barb")
			if err != nil {
				b.Fatal(err)
			}
			src := net.Graph.N() - 1
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := radiobcast.RunLabeled(l,
						radiobcast.WithSource(src), radiobcast.WithMessage("m"))
					if err != nil {
						b.Fatal(err)
					}
					if !out.AllInformed {
						b.Fatal("incomplete")
					}
				}
			})
		}
	}
}

// BenchmarkBaselines compares the comparison schemes (experiment BASE).
func BenchmarkBaselines(b *testing.B) {
	net := benchNet(b, "grid", 256)
	for _, scheme := range []string{"roundrobin", "colorrobin", "centralized"} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := radiobcast.Run(net, scheme, radiobcast.WithMessage("m"))
				if err != nil {
					b.Fatal(err)
				}
				if !out.AllInformed {
					b.Fatal("incomplete")
				}
			}
		})
	}
}

// BenchmarkCollisionDetection runs the anonymous beep-pipeline broadcast
// (experiment CD).
func BenchmarkCollisionDetection(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := benchNet(b, "grid", n).Graph
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := cdetect.Run(g, 0, "µ")
				if err != nil {
					b.Fatal(err)
				}
				if !out.AllDecoded {
					b.Fatal("incomplete")
				}
			}
		})
	}
}

// BenchmarkFourCycle runs the impossibility check (experiment IMP).
func BenchmarkFourCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := anonymity.RunFourCycle(anonymity.PseudorandomProgram(uint64(i)), 200)
		if out.AntipodeInformed != 0 {
			b.Fatal("impossibility violated")
		}
	}
}

// BenchmarkOneBit verifies the §5 grid construction (experiment ONEBIT);
// the constructive grid labeling is internal (the facade's onebit scheme
// searches instead).
func BenchmarkOneBit(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("grid%dx%d", size, size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := onebit.GridScheme(size, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineParallel compares sequential and parallel engine modes on
// a dense graph (experiment PAR), through the facade's WithWorkers option.
func BenchmarkEngineParallel(b *testing.B) {
	net := radiobcast.NewNetwork(graph.GNPConnected(2000, 8.0/2000, 42))
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := radiobcast.RunLabeled(l,
					radiobcast.WithMessage("m"), radiobcast.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if out.Result.TotalTransmissions == 0 {
					b.Fatal("no traffic")
				}
			}
		})
	}
}

// BenchmarkSweep times the batched workload path: a families × sizes ×
// schemes × fault-rates grid executed as one RunSweep job with shared
// frozen graphs, shared labelings and per-worker reusable engines.
func BenchmarkSweep(b *testing.B) {
	spec := radiobcast.SweepSpec{
		Families:   benchFamilies,
		Sizes:      []int{64, 256},
		Schemes:    []string{"b", "roundrobin", "centralized"},
		FaultRates: []float64{0, 0.01},
		Repeats:    2,
		Workers:    4,
		Mu:         "m",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := radiobcast.RunSweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range results {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
	}
}

// BenchmarkExperimentRegistry times each experiment generator end to end in
// quick mode (the EXPERIMENTS.md regeneration path).
func BenchmarkExperimentRegistry(b *testing.B) {
	for _, e := range experiments.Registry {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Gen(experiments.Config{Quick: true, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
