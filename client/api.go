// Package client is the typed Go client of the radiobcastd HTTP API —
// the network face of the paper's central-monitor story: a daemon that
// knows how to label graphs and run broadcasts, spoken to over HTTP/JSON
// with labelings travelling in the binary wire format.
//
// This package also declares the API's request and response types; the
// daemon (internal/httpd) serves exactly these, so the wire contract has
// one source of truth and external consumers never need to import an
// internal package.
//
//	c := client.New("http://localhost:8080")
//	out, err := c.Run(ctx, client.RunRequest{
//		Graph:  client.GraphSpec{Family: "grid", N: 64},
//		Scheme: "b",
//		Mu:     "update",
//	})
//
// Errors carry the server's stable machine-readable code (see
// radiobcast.ErrorCode for the facade half of the codes) as *APIError.
package client

import (
	"fmt"
	"time"

	"radiobcast"
)

// GraphSpec names the topology of a request: either a generated family
// member (Family + N, the same names radiobcast.Family accepts, including
// "figure1") or an explicit edge list. Exactly one of the two forms must
// be present.
type GraphSpec struct {
	// Family is a graph family name (see radiobcast.FamilyNames).
	Family string `json:"family,omitempty"`
	// N is the requested size of the family member (generators may round).
	N int `json:"n,omitempty"`

	// Edges is an explicit undirected edge list over 0-based node ids.
	Edges [][2]int `json:"edges,omitempty"`
	// Nodes is the node count of the explicit graph; 0 means "largest
	// endpoint + 1".
	Nodes int `json:"nodes,omitempty"`
}

// LabelRequest asks POST /v1/label for a labeling.
type LabelRequest struct {
	Graph  GraphSpec `json:"graph"`
	Scheme string    `json:"scheme"`
	// Source is the designated source node (coordinator semantics for
	// scheme "barb" live in Coordinator).
	Source int `json:"source,omitempty"`
	// Coordinator is scheme "barb"'s coordinator r.
	Coordinator int `json:"coordinator,omitempty"`
}

// LabelMeta is the JSON metadata envelope accompanying a labeling: in
// binary responses it travels in the Radiobcast-Meta header, in JSON
// responses inside LabelEnvelope.
type LabelMeta struct {
	Scheme   string `json:"scheme"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Source   int    `json:"source"`
	Bits     int    `json:"bits"`     // labeling length in bits (§1.1)
	Distinct int    `json:"distinct"` // distinct label values
	Bytes    int    `json:"bytes"`    // size of the wire-format blob
}

// MetaHeader is the response header carrying the LabelMeta envelope when
// /v1/label answers in binary.
const MetaHeader = "Radiobcast-Meta"

// LabelEnvelope is /v1/label's response body when the client asks for
// application/json: the metadata envelope plus the wire-format blob
// (base64-encoded by encoding/json).
type LabelEnvelope struct {
	Meta     LabelMeta `json:"meta"`
	Labeling []byte    `json:"labeling"`
}

// RunRequest asks POST /v1/run for one labeled broadcast.
type RunRequest struct {
	Graph       GraphSpec `json:"graph"`
	Scheme      string    `json:"scheme"`
	Source      int       `json:"source,omitempty"`
	Coordinator int       `json:"coordinator,omitempty"`
	// Mu is the broadcast message (server default "µ").
	Mu string `json:"mu,omitempty"`
	// MaxRounds overrides the scheme's round bound when > 0 (capped by
	// the server).
	MaxRounds int `json:"max_rounds,omitempty"`
	// FaultRate jams each transmission independently with this
	// probability, in [0, 1); fault-free runs are Verify-checked.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Fault selects a richer fault model (jamming, crash–recovery, churn,
	// duty-cycling, or a composition; see radiobcast.FaultSpec). Mutually
	// exclusive with FaultRate; invalid specs answer 400 with code
	// "bad_fault_spec".
	Fault *radiobcast.FaultSpec `json:"fault,omitempty"`
	// Seed drives the deterministic fault model (server default 1).
	Seed int64 `json:"seed,omitempty"`
}

// RunLabeledParams are the query parameters of POST /v1/run-labeled (the
// body is the wire-format labeling itself).
type RunLabeledParams struct {
	// Source overrides the labeling's source when non-nil (useful for
	// source-independent "barb" labelings).
	Source *int
	// Mu is the broadcast message (server default "µ").
	Mu string
	// MaxRounds overrides the scheme's round bound when > 0.
	MaxRounds int
}

// RunResponse is the Outcome of one broadcast as JSON.
type RunResponse struct {
	Scheme             string `json:"scheme"`
	N                  int    `json:"n"`
	M                  int    `json:"m"`
	Source             int    `json:"source"`
	Mu                 string `json:"mu"`
	AllInformed        bool   `json:"all_informed"`
	CompletionRound    int    `json:"completion_round"`
	Rounds             int    `json:"rounds"`
	TotalTransmissions int    `json:"total_transmissions"`
	MaxMessageBits     int    `json:"max_message_bits"`
	// AckRound is scheme "back"'s acknowledgement round (0 when absent).
	AckRound int `json:"ack_round,omitempty"`
	// LabelBits is the labeling length the run executed under.
	LabelBits int `json:"label_bits,omitempty"`
	// Coverage is the informed fraction of the network; Degraded grades it
	// ("none", "minor", "major", "severe", "total") — the graceful-
	// degradation measure for runs under faults.
	Coverage float64 `json:"coverage"`
	Degraded string  `json:"degraded,omitempty"`
	// Interrupted reports a run cut short by a deadline: the numbers
	// above describe the executed prefix.
	Interrupted bool `json:"interrupted,omitempty"`
	// Verified reports that the run was fault-free and the scheme's
	// guarantees held; VerifyError carries the failure otherwise. Faulty
	// runs are never verified — broken broadcasts are their data.
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verify_error,omitempty"`
}

// SweepRequest asks POST /v1/sweep for a batched grid of runs, streamed
// back as NDJSON SweepLines in completion order. It mirrors
// radiobcast.SweepSpec; the worker-pool size is the server's choice.
type SweepRequest struct {
	Families   []string  `json:"families"`
	Sizes      []int     `json:"sizes"`
	Schemes    []string  `json:"schemes"`
	Sources    []int     `json:"sources,omitempty"`
	FaultRates []float64 `json:"fault_rates,omitempty"`
	// Faults extends the fault axis with rich fault-model points (one
	// sweep column per spec; see radiobcast.SweepSpec.Faults).
	Faults    []radiobcast.FaultSpec `json:"faults,omitempty"`
	Repeats   int                    `json:"repeats,omitempty"`
	Mu        string                 `json:"mu,omitempty"`
	MaxRounds int                    `json:"max_rounds,omitempty"`
	Seed      int64                  `json:"seed,omitempty"`
}

// SweepLine is one NDJSON line of a /v1/sweep response — exactly one of
// the three fields is set. Cell lines arrive in completion order; the
// stream ends with either a Done summary (clean completion) or an Error
// line (whole-sweep failure — per-cell failures travel inside their
// cells). A stream with neither was truncated.
type SweepLine struct {
	Cell  *SweepCellResult `json:"cell,omitempty"`
	Error *ErrorDetail     `json:"error,omitempty"`
	Done  *SweepSummary    `json:"done,omitempty"`
}

// SweepCellResult is one grid cell's outcome.
type SweepCellResult struct {
	Family    string  `json:"family"`
	Size      int     `json:"size"`
	Scheme    string  `json:"scheme"`
	Source    int     `json:"source"`
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Fault labels the cell's fault-model point on the Faults axis
	// (empty for the FaultRates axis).
	Fault  string `json:"fault,omitempty"`
	Repeat int    `json:"repeat,omitempty"`
	// Index is the cell's position in grid order, so a consumer can
	// re-establish it from the completion-order stream.
	Index           int     `json:"index"`
	N               int     `json:"n"`
	AllInformed     bool    `json:"all_informed"`
	CompletionRound int     `json:"completion_round"`
	Rounds          int     `json:"rounds"`
	Coverage        float64 `json:"coverage,omitempty"`
	Degraded        string  `json:"degraded,omitempty"`
	Verified        bool    `json:"verified"`
	Error           string  `json:"error,omitempty"`
}

// SweepSummary is the final line of a completed sweep stream.
type SweepSummary struct {
	Cells int `json:"cells"`
}

// ErrorBody is the JSON body of every non-2xx API response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the stable machine-readable code and a human
// message. Codes for facade failures come from radiobcast.ErrorCode
// ("unknown_scheme", "node_out_of_range", "nil_network",
// "labeling_mismatch", "session_closed", "bad_fault_spec"); the daemon
// adds transport-level
// codes ("bad_request", "limit_exceeded", "rate_limited", "saturated",
// "draining", "canceled", "unsupported_media_type", "internal").
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// APIError is the typed error the client returns for any non-2xx
// response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error code.
	Code string
	// Message is the human-readable description.
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent) — set
	// on 429 responses from rate limiting and sweep-pool saturation.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("radiobcastd: %s (%d %s)", e.Message, e.Status, e.Code)
}
