package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"radiobcast"
)

// Client speaks the radiobcastd HTTP API. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	retryMax  int
	retryBase time.Duration
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry opts in to automatic retry of rate-limited (429) and
// temporarily unavailable (503) responses: up to max retries, sleeping a
// capped exponential backoff with jitter between attempts (base doubling
// per attempt, capped at 30×base, jittered into [d/2, d]), never less
// than the server's Retry-After hint and never past the request context's
// deadline — when the remaining budget cannot cover the wait, the 429/503
// surfaces immediately instead.
//
// Only whole-request rejections are retried. Once a response body has
// started streaming — in particular a sweep's NDJSON cells — nothing is
// retried: a half-consumed grid must surface, not silently restart.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) {
		c.retryMax = max
		if base <= 0 {
			base = 100 * time.Millisecond
		}
		c.retryBase = base
	}
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Health checks GET /healthz: nil means the process is up.
func (c *Client) Health(ctx context.Context) error {
	return c.probe(ctx, "/healthz")
}

// Ready checks GET /readyz: nil means the daemon accepts work; a draining
// daemon answers 503 (an *APIError with code "draining").
func (c *Client) Ready(ctx context.Context) error {
	return c.probe(ctx, "/readyz")
}

func (c *Client) probe(ctx context.Context, path string) error {
	resp, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Label asks the daemon for a labeling of the request's graph and returns
// it decoded from the binary wire format, together with the metadata
// envelope. The labeling is ready for local RunLabeled — or for shipping
// onwards, since it round-trips through radiobcast.WriteLabeling.
func (c *Client) Label(ctx context.Context, lr LabelRequest) (*radiobcast.Labeling, *LabelMeta, error) {
	resp, err := c.postJSON(ctx, "/v1/label", lr, radiobcast.LabelingContentType)
	if err != nil {
		return nil, nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, nil, apiError(resp)
	}
	var meta LabelMeta
	if h := resp.Header.Get(MetaHeader); h != "" {
		if err := json.Unmarshal([]byte(h), &meta); err != nil {
			return nil, nil, fmt.Errorf("client: bad %s header: %w", MetaHeader, err)
		}
	}
	l, err := radiobcast.ReadLabeling(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("client: decoding labeling: %w", err)
	}
	return l, &meta, nil
}

// Run executes one broadcast on the daemon and returns its outcome.
func (c *Client) Run(ctx context.Context, rr RunRequest) (*RunResponse, error) {
	resp, err := c.postJSON(ctx, "/v1/run", rr, "application/json")
	if err != nil {
		return nil, err
	}
	return decodeRun(resp)
}

// RunLabeled uploads a labeling in the wire format and executes one
// broadcast over it — the "run anywhere" half of label-once/run-many,
// with the daemon as the runner.
func (c *Client) RunLabeled(ctx context.Context, l *radiobcast.Labeling, p RunLabeledParams) (*RunResponse, error) {
	var body bytes.Buffer
	if err := radiobcast.WriteLabeling(&body, l); err != nil {
		return nil, err
	}
	q := url.Values{}
	if p.Source != nil {
		q.Set("source", strconv.Itoa(*p.Source))
	}
	if p.Mu != "" {
		q.Set("mu", p.Mu)
	}
	if p.MaxRounds > 0 {
		q.Set("max_rounds", strconv.Itoa(p.MaxRounds))
	}
	u := c.base + "/v1/run-labeled"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", radiobcast.LabelingContentType)
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	return decodeRun(resp)
}

// Sweep streams the grid's cells in completion order, calling onCell for
// each as it arrives; a non-nil return from onCell abandons the stream
// and is returned. Sweep returns the number of cells received and, for a
// whole-sweep failure or a truncated stream, an error (per-cell failures
// travel inside the cells' Error fields, exactly like
// radiobcast.CellResult.Err).
func (c *Client) Sweep(ctx context.Context, sr SweepRequest, onCell func(SweepCellResult) error) (int, error) {
	resp, err := c.postJSON(ctx, "/v1/sweep", sr, "application/x-ndjson")
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	cells := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl SweepLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return cells, fmt.Errorf("client: bad sweep line: %w", err)
		}
		switch {
		case sl.Cell != nil:
			cells++
			if onCell != nil {
				if err := onCell(*sl.Cell); err != nil {
					return cells, err
				}
			}
		case sl.Error != nil:
			return cells, &APIError{Status: http.StatusOK, Code: sl.Error.Code, Message: sl.Error.Message}
		case sl.Done != nil:
			return cells, sc.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return cells, err
	}
	return cells, fmt.Errorf("client: sweep stream truncated after %d cells", cells)
}

// Metrics fetches GET /metrics (Prometheus text format), for scrapers and
// debugging.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "/metrics")
	if err != nil {
		return "", err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func (c *Client) postJSON(ctx context.Context, path string, v any, accept string) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", accept)
		return req, nil
	})
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
}

// do executes one logical request, rebuilding it from build for each
// attempt (bodies are consumed on send). Retry fires only on a 429 or 503
// status — a decision made before a single body byte is read, so a
// streaming response that already delivered data is never restarted. The
// wait is an exponential backoff with jitter, raised to the server's
// Retry-After hint when that is longer; if the context's deadline cannot
// cover the wait, the rejection is returned to the caller unconsumed.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.retryMax {
			return resp, nil
		}
		d := c.retryBase << attempt
		if max := 30 * c.retryBase; d > max {
			d = max
		}
		d = d/2 + rand.N(d/2+1) // jitter into [d/2, d]
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				if hint := time.Duration(secs) * time.Second; hint > d {
					d = hint
				}
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			return resp, nil // can't afford the wait; surface the 429/503
		}
		drainClose(resp.Body)
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

func decodeRun(resp *http.Response) (*RunResponse, error) {
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("client: decoding run response: %w", err)
	}
	return &rr, nil
}

// apiError turns a non-2xx response into an *APIError, tolerating bodies
// that are not the canonical JSON error shape (proxies, panics).
func apiError(resp *http.Response) error {
	e := &APIError{Status: resp.StatusCode, Code: "internal"}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		e.Code = eb.Error.Code
		e.Message = eb.Error.Message
	} else {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = resp.Status
		}
	}
	return e
}

// drainClose consumes the rest of the body before closing so the HTTP
// connection is reusable.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
