// Tests of the client's opt-in retry layer against scripted servers:
// which statuses retry, how the budget and deadline bound it, and — the
// non-negotiable — that a sweep stream is never restarted once it has
// delivered data.
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"radiobcast/client"
)

// scriptedServer answers each request by popping the next status from
// script; after the script runs out it serves a 200 RunResponse.
func scriptedServer(t *testing.T, script []int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n < len(script) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(script[n])
			fmt.Fprintf(w, `{"error":{"code":"scripted","message":"try later"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(client.RunResponse{Scheme: "b", N: 16, AllInformed: true})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func runReq() client.RunRequest {
	return client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b"}
}

func TestRetryRecoversFrom429And503(t *testing.T) {
	ts, hits := scriptedServer(t, []int{http.StatusTooManyRequests, http.StatusServiceUnavailable}, "")
	c := client.New(ts.URL, client.WithRetry(3, time.Millisecond))
	out, err := c.Run(context.Background(), runReq())
	if err != nil {
		t.Fatalf("Run with retry: %v", err)
	}
	if !out.AllInformed || out.N != 16 {
		t.Fatalf("unexpected response after retries: %+v", out)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}
}

func TestNoRetryWithoutOptIn(t *testing.T) {
	ts, hits := scriptedServer(t, []int{http.StatusServiceUnavailable}, "")
	c := client.New(ts.URL)
	_, err := c.Run(context.Background(), runReq())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (retry is opt-in)", got)
	}
}

func TestNoRetryOnNonRetryableStatus(t *testing.T) {
	ts, hits := scriptedServer(t, []int{http.StatusBadRequest}, "")
	c := client.New(ts.URL, client.WithRetry(3, time.Millisecond))
	_, err := c.Run(context.Background(), runReq())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (400 is not retryable)", got)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	ts, hits := scriptedServer(t, []int{503, 503, 503, 503, 503, 503}, "")
	c := client.New(ts.URL, client.WithRetry(2, time.Millisecond))
	_, err := c.Run(context.Background(), runReq())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.Code != "scripted" {
		t.Fatalf("err = %v, want the final 503 surfaced", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetryHonorsDeadline pins the deadline interaction: when the server
// demands a wait the context cannot afford (Retry-After far beyond the
// deadline), the rejection surfaces immediately instead of sleeping into
// certain failure.
func TestRetryHonorsDeadline(t *testing.T) {
	ts, hits := scriptedServer(t, []int{429, 429, 429}, "30")
	c := client.New(ts.URL, client.WithRetry(3, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, runReq())
	elapsed := time.Since(start)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429 surfaced", err)
	}
	if ae.RetryAfter != 30*time.Second {
		t.Fatalf("RetryAfter = %v, want 30s parsed from the header", ae.RetryAfter)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("took %v: client slept toward a wait the deadline could never cover", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestSweepNeverRetriesMidStream is the partial-read guarantee: a sweep
// whose NDJSON stream dies after delivering cells must surface the
// truncation, not silently re-POST the sweep.
func TestSweepNeverRetriesMidStream(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		cell := client.SweepLine{Cell: &client.SweepCellResult{Family: "path", Size: 8, Scheme: "b"}}
		_ = json.NewEncoder(w).Encode(cell)
		// No done line, no more cells: the stream is truncated.
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithRetry(5, time.Millisecond))
	cells, err := c.Sweep(context.Background(), client.SweepRequest{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"},
	}, nil)
	if err == nil {
		t.Fatal("truncated sweep stream reported no error")
	}
	if cells != 1 {
		t.Fatalf("cells = %d, want 1 (the delivered cell counts)", cells)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d sweep POSTs, want 1 — a partial stream must never be retried", got)
	}
}

// TestSweepRetriesBeforeStream: whole-request rejections (429 before any
// NDJSON is written) are still retried for sweeps — the stream has not
// started, so the request is safely repeatable.
func TestSweepRetriesBeforeStream(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":{"code":"saturated","message":"pool full"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		_ = enc.Encode(client.SweepLine{Cell: &client.SweepCellResult{Family: "path", Size: 8, Scheme: "b"}})
		_ = enc.Encode(client.SweepLine{Done: &client.SweepSummary{Cells: 1}})
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithRetry(2, time.Millisecond))
	cells, err := c.Sweep(context.Background(), client.SweepRequest{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"},
	}, nil)
	if err != nil {
		t.Fatalf("sweep after pre-stream 429: %v", err)
	}
	if cells != 1 || hits.Load() != 2 {
		t.Fatalf("cells = %d, hits = %d; want 1 cell over 2 requests", cells, hits.Load())
	}
}
