// Command experiments regenerates the paper's evaluation artifacts: Figure 1
// and every theorem-derived table (see EXPERIMENTS.md). By default it runs
// the full registry; use -exp to select specific experiments.
//
// Usage:
//
//	experiments [-exp FIG1,T29,...] [-table fault] [-quick] [-workers N] [-csv] [-o file]
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"radiobcast/internal/cliutil"
	"radiobcast/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or \"all\"")
		tableFlag = flag.String("table", "", "named experiment group (fault, figure, theorems, baseline, ablation); overrides -exp")
		quick     = flag.Bool("quick", false, "run reduced sweeps")
		workers   = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outFile   = flag.String("o", "", "write output to file instead of stdout")
		list      = flag.Bool("list", false, "list registered experiments and exit")

		showVersion = cliutil.VersionFlag("experiments")
	)
	flag.Parse()
	showVersion()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Workers: *workers}
	var entries []experiments.Entry
	switch {
	case *tableFlag != "":
		ids, ok := experiments.Groups[strings.TrimSpace(*tableFlag)]
		if !ok {
			names := make([]string, 0, len(experiments.Groups))
			for name := range experiments.Groups {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "experiments: unknown table group %q (have: %s)\n",
				*tableFlag, strings.Join(names, ", "))
			os.Exit(2)
		}
		for _, id := range ids {
			e, _ := experiments.Find(id)
			entries = append(entries, e)
		}
	case *expFlag == "all":
		entries = experiments.Registry
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Desc)
		tables, err := e.Gen(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintln(out, t.CSV())
			} else {
				fmt.Fprintln(out, t.Render())
			}
		}
	}
}
