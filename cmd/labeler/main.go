// Command labeler computes a labeling scheme for a graph and prints the
// labels, optionally with the stage decomposition or a Graphviz DOT export.
// This is the "central monitor" role from the paper's motivating scenario:
// an entity that knows the topology and assigns 2-3 bit labels enabling
// universal broadcast.
//
// Usage:
//
//	labeler -family grid -n 25 -scheme lambda -stages
//	labeler -family figure1 -scheme ack -dot out.dot
//	labeler -graph edges.txt -scheme arb -r 0
package main

import (
	"flag"
	"fmt"
	"os"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
)

func main() {
	var (
		family = flag.String("family", "figure1", "graph family or \"figure1\"")
		n      = flag.Int("n", 16, "target graph size")
		file   = flag.String("graph", "", "read graph from edge-list file")
		scheme = flag.String("scheme", "lambda", "lambda | ack | arb")
		source = flag.Int("source", 0, "designated source (lambda, ack)")
		r      = flag.Int("r", 0, "coordinator for arb")
		stages = flag.Bool("stages", false, "print the stage decomposition")
		dot    = flag.String("dot", "", "write Graphviz DOT to file")
	)
	flag.Parse()

	g, err := buildGraph(*family, *n, *file)
	if err != nil {
		fail(err)
	}

	var l *core.Labeling
	switch *scheme {
	case "lambda":
		l, err = core.Lambda(g, *source, core.BuildOptions{})
	case "ack":
		l, err = core.LambdaAck(g, *source, core.BuildOptions{})
	case "arb":
		l, err = core.LambdaArb(g, *r, core.BuildOptions{})
	default:
		err = fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("graph: %v; scheme %s: length %d bits, %d distinct labels\n",
		g, *scheme, core.MaxLen(l.Labels), core.Distinct(l.Labels))
	for v, lab := range l.Labels {
		marks := ""
		if v == l.Z {
			marks += "  (z: acknowledgement initiator)"
		}
		if v == l.R {
			marks += "  (r: coordinator)"
		}
		fmt.Printf("node %3d: %s%s\n", v, lab, marks)
	}

	if *stages {
		fmt.Printf("\nstage decomposition (ℓ = %d):\n", l.Stages.L)
		for i := 1; i <= l.Stages.NumStored(); i++ {
			s := l.Stages.Stage(i)
			fmt.Printf("stage %d: DOM=%v NEW=%v FRONTIER=%v\n", i, s.Dom, s.New, s.Frontier)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := graph.WriteDOT(f, g, core.Strings(l.Labels)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}

func buildGraph(family string, n int, file string) (*graph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	if family == "figure1" {
		return graph.Figure1(), nil
	}
	build, ok := graph.Families[family]
	if !ok {
		return nil, fmt.Errorf("unknown family %q", family)
	}
	return build(n), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "labeler: %v\n", err)
	os.Exit(1)
}
