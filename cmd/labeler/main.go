// Command labeler computes a labeling scheme for a graph and prints the
// labels, optionally with the stage decomposition or a Graphviz DOT export.
// This is the "central monitor" role from the paper's motivating scenario:
// an entity that knows the topology and assigns short labels enabling
// universal broadcast. Any registered scheme works (-schemes lists them).
//
// A labeling is the paper's durable artifact: -save writes it in the
// portable binary wire format (graph, labels and all scheme structure),
// and -load reads one back in place of computing it, so the central
// monitor and the broadcast runner can be different processes on
// different machines:
//
//	labeler -family grid -n 64 -scheme back -save grid.labels
//	labeler -load grid.labels                    # inspect a shipped labeling
//
// With -sources, the monitor labels one graph for many designated sources
// in a single invocation, fanning the independent (graph, source)
// labelings across -workers goroutines through a shared Session (so
// duplicate sources coalesce instead of recomputing):
//
//	labeler -family grid -n 64 -scheme b -sources 0,7,42
//	labeler -family path -n 1024 -scheme back -sources all -save path.labels
//
// With -store, labelings go through the persistent labeling store: ones
// already on disk are served from it, new ones are written back, and any
// other process pointing at the same directory (radiobcastd -store, a
// later labeler) reuses them bit-identically. -populate bulk-fills a
// store by fanning a families × sizes × schemes × sources product
// through one Session:
//
//	labeler -store /var/lib/radiobcast/labelings -family grid -n 64 -scheme b
//	labeler -store dir -populate "families=path,grid;sizes=64,256;schemes=b,back,gjp"
//
// Usage:
//
//	labeler -family grid -n 25 -scheme b -stages
//	labeler -family figure1 -scheme back -dot out.dot
//	labeler -graph edges.txt -scheme barb -r 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"radiobcast"
	"radiobcast/internal/cliutil"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

func main() {
	var (
		family   = flag.String("family", "figure1", "graph family (see -families)")
		n        = flag.Int("n", 16, "target graph size")
		file     = flag.String("graph", "", "read graph from edge-list file")
		scheme   = flag.String("scheme", "b", "registered scheme name (see -schemes)")
		source   = flag.Int("source", -1, "designated source (default: the network's)")
		sources  = flag.String("sources", "", "label for many sources: comma-separated node list, or \"all\"")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "labeling workers for -sources")
		r        = flag.Int("r", 0, "coordinator for barb")
		stages   = flag.Bool("stages", false, "print the stage decomposition")
		dot      = flag.String("dot", "", "write Graphviz DOT to file")
		save     = flag.String("save", "", "write the labeling in the portable wire format to this file")
		load     = flag.String("load", "", "read a labeling from this file instead of computing one")
		storeDir = flag.String("store", "", "persistent labeling-store directory: read labelings from it, write new ones back")
		populate = flag.String("populate", "", `bulk-populate the store: "families=a,b;sizes=16,64;schemes=b,back[;sources=0,7]" (requires -store)`)
		timeout  = cliutil.TimeoutFlag(0, "the labeling computation")
		listSchm = flag.Bool("schemes", false, "list registered schemes and exit")
		listFam  = flag.Bool("families", false, "list graph families and exit")

		showVersion = cliutil.VersionFlag("labeler")
	)
	flag.Parse()
	showVersion()

	if *listSchm {
		fmt.Print(radiobcast.DescribeSchemes())
		return
	}
	if *listFam {
		for _, name := range radiobcast.FamilyNames() {
			fmt.Println(name)
		}
		return
	}

	if *populate != "" {
		if *storeDir == "" {
			fail(fmt.Errorf("-populate requires -store"))
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if err := populateStore(ctx, *storeDir, *populate, *workers); err != nil {
			fail(err)
		}
		return
	}

	var l *radiobcast.Labeling
	var net *radiobcast.Network
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail(err)
		}
		l, err = radiobcast.ReadLabeling(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		net = radiobcast.NewNetwork(l.Graph).At(l.Source)
		net.Name = *load
		fmt.Printf("loaded %s: scheme %s, source %d\n", *load, l.Scheme, l.Source)
	} else {
		var err error
		net, err = radiobcast.FamilyOrFile(*family, *n, *file)
		if err != nil {
			fail(err)
		}
		net.Coordinated(*r)
		if *source >= 0 {
			net.At(*source)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *sources != "" {
			if err := labelMany(ctx, net, *scheme, *sources, *workers, *save, *storeDir); err != nil {
				fail(err)
			}
			return
		}
		if *storeDir != "" {
			sess := radiobcast.NewSession(radiobcast.WithStore(*storeDir))
			if err := sess.Err(); err != nil {
				fail(err)
			}
			l, err = sess.Label(ctx, net, *scheme)
			if cerr := sess.Close(nil); err == nil {
				err = cerr
			}
		} else {
			l, err = radiobcast.LabelNetworkCtx(ctx, net, *scheme)
		}
		if err != nil {
			fail(err)
		}
	}
	*scheme = l.Scheme

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if err := radiobcast.WriteLabeling(f, l); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *save)
	}

	if l.Labels == nil {
		fmt.Printf("network: %v; scheme %s assigns no labels (schedule of %d rounds)\n",
			net, *scheme, len(l.Schedule))
		if *stages || *dot != "" {
			fail(fmt.Errorf("-stages and -dot need a labeling scheme, %s has none", *scheme))
		}
		return
	}
	fmt.Printf("network: %v; scheme %s: length %d bits, %d distinct labels\n",
		net, *scheme, l.Bits(), l.Distinct())
	for v, lab := range l.Labels {
		marks := ""
		if v == l.Z {
			marks += "  (z: acknowledgement initiator)"
		}
		if v == l.R {
			marks += "  (r: coordinator)"
		}
		fmt.Printf("node %3d: %s%s\n", v, lab, marks)
	}

	if *stages {
		if l.Stages == nil {
			fail(fmt.Errorf("scheme %s has no stage decomposition", *scheme))
		}
		fmt.Printf("\nstage decomposition (ℓ = %d):\n", l.Stages.L)
		for i := 1; i <= l.Stages.NumStored(); i++ {
			s := l.Stages.Stage(i)
			fmt.Printf("stage %d: DOM=%v NEW=%v FRONTIER=%v\n", i, s.Dom, s.New, s.Frontier)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := graph.WriteDOT(f, net.Graph, l.Strings()); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}

// labelMany fans independent (graph, source) labelings across workers
// through one shared Session. Each source's labeling is summarized on its
// own line (in source order); with -save, each is written to
// <save>.s<source> in the wire format. Duplicate sources in the list are
// served by the Session cache — or coalesced onto the in-flight
// computation when workers race — rather than recomputed.
func labelMany(ctx context.Context, net *radiobcast.Network, scheme, list string, workers int, savePrefix, storeDir string) error {
	srcs, err := parseSources(list, net.Graph.N())
	if err != nil {
		return err
	}
	// Shared across workers: freeze and fingerprint once up front so the
	// graph's lazy caches are read-only from here on.
	net.Graph.Freeze()
	net.Graph.Fingerprint()
	var opts []radiobcast.SessionOption
	if storeDir != "" {
		opts = append(opts, radiobcast.WithStore(storeDir))
	}
	sess := radiobcast.NewSession(opts...)
	if err := sess.Err(); err != nil {
		return err
	}
	defer sess.Close(nil)

	type result struct {
		src int
		l   *radiobcast.Labeling
	}
	results, err := sweep.MapErr(srcs, sweep.Workers(len(srcs), workers), func(src int) (result, error) {
		one := radiobcast.NewNetwork(net.Graph).At(src)
		one.Name = net.Name
		one.Coordinated(net.Coordinator)
		l, err := sess.Label(ctx, one, scheme)
		if err != nil {
			return result{}, fmt.Errorf("source %d: %w", src, err)
		}
		if savePrefix != "" {
			path := fmt.Sprintf("%s.s%d", savePrefix, src)
			f, err := os.Create(path)
			if err != nil {
				return result{}, err
			}
			if err := radiobcast.WriteLabeling(f, l); err != nil {
				f.Close()
				return result{}, err
			}
			if err := f.Close(); err != nil {
				return result{}, err
			}
		}
		return result{src: src, l: l}, nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: %v; scheme %s, %d sources, %d workers\n",
		net, scheme, len(srcs), sweep.Workers(len(srcs), workers))
	for _, r := range results {
		line := fmt.Sprintf("source %4d: length %d bits, %d distinct labels", r.src, r.l.Bits(), r.l.Distinct())
		if r.l.Stages != nil {
			line += fmt.Sprintf(", ℓ = %d", r.l.Stages.L)
		}
		if savePrefix != "" {
			line += fmt.Sprintf("  → %s.s%d", savePrefix, r.src)
		}
		fmt.Println(line)
	}
	st := sess.Stats()
	fmt.Printf("session: %d computed, %d cache hits, %d coalesced\n", st.Misses, st.Hits, st.Coalesced)
	if storeDir != "" {
		fmt.Printf("store: %d hits, %d writes, %d entries, %d bytes\n",
			st.StoreHits, st.StoreWrites, st.StoreEntries, st.StoreBytes)
	}
	return nil
}

// populateStore bulk-fills a labeling store: the families × sizes ×
// schemes × sources product is fanned across workers through one shared
// Session backed by the store, so entries already on disk are skipped
// and new ones are computed once and persisted. Combos a scheme cannot
// label (gjp and onebit are not universal) are reported but do not stop
// the rest; any failure makes the exit status nonzero.
func populateStore(ctx context.Context, dir, spec string, workers int) error {
	families, sizes, schemes, srcs, err := parsePopulate(spec)
	if err != nil {
		return err
	}
	sess := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
	if err := sess.Err(); err != nil {
		return err
	}
	defer sess.Close(nil)

	// One frozen graph per (family, size), shared by every scheme and
	// source combo so the Session keys them onto the same fingerprint.
	type topo struct {
		net *radiobcast.Network
		err error
	}
	topos := map[string]topo{}
	var jobs []job
	for _, fam := range families {
		for _, n := range sizes {
			id := fmt.Sprintf("%s/%d", fam, n)
			net, err := radiobcast.Family(fam, n)
			if err == nil {
				net.Graph.Freeze()
				net.Graph.Fingerprint()
			}
			topos[id] = topo{net: net, err: err}
			for _, scheme := range schemes {
				for _, src := range srcs {
					jobs = append(jobs, job{id: id, scheme: scheme, source: src})
				}
			}
		}
	}
	type outcome struct {
		line string
		ok   bool
	}
	results, _ := sweep.MapErr(jobs, sweep.Workers(len(jobs), workers), func(j job) (outcome, error) {
		t := topos[j.id]
		if t.err != nil {
			return outcome{fmt.Sprintf("%s %s source %d: %v", j.id, j.scheme, j.source, t.err), false}, nil
		}
		if j.source < 0 || j.source >= t.net.Graph.N() {
			return outcome{fmt.Sprintf("%s %s source %d: out of range", j.id, j.scheme, j.source), false}, nil
		}
		one := radiobcast.NewNetwork(t.net.Graph).At(j.source)
		one.Name = t.net.Name
		l, err := sess.Label(ctx, one, j.scheme)
		if err != nil {
			return outcome{fmt.Sprintf("%s %s source %d: %v", j.id, j.scheme, j.source, err), false}, nil
		}
		return outcome{fmt.Sprintf("%s %s source %d: %d bits, %d distinct", j.id, j.scheme, j.source, l.Bits(), l.Distinct()), true}, nil
	})
	failures := 0
	for _, r := range results {
		fmt.Println(r.line)
		if !r.ok {
			failures++
		}
	}
	st := sess.Stats()
	fmt.Printf("store %s: %d combos, %d computed, %d store hits, %d cache hits, %d coalesced, %d written, %d entries, %d bytes\n",
		dir, len(jobs), st.Misses, st.StoreHits, st.Hits, st.Coalesced, st.StoreWrites, st.StoreEntries, st.StoreBytes)
	if failures > 0 {
		return fmt.Errorf("%d of %d combos failed", failures, len(jobs))
	}
	return nil
}

type job struct {
	id     string
	scheme string
	source int
}

// parsePopulate parses the -populate spec: semicolon-separated
// key=comma-list pairs; families, sizes and schemes are required,
// sources defaults to 0.
func parsePopulate(spec string) (families []string, sizes []int, schemes []string, srcs []int, err error) {
	srcs = []int{0}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("-populate: %q is not key=value", part)
		}
		vals := strings.Split(v, ",")
		switch k {
		case "families":
			families = vals
		case "schemes":
			schemes = vals
		case "sizes", "sources":
			var ints []int
			for _, s := range vals {
				i, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return nil, nil, nil, nil, fmt.Errorf("-populate: %q is not an integer", s)
				}
				ints = append(ints, i)
			}
			if k == "sizes" {
				sizes = ints
			} else {
				srcs = ints
			}
		default:
			return nil, nil, nil, nil, fmt.Errorf("-populate: unknown key %q", k)
		}
	}
	if len(families) == 0 || len(sizes) == 0 || len(schemes) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("-populate: families, sizes and schemes are all required")
	}
	return families, sizes, schemes, srcs, nil
}

// parseSources expands the -sources flag: "all" means every node, else a
// comma-separated node list.
func parseSources(list string, n int) ([]int, error) {
	if list == "all" {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("-sources: %q is not a node index", part)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("-sources: node %d out of range [0,%d)", v, n)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sources: empty list")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "labeler: %v\n", err)
	os.Exit(1)
}
