// Command labeler computes a labeling scheme for a graph and prints the
// labels, optionally with the stage decomposition or a Graphviz DOT export.
// This is the "central monitor" role from the paper's motivating scenario:
// an entity that knows the topology and assigns short labels enabling
// universal broadcast. Any registered scheme works (-schemes lists them).
//
// A labeling is the paper's durable artifact: -save writes it in the
// portable binary wire format (graph, labels and all scheme structure),
// and -load reads one back in place of computing it, so the central
// monitor and the broadcast runner can be different processes on
// different machines:
//
//	labeler -family grid -n 64 -scheme back -save grid.labels
//	labeler -load grid.labels                    # inspect a shipped labeling
//
// Usage:
//
//	labeler -family grid -n 25 -scheme b -stages
//	labeler -family figure1 -scheme back -dot out.dot
//	labeler -graph edges.txt -scheme barb -r 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"radiobcast"
	"radiobcast/internal/cliutil"
	"radiobcast/internal/graph"
)

func main() {
	var (
		family   = flag.String("family", "figure1", "graph family (see -families)")
		n        = flag.Int("n", 16, "target graph size")
		file     = flag.String("graph", "", "read graph from edge-list file")
		scheme   = flag.String("scheme", "b", "registered scheme name (see -schemes)")
		source   = flag.Int("source", -1, "designated source (default: the network's)")
		r        = flag.Int("r", 0, "coordinator for barb")
		stages   = flag.Bool("stages", false, "print the stage decomposition")
		dot      = flag.String("dot", "", "write Graphviz DOT to file")
		save     = flag.String("save", "", "write the labeling in the portable wire format to this file")
		load     = flag.String("load", "", "read a labeling from this file instead of computing one")
		timeout  = cliutil.TimeoutFlag(0, "the labeling computation")
		listSchm = flag.Bool("schemes", false, "list registered schemes and exit")
		listFam  = flag.Bool("families", false, "list graph families and exit")

		showVersion = cliutil.VersionFlag("labeler")
	)
	flag.Parse()
	showVersion()

	if *listSchm {
		fmt.Print(radiobcast.DescribeSchemes())
		return
	}
	if *listFam {
		for _, name := range radiobcast.FamilyNames() {
			fmt.Println(name)
		}
		return
	}

	var l *radiobcast.Labeling
	var net *radiobcast.Network
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail(err)
		}
		l, err = radiobcast.ReadLabeling(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		net = radiobcast.NewNetwork(l.Graph).At(l.Source)
		net.Name = *load
		fmt.Printf("loaded %s: scheme %s, source %d\n", *load, l.Scheme, l.Source)
	} else {
		var err error
		net, err = radiobcast.FamilyOrFile(*family, *n, *file)
		if err != nil {
			fail(err)
		}
		net.Coordinated(*r)
		if *source >= 0 {
			net.At(*source)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		l, err = radiobcast.LabelNetworkCtx(ctx, net, *scheme)
		if err != nil {
			fail(err)
		}
	}
	*scheme = l.Scheme

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if err := radiobcast.WriteLabeling(f, l); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *save)
	}

	if l.Labels == nil {
		fmt.Printf("network: %v; scheme %s assigns no labels (schedule of %d rounds)\n",
			net, *scheme, len(l.Schedule))
		if *stages || *dot != "" {
			fail(fmt.Errorf("-stages and -dot need a labeling scheme, %s has none", *scheme))
		}
		return
	}
	fmt.Printf("network: %v; scheme %s: length %d bits, %d distinct labels\n",
		net, *scheme, l.Bits(), l.Distinct())
	for v, lab := range l.Labels {
		marks := ""
		if v == l.Z {
			marks += "  (z: acknowledgement initiator)"
		}
		if v == l.R {
			marks += "  (r: coordinator)"
		}
		fmt.Printf("node %3d: %s%s\n", v, lab, marks)
	}

	if *stages {
		if l.Stages == nil {
			fail(fmt.Errorf("scheme %s has no stage decomposition", *scheme))
		}
		fmt.Printf("\nstage decomposition (ℓ = %d):\n", l.Stages.L)
		for i := 1; i <= l.Stages.NumStored(); i++ {
			s := l.Stages.Stage(i)
			fmt.Printf("stage %d: DOM=%v NEW=%v FRONTIER=%v\n", i, s.Dom, s.New, s.Frontier)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := graph.WriteDOT(f, net.Graph, l.Strings()); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "labeler: %v\n", err)
	os.Exit(1)
}
