// Command radiobcastd serves the radiobcast facade over HTTP — the
// paper's central monitor as a daemon. One shared Session backs every
// request, so recurring topologies are labeled once and served from the
// cache thereafter.
//
// Endpoints:
//
//	POST /v1/label        graph spec in, labeling wire format out
//	POST /v1/run          graph spec + scheme in, Outcome JSON out
//	POST /v1/run-labeled  labeling wire format in, Outcome JSON out
//	POST /v1/sweep        grid spec in, NDJSON cell stream out
//	GET  /healthz         liveness (200 while the process is up)
//	GET  /readyz          readiness (503 once draining)
//	GET  /metrics         Prometheus text format
//
// The daemon sheds load instead of queueing it: per-client token-bucket
// rate limiting and a bounded sweep pool both answer 429 with
// Retry-After. SIGTERM/SIGINT starts a graceful drain: /readyz flips to
// 503, in-flight requests finish under -drain, then the listener closes.
//
// With -store, the Session is backed by the persistent labeling store:
// labelings computed for one request are written to disk, survive
// restarts, and are shared with every other process pointing at the same
// directory (e.g. a labeler that bulk-populated it). At startup the most
// recent entries are preloaded into the in-memory cache (-store-preload).
//
//	radiobcastd -addr :8080 -cache 256 -sweeps 2
//	radiobcastd -addr :8080 -store /var/lib/radiobcast/labelings
//	curl -s localhost:8080/v1/run -d '{"graph":{"family":"grid","n":64},"scheme":"b"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"radiobcast"
	"radiobcast/internal/cliutil"
	"radiobcast/internal/httpd"
)

func main() {
	var (
		addr        = cliutil.AddrFlag(":8080")
		timeout     = cliutil.TimeoutFlag(60e9, "each label/run request")
		cache       = flag.Int("cache", radiobcast.DefaultLabelingCacheSize, "labeling-cache capacity in entries (0 disables)")
		storeDir    = flag.String("store", "", "persistent labeling-store directory (empty disables the disk tier)")
		storeBytes  = flag.Int64("store-bytes", 0, "labeling-store size cap in bytes (0 = unbounded)")
		storeWarm   = flag.Int("store-preload", -1, "labelings preloaded from the store at startup (-1 = default, 0 disables)")
		sweeps      = flag.Int("sweeps", 2, "concurrent sweep slots; a saturated pool answers 429")
		sweepWk     = flag.Int("sweep-workers", 0, "worker-pool size per sweep (0 = GOMAXPROCS)")
		rate        = flag.Float64("rate", 50, "per-client requests per second (negative disables rate limiting)")
		burst       = flag.Int("burst", 100, "per-client burst size")
		drain       = flag.Duration("drain", 10e9, "graceful-drain deadline after SIGTERM")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		maxN        = flag.Int("max-n", 1<<20, "graph size limit in nodes")
		maxRounds   = flag.Int("max-rounds", 1<<20, "limit on a request's max_rounds override")
		maxCells    = flag.Int("max-cells", 65536, "sweep grid size limit in cells")
		showVersion = cliutil.VersionFlag("radiobcastd")
	)
	flag.Parse()
	showVersion()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	sessOpts := []radiobcast.SessionOption{radiobcast.WithLabelingCache(*cache)}
	if *storeDir != "" {
		sessOpts = append(sessOpts,
			radiobcast.WithStore(*storeDir),
			radiobcast.WithStoreBytes(*storeBytes),
			radiobcast.WithStorePreload(*storeWarm))
	}
	sess := radiobcast.NewSession(sessOpts...)
	if err := sess.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "radiobcastd: %v\n", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		st := sess.Stats()
		logger.Printf("labeling store %s: %d entries, %d bytes, %d preloaded",
			*storeDir, st.StoreEntries, st.StoreBytes, st.StoreHits)
	}
	srv := httpd.New(httpd.Config{
		Addr:                *addr,
		Session:             sess,
		MaxBodyBytes:        *maxBody,
		MaxGraphN:           *maxN,
		MaxRounds:           *maxRounds,
		MaxSweepCells:       *maxCells,
		MaxConcurrentSweeps: *sweeps,
		SweepWorkers:        *sweepWk,
		RatePerSec:          *rate,
		RateBurst:           *burst,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
		Logf:                logger.Printf,
	})

	// SIGTERM/SIGINT cancels ctx, which Serve turns into the drain
	// sequence; a second signal kills the process the old-fashioned way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "radiobcastd: %v\n", err)
		os.Exit(1)
	}
}
