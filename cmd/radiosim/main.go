// Command radiosim runs broadcast scenarios through the radiobcast facade.
// Scheme selection is registry driven: -scheme accepts the name of any
// registered scheme (-schemes lists them), so new algorithms appear here
// without touching this file.
//
// Single-run mode prints one outcome, with an optional round-by-round
// trace in the paper's Figure 1 annotation style:
//
//	radiosim -family grid -n 16 -scheme b -source 0 [-trace] [-mu text]
//	radiosim -family figure1 -scheme back -trace
//	radiosim -graph edges.txt -scheme barb -source 3 -r 0
//	radiosim -scheme onebit -family path -n 12 -quick
//
// Batch mode (-sweep) runs the full families × sizes × schemes × sources ×
// fault-rates grid as one job on a worker pool sharing frozen graphs,
// labelings and per-worker engines, streaming one table row per cell:
//
//	radiosim -sweep -family path,grid -sizes 64,256 -scheme b,back
//	radiosim -sweep -family grid -sizes 256 -scheme b -faults 0,0.01,0.05 -repeats 5
//
// Both modes accept -timeout to bound the whole job: on expiry the run
// stops within one engine round (single mode) or one sweep cell (batch
// mode), prints the partial results observed so far, and exits non-zero:
//
//	radiosim -sweep -family grid -sizes 4096 -scheme b -timeout 5s
//
// Both modes accept -cpuprofile / -memprofile to capture pprof profiles of
// the run, so engine changes can be measured:
//
//	radiosim -sweep -family grid -sizes 1024 -scheme b -cpuprofile cpu.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"radiobcast"
	"radiobcast/internal/cliutil"
)

func main() {
	var (
		family   = flag.String("family", "figure1", "graph family; comma-separated list in -sweep mode (see -families)")
		n        = flag.Int("n", 16, "target graph size (single-run mode)")
		sizes    = flag.String("sizes", "", "comma-separated graph sizes (-sweep mode; default: -n)")
		file     = flag.String("graph", "", "read graph from edge-list file instead of -family (single-run mode)")
		scheme   = flag.String("scheme", "b", "registered scheme name; comma-separated list in -sweep mode (see -schemes)")
		source   = flag.Int("source", -1, "source node (default: the network's)")
		sources  = flag.String("sources", "", "comma-separated source nodes (-sweep mode; negative counts from the end)")
		r        = flag.Int("r", 0, "coordinator node for barb")
		mu       = flag.String("mu", "hello", "source message µ")
		workers  = flag.Int("workers", 0, "single-run: engine parallelism; sweep: worker-pool size (0 = default)")
		trace    = flag.Bool("trace", false, "print the round-by-round trace (single-run mode)")
		quick    = flag.Bool("quick", false, "reduce labeling-search effort")
		doSweep  = flag.Bool("sweep", false, "batch mode: run the full parameter grid as one sweep")
		faults   = flag.String("faults", "", "comma-separated fault rates to sweep (e.g. 0,0.01,0.05)")
		repeats  = flag.Int("repeats", 1, "runs per sweep cell (distinct fault seeds)")
		seed     = flag.Int64("seed", 1, "base seed of the deterministic fault model")
		dense    = flag.Bool("dense", false, "force the dense reference engine (no sparse wakeup)")
		timeout  = cliutil.TimeoutFlag(0, "the whole job, printing partial results")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		listFam  = flag.Bool("families", false, "list graph families and exit")
		listSchm = flag.Bool("schemes", false, "list registered schemes and exit")

		showVersion = cliutil.VersionFlag("radiosim")
	)
	flag.Parse()
	showVersion()

	if *listFam {
		for _, name := range radiobcast.FamilyNames() {
			fmt.Println(name)
		}
		return
	}
	if *listSchm {
		fmt.Print(radiobcast.DescribeSchemes())
		return
	}

	startProfiles(*cpuProf, *memProf)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *doSweep {
		// Reject single-run-only flags instead of silently ignoring them
		// (a sweep over the wrong topology looks plausible in the table).
		for name, set := range map[string]bool{
			"-graph":  *file != "",
			"-trace":  *trace,
			"-quick":  *quick,
			"-source": *source >= 0,
			"-r":      *r != 0,
		} {
			if set {
				fail(fmt.Errorf("%s applies to single-run mode only (sweep mode takes -sources; see -h)", name))
			}
		}
		ok := runSweep(ctx, sweepArgs{
			families: *family, sizes: *sizes, n: *n, schemes: *scheme,
			sources: *sources, faults: *faults, repeats: *repeats,
			mu: *mu, workers: *workers, seed: *seed, dense: *dense,
		})
		flushProfiles()
		if !ok {
			os.Exit(1)
		}
		return
	}
	runSingle(ctx, singleArgs{
		family: *family, n: *n, file: *file, scheme: *scheme,
		source: *source, r: *r, mu: *mu, workers: *workers,
		trace: *trace, quick: *quick, dense: *dense,
	})
	flushProfiles()
}

// flushProfiles finalizes any profiles requested via -cpuprofile /
// -memprofile. It runs on every exit path — fail() calls it before
// os.Exit, where deferred writers would be skipped — so failing runs
// (often exactly the ones worth profiling) still produce usable profiles.
var flushProfiles = func() {}

func startProfiles(cpuPath, memPath string) {
	flushed := false
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	flushProfiles = func() {
		if flushed {
			return
		}
		flushed = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			}
		}
	}
}

type singleArgs struct {
	family, file, scheme, mu string
	n, source, r, workers    int
	trace, quick, dense      bool
}

func runSingle(ctx context.Context, a singleArgs) {
	net, err := radiobcast.FamilyOrFile(a.family, a.n, a.file)
	if err != nil {
		fail(err)
	}
	net.Coordinated(a.r)
	if a.source >= 0 {
		net.At(a.source)
	}

	s, ok := radiobcast.Lookup(a.scheme)
	if !ok {
		fail(fmt.Errorf("unknown scheme %q (use -schemes)", a.scheme))
	}
	fmt.Printf("network: %v, source %d, scheme %s: %s\n", net, net.Source, s.Name(), s.Describe())

	opts := []radiobcast.Option{
		radiobcast.WithMessage(a.mu),
		radiobcast.WithWorkers(a.workers),
	}
	if a.quick {
		opts = append(opts, radiobcast.WithQuick())
	}
	if a.dense {
		opts = append(opts, radiobcast.WithDenseEngine())
	}
	var tr *radiobcast.Trace
	if a.trace {
		tr = &radiobcast.Trace{}
		opts = append(opts, radiobcast.WithTrace(tr))
	}

	sess := radiobcast.NewSession()
	out, err := sess.Run(ctx, net, a.scheme, opts...)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && out != nil {
			fmt.Printf("TIMED OUT after %d rounds — partial results:\n", out.Result.Rounds)
			report(out)
		}
		fail(err)
	}
	report(out)

	if err := radiobcast.Verify(out); err != nil {
		fail(err)
	}
	fmt.Println("verified: the scheme's guarantees hold on this run")

	if a.trace {
		fmt.Print(tr.String())
		fmt.Println("per-node annotations (label, {transmit rounds}, (receive rounds)):")
		fmt.Print(radiobcast.Annotate(out))
	}
}

type sweepArgs struct {
	families, sizes, schemes, sources, faults, mu string
	n, repeats, workers                           int
	seed                                          int64
	dense                                         bool
}

// runSweep streams the grid straight off Session.Sweep's iterator: one
// table row per finished cell, in completion order. On timeout the
// iterator yields the context error last; the cells finished before the
// cut-off have already been printed, so the summary is the partial result.
func runSweep(ctx context.Context, a sweepArgs) bool {
	spec := radiobcast.SweepSpec{
		Families:    splitList(a.families),
		Schemes:     splitList(a.schemes),
		Sizes:       parseInts(a.sizes, []int{a.n}),
		Sources:     parseInts(a.sources, nil),
		FaultRates:  parseFloats(a.faults),
		Repeats:     a.repeats,
		Mu:          a.mu,
		Workers:     a.workers,
		Seed:        a.seed,
		DenseEngine: a.dense,
	}

	fmt.Printf("%-12s %6s %-12s %5s %6s %4s  %-9s %7s %8s %s\n",
		"family", "n", "scheme", "src", "drop", "rep", "informed", "round", "tx", "status")
	cells, failures := 0, 0
	sess := radiobcast.NewSession()
	for c, err := range sess.Sweep(ctx, spec) {
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Printf("TIMED OUT after %d cells, %d failed (partial sweep)\n", cells, failures)
				return false
			}
			fail(err)
		}
		cells++
		status := "ok"
		switch {
		case c.Err != nil:
			status = c.Err.Error()
			failures++
		case c.Verified:
			status = "verified"
		}
		informed, round, tx := "-", 0, 0
		if c.Outcome != nil {
			informed = fmt.Sprintf("%v", c.Outcome.AllInformed)
			round = c.Outcome.CompletionRound
			tx = c.Outcome.Result.TotalTransmissions
		}
		fmt.Printf("%-12s %6d %-12s %5d %6g %4d  %-9s %7d %8d %s\n",
			c.Cell.Family, c.N, c.Cell.Scheme, c.Cell.Source,
			c.Cell.FaultRate, c.Cell.Repeat, informed, round, tx, status)
	}
	fmt.Printf("%d cells, %d failed\n", cells, failures)
	return failures == 0
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string, dflt []int) []int {
	if strings.TrimSpace(s) == "" {
		return dflt
	}
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fail(fmt.Errorf("bad integer %q: %v", p, err))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fail(fmt.Errorf("bad rate %q: %v", p, err))
		}
		out = append(out, v)
	}
	return out
}

// report prints the unified outcome: the common block for every scheme,
// then whatever scheme-specific fields are populated.
func report(out *radiobcast.Outcome) {
	l := out.Labeling
	switch {
	case l.Schedule != nil:
		fmt.Printf("no labels: centralized schedule of %d rounds\n", len(l.Schedule))
	case l.Labels != nil:
		fmt.Printf("labels: %d-bit, %d distinct\n", l.Bits(), l.Distinct())
	}
	if l.Z >= 0 {
		fmt.Printf("acknowledgement initiator z = node %d\n", l.Z)
	}
	if l.R >= 0 {
		fmt.Printf("coordinator r = node %d\n", l.R)
	}
	fmt.Printf("broadcast complete: %v, completion round %d", out.AllInformed, out.CompletionRound)
	if out.Scheme == "b" || out.Scheme == "back" {
		// Theorem 2.9 / 3.9: completion within 2n−3 rounds.
		fmt.Printf(" (bound 2n−3 = %d)", 2*out.Graph.N()-3)
	}
	fmt.Println()
	if out.AckRound > 0 {
		fmt.Printf("source acknowledged in round %d\n", out.AckRound)
	}
	if out.KnowsCompleteRound != nil {
		fmt.Printf("all nodes know completion by round %d (total %d rounds, T = %d)\n",
			out.KnowsCompleteRound[0], out.TotalRounds, out.T)
	}
	fmt.Printf("traffic: %d transmissions, max message %d bits\n",
		out.Result.TotalTransmissions, out.Result.MaxMessageBits)
}

func fail(err error) {
	flushProfiles()
	fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
	os.Exit(1)
}
