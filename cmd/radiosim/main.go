// Command radiosim runs one broadcast scenario through the radiobcast
// facade and prints the outcome, with an optional round-by-round trace in
// the paper's Figure 1 annotation style. Scheme selection is registry
// driven: -scheme accepts the name of any registered scheme (-schemes
// lists them), so new algorithms appear here without touching this file.
//
// Usage:
//
//	radiosim -family grid -n 16 -scheme b -source 0 [-trace] [-mu text]
//	radiosim -family figure1 -scheme back -trace
//	radiosim -graph edges.txt -scheme barb -source 3 -r 0
//	radiosim -scheme onebit -family path -n 12 -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"radiobcast"
)

func main() {
	var (
		family   = flag.String("family", "figure1", "graph family (see -families)")
		n        = flag.Int("n", 16, "target graph size")
		file     = flag.String("graph", "", "read graph from edge-list file instead of -family")
		scheme   = flag.String("scheme", "b", "registered scheme name (see -schemes)")
		source   = flag.Int("source", -1, "source node (default: the network's)")
		r        = flag.Int("r", 0, "coordinator node for barb")
		mu       = flag.String("mu", "hello", "source message µ")
		workers  = flag.Int("workers", 0, "engine parallelism (0 = sequential, -1 = GOMAXPROCS)")
		trace    = flag.Bool("trace", false, "print the round-by-round trace")
		quick    = flag.Bool("quick", false, "reduce labeling-search effort")
		listFam  = flag.Bool("families", false, "list graph families and exit")
		listSchm = flag.Bool("schemes", false, "list registered schemes and exit")
	)
	flag.Parse()

	if *listFam {
		for _, name := range radiobcast.FamilyNames() {
			fmt.Println(name)
		}
		return
	}
	if *listSchm {
		fmt.Print(radiobcast.DescribeSchemes())
		return
	}

	net, err := radiobcast.FamilyOrFile(*family, *n, *file)
	if err != nil {
		fail(err)
	}
	net.Coordinated(*r)
	if *source >= 0 {
		net.At(*source)
	}

	s, ok := radiobcast.Lookup(*scheme)
	if !ok {
		fail(fmt.Errorf("unknown scheme %q (use -schemes)", *scheme))
	}
	fmt.Printf("network: %v, source %d, scheme %s: %s\n", net, net.Source, s.Name(), s.Describe())

	opts := []radiobcast.Option{
		radiobcast.WithMessage(*mu),
		radiobcast.WithWorkers(*workers),
	}
	if *quick {
		opts = append(opts, radiobcast.WithQuick())
	}
	var tr *radiobcast.Trace
	if *trace {
		tr = &radiobcast.Trace{}
		opts = append(opts, radiobcast.WithTrace(tr))
	}

	out, err := radiobcast.Run(net, *scheme, opts...)
	if err != nil {
		fail(err)
	}
	report(out)

	if err := radiobcast.Verify(out); err != nil {
		fail(err)
	}
	fmt.Println("verified: the scheme's guarantees hold on this run")

	if *trace {
		fmt.Print(tr.String())
		fmt.Println("per-node annotations (label, {transmit rounds}, (receive rounds)):")
		fmt.Print(radiobcast.Annotate(out))
	}
}

// report prints the unified outcome: the common block for every scheme,
// then whatever scheme-specific fields are populated.
func report(out *radiobcast.Outcome) {
	l := out.Labeling
	switch {
	case l.Schedule != nil:
		fmt.Printf("no labels: centralized schedule of %d rounds\n", len(l.Schedule))
	case l.Labels != nil:
		fmt.Printf("labels: %d-bit, %d distinct\n", l.Bits(), l.Distinct())
	}
	if l.Z >= 0 {
		fmt.Printf("acknowledgement initiator z = node %d\n", l.Z)
	}
	if l.R >= 0 {
		fmt.Printf("coordinator r = node %d\n", l.R)
	}
	fmt.Printf("broadcast complete: %v, completion round %d", out.AllInformed, out.CompletionRound)
	if out.Scheme == "b" || out.Scheme == "back" {
		// Theorem 2.9 / 3.9: completion within 2n−3 rounds.
		fmt.Printf(" (bound 2n−3 = %d)", 2*out.Graph.N()-3)
	}
	fmt.Println()
	if out.AckRound > 0 {
		fmt.Printf("source acknowledged in round %d\n", out.AckRound)
	}
	if out.KnowsCompleteRound != nil {
		fmt.Printf("all nodes know completion by round %d (total %d rounds, T = %d)\n",
			out.KnowsCompleteRound[0], out.TotalRounds, out.T)
	}
	fmt.Printf("traffic: %d transmissions, max message %d bits\n",
		out.Result.TotalTransmissions, out.Result.MaxMessageBits)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
	os.Exit(1)
}
