// Command radiosim runs one broadcast scenario and prints the outcome, with
// an optional round-by-round trace in the paper's Figure 1 annotation style.
//
// Usage:
//
//	radiosim -family grid -n 16 -algo b -source 0 [-trace] [-mu text]
//	radiosim -family figure1 -algo back -trace
//	radiosim -graph edges.txt -algo barb -source 3 -r 0
//
// Algorithms: b (2-bit λ), back (3-bit λack, acknowledged),
// barb (3-bit λarb, arbitrary source with coordinator -r),
// roundrobin, colorrobin, centralized (baselines).
package main

import (
	"flag"
	"fmt"
	"os"

	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

func main() {
	var (
		family  = flag.String("family", "figure1", "graph family (see -families) or \"figure1\"")
		n       = flag.Int("n", 16, "target graph size")
		file    = flag.String("graph", "", "read graph from edge-list file instead of -family")
		algo    = flag.String("algo", "b", "b | back | barb | roundrobin | colorrobin | centralized")
		source  = flag.Int("source", 0, "source node")
		r       = flag.Int("r", 0, "coordinator node for barb")
		mu      = flag.String("mu", "hello", "source message µ")
		trace   = flag.Bool("trace", false, "print the round-by-round trace")
		listFam = flag.Bool("families", false, "list graph families and exit")
	)
	flag.Parse()

	if *listFam {
		for _, name := range graph.FamilyNames() {
			fmt.Println(name)
		}
		return
	}

	g, err := buildGraph(*family, *n, *file)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %v, source %d, algorithm %s\n", g, *source, *algo)

	switch *algo {
	case "b":
		l, err := core.Lambda(g, *source, core.BuildOptions{})
		if err != nil {
			fail(err)
		}
		var tr *radio.Trace
		if *trace {
			tr = &radio.Trace{}
		}
		out, err := core.RunBroadcastLabeled(g, l, *source, *mu, tr)
		if err != nil {
			fail(err)
		}
		if err := core.VerifyBroadcast(out, *mu); err != nil {
			fail(err)
		}
		fmt.Printf("λ labels (2 bits, %d distinct), ℓ = %d stages\n",
			core.Distinct(l.Labels), l.Stages.L)
		fmt.Printf("broadcast complete in round %d (bound 2n−3 = %d)\n",
			out.CompletionRound, 2*g.N()-3)
		if *trace {
			fmt.Print(tr.String())
			fmt.Println("per-node annotations (label, {transmit rounds}, (receive rounds)):")
			fmt.Print(radio.Annotations(out.Result, core.Strings(l.Labels)))
		}

	case "back":
		out, err := core.RunAcknowledged(g, *source, *mu, core.BuildOptions{})
		if err != nil {
			fail(err)
		}
		if err := core.VerifyAcknowledged(out, *mu); err != nil {
			fail(err)
		}
		fmt.Printf("λack labels (3 bits, %d distinct), z = %d\n",
			core.Distinct(out.Labels), out.Z)
		fmt.Printf("broadcast complete in round %d; source acknowledged in round %d\n",
			out.CompletionRound, out.AckRound)

	case "barb":
		out, err := core.RunArbitrary(g, *r, *source, *mu, core.BuildOptions{})
		if err != nil {
			fail(err)
		}
		if err := core.VerifyArbitrary(g, out, *mu); err != nil {
			fail(err)
		}
		fmt.Printf("λarb labels (3 bits, %d distinct), coordinator r = %d, T = %d\n",
			core.Distinct(out.Labels), out.R, out.T)
		fmt.Printf("all nodes know µ and completion by round %d (total %d rounds)\n",
			out.KnowsCompleteRound[0], out.TotalRounds)

	case "roundrobin":
		out, err := baseline.RunRoundRobin(g, *source, *mu)
		if err != nil {
			fail(err)
		}
		fmt.Printf("round robin: %d-bit labels, complete in round %d\n",
			out.LabelBits, out.CompletionRound)

	case "colorrobin":
		out, err := baseline.RunColorRobin(g, *source, *mu)
		if err != nil {
			fail(err)
		}
		fmt.Printf("colour robin: %d-bit labels, complete in round %d\n",
			out.LabelBits, out.CompletionRound)

	case "centralized":
		out, err := baseline.RunCentralized(g, *source, *mu)
		if err != nil {
			fail(err)
		}
		fmt.Printf("centralized schedule: complete in round %d\n", out.CompletionRound)

	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func buildGraph(family string, n int, file string) (*graph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		if !g.IsConnected() {
			return nil, fmt.Errorf("graph in %s is not connected", file)
		}
		return g, nil
	}
	if family == "figure1" {
		return graph.Figure1(), nil
	}
	build, ok := graph.Families[family]
	if !ok {
		return nil, fmt.Errorf("unknown family %q (use -families)", family)
	}
	return build(n), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
	os.Exit(1)
}
