package radiobcast

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
)

// The labeling wire format, version 1. A labeling is the paper's durable
// artifact — computed once by the central monitor, then shipped to
// wherever broadcasts run — so it serializes as a self-contained,
// versioned, byte-order-independent blob:
//
//	"RBL1"            magic + version
//	scheme            uvarint length + bytes
//	source, Z, R      varints
//	graph             n, m uvarints, then m edge pairs (u, v) as uvarints
//	flags             bit0 labels, bit1 schedule, bit2 stages
//	labels            n × (uvarint length + bytes), when present
//	delays            2 varints (flooding-family forwarding delays)
//	schedule          rounds, then per round: count + node uvarints
//	stages            ℓ, restricted, stalled, stored count, then per
//	                  stage the DOM and NEW node lists
//	crc32             IEEE checksum of everything above, little-endian
//
// All integers are varint-encoded; everything a Run or Verify needs
// travels in the blob (the λ-family stage structure is rebuilt from its
// DOM/NEW lists via the §2.1 recurrence). Decoding is defensive: every
// count is bounded by the remaining input before anything is allocated,
// and corrupt or truncated blobs return errors, never panics.
const (
	labelingMagic   = "RBL1"
	flagHasLabels   = 1 << 0
	flagHasSchedule = 1 << 1
	flagHasStages   = 1 << 2
)

// LabelingContentType is the MIME media type of the labeling wire format
// — the Content-Type under which labelings travel over HTTP (the daemon's
// /v1/label responses and /v1/run-labeled request bodies). The ".v1"
// suffix tracks the format's magic: a future "RBL2" format gets a new
// media type, so proxies and clients can route on the header alone.
const LabelingContentType = "application/vnd.radiobcast.labeling.v1"

// MarshalBinary encodes the labeling in the versioned wire format. It
// implements encoding.BinaryMarshaler. The encoding is canonical: equal
// labelings marshal to identical bytes, so blobs can be content-addressed.
func (l *Labeling) MarshalBinary() ([]byte, error) {
	if l == nil || l.Graph == nil {
		return nil, labelingMismatch("cannot marshal a labeling without a graph")
	}
	if l.Labels != nil && len(l.Labels) != l.Graph.N() {
		return nil, labelingMismatch("%d labels for %d nodes", len(l.Labels), l.Graph.N())
	}
	buf := []byte(labelingMagic)
	buf = binary.AppendUvarint(buf, uint64(len(l.Scheme)))
	buf = append(buf, l.Scheme...)
	buf = binary.AppendVarint(buf, int64(l.Source))
	buf = binary.AppendVarint(buf, int64(l.Z))
	buf = binary.AppendVarint(buf, int64(l.R))

	g := l.Graph
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	for _, e := range g.Edges() {
		buf = binary.AppendUvarint(buf, uint64(e[0]))
		buf = binary.AppendUvarint(buf, uint64(e[1]))
	}

	var flags byte
	if l.Labels != nil {
		flags |= flagHasLabels
	}
	if l.Schedule != nil {
		flags |= flagHasSchedule
	}
	if l.Stages != nil {
		flags |= flagHasStages
	}
	buf = append(buf, flags)

	if l.Labels != nil {
		for _, lab := range l.Labels {
			buf = binary.AppendUvarint(buf, uint64(len(lab)))
			buf = append(buf, lab...)
		}
	}
	buf = binary.AppendVarint(buf, int64(l.Delays.DelayOne))
	buf = binary.AppendVarint(buf, int64(l.Delays.DelayZero))
	if l.Schedule != nil {
		buf = binary.AppendUvarint(buf, uint64(len(l.Schedule)))
		for _, round := range l.Schedule {
			buf = binary.AppendUvarint(buf, uint64(len(round)))
			for _, v := range round {
				buf = binary.AppendUvarint(buf, uint64(v))
			}
		}
	}
	if l.Stages != nil {
		buf = binary.AppendUvarint(buf, uint64(l.Stages.L))
		restricted := byte(0)
		if l.Stages.Restricted {
			restricted = 1
		}
		buf = append(buf, restricted)
		buf = binary.AppendUvarint(buf, uint64(l.Stages.Stalled))
		doms, news := l.Stages.StageSets()
		buf = binary.AppendUvarint(buf, uint64(len(doms)))
		appendList := func(list []int) {
			buf = binary.AppendUvarint(buf, uint64(len(list)))
			for _, v := range list {
				buf = binary.AppendUvarint(buf, uint64(v))
			}
		}
		for i := range doms {
			appendList(doms[i])
			appendList(news[i])
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalBinary decodes a labeling previously produced by MarshalBinary,
// reconstructing the graph and (for λ-family schemes) the stage structure,
// so the result runs and verifies exactly like the original. It implements
// encoding.BinaryUnmarshaler. Corrupt, truncated or self-contradictory
// input returns an error.
func (l *Labeling) UnmarshalBinary(data []byte) error {
	if len(data) < len(labelingMagic)+4 {
		return fmt.Errorf("radiobcast: labeling codec: %d-byte input too short", len(data))
	}
	if string(data[:len(labelingMagic)]) != labelingMagic {
		return fmt.Errorf("radiobcast: labeling codec: bad magic %q (want %q)", data[:len(labelingMagic)], labelingMagic)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fmt.Errorf("radiobcast: labeling codec: checksum mismatch (corrupt input)")
	}
	d := &decoder{buf: body[len(labelingMagic):]}

	scheme, err := d.str("scheme name")
	if err != nil {
		return err
	}
	source, err := d.varint("source")
	if err != nil {
		return err
	}
	z, err := d.varint("z")
	if err != nil {
		return err
	}
	r, err := d.varint("r")
	if err != nil {
		return err
	}

	n, err := d.count("node count", 1)
	if err != nil {
		return err
	}
	m, err := d.count("edge count", 2)
	if err != nil {
		return err
	}
	// Every graph the facade produces is connected, so n ≤ m+1; enforcing
	// it here bounds the allocation below by the input length.
	if n > m+1 {
		return fmt.Errorf("radiobcast: labeling codec: %d nodes with %d edges cannot be connected", n, m)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, err := d.varuint("edge endpoint")
		if err != nil {
			return err
		}
		v, err := d.varuint("edge endpoint")
		if err != nil {
			return err
		}
		if u >= n || v >= n || u == v {
			return fmt.Errorf("radiobcast: labeling codec: bad edge {%d,%d} in %d-node graph", u, v, n)
		}
		g.AddEdge(u, v)
	}
	if g.M() != m {
		return fmt.Errorf("radiobcast: labeling codec: duplicate edges (%d listed, %d distinct)", m, g.M())
	}
	if !g.IsConnected() {
		return fmt.Errorf("radiobcast: labeling codec: graph is not connected")
	}
	if source < 0 || source >= n {
		return fmt.Errorf("radiobcast: labeling codec: source %d out of range [0,%d)", source, n)
	}
	if z < -1 || z >= n || r < -1 || r >= n {
		return fmt.Errorf("radiobcast: labeling codec: z=%d or r=%d out of range for n=%d", z, r, n)
	}

	flags, err := d.byte("flags")
	if err != nil {
		return err
	}
	if flags&^byte(flagHasLabels|flagHasSchedule|flagHasStages) != 0 {
		return fmt.Errorf("radiobcast: labeling codec: unknown flag bits %#x", flags)
	}

	var labels []Label
	if flags&flagHasLabels != 0 {
		labels = make([]Label, n)
		for v := 0; v < n; v++ {
			s, err := d.str("label")
			if err != nil {
				return err
			}
			labels[v] = Label(s)
		}
	}
	delayOne, err := d.varint("delay-one")
	if err != nil {
		return err
	}
	delayZero, err := d.varint("delay-zero")
	if err != nil {
		return err
	}

	var schedule [][]int
	if flags&flagHasSchedule != 0 {
		rounds, err := d.count("schedule rounds", 1)
		if err != nil {
			return err
		}
		schedule = make([][]int, rounds)
		for i := range schedule {
			nodes, err := d.nodeList("schedule round", n)
			if err != nil {
				return err
			}
			schedule[i] = nodes
		}
	}

	var stages *core.Stages
	if flags&flagHasStages != 0 {
		lStage, err := d.varuint("stage count ℓ")
		if err != nil {
			return err
		}
		restricted, err := d.byte("restricted flag")
		if err != nil {
			return err
		}
		stalled, err := d.varuint("stalled stage")
		if err != nil {
			return err
		}
		stored, err := d.count("stored stages", 2)
		if err != nil {
			return err
		}
		// Lemma 2.6: the construction has ℓ ≤ n stages. Rebuilding clones
		// five n-bit sets per stage, so without this bound a small blob
		// declaring a huge stage count would amplify to O(n·stages) memory.
		if lStage > n || stored > n {
			return fmt.Errorf("radiobcast: labeling codec: %d stages (ℓ=%d) for %d nodes", stored, lStage, n)
		}
		doms := make([][]int, stored)
		news := make([][]int, stored)
		for i := 0; i < stored; i++ {
			if doms[i], err = d.nodeList("DOM", n); err != nil {
				return err
			}
			if news[i], err = d.nodeList("NEW", n); err != nil {
				return err
			}
		}
		stages, err = core.RebuildStages(g, source, lStage, restricted != 0, stalled, doms, news)
		if err != nil {
			return fmt.Errorf("radiobcast: labeling codec: %w", err)
		}
	}
	if d.rem() != 0 {
		return fmt.Errorf("radiobcast: labeling codec: %d trailing bytes", d.rem())
	}

	*l = Labeling{
		Scheme:   scheme,
		Graph:    g,
		Source:   source,
		Labels:   labels,
		Stages:   stages,
		Z:        z,
		R:        r,
		Delays:   baseline.FloodingDelays{DelayOne: delayOne, DelayZero: delayZero},
		Schedule: schedule,
	}
	return nil
}

// WriteLabeling writes the labeling's wire format to w — the transport
// half of the paper's central-monitor story: label here, run anywhere.
func WriteLabeling(w io.Writer, l *Labeling) error {
	buf, err := l.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadLabeling reads one labeling in the wire format from r (consuming r
// to EOF) and returns it ready for RunLabeled.
func ReadLabeling(r io.Reader) (*Labeling, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	l := new(Labeling)
	if err := l.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return l, nil
}

// decoder reads the wire format with every count bounded by the remaining
// input, so corrupt length fields fail instead of allocating.
type decoder struct {
	buf []byte
}

func (d *decoder) rem() int { return len(d.buf) }

func (d *decoder) byte(what string) (byte, error) {
	if len(d.buf) == 0 {
		return 0, fmt.Errorf("radiobcast: labeling codec: truncated at %s", what)
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, k := binary.Uvarint(d.buf)
	if k <= 0 {
		return 0, fmt.Errorf("radiobcast: labeling codec: truncated or malformed uvarint at %s", what)
	}
	d.buf = d.buf[k:]
	return v, nil
}

// varuint reads a uvarint that must fit int32 (so the conversion below
// is safe even where int is 32 bits).
func (d *decoder) varuint(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v >= 1<<31 {
		return 0, fmt.Errorf("radiobcast: labeling codec: %s %d implausibly large", what, v)
	}
	return int(v), nil
}

func (d *decoder) varint(what string) (int, error) {
	v, k := binary.Varint(d.buf)
	if k <= 0 {
		return 0, fmt.Errorf("radiobcast: labeling codec: truncated or malformed varint at %s", what)
	}
	d.buf = d.buf[k:]
	if v >= 1<<31 || v < -(1<<31) {
		return 0, fmt.Errorf("radiobcast: labeling codec: %s %d implausibly large", what, v)
	}
	return int(v), nil
}

// count reads a length field and requires the remaining input to hold at
// least minBytesPer bytes per counted element, bounding any subsequent
// allocation by the input size.
func (d *decoder) count(what string, minBytesPer int) (int, error) {
	v, err := d.varuint(what)
	if err != nil {
		return 0, err
	}
	if v*minBytesPer > len(d.buf) {
		return 0, fmt.Errorf("radiobcast: labeling codec: %s %d exceeds remaining input", what, v)
	}
	return v, nil
}

func (d *decoder) str(what string) (string, error) {
	k, err := d.count(what, 1)
	if err != nil {
		return "", err
	}
	s := string(d.buf[:k])
	d.buf = d.buf[k:]
	return s, nil
}

func (d *decoder) nodeList(what string, n int) ([]int, error) {
	k, err := d.count(what, 1)
	if err != nil {
		return nil, err
	}
	out := make([]int, k)
	for i := range out {
		v, err := d.varuint(what + " node")
		if err != nil {
			return nil, err
		}
		if v >= n {
			return nil, fmt.Errorf("radiobcast: labeling codec: %s node %d out of range [0,%d)", what, v, n)
		}
		out[i] = v
	}
	return out, nil
}
