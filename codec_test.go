// Tests for the labeling wire format: cross-process round-trips must be
// bit-identical for every registered scheme, the encoding is canonical,
// and corrupt or truncated blobs fail with errors — never panics.
package radiobcast_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"radiobcast"
)

// codecMatrix pairs every registered scheme with a family it labels.
var codecMatrix = map[string]struct {
	family string
	n      int
}{
	"b":           {"grid", 16},
	"back":        {"grid", 16},
	"barb":        {"cycle", 9},
	"roundrobin":  {"path", 12},
	"colorrobin":  {"grid", 16},
	"centralized": {"grid", 16},
	"flooding":    {"star", 9},
	"onebit":      {"path", 8},
	"gjp":         {"grid", 16},
}

// TestLabelingCodecRoundTripAllSchemes pins the acceptance criterion: a
// labeling marshaled in one process and unmarshaled in another produces a
// bit-identical Outcome for the same options, for every registered
// scheme, and still passes Verify.
func TestLabelingCodecRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range radiobcast.SchemeNames() {
		pick, ok := codecMatrix[scheme]
		if !ok {
			if scheme == "hook-b" {
				continue // test-only instrumentation scheme
			}
			t.Fatalf("scheme %q missing from the codec matrix — add it", scheme)
		}
		t.Run(scheme, func(t *testing.T) {
			net, err := radiobcast.Family(pick.family, pick.n)
			if err != nil {
				t.Fatal(err)
			}
			l, err := radiobcast.LabelNetwork(net, scheme)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := l.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			// "Another process": decode from bytes only — no shared
			// graph, stages or scheme structure.
			shipped := new(radiobcast.Labeling)
			if err := shipped.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			if shipped.Graph == l.Graph {
				t.Fatal("decoded labeling aliases the original graph")
			}
			if shipped.Graph.Fingerprint() != l.Graph.Fingerprint() {
				t.Fatal("decoded graph differs structurally")
			}

			want, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := radiobcast.RunLabeled(shipped, radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(want.Result, got.Result) {
				t.Fatal("shipped labeling diverged from the original run")
			}
			for name, pair := range map[string][2]any{
				"InformedRound":      {want.InformedRound, got.InformedRound},
				"AllInformed":        {want.AllInformed, got.AllInformed},
				"CompletionRound":    {want.CompletionRound, got.CompletionRound},
				"AckRound":           {want.AckRound, got.AckRound},
				"KnowsCompleteRound": {want.KnowsCompleteRound, got.KnowsCompleteRound},
				"TotalRounds":        {want.TotalRounds, got.TotalRounds},
				"T":                  {want.T, got.T},
			} {
				if !reflect.DeepEqual(pair[0], pair[1]) {
					t.Fatalf("%s differs: %v vs %v", name, pair[0], pair[1])
				}
			}
			if err := radiobcast.Verify(got); err != nil {
				t.Fatalf("shipped labeling fails Verify: %v", err)
			}

			// Canonical encoding: re-marshaling the decoded labeling
			// reproduces the exact bytes.
			blob2, err := shipped.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("re-encoding is not byte-identical")
			}
		})
	}
}

// TestLabelingCodecWriteRead covers the io.Writer/Reader transport pair.
func TestLabelingCodecWriteRead(t *testing.T) {
	net := figNet(t)
	l, err := radiobcast.LabelNetwork(net, "back")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := radiobcast.WriteLabeling(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := radiobcast.ReadLabeling(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != "back" || got.Z != l.Z || got.Graph.N() != net.Graph.N() {
		t.Fatalf("round-trip mangled the labeling: %+v", got)
	}
}

func TestLabelingCodecRejectsTruncation(t *testing.T) {
	net := figNet(t)
	l, err := radiobcast.LabelNetwork(net, "back")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i++ {
		if err := new(radiobcast.Labeling).UnmarshalBinary(blob[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", i, len(blob))
		}
	}
}

func TestLabelingCodecRejectsCorruption(t *testing.T) {
	net := figNet(t)
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The trailing CRC32 detects every single-byte corruption.
	for i := range blob {
		bad := bytes.Clone(blob)
		bad[i] ^= 0x5a
		if err := new(radiobcast.Labeling).UnmarshalBinary(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
}

func TestMarshalInvalidLabeling(t *testing.T) {
	if _, err := (&radiobcast.Labeling{}).MarshalBinary(); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("graphless labeling marshaled: %v", err)
	}
}

// FuzzLabelingCodec: decoding arbitrary bytes must never panic, and any
// blob that decodes must re-encode canonically (decode → encode → decode
// is a fixed point).
func FuzzLabelingCodec(f *testing.F) {
	for _, scheme := range []string{"b", "back", "barb", "centralized", "flooding"} {
		net, err := radiobcast.Family(codecMatrix[scheme].family, codecMatrix[scheme].n)
		if err != nil {
			f.Fatal(err)
		}
		l, err := radiobcast.LabelNetwork(net, scheme)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := l.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte("RBL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		l := new(radiobcast.Labeling)
		if err := l.UnmarshalBinary(data); err != nil {
			return // rejected, and did not panic: fine
		}
		blob, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded labeling fails to re-encode: %v", err)
		}
		l2 := new(radiobcast.Labeling)
		if err := l2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-encoded labeling fails to decode: %v", err)
		}
		blob2, err := l2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("encoding is not canonical under round-trip")
		}
	})
}
