// Tests for the context contract of the v2 API: cancellation stops a run
// within one engine round and a sweep within one cell per worker, partial
// results survive, the old non-ctx entry points are unchanged, and no
// goroutines leak — neither on cancellation nor when a streaming consumer
// walks away early.
package radiobcast_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"radiobcast"
)

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := radiobcast.RunCtx(ctx, figNet(t), "b")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("pre-cancelled run produced an outcome")
	}
}

// TestRunCtxCancelMidRunPartial pins the partial-result contract: a run
// cancelled in round r returns ctx.Err() together with the prefix through
// round r, and stops within one round.
func TestRunCtxCancelMidRunPartial(t *testing.T) {
	net, err := radiobcast.Family("grid", 400)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelRound = 4
	out, err := radiobcast.RunCtx(ctx, net, "b",
		radiobcast.WithMessage("m"),
		// The fault hook runs once per transmission, giving us a
		// deterministic mid-run trigger without touching the schedule.
		radiobcast.WithFaults(func(node, round int) bool {
			if round >= cancelRound {
				cancel()
			}
			return false
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out == nil {
		t.Fatal("cancelled run returned no partial outcome")
	}
	if !out.Result.Interrupted {
		t.Fatal("partial outcome not marked Interrupted")
	}
	// The engine checks between rounds: it may finish the round in which
	// cancel() fired, never more.
	if out.Result.Rounds < cancelRound || out.Result.Rounds > cancelRound+1 {
		t.Fatalf("stopped after round %d, want within one round of %d", out.Result.Rounds, cancelRound)
	}
	if out.AllInformed {
		t.Fatal("a 400-node broadcast cannot complete in 5 rounds; partial accounting is wrong")
	}
}

func TestRunLabeledCtxDeadline(t *testing.T) {
	net, err := radiobcast.Family("grid", 400)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	out, err := radiobcast.RunLabeledCtx(ctx, l, radiobcast.WithMessage("m"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// An already-expired deadline is caught at entry, before any work —
	// consistent with RunCtx: no outcome, just the ctx error.
	if out != nil {
		t.Fatalf("pre-expired deadline produced an outcome: %+v", out)
	}
}

// TestSweepCancellationWithinOneCell pins the streaming-sweep contract of
// the issue: cancelling mid-grid stops dispatch within one cell per
// worker, every finished cell is still yielded, the iterator yields
// ctx.Err() last, and the worker goroutines drain without leaking. Cell
// starts are counted inside the scheme itself (via hook-b), so the
// assertion is immune to consumer-side yield lag.
func TestSweepCancellationWithinOneCell(t *testing.T) {
	before := runtime.NumGoroutine()
	const workers, cancelAfter, repeats = 2, 3, 60
	hookB.reset()
	defer hookB.reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := func() {
		if hookB.runs.Load() >= cancelAfter {
			cancel()
		}
	}
	hookB.onRun.Store(&trigger)
	spec := radiobcast.SweepSpec{
		Families: []string{"path"},
		Sizes:    []int{64},
		Schemes:  []string{"hook-b"},
		Repeats:  repeats,
		Workers:  workers,
	}
	sess := radiobcast.NewSession()
	var cells int
	var finalErr error
	sawErrLast := true
	for res, err := range sess.Sweep(ctx, spec) {
		if err != nil {
			finalErr = err
			continue
		}
		if finalErr != nil {
			sawErrLast = false // a cell arrived after the error yield
		}
		if res.Err != nil {
			// A cell overtaken by the cancel reports ctx's error — with
			// the partial prefix if its run had started, without one if
			// it was caught at entry. Any other failure is a real bug.
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("%s: %v", res.Cell, res.Err)
			}
		}
		cells++
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final yield err = %v, want context.Canceled", finalErr)
	}
	if !sawErrLast {
		t.Fatal("iterator yielded cells after the context error")
	}
	// Every dispatched cell is yielded exactly once (cancellation keeps
	// draining), so the yield count is the number of cells dispatched:
	// the cancelAfter that ran before the trigger fired, at most one in
	// flight per worker, plus at most one index racing the dispatcher's
	// cancellation check. The scheme-run counter can only trail it (a
	// dispatched cell may be caught at its entry ctx check).
	if cells > cancelAfter+workers+1 {
		t.Fatalf("%d cells dispatched, want ≤ %d (cancellation must stop dispatch within one cell)",
			cells, cancelAfter+workers+1)
	}
	if started := int(hookB.runs.Load()); started > cells {
		t.Fatalf("%d scheme runs for %d dispatched cells", started, cells)
	}
	waitForGoroutines(t, before)
}

// TestSweepEarlyBreakLeaksNothing: a consumer abandoning the stream stops
// the pool; workers park pending results in the buffered channel and exit.
func TestSweepEarlyBreakLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	sess := radiobcast.NewSession()
	spec := radiobcast.SweepSpec{
		Families: []string{"path"},
		Sizes:    []int{16},
		Schemes:  []string{"b"},
		Repeats:  100,
		Workers:  4,
	}
	for res, err := range sess.Sweep(context.Background(), spec) {
		if err != nil {
			t.Fatal(err)
		}
		if res.Index >= 0 {
			break // walk away after the first cell
		}
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines is the counted-worker leak check: the goroutine count
// must return to (near) its pre-test level once in-flight cells drain.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after drain window", before, runtime.NumGoroutine())
}

// TestRunSweepCtxPartialGridOrder: the collecting wrapper returns every
// cell finished before the cut-off, in grid order, plus ctx.Err().
func TestRunSweepCtxPartialGridOrder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed atomic.Int64
	spec := radiobcast.SweepSpec{
		Families: []string{"grid"},
		Sizes:    []int{2500},
		Schemes:  []string{"b"},
		Repeats:  60,
		Workers:  2,
		// The dense engine keeps each cell slow enough that the sweep
		// cannot finish all 60 before the cancellation propagates; the
		// bitset core is fast enough to beat the cancel otherwise.
		DenseEngine: true,
		OnCell: func(radiobcast.CellResult) {
			if streamed.Add(1) == 5 {
				cancel()
			}
		},
	}
	results, err := radiobcast.RunSweepCtx(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) < 5 || len(results) >= 60 {
		t.Fatalf("partial sweep returned %d cells", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Index >= results[i].Index {
			t.Fatalf("partial results not in grid order at %d", i)
		}
	}
}

// TestNonCtxEntryPointsUnchanged: the v1 signatures still work and cannot
// be cancelled.
func TestNonCtxEntryPointsUnchanged(t *testing.T) {
	net := figNet(t)
	out, err := radiobcast.Run(net, "b", radiobcast.WithMessage("m"))
	if err != nil || !out.AllInformed {
		t.Fatalf("v1 Run broken: %v", err)
	}
	if out.Result.Interrupted {
		t.Fatal("uncancellable run marked Interrupted")
	}
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m")); err != nil {
		t.Fatalf("v1 RunLabeled broken: %v", err)
	}
}
