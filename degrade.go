package radiobcast

import "sort"

// Degradation is the graded classification of a broadcast's delivery
// coverage. A clean run of a correct scheme is DegradedNone; under faults
// the classification says how gracefully the scheme gave way — the
// robustness measure a binary AllInformed cannot express.
type Degradation string

const (
	// DegradedNone: every node was informed.
	DegradedNone Degradation = "none"
	// DegradedMinor: at least 90% of the nodes were informed.
	DegradedMinor Degradation = "minor"
	// DegradedMajor: at least half of the nodes were informed.
	DegradedMajor Degradation = "major"
	// DegradedSevere: fewer than half were informed, but µ left the source.
	DegradedSevere Degradation = "severe"
	// DegradedTotal: only the source knows µ — nothing was delivered.
	DegradedTotal Degradation = "total"
)

// degradation computes an outcome's coverage and its classification.
// Informed means the source itself or any node with a recorded informed
// round.
func degradation(out *Outcome) (float64, Degradation) {
	n := out.Graph.N()
	if n == 0 {
		return 1, DegradedNone
	}
	informed := 0
	for v, r := range out.InformedRound {
		if v == out.Source || r > 0 {
			informed++
		}
	}
	if out.InformedRound == nil {
		informed = 1 // the source always knows µ
	}
	cov := float64(informed) / float64(n)
	switch {
	case informed == n:
		return cov, DegradedNone
	case informed*10 >= n*9:
		return cov, DegradedMinor
	case informed*2 >= n:
		return cov, DegradedMajor
	case informed > 1:
		return cov, DegradedSevere
	default:
		return cov, DegradedTotal
	}
}

// RoundsToCoverage returns the earliest round by which at least frac of
// the nodes were informed (the source counts as informed from round 0).
// The second result is false when the run never reached that coverage.
// RoundsToCoverage(1) is CompletionRound for a complete broadcast.
func (o *Outcome) RoundsToCoverage(frac float64) (int, bool) {
	n := o.Graph.N()
	if n == 0 || frac <= 0 {
		return 0, true
	}
	need := int(frac * float64(n))
	if float64(need) < frac*float64(n) {
		need++ // ceil without float drift for exact fractions
	}
	if need <= 0 {
		return 0, true
	}
	rounds := make([]int, 0, n)
	for v, r := range o.InformedRound {
		switch {
		case v == o.Source:
			rounds = append(rounds, 0)
		case r > 0:
			rounds = append(rounds, r)
		}
	}
	if len(rounds) < need {
		return 0, false
	}
	sort.Ints(rounds)
	return rounds[need-1], true
}
