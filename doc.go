// Package radiobcast is a from-scratch Go reproduction of
//
//	Faith Ellen, Barun Gorain, Avery Miller, Andrzej Pelc.
//	"Constant-Length Labeling Schemes for Deterministic Radio Broadcast."
//	SPAA 2019 (arXiv:1710.03178).
//
// The library lives under internal/ (see README.md for the architecture and
// DESIGN.md for the system inventory):
//
//   - internal/graph, internal/nodeset: the network substrate;
//   - internal/radio: the synchronous radio model of §1.1 with sequential
//     and parallel engines;
//   - internal/domset: minimal dominating subsets (§2.1 step 4);
//   - internal/core: the stage construction, the labeling schemes λ, λack,
//     λarb and the universal algorithms B, Back, Barb;
//   - internal/baseline: round-robin, colour-robin, centralized scheduling
//     and delayed flooding;
//   - internal/onebit: the verified one-bit schemes of §5;
//   - internal/anonymity: the four-cycle impossibility as executable checks;
//   - internal/experiments: the table/figure regeneration harness.
//
// The root-level bench_test.go exposes one benchmark per experiment; run
//
//	go test -bench=. -benchmem
//
// to exercise the full harness, or use cmd/experiments to regenerate
// EXPERIMENTS.md's tables.
package radiobcast
