// Package radiobcast is a from-scratch Go reproduction of
//
//	Faith Ellen, Barun Gorain, Avery Miller, Andrzej Pelc.
//	"Constant-Length Labeling Schemes for Deterministic Radio Broadcast."
//	SPAA 2019 (arXiv:1710.03178).
//
// The root package is the public facade (see README.md for a full guide
// and DESIGN.md for the system inventory): every algorithm in the
// repository — the paper's λ/λack/λarb schemes, the verified one-bit
// schemes of §5, and the four comparison baselines — implements the one
// Scheme interface (label a graph, emit per-node protocols, run, verify)
// and registers itself by name. A full run is one call:
//
//	net, _ := radiobcast.Family("grid", 64)
//	out, _ := radiobcast.RunCtx(ctx, net, "barb", radiobcast.WithWorkers(-1))
//	err := radiobcast.Verify(out)
//
// Serving workloads go through a Session, which caches labelings by
// graph structure and pools simulation engines, so the steady state of
// the paper's label-once/run-many regime neither relabels nor
// reallocates:
//
//	sess := radiobcast.NewSession()
//	out, _ := sess.Run(ctx, net, "b", radiobcast.WithMessage("µ"))
//	for cell, err := range sess.Sweep(ctx, spec) { ... }
//
// Every run is cancellable: the engine checks ctx between rounds and a
// cancelled run returns its partial Outcome together with ctx.Err().
// Setup failures are typed — match errors.Is against ErrUnknownScheme,
// ErrNodeOutOfRange, ErrNilNetwork, ErrLabelingMismatch. Labelings are
// durable artifacts: MarshalBinary/UnmarshalBinary (and WriteLabeling/
// ReadLabeling) give them a versioned wire format that reruns
// bit-identically in another process.
//
// Label once and broadcast many times with LabelNetwork + RunLabeled
// (ctx variants: LabelNetworkCtx, RunLabeledCtx; the context-free names
// are kept as context.Background() wrappers); tune runs with functional
// options (WithWorkers, WithMaxRounds, WithTrace, WithSim,
// WithDenseEngine, WithScalarEngine, WithQuick, WithSource, …);
// enumerate algorithms with Schemes and plug in new ones with Register.
//
// Adversarial channels are declared as a FaultSpec — an i.i.d. jamming
// rate, a budgeted (optionally greedy) jammer, crash–recovery,
// duty-cycling, topology churn, or a composition — and injected with
// WithFaultSpec. A faulted run is graded, not failed: Outcome.Coverage,
// Outcome.Degraded and Outcome.RoundsToCoverage quantify partial
// delivery. Every model is deterministic in (spec, seed) and
// bit-identical across all engine modes.
//
// RunSweep executes a whole families × sizes × schemes × sources ×
// faults × repeats grid as one batched job on a worker pool that shares
// frozen graphs and labelings across cells; the fault axis is the
// FaultRates entries followed by the Faults specs, each spec's seed
// folded with the repeat index so the grid is reproducible. Cells that
// share a graph fold automatically into lockstep batches (radio.RunBatch)
// so the topology is read once per round for the whole batch.
//
// The machinery lives under internal/:
//
//   - internal/graph, internal/nodeset: the network substrate, with a
//     frozen CSR form (Graph.Freeze) iterated by every hot path;
//   - internal/radio: the synchronous radio model of §1.1 — one reusable
//     engine whose sequential sparse mode runs on a bit-packed
//     word-parallel core with lockstep same-graph batches (RunBatch),
//     plus scalar, dense and parallel modes, all bit-identical;
//   - internal/faults: the composable fault-model contract behind
//     FaultSpec (jam/crash/duty/churn, seeded and deterministic);
//   - internal/domset: minimal dominating subsets (§2.1 step 4);
//   - internal/core: the stage construction, the labeling schemes λ, λack,
//     λarb and the universal algorithms B, Back, Barb;
//   - internal/baseline: round-robin, colour-robin, centralized scheduling
//     and delayed flooding;
//   - internal/onebit: the verified one-bit schemes of §5;
//   - internal/anonymity: the four-cycle impossibility as executable checks;
//   - internal/experiments: the table/figure regeneration harness.
//
// The root-level bench_test.go exposes one benchmark per experiment; run
//
//	go test -bench=. -benchmem
//
// to exercise the full harness, or use cmd/experiments to regenerate
// EXPERIMENTS.md's tables.
package radiobcast
