package radiobcast

import (
	"errors"
	"fmt"
)

// Sentinel errors for every impossible-setup failure the facade can
// report. All facade entry points wrap these, so callers branch with
// errors.Is regardless of the message text:
//
//	if errors.Is(err, radiobcast.ErrUnknownScheme) { ... }
//
// The structured types below (UnknownSchemeError, NodeOutOfRangeError,
// LabelingMismatchError) carry the offending values for errors.As.
// Cancellation is NOT one of these: a cancelled run returns the ctx's own
// error (context.Canceled / context.DeadlineExceeded) alongside partial
// results.
var (
	// ErrUnknownScheme reports a scheme name absent from the registry.
	ErrUnknownScheme = errors.New("unknown scheme")
	// ErrNodeOutOfRange reports a source or coordinator outside [0, n).
	ErrNodeOutOfRange = errors.New("node out of range")
	// ErrNilNetwork reports a nil *Network or a Network with a nil Graph.
	ErrNilNetwork = errors.New("nil network")
	// ErrLabelingMismatch reports a Labeling unusable for the requested
	// run: nil, missing its graph, or a decoded wire format whose contents
	// contradict themselves.
	ErrLabelingMismatch = errors.New("labeling mismatch")
	// ErrSessionClosed reports an operation on a Session after Close: the
	// session is draining (or drained) and accepts no new work.
	ErrSessionClosed = errors.New("session closed")
	// ErrBadFaultSpec reports an unusable fault-model description: an
	// unknown model name, a NaN or out-of-range rate, or a malformed
	// schedule. Faults never fail silently — a spec either materializes or
	// the run refuses to start.
	ErrBadFaultSpec = errors.New("bad fault spec")
)

// errorCodes maps every sentinel above to its stable machine-readable
// code. The codes are API: they travel in the daemon's JSON error bodies
// and must never change meaning once published, so new sentinels get new
// codes and TestErrorCodeExhaustive pins that this table covers every
// Err* variable in this file.
var errorCodes = []struct {
	err  error
	code string
}{
	{ErrUnknownScheme, "unknown_scheme"},
	{ErrNodeOutOfRange, "node_out_of_range"},
	{ErrNilNetwork, "nil_network"},
	{ErrLabelingMismatch, "labeling_mismatch"},
	{ErrSessionClosed, "session_closed"},
	{ErrBadFaultSpec, "bad_fault_spec"},
}

// ErrorCode maps err to the stable machine-readable code of the facade
// sentinel it wraps ("unknown_scheme", "node_out_of_range", "nil_network",
// "labeling_mismatch", "session_closed", "bad_fault_spec"). The second
// result is false when
// err wraps none of the sentinels — cancellation, I/O and other
// non-facade errors have no code here; network-facing callers translate
// those themselves (the daemon uses "canceled" and "internal").
func ErrorCode(err error) (string, bool) {
	for _, sc := range errorCodes {
		if errors.Is(err, sc.err) {
			return sc.code, true
		}
	}
	return "", false
}

// UnknownSchemeError is the errors.As carrier for ErrUnknownScheme.
type UnknownSchemeError struct {
	// Name is the scheme name that failed to resolve.
	Name string
	// Registered lists the names that would have resolved.
	Registered []string
}

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("radiobcast: unknown scheme %q (registered: %v)", e.Name, e.Registered)
}

func (e *UnknownSchemeError) Unwrap() error { return ErrUnknownScheme }

// unknownScheme builds the canonical unknown-scheme error.
func unknownScheme(name string) error {
	return &UnknownSchemeError{Name: name, Registered: SchemeNames()}
}

// NodeOutOfRangeError is the errors.As carrier for ErrNodeOutOfRange.
type NodeOutOfRangeError struct {
	// Role says which knob was out of range ("source", "coordinator").
	Role string
	// Node is the offending node id; N is the graph's node count.
	Node, N int
}

func (e *NodeOutOfRangeError) Error() string {
	return fmt.Sprintf("radiobcast: %s %d out of range [0,%d)", e.Role, e.Node, e.N)
}

func (e *NodeOutOfRangeError) Unwrap() error { return ErrNodeOutOfRange }

// LabelingMismatchError is the errors.As carrier for ErrLabelingMismatch.
type LabelingMismatchError struct {
	// Reason describes the mismatch.
	Reason string
}

func (e *LabelingMismatchError) Error() string {
	return "radiobcast: labeling mismatch: " + e.Reason
}

func (e *LabelingMismatchError) Unwrap() error { return ErrLabelingMismatch }

func labelingMismatch(format string, args ...any) error {
	return &LabelingMismatchError{Reason: fmt.Sprintf(format, args...)}
}

func nilNetwork() error {
	return fmt.Errorf("radiobcast: %w", ErrNilNetwork)
}

// BadFaultSpecError is the errors.As carrier for ErrBadFaultSpec.
type BadFaultSpecError struct {
	// Reason describes what made the spec unusable.
	Reason string
}

func (e *BadFaultSpecError) Error() string {
	return "radiobcast: bad fault spec: " + e.Reason
}

func (e *BadFaultSpecError) Unwrap() error { return ErrBadFaultSpec }

func badFaultSpec(format string, args ...any) error {
	return &BadFaultSpecError{Reason: fmt.Sprintf(format, args...)}
}
