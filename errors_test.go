// Tests for the facade's typed error contract: every impossible-setup
// failure is matchable with errors.Is against the package sentinels and
// carries its specifics for errors.As.
package radiobcast_test

import (
	"errors"
	"testing"

	"radiobcast"
)

func figNet(t *testing.T) *radiobcast.Network {
	t.Helper()
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestErrNilNetwork(t *testing.T) {
	for name, call := range map[string]func() error{
		"Run":          func() error { _, err := radiobcast.Run(nil, "b"); return err },
		"LabelNetwork": func() error { _, err := radiobcast.LabelNetwork(nil, "b"); return err },
		"nil graph":    func() error { _, err := radiobcast.Run(&radiobcast.Network{}, "b"); return err },
	} {
		if err := call(); !errors.Is(err, radiobcast.ErrNilNetwork) {
			t.Fatalf("%s: err = %v, want ErrNilNetwork", name, err)
		}
	}
}

func TestErrUnknownScheme(t *testing.T) {
	net := figNet(t)
	_, err := radiobcast.Run(net, "no-such-scheme")
	if !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	var us *radiobcast.UnknownSchemeError
	if !errors.As(err, &us) || us.Name != "no-such-scheme" || len(us.Registered) == 0 {
		t.Fatalf("errors.As carrier = %+v", us)
	}
	if _, err := radiobcast.LabelNetwork(net, "nope"); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("LabelNetwork err = %v, want ErrUnknownScheme", err)
	}
	if err := radiobcast.Verify(&radiobcast.Outcome{Scheme: "nope"}); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("Verify err = %v, want ErrUnknownScheme", err)
	}
	if _, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"nope"},
	}); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("RunSweep err = %v, want ErrUnknownScheme", err)
	}
}

func TestErrNodeOutOfRange(t *testing.T) {
	net := figNet(t)
	_, err := radiobcast.Run(net, "b", radiobcast.WithSource(99))
	if !errors.Is(err, radiobcast.ErrNodeOutOfRange) {
		t.Fatalf("err = %v, want ErrNodeOutOfRange", err)
	}
	var oor *radiobcast.NodeOutOfRangeError
	if !errors.As(err, &oor) || oor.Role != "source" || oor.Node != 99 || oor.N != 16 {
		t.Fatalf("errors.As carrier = %+v", oor)
	}
	_, err = radiobcast.Run(net, "barb", radiobcast.WithCoordinator(-3))
	if !errors.As(err, &oor) || oor.Role != "coordinator" {
		t.Fatalf("coordinator err = %v", err)
	}
}

// TestErrLabelingMismatch pins the satellite fix: RunLabeled rejects nil
// or graphless labelings with a typed error instead of panicking
// downstream.
func TestErrLabelingMismatch(t *testing.T) {
	if _, err := radiobcast.RunLabeled(nil); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("nil labeling: err = %v, want ErrLabelingMismatch", err)
	}
	if _, err := radiobcast.RunLabeled(&radiobcast.Labeling{Scheme: "b"}); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("graphless labeling: err = %v, want ErrLabelingMismatch", err)
	}
	net := figNet(t)
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	bad := *l
	bad.Labels = bad.Labels[:3] // wrong cardinality
	_, err = radiobcast.RunLabeled(&bad)
	if !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("mis-sized labels: err = %v, want ErrLabelingMismatch", err)
	}
	var lm *radiobcast.LabelingMismatchError
	if !errors.As(err, &lm) || lm.Reason == "" {
		t.Fatalf("errors.As carrier = %+v", lm)
	}
	// A labeling with neither labels nor a schedule cannot drive any
	// protocol — e.g. a wire blob whose flags were legitimately empty.
	empty := &radiobcast.Labeling{Scheme: "b", Graph: net.Graph}
	if _, err := radiobcast.RunLabeled(empty); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("label-free labeling: err = %v, want ErrLabelingMismatch", err)
	}
	// The cross case: a schedule-only labeling stamped with a label
	// scheme's name must error, not panic in the engine.
	cross := &radiobcast.Labeling{Scheme: "b", Graph: net.Graph, Schedule: [][]int{{0}}}
	if _, err := radiobcast.RunLabeled(cross); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("schedule-only labeling under scheme b: err = %v, want ErrLabelingMismatch", err)
	}
	// A valid labeling still runs.
	if _, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m")); err != nil {
		t.Fatalf("valid labeling rejected: %v", err)
	}
}
