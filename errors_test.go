// Tests for the facade's typed error contract: every impossible-setup
// failure is matchable with errors.Is against the package sentinels and
// carries its specifics for errors.As.
package radiobcast_test

import (
	"context"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"radiobcast"
)

func figNet(t *testing.T) *radiobcast.Network {
	t.Helper()
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestErrNilNetwork(t *testing.T) {
	for name, call := range map[string]func() error{
		"Run":          func() error { _, err := radiobcast.Run(nil, "b"); return err },
		"LabelNetwork": func() error { _, err := radiobcast.LabelNetwork(nil, "b"); return err },
		"nil graph":    func() error { _, err := radiobcast.Run(&radiobcast.Network{}, "b"); return err },
	} {
		if err := call(); !errors.Is(err, radiobcast.ErrNilNetwork) {
			t.Fatalf("%s: err = %v, want ErrNilNetwork", name, err)
		}
	}
}

func TestErrUnknownScheme(t *testing.T) {
	net := figNet(t)
	_, err := radiobcast.Run(net, "no-such-scheme")
	if !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	var us *radiobcast.UnknownSchemeError
	if !errors.As(err, &us) || us.Name != "no-such-scheme" || len(us.Registered) == 0 {
		t.Fatalf("errors.As carrier = %+v", us)
	}
	if _, err := radiobcast.LabelNetwork(net, "nope"); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("LabelNetwork err = %v, want ErrUnknownScheme", err)
	}
	if err := radiobcast.Verify(&radiobcast.Outcome{Scheme: "nope"}); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("Verify err = %v, want ErrUnknownScheme", err)
	}
	if _, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"nope"},
	}); !errors.Is(err, radiobcast.ErrUnknownScheme) {
		t.Fatalf("RunSweep err = %v, want ErrUnknownScheme", err)
	}
}

func TestErrNodeOutOfRange(t *testing.T) {
	net := figNet(t)
	_, err := radiobcast.Run(net, "b", radiobcast.WithSource(99))
	if !errors.Is(err, radiobcast.ErrNodeOutOfRange) {
		t.Fatalf("err = %v, want ErrNodeOutOfRange", err)
	}
	var oor *radiobcast.NodeOutOfRangeError
	if !errors.As(err, &oor) || oor.Role != "source" || oor.Node != 99 || oor.N != 16 {
		t.Fatalf("errors.As carrier = %+v", oor)
	}
	_, err = radiobcast.Run(net, "barb", radiobcast.WithCoordinator(-3))
	if !errors.As(err, &oor) || oor.Role != "coordinator" {
		t.Fatalf("coordinator err = %v", err)
	}
}

// TestErrLabelingMismatch pins the satellite fix: RunLabeled rejects nil
// or graphless labelings with a typed error instead of panicking
// downstream.
func TestErrLabelingMismatch(t *testing.T) {
	if _, err := radiobcast.RunLabeled(nil); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("nil labeling: err = %v, want ErrLabelingMismatch", err)
	}
	if _, err := radiobcast.RunLabeled(&radiobcast.Labeling{Scheme: "b"}); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("graphless labeling: err = %v, want ErrLabelingMismatch", err)
	}
	net := figNet(t)
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	bad := *l
	bad.Labels = bad.Labels[:3] // wrong cardinality
	_, err = radiobcast.RunLabeled(&bad)
	if !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("mis-sized labels: err = %v, want ErrLabelingMismatch", err)
	}
	var lm *radiobcast.LabelingMismatchError
	if !errors.As(err, &lm) || lm.Reason == "" {
		t.Fatalf("errors.As carrier = %+v", lm)
	}
	// A labeling with neither labels nor a schedule cannot drive any
	// protocol — e.g. a wire blob whose flags were legitimately empty.
	empty := &radiobcast.Labeling{Scheme: "b", Graph: net.Graph}
	if _, err := radiobcast.RunLabeled(empty); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("label-free labeling: err = %v, want ErrLabelingMismatch", err)
	}
	// The cross case: a schedule-only labeling stamped with a label
	// scheme's name must error, not panic in the engine.
	cross := &radiobcast.Labeling{Scheme: "b", Graph: net.Graph, Schedule: [][]int{{0}}}
	if _, err := radiobcast.RunLabeled(cross); !errors.Is(err, radiobcast.ErrLabelingMismatch) {
		t.Fatalf("schedule-only labeling under scheme b: err = %v, want ErrLabelingMismatch", err)
	}
	// A valid labeling still runs.
	if _, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m")); err != nil {
		t.Fatalf("valid labeling rejected: %v", err)
	}
}

// sentinelCodes is the expected sentinel → code table, maintained by hand
// and checked for completeness against errors.go itself below. The code
// strings are wire API (the daemon's JSON error bodies); changing one
// breaks deployed clients, so these literals are deliberately duplicated
// from errors.go rather than referenced.
var sentinelCodes = map[string]struct {
	err  error
	code string
}{
	"ErrUnknownScheme":    {radiobcast.ErrUnknownScheme, "unknown_scheme"},
	"ErrNodeOutOfRange":   {radiobcast.ErrNodeOutOfRange, "node_out_of_range"},
	"ErrNilNetwork":       {radiobcast.ErrNilNetwork, "nil_network"},
	"ErrLabelingMismatch": {radiobcast.ErrLabelingMismatch, "labeling_mismatch"},
	"ErrSessionClosed":    {radiobcast.ErrSessionClosed, "session_closed"},
	"ErrBadFaultSpec":     {radiobcast.ErrBadFaultSpec, "bad_fault_spec"},
}

// TestErrorCode checks the mapping itself: every sentinel (and anything
// wrapping it) resolves to its code, the codes are pairwise distinct, and
// non-facade errors resolve to nothing.
func TestErrorCode(t *testing.T) {
	seen := map[string]string{}
	for name, sc := range sentinelCodes {
		code, ok := radiobcast.ErrorCode(sc.err)
		if !ok || code != sc.code {
			t.Errorf("ErrorCode(%s) = %q, %v; want %q, true", name, code, ok, sc.code)
		}
		// Wrapped sentinels (how they actually escape the facade) map too.
		code, ok = radiobcast.ErrorCode(fmt.Errorf("context: %w", sc.err))
		if !ok || code != sc.code {
			t.Errorf("ErrorCode(wrapped %s) = %q, %v; want %q, true", name, code, ok, sc.code)
		}
		if prev, dup := seen[sc.code]; dup {
			t.Errorf("code %q assigned to both %s and %s", sc.code, prev, name)
		}
		seen[sc.code] = name
	}
	for _, bad := range []error{nil, errors.New("unrelated"), context.Canceled} {
		if code, ok := radiobcast.ErrorCode(bad); ok {
			t.Errorf("ErrorCode(%v) = %q, true; want no code", bad, code)
		}
	}
}

// TestErrorCodeExhaustive parses errors.go and asserts that every
// exported Err* sentinel declared there appears in sentinelCodes — so a
// future sentinel added without a stable code (or without extending this
// test) fails here instead of making the daemon invent an ad-hoc code at
// serving time.
func TestErrorCodeExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "errors.go", nil, 0)
	if err != nil {
		t.Fatalf("parse errors.go: %v", err)
	}
	var declared []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Err") && ast.IsExported(name.Name) {
					declared = append(declared, name.Name)
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Err* sentinels in errors.go — did the file move?")
	}
	for _, name := range declared {
		if _, ok := sentinelCodes[name]; !ok {
			t.Errorf("sentinel %s declared in errors.go has no entry in sentinelCodes (add a stable code and test it)", name)
		}
	}
	if len(declared) != len(sentinelCodes) {
		t.Errorf("errors.go declares %d sentinels %v, test table has %d — keep them in sync", len(declared), declared, len(sentinelCodes))
	}
}

// TestErrSessionClosed pins the drain contract: a closed session rejects
// every entry point with the sentinel, and Close waits for in-flight work.
func TestErrSessionClosed(t *testing.T) {
	net := figNet(t)
	sess := radiobcast.NewSession()
	l, err := sess.Label(context.Background(), net, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sess.Run(context.Background(), net, "b"); !errors.Is(err, radiobcast.ErrSessionClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Label(context.Background(), net, "b"); !errors.Is(err, radiobcast.ErrSessionClosed) {
		t.Fatalf("Label after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.RunLabeled(context.Background(), l); !errors.Is(err, radiobcast.ErrSessionClosed) {
		t.Fatalf("RunLabeled after Close: err = %v, want ErrSessionClosed", err)
	}
	for _, sweepErr := range collectSweepErrs(sess) {
		if !errors.Is(sweepErr, radiobcast.ErrSessionClosed) {
			t.Fatalf("Sweep after Close: err = %v, want ErrSessionClosed", sweepErr)
		}
	}
	// Closing again is safe.
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func collectSweepErrs(sess *radiobcast.Session) []error {
	var errs []error
	spec := radiobcast.SweepSpec{Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"}}
	for _, err := range sess.Sweep(context.Background(), spec) {
		errs = append(errs, err)
	}
	return errs
}
