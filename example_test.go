package radiobcast_test

import (
	"context"
	"fmt"

	"radiobcast"
)

// ExampleRun labels a network with the paper's λ scheme and broadcasts
// once. Everything is deterministic — the labeling, the engine, and
// therefore the completion round.
func ExampleRun() {
	net, err := radiobcast.Family("path", 8)
	if err != nil {
		panic(err)
	}
	out, err := radiobcast.Run(net, "b", radiobcast.WithMessage("µ"))
	if err != nil {
		panic(err)
	}
	fmt.Println("all informed:", out.AllInformed)
	fmt.Println("completion round:", out.CompletionRound)
	fmt.Println("verified:", radiobcast.Verify(out) == nil)
	// Output:
	// all informed: true
	// completion round: 13
	// verified: true
}

// ExampleRunLabeled is the paper's label-once/run-many regime: one
// labeling, many broadcasts, each reusing the same engine buffers.
func ExampleRunLabeled() {
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		panic(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b", radiobcast.WithMessage("µ"))
	if err != nil {
		panic(err)
	}
	sim := radiobcast.NewSim()
	for _, mu := range []string{"first", "second"} {
		out, err := radiobcast.RunLabeled(l, radiobcast.WithMessage(mu), radiobcast.WithSim(sim))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: coverage %.0f%% in %d rounds\n",
			out.Mu, 100*out.Coverage, out.CompletionRound)
	}
	// Output:
	// first: coverage 100% in 11 rounds
	// second: coverage 100% in 11 rounds
}

// ExampleSession_Sweep streams a small sweep through a Session: cells
// arrive in completion order, so the example re-sorts by Index to print
// the deterministic grid order. Same-graph cells fold into lockstep
// batches automatically.
func ExampleSession_Sweep() {
	sess := radiobcast.NewSession()
	defer sess.Close(context.Background())

	cells := make([]radiobcast.CellResult, 0, 4)
	for cell, err := range sess.Sweep(context.Background(), radiobcast.SweepSpec{
		Families: []string{"path"},
		Sizes:    []int{8},
		Schemes:  []string{"b", "back"},
		Repeats:  2,
		Mu:       "µ",
	}) {
		if err != nil {
			panic(err)
		}
		cells = append(cells, cell)
	}
	for i := range cells {
		for j := range cells {
			if cells[j].Index == i {
				c := cells[j]
				fmt.Printf("%s: round %d, verified %v\n",
					c.Cell, c.Outcome.CompletionRound, c.Verified)
			}
		}
	}
	// Output:
	// path/n=8/b/src=0: round 13, verified true
	// path/n=8/b/src=0/rep=1: round 13, verified true
	// path/n=8/back/src=0: round 13, verified true
	// path/n=8/back/src=0/rep=1: round 13, verified true
}
