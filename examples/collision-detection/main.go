// Collision detection: the paper's §1.1 remark made concrete. The same
// four-cycle where label-free deterministic broadcast is provably
// impossible becomes trivial once listeners can distinguish silence from
// noise — with NO labels at all: bits of µ travel as silent/noisy rounds.
//
//	go run ./examples/collision-detection
package main

import (
	"fmt"
	"log"

	"radiobcast"
	"radiobcast/internal/anonymity"
	"radiobcast/internal/cdetect"
)

func main() {
	fmt.Println("Part 1 — WITHOUT collision detection (the impossibility)")
	fmt.Println("four-cycle, all nodes identical, 500 pseudorandom deterministic programs:")
	informed := 0
	for seed := uint64(0); seed < 500; seed++ {
		out := anonymity.RunFourCycle(anonymity.PseudorandomProgram(seed), 300)
		if out.AntipodeInformed != 0 {
			informed++
		}
	}
	fmt.Printf("  programs that informed the antipodal node: %d / 500\n", informed)
	fmt.Println("  (the source's two neighbours always act identically, so the")
	fmt.Println("   antipode hears only collisions — exactly the paper's argument)")

	fmt.Println("\nPart 2 — WITH collision detection (anonymous beep pipeline)")
	mu := "around the ring"
	ring, err := radiobcast.Family("cycle", 4)
	if err != nil {
		log.Fatal(err)
	}
	g := ring.Graph
	out, err := cdetect.Run(g, 0, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  message %q = %d encoded bits\n", mu, out.BitsSent)
	for v := 1; v < g.N(); v++ {
		fmt.Printf("  node %d (distance %d) decoded µ in round %d\n",
			v, g.BFS(0)[v], out.DoneRound[v])
	}
	fmt.Println("  bit k reaches distance class d in round 3k+d; a collision still")
	fmt.Println("  reads as \"noise\" = 1, so simultaneous relays are constructive.")

	fmt.Println("\nPart 3 — the same pipeline on a larger network")
	bigNet, err := radiobcast.Family("grid", 64)
	if err != nil {
		log.Fatal(err)
	}
	big := bigNet.Graph
	out2, err := cdetect.Run(big, 0, mu)
	if err != nil {
		log.Fatal(err)
	}
	last := 0
	for _, d := range out2.DoneRound {
		if d > last {
			last = d
		}
	}
	fmt.Printf("  8x8 grid: all %d nodes decoded by round %d = 3(L−1)+ecc = 3·%d+%d\n",
		big.N(), last, out2.BitsSent-1, big.Eccentricity(0))
}
