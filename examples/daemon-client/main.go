// Daemon walkthrough: radiobcastd served in-process on a loopback port,
// driven end to end through the typed client — the full central-monitor
// loop over HTTP. Label a topology and keep the artifact, run broadcasts
// against the shared Session (the second run is a cache hit), upload the
// saved labeling to run-labeled, stream a sweep as its cells complete,
// scrape the metrics, and finally drain the daemon and watch readiness
// flip while in-flight work completes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"radiobcast/client"
	"radiobcast/internal/httpd"
)

func main() {
	// An OS-assigned loopback port so the example never collides with a
	// real deployment; production runs `radiobcastd -addr :8080` instead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := httpd.New(httpd.Config{DrainTimeout: 5 * time.Second})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	c := client.New("http://" + ln.Addr().String())
	if err := c.Ready(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon ready on", ln.Addr())

	// Label once: the artifact comes back in the binary wire format with
	// its metadata envelope.
	l, meta, err := c.Label(context.Background(), client.LabelRequest{
		Graph:  client.GraphSpec{Family: "grid", N: 64},
		Scheme: "b",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled %s n=%d: %d-bit labels, %d distinct, %d wire bytes\n",
		meta.Scheme, meta.N, meta.Bits, meta.Distinct, meta.Bytes)

	// Run twice: the daemon's Session labels the topology on the first
	// request and serves the second from its cache.
	for i := 0; i < 2; i++ {
		out, err := c.Run(context.Background(), client.RunRequest{
			Graph:  client.GraphSpec{Family: "grid", N: 64},
			Scheme: "b",
			Mu:     fmt.Sprintf("update-%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: informed all %d nodes by round %d (verified=%t)\n",
			i, out.N, out.CompletionRound, out.Verified)
	}

	// Ship the saved labeling back: run-labeled never touches the
	// labeler, exactly like handing labels to nodes in the paper.
	out, err := c.RunLabeled(context.Background(), l, client.RunLabeledParams{Mu: "from-artifact"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run-labeled: completion round %d over uploaded labeling\n", out.CompletionRound)

	// Stream a sweep: cells arrive as NDJSON in completion order.
	cells, err := c.Sweep(context.Background(), client.SweepRequest{
		Families: []string{"path", "grid"},
		Sizes:    []int{16, 64},
		Schemes:  []string{"b", "back"},
	}, func(cell client.SweepCellResult) error {
		fmt.Printf("  cell %s/n=%d/%s: completion=%d verified=%t\n",
			cell.Family, cell.Size, cell.Scheme, cell.CompletionRound, cell.Verified)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep streamed %d cells\n", cells)

	// The metrics endpoint exposes the Session cache counters the two
	// /v1/run calls just exercised.
	text, err := c.Metrics(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "radiobcastd_session_cache_hits_total") ||
			strings.HasPrefix(line, "radiobcastd_session_cache_misses_total") {
			fmt.Println(line)
		}
	}

	// Graceful drain: readiness flips to 503 while the daemon finishes
	// up, then Serve returns cleanly.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if err := c.Ready(context.Background()); err != nil {
		fmt.Println("after drain, readiness probe says:", err)
	}
	fmt.Println("daemon drained cleanly")
}
