// Figure 1: reproduce the paper's example execution of algorithm B on the
// reconstructed 13-node graph, rendering the per-node annotations in the
// figure's format ({transmit rounds} and (receive rounds)).
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"radiobcast"
	"radiobcast/internal/graph"
)

func main() {
	trace := &radiobcast.Trace{}
	out, err := radiobcast.Run(radiobcast.Figure1(), "b",
		radiobcast.WithMessage("µ"), radiobcast.WithTrace(trace))
	if err != nil {
		log.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 reconstruction — execution of algorithm B")
	fmt.Println("(odd rounds carry µ from DOM_i, even rounds carry \"stay\" from NEW_i)")
	fmt.Println()
	fmt.Print(trace.String())
	fmt.Println()
	fmt.Println("per-node annotations in the figure's format:")
	fmt.Print(radiobcast.Annotate(out))
	fmt.Println()
	fmt.Printf("stages ℓ = %d; broadcast completed in round %d = 2ℓ−3\n",
		out.Labeling.Stages.L, out.CompletionRound)
	fmt.Println()
	fmt.Println("golden comparison against the paper's printed transmit sets:")
	allMatch := true
	for v := range graph.Figure1Transmits {
		got := fmt.Sprint(out.Result.Transmits[v])
		want := fmt.Sprint(graph.Figure1Transmits[v])
		mark := "ok"
		if got != want {
			mark = "MISMATCH"
			allMatch = false
		}
		fmt.Printf("  node %2d: got %-12s want %-12s %s\n", v, got, want, mark)
	}
	if allMatch {
		fmt.Println("all transmit schedules match the figure.")
	}
}
