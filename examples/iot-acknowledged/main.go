// IoT scenario from the paper's introduction (§1.2): transmitting devices
// are already deployed in a business complex; only a central monitor knows
// their locations and ranges, hence the topology. One gateway node must
// broadcast a *sequence* of firmware chunks to all devices. The monitor
// assigns 3-bit λack labels once (radiobcast.LabelNetwork); the gateway
// then uses acknowledged broadcast (scheme "back") so that it sends chunk
// k+1 only after every device has provably received chunk k.
//
//	go run ./examples/iot-acknowledged
package main

import (
	"fmt"
	"log"

	"radiobcast"
	"radiobcast/internal/graph"
)

func main() {
	// The deployed device mesh: a random connected network of 40 devices.
	// Node 0 is the gateway.
	net := radiobcast.NewNetwork(graph.GNPConnected(40, 0.08, 2026))
	net.Name = "device mesh"

	// One-time labeling by the central monitor (3 bits per device — tiny
	// enough for the weakest device ROM).
	labeling, err := radiobcast.LabelNetwork(net, "back")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v, max degree %d\n", net, net.Graph.MaxDegree())
	fmt.Printf("labels: %d bits each, %d distinct values, ack initiator z = node %d\n",
		labeling.Bits(), labeling.Distinct(), labeling.Z)

	// Stream the firmware: each chunk is a fresh acknowledged broadcast
	// over the same labels. The gateway proceeds only on acknowledgement.
	firmware := []string{
		"chunk-0: bootloader",
		"chunk-1: radio stack",
		"chunk-2: application",
		"chunk-3: checksum table",
	}
	totalRounds := 0
	for _, chunk := range firmware {
		out, err := radiobcast.RunLabeled(labeling, radiobcast.WithMessage(chunk))
		if err != nil {
			log.Fatal(err)
		}
		if err := radiobcast.Verify(out); err != nil {
			log.Fatalf("chunk %q not acknowledged: %v", chunk, err)
		}
		totalRounds += out.AckRound
		fmt.Printf("%-24s delivered to all %d devices by round %3d, acknowledged in round %3d\n",
			chunk, net.Graph.N()-1, out.CompletionRound, out.AckRound)
	}
	fmt.Printf("\nfirmware rollout complete: %d chunks in %d total rounds\n",
		len(firmware), totalRounds)
	fmt.Println("(the gateway never sent a chunk before the previous one was acknowledged)")
}
