// Quickstart: label a small radio network with the paper's 2-bit scheme λ
// and broadcast a message with the universal algorithm B.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
)

func main() {
	// A 4×4 grid network; node 0 (a corner) is the source.
	g := graph.Grid(4, 4)
	source := 0

	// The central monitor, which knows the topology, computes the 2-bit
	// labeling scheme λ (§2.2 of the paper).
	labeling, err := core.Lambda(g, source, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("labels assigned by λ (x1 = joins the dominating set,")
	fmt.Println("x2 = sends the \"stay\" signal):")
	for v, label := range labeling.Labels {
		fmt.Printf("  node %2d: %s\n", v, label)
	}

	// Every node now runs the SAME universal deterministic algorithm B,
	// knowing only its own label. No node knows the topology or n.
	out, err := core.RunBroadcastLabeled(g, labeling, source, "hello, radio world", nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyBroadcast(out, "hello, radio world"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbroadcast completed in round %d (Theorem 2.9 bound: 2n−3 = %d)\n",
		out.CompletionRound, 2*g.N()-3)
	fmt.Println("round each node first received the message:")
	for v, r := range out.InformedRound {
		if v == source {
			fmt.Printf("  node %2d: source\n", v)
			continue
		}
		fmt.Printf("  node %2d: round %d\n", v, r)
	}
	fmt.Printf("total transmissions: %d, max message size: %d bits\n",
		out.Result.TotalTransmissions, out.Result.MaxMessageBits)
}
