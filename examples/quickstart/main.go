// Quickstart: label a small radio network with the paper's 2-bit scheme λ
// and broadcast a message with the universal algorithm B, entirely through
// the public radiobcast facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"radiobcast"
)

func main() {
	// A 4×4 grid network; node 0 (a corner) is the source.
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		log.Fatal(err)
	}

	// The central monitor, which knows the topology, computes the 2-bit
	// labeling scheme λ (§2.2 of the paper); every node then runs the
	// SAME universal deterministic algorithm B, knowing only its own
	// label. One facade call does both steps.
	out, err := radiobcast.Run(net, "b", radiobcast.WithMessage("hello, radio world"))
	if err != nil {
		log.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		log.Fatal(err)
	}

	fmt.Println("labels assigned by λ (x1 = joins the dominating set,")
	fmt.Println("x2 = sends the \"stay\" signal):")
	for v, label := range out.Labeling.Labels {
		fmt.Printf("  node %2d: %s\n", v, label)
	}

	fmt.Printf("\nbroadcast completed in round %d (Theorem 2.9 bound: 2n−3 = %d)\n",
		out.CompletionRound, 2*net.Graph.N()-3)
	fmt.Println("round each node first received the message:")
	for v, r := range out.InformedRound {
		if v == out.Source {
			fmt.Printf("  node %2d: source\n", v)
			continue
		}
		fmt.Printf("  node %2d: round %d\n", v, r)
	}
	fmt.Printf("total transmissions: %d, max message size: %d bits\n",
		out.Result.TotalTransmissions, out.Result.MaxMessageBits)
}
