// SDN scenario from the paper's introduction (§1.2): a central controller
// assigns each network device a *role* — a forwarding behaviour. The paper's
// λarb scheme needs only six roles (3-bit labels), and broadcast then works
// no matter which device originates a message: any device can be the source
// without relabeling, because the coordinator r (role "111") orchestrates
// the three-phase algorithm Barb. The facade expresses this as one
// LabelNetwork call followed by RunLabeled with different WithSource values.
//
//	go run ./examples/sdn-arbitrary-source
package main

import (
	"fmt"
	"log"

	"radiobcast"
)

func main() {
	// The data-plane topology: a 6×6 grid of switches; switch 0 is the
	// coordinator.
	net, err := radiobcast.Family("grid", 36)
	if err != nil {
		log.Fatal(err)
	}
	net.Coordinated(0)

	// The controller assigns roles once, without knowing future sources.
	labeling, err := radiobcast.LabelNetwork(net, "barb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %v; roles assigned by the controller:\n", net)
	for label, count := range labeling.Histogram() {
		fmt.Printf("  role %s: %d switches\n", label, count)
	}
	fmt.Printf("(%d distinct roles — the paper's bound is 6)\n\n", labeling.Distinct())

	// Three different switches originate alerts over the same role
	// assignment; each time, all switches learn the alert AND agree on a
	// common round from which everyone knows dissemination completed.
	alerts := map[int]string{
		35: "link-failure: sw35 port 2",
		17: "congestion: queue above threshold at sw17",
		6:  "intrusion: unexpected flow at sw6",
	}
	for _, src := range []int{35, 17, 6} {
		out, err := radiobcast.RunLabeled(labeling,
			radiobcast.WithSource(src), radiobcast.WithMessage(alerts[src]))
		if err != nil {
			log.Fatal(err)
		}
		if err := radiobcast.Verify(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("source sw%-2d: %q\n", src, alerts[src])
		fmt.Printf("  all %d switches informed; common completion-knowledge round: %d (total %d rounds)\n",
			net.Graph.N(), out.KnowsCompleteRound[0], out.TotalRounds)
	}
	fmt.Println("\nno relabeling was needed between sources — the roles are source-independent.")
}
