// Serving walkthrough for the v2 API: one Session fields a stream of
// broadcast requests over recurring topologies (the labeling cache makes
// repeat topologies label-free), a deadline bounds an oversized job (the
// run stops within one round and reports its partial prefix), and the
// labeling travels to "another process" through the wire format.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"radiobcast"
)

func main() {
	sess := radiobcast.NewSession()
	ctx := context.Background()

	// A request stream with recurring topologies: only the first request
	// per topology pays the labeling, the rest are cache hits served by a
	// pooled engine.
	for i, req := range []struct {
		family string
		n      int
	}{
		{"grid", 64}, {"path", 32}, {"grid", 64}, {"grid", 64}, {"path", 32},
	} {
		net, err := radiobcast.Family(req.family, req.n)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sess.Run(ctx, net, "b", radiobcast.WithMessage(fmt.Sprintf("update-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d: %s n=%d completed in round %d\n",
			i, req.family, out.Graph.N(), out.CompletionRound)
	}
	st := sess.Stats()
	fmt.Printf("cache after 5 requests: %d hits, %d misses, %d entries\n\n",
		st.Hits, st.Misses, st.Entries)

	// A deadline-bounded job: the engine checks the context between
	// rounds, so an oversized broadcast stops promptly and still reports
	// the prefix it executed.
	big, err := radiobcast.Family("path", 20000)
	if err != nil {
		log.Fatal(err)
	}
	bigLabeling, err := sess.Label(ctx, big, "b") // label off the critical path
	if err != nil {
		log.Fatal(err)
	}
	tight, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	out, err := sess.RunLabeled(tight, bigLabeling)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("oversized job timed out after %d rounds (partial: %d/%d nodes informed)\n\n",
			out.Result.Rounds, informed(out), out.Graph.N())
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("oversized job finished anyway in round %d\n\n", out.CompletionRound)
	}

	// The labeling as a durable artifact: marshal it here, "ship" the
	// bytes, rerun it from bytes alone — bit-identical.
	net, err := radiobcast.Family("grid", 36)
	if err != nil {
		log.Fatal(err)
	}
	l, err := sess.Label(ctx, net, "back")
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if err := radiobcast.WriteLabeling(&wire, l); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λack labeling for n=%d ships as %d bytes\n", net.Graph.N(), wire.Len())

	shipped, err := radiobcast.ReadLabeling(&wire)
	if err != nil {
		log.Fatal(err)
	}
	here, _ := sess.RunLabeled(ctx, l, radiobcast.WithMessage("m"))
	there, err := sess.RunLabeled(ctx, shipped, radiobcast.WithMessage("m"))
	if err != nil {
		log.Fatal(err)
	}
	if err := radiobcast.Verify(there); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped labeling: completion round %d here, %d there, ack round %d vs %d — identical\n",
		here.CompletionRound, there.CompletionRound, here.AckRound, there.AckRound)
}

func informed(out *radiobcast.Outcome) int {
	count := 1 // the source
	for v, r := range out.InformedRound {
		if v != out.Source && r != radiobcast.NoReception {
			count++
		}
	}
	return count
}
