// Public-API tests for the radiobcast facade: every registered scheme runs
// and verifies on a grid of graph families, and the facade provably changes
// no semantics relative to the pre-existing internal run paths.
package radiobcast_test

import (
	"reflect"
	"strings"
	"testing"

	"radiobcast"
	"radiobcast/internal/core"
	"radiobcast/internal/radio"
)

// builtins is the full set of schemes this repository ships.
var builtins = []string{"b", "back", "barb", "centralized", "colorrobin", "flooding", "gjp", "onebit", "roundrobin"}

func TestRegistryComplete(t *testing.T) {
	var got []string
	for _, name := range radiobcast.SchemeNames() {
		if name == "hook-b" {
			continue // test-only instrumentation scheme (testscheme_test.go)
		}
		got = append(got, name)
	}
	if !reflect.DeepEqual(got, builtins) {
		t.Fatalf("registered schemes = %v, want %v", got, builtins)
	}
	for _, s := range radiobcast.Schemes() {
		if s.Describe() == "" {
			t.Errorf("scheme %q has no description", s.Name())
		}
	}
	if _, ok := radiobcast.Lookup("no-such-scheme"); ok {
		t.Fatal("Lookup invented a scheme")
	}
}

// TestSchemeMatrix runs every registered scheme across a grid of graph
// families and requires Verify to pass. The flooding and onebit rows are
// restricted to families where a (trivial resp. searched) 1-bit labeling
// exists — one-bit broadcast is not universal.
func TestSchemeMatrix(t *testing.T) {
	type fam struct {
		name string
		n    int
	}
	general := []fam{{"path", 10}, {"cycle", 9}, {"grid", 16}, {"gnp-sparse", 12}, {"complete", 8}}
	matrix := map[string][]fam{
		"b":           general,
		"back":        general,
		"barb":        general,
		"roundrobin":  general,
		"colorrobin":  general,
		"centralized": general,
		"onebit":      {{"path", 8}, {"cycle", 7}, {"star", 9}, {"grid", 9}},
		"flooding":    {{"path", 8}, {"star", 9}, {"complete", 6}},
		// gjp's constructive search succeeds on every shipped family except
		// figure1 (the paper's adversarial example defeats 1-bit labels).
		"gjp": general,
	}
	for _, scheme := range builtins {
		fams, ok := matrix[scheme]
		if !ok {
			t.Fatalf("matrix is missing scheme %q", scheme)
		}
		for _, f := range fams {
			t.Run(scheme+"/"+f.name, func(t *testing.T) {
				net, err := radiobcast.Family(f.name, f.n)
				if err != nil {
					t.Fatal(err)
				}
				out, err := radiobcast.Run(net, scheme, radiobcast.WithMessage("m"))
				if err != nil {
					t.Fatal(err)
				}
				if err := radiobcast.Verify(out); err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if !out.AllInformed {
					t.Fatal("verified outcome claims incomplete broadcast")
				}
				if out.Scheme != scheme || out.Mu != "m" {
					t.Fatalf("outcome mislabeled: scheme %q mu %q", out.Scheme, out.Mu)
				}
			})
		}
	}
}

// TestGoldenCompatibilityB asserts that radiobcast.Run with scheme "b"
// produces exactly the completion rounds and per-node informed rounds of
// the pre-redesign core.RunBroadcast path, on three graph families.
func TestGoldenCompatibilityB(t *testing.T) {
	for _, f := range []struct {
		name string
		n    int
	}{{"path", 16}, {"grid", 16}, {"gnp-sparse", 20}} {
		t.Run(f.name, func(t *testing.T) {
			net, err := radiobcast.Family(f.name, f.n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.RunBroadcast(net.Graph, 0, "m", core.BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := radiobcast.Run(net, "b", radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatal(err)
			}
			if got.CompletionRound != want.CompletionRound {
				t.Fatalf("facade completion %d, internal %d", got.CompletionRound, want.CompletionRound)
			}
			if !reflect.DeepEqual(got.InformedRound, want.InformedRound) {
				t.Fatalf("facade informed rounds %v, internal %v", got.InformedRound, want.InformedRound)
			}
		})
	}
}

// TestGoldenCompatibilityBack is the same golden check for scheme "back"
// against core.RunAcknowledged, including the acknowledgement round.
func TestGoldenCompatibilityBack(t *testing.T) {
	for _, f := range []struct {
		name string
		n    int
	}{{"path", 16}, {"grid", 16}, {"gnp-sparse", 20}} {
		t.Run(f.name, func(t *testing.T) {
			net, err := radiobcast.Family(f.name, f.n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.RunAcknowledged(net.Graph, 0, "m", core.BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := radiobcast.Run(net, "back", radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatal(err)
			}
			if got.CompletionRound != want.CompletionRound || got.AckRound != want.AckRound {
				t.Fatalf("facade (completion %d, ack %d), internal (%d, %d)",
					got.CompletionRound, got.AckRound, want.CompletionRound, want.AckRound)
			}
			if !reflect.DeepEqual(got.InformedRound, want.InformedRound) {
				t.Fatalf("facade informed rounds %v, internal %v", got.InformedRound, want.InformedRound)
			}
		})
	}
}

// TestParallelMatchesSequential runs schemes through the parallel engine
// (WithWorkers(-1) = GOMAXPROCS) and requires results bit-identical to the
// sequential engine. Run under -race this also exercises the facade's
// wrapper layer (baseline observers, Stop predicates) for data races.
func TestParallelMatchesSequential(t *testing.T) {
	for _, scheme := range []string{"b", "back", "barb", "roundrobin", "colorrobin"} {
		t.Run(scheme, func(t *testing.T) {
			net, err := radiobcast.Family("grid", 64)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := radiobcast.Run(net, scheme, radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatal(err)
			}
			par, err := radiobcast.Run(net, scheme, radiobcast.WithMessage("m"), radiobcast.WithWorkers(-1))
			if err != nil {
				t.Fatal(err)
			}
			if seq.CompletionRound != par.CompletionRound {
				t.Fatalf("sequential completion %d, parallel %d", seq.CompletionRound, par.CompletionRound)
			}
			if !reflect.DeepEqual(seq.InformedRound, par.InformedRound) {
				t.Fatalf("informed rounds differ between engines:\nseq %v\npar %v", seq.InformedRound, par.InformedRound)
			}
			if seq.Result.TotalTransmissions != par.Result.TotalTransmissions {
				t.Fatalf("transmissions differ: seq %d, par %d",
					seq.Result.TotalTransmissions, par.Result.TotalTransmissions)
			}
			if err := radiobcast.Verify(par); err != nil {
				t.Fatalf("parallel Verify: %v", err)
			}
		})
	}
}

// TestRunLabeledReusesLabeling labels once with λarb and broadcasts from
// three different sources over the same labeling (the paper's point:
// λarb is source-independent).
func TestRunLabeledReusesLabeling(t *testing.T) {
	net, err := radiobcast.Family("grid", 36)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "barb")
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 17, 35} {
		out, err := radiobcast.RunLabeled(l, radiobcast.WithSource(src), radiobcast.WithMessage("alert"))
		if err != nil {
			t.Fatal(err)
		}
		if err := radiobcast.Verify(out); err != nil {
			t.Fatalf("source %d: %v", src, err)
		}
		if out.Source != src {
			t.Fatalf("outcome source %d, want %d", out.Source, src)
		}
	}
}

// TestProtocolsSurface exercises the Scheme.Protocols contract for every
// registered scheme: one fresh protocol per node, and driving them through
// the radio engine directly reproduces the facade run (checked for "b").
func TestProtocolsSurface(t *testing.T) {
	for _, s := range radiobcast.Schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			famName, n := "grid", 16
			if s.Name() == "flooding" || s.Name() == "onebit" {
				famName, n = "path", 8
			}
			net, err := radiobcast.Family(famName, n)
			if err != nil {
				t.Fatal(err)
			}
			l, err := radiobcast.LabelNetwork(net, s.Name())
			if err != nil {
				t.Fatal(err)
			}
			ps, err := s.Protocols(l, net.Source, "m")
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) != net.Graph.N() {
				t.Fatalf("%d protocols for %d nodes", len(ps), net.Graph.N())
			}
		})
	}

	// Driving scheme b's protocols through the engine by hand must match
	// the facade run exactly.
	net, _ := radiobcast.Family("grid", 16)
	b, _ := radiobcast.Lookup("b")
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := b.Protocols(l, net.Source, "m")
	if err != nil {
		t.Fatal(err)
	}
	res := radio.Run(net.Graph, ps, radio.Options{
		MaxRounds:       2*net.Graph.N() + 4,
		StopAfterSilent: 3,
	})
	out, err := radiobcast.Run(net, "b", radiobcast.WithMessage("m"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransmissions != out.Result.TotalTransmissions {
		t.Fatalf("hand-driven protocols made %d transmissions, facade %d",
			res.TotalTransmissions, out.Result.TotalTransmissions)
	}
	if !reflect.DeepEqual(res.Transmits, out.Result.Transmits) {
		t.Fatal("hand-driven transmit schedules differ from the facade run")
	}
}

// TestCentralizedSourceOverride reuses a centralized labeling from a
// different source: the scheme must recompute the schedule and the outcome
// must carry the recomputed one, so Verify judges the run against the
// schedule that actually ran.
func TestCentralizedSourceOverride(t *testing.T) {
	net, err := radiobcast.Family("path", 12)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net.At(6), "centralized")
	if err != nil {
		t.Fatal(err)
	}
	out, err := radiobcast.RunLabeled(l, radiobcast.WithSource(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		t.Fatalf("Verify rejected a recomputed-schedule run: %v", err)
	}
	if out.Labeling == l {
		t.Fatal("outcome carries the stale source-6 labeling")
	}
	if out.Labeling.Source != 0 || len(out.Labeling.Schedule) < out.CompletionRound {
		t.Fatalf("outcome labeling not recomputed: source %d, schedule %d rounds, completion %d",
			out.Labeling.Source, len(out.Labeling.Schedule), out.CompletionRound)
	}
}

// TestFaultInjection drops every transmission of the source: broadcast
// cannot start, and Verify must say so.
func TestFaultInjection(t *testing.T) {
	net, err := radiobcast.Family("path", 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := radiobcast.Run(net, "b",
		radiobcast.WithFaults(func(node, round int) bool { return node == 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if out.AllInformed {
		t.Fatal("broadcast completed despite the source being jammed")
	}
	if err := radiobcast.Verify(out); err == nil {
		t.Fatal("Verify accepted a jammed broadcast")
	}
}

// TestMaxRoundsTruncation caps the run below the completion bound and
// expects a verifiable failure, not a crash.
func TestMaxRoundsTruncation(t *testing.T) {
	net, err := radiobcast.Family("path", 12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := radiobcast.Run(net, "b", radiobcast.WithMaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.AllInformed {
		t.Fatal("12-node path informed in 2 rounds")
	}
	if err := radiobcast.Verify(out); err == nil {
		t.Fatal("Verify accepted a truncated broadcast")
	}
}

// TestTraceAndAnnotate records a trace through the facade and renders the
// Figure 1 style annotations.
func TestTraceAndAnnotate(t *testing.T) {
	tr := &radiobcast.Trace{}
	out, err := radiobcast.Run(radiobcast.Figure1(), "b", radiobcast.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		t.Fatal(err)
	}
	// The trace records active rounds only; B is silent after completion.
	if len(tr.Rounds) == 0 || len(tr.Rounds) > out.Result.Rounds {
		t.Fatalf("trace has %d rounds, result ran %d", len(tr.Rounds), out.Result.Rounds)
	}
	if last := tr.Rounds[len(tr.Rounds)-1].Round; last < out.CompletionRound-1 {
		t.Fatalf("trace ends at round %d, before completion round %d", last, out.CompletionRound)
	}
	ann := radiobcast.Annotate(out)
	if !strings.Contains(ann, "{") || !strings.Contains(ann, "(") {
		t.Fatalf("annotations missing transmit/receive sets:\n%s", ann)
	}
}

// TestErrors covers the facade's failure modes.
func TestErrors(t *testing.T) {
	if _, err := radiobcast.Family("klein-bottle", 8); err == nil {
		t.Fatal("unknown family accepted")
	}
	net, _ := radiobcast.Family("path", 4)
	if _, err := radiobcast.Run(net, "dijkstra"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := radiobcast.Run(nil, "b"); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := radiobcast.Run(net.At(99), "b"); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	net.At(0)
	if _, err := radiobcast.Run(net, "barb", radiobcast.WithCoordinator(-3)); err == nil {
		t.Fatal("out-of-range coordinator accepted")
	}
	// Onebit search must fail honestly when no 1-bit labeling exists:
	// the 4-cycle from an arbitrary node has one (found by search), but
	// a dense random graph may not — use Quick to bound the search.
	if _, err := radiobcast.Run(net, "onebit", radiobcast.WithQuick()); err != nil {
		t.Fatalf("onebit on a 4-path should find a labeling: %v", err)
	}
}

// TestLabelingAccessors exercises the public Labeling surface the CLIs
// rely on.
func TestLabelingAccessors(t *testing.T) {
	net, _ := radiobcast.Family("grid", 16)
	l, err := radiobcast.LabelNetwork(net, "back")
	if err != nil {
		t.Fatal(err)
	}
	if l.Bits() != 3 {
		t.Fatalf("λack is a 3-bit scheme, got %d bits", l.Bits())
	}
	if d := l.Distinct(); d < 2 || d > 8 {
		t.Fatalf("distinct labels = %d", d)
	}
	if l.Z < 0 {
		t.Fatal("λack labeling has no acknowledgement initiator")
	}
	if got := len(l.Strings()); got != net.Graph.N() {
		t.Fatalf("Strings() has %d entries for %d nodes", got, net.Graph.N())
	}
	hist := l.Histogram()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != net.Graph.N() {
		t.Fatalf("histogram counts %d nodes, want %d", total, net.Graph.N())
	}
}
