// Tests for the fault-injection facade: engine-mode bit-identity under
// every fault model, run-level determinism, the degradation metrics, and
// the sweep's Faults axis (labels, grid order, seed folding, Verify
// gating).
package radiobcast_test

import (
	"reflect"
	"testing"

	"radiobcast"
)

// faultMatrix covers every model of the subsystem plus a composition;
// node indices stay within the smallest graph the matrix runs on.
func faultMatrix() map[string]radiobcast.FaultSpec {
	return map[string]radiobcast.FaultSpec{
		"rate":          {Model: radiobcast.FaultModelRate, Rate: 0.3, Seed: 5},
		"jam-greedy":    {Model: radiobcast.FaultModelJam, Greedy: true, Budget: 8, Seed: 5},
		"jam-oblivious": {Model: radiobcast.FaultModelJam, Budget: 8, PerRound: 2, Seed: 5},
		"crash-lose":    {Model: radiobcast.FaultModelCrash, Rate: 0.05, Down: 3, Lose: true, Seed: 5},
		"crash-retain":  {Model: radiobcast.FaultModelCrash, Rate: 0.05, Down: 2, Seed: 5},
		"duty":          {Model: radiobcast.FaultModelDuty, Period: 4, On: 3, Seed: 5},
		"churn": {Model: radiobcast.FaultModelChurn, Events: []radiobcast.ChurnEvent{
			{Round: 2, U: 0, V: 1},
			{Round: 3, Add: true, U: 0, V: 5},
			{Round: 7, Add: true, U: 0, V: 1},
		}},
		"compose": {Compose: []radiobcast.FaultSpec{
			{Model: radiobcast.FaultModelRate, Rate: 0.1, Seed: 5},
			{Model: radiobcast.FaultModelDuty, Period: 5, On: 4, Seed: 9},
		}},
	}
}

// TestEngineModesBitIdenticalFaulted extends the engine-equivalence
// contract to the fault subsystem: under every fault model, the sparse,
// dense, sequential and parallel engines produce bit-identical raw
// Results and identical degradation metrics over one shared labeling.
// Each run materializes its own model instance from the same spec, so
// this also pins that (model, seed) fully determines the fault pattern.
func TestEngineModesBitIdenticalFaulted(t *testing.T) {
	type cfg struct {
		scheme, family string
		n              int
	}
	targets := []cfg{{"b", "grid", 16}, {"back", "gnp-sparse", 14}}
	for name, spec := range faultMatrix() {
		for _, tc := range targets {
			t.Run(name+"/"+tc.scheme+"/"+tc.family, func(t *testing.T) {
				net, err := radiobcast.Family(tc.family, tc.n)
				if err != nil {
					t.Fatal(err)
				}
				l, err := radiobcast.LabelNetwork(net, tc.scheme, radiobcast.WithMessage("m"))
				if err != nil {
					t.Fatal(err)
				}
				run := func(opts ...radiobcast.Option) *radiobcast.Outcome {
					t.Helper()
					out, err := radiobcast.RunLabeled(l, append(opts,
						radiobcast.WithMessage("m"),
						radiobcast.WithFaultSpec(spec),
						radiobcast.WithMaxRounds(400))...)
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				ref := run(radiobcast.WithDenseEngine())
				for mode, out := range map[string]*radiobcast.Outcome{
					"sparse":         run(),
					"sparse-sim":     run(radiobcast.WithSim(radiobcast.NewSim())),
					"scalar":         run(radiobcast.WithScalarEngine()),
					"parallel":       run(radiobcast.WithWorkers(4)),
					"dense-parallel": run(radiobcast.WithDenseEngine(), radiobcast.WithWorkers(4)),
				} {
					if !sameResults(ref.Result, out.Result) {
						t.Fatalf("mode %s diverged from the dense reference engine", mode)
					}
					if !reflect.DeepEqual(ref.InformedRound, out.InformedRound) {
						t.Fatalf("mode %s: informed rounds differ", mode)
					}
					if ref.Coverage != out.Coverage || ref.Degraded != out.Degraded {
						t.Fatalf("mode %s: degradation metrics differ: %v/%v vs %v/%v",
							mode, out.Coverage, out.Degraded, ref.Coverage, ref.Degraded)
					}
				}
			})
		}
	}
}

// TestFaultSpecRunDeterministic pins run-level determinism through the
// full pipeline (family generation, labeling, engine): two independent
// Run calls with the same (model, seed) are bit-identical.
func TestFaultSpecRunDeterministic(t *testing.T) {
	for name, spec := range faultMatrix() {
		t.Run(name, func(t *testing.T) {
			run := func() *radiobcast.Outcome {
				t.Helper()
				net, err := radiobcast.Family("grid", 25)
				if err != nil {
					t.Fatal(err)
				}
				out, err := radiobcast.Run(net, "b",
					radiobcast.WithMessage("m"),
					radiobcast.WithFaultSpec(spec),
					radiobcast.WithMaxRounds(400))
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			a, b := run(), run()
			if !sameResults(a.Result, b.Result) || !reflect.DeepEqual(a.InformedRound, b.InformedRound) {
				t.Fatalf("same (model, seed) produced different results")
			}
			if a.Coverage != b.Coverage || a.Degraded != b.Degraded {
				t.Fatalf("same (model, seed) produced different degradation: %v/%v vs %v/%v",
					a.Coverage, a.Degraded, b.Coverage, b.Degraded)
			}
		})
	}
}

// TestDegradationGrades drives every Degradation class deterministically:
// a churn event severs the path at a chosen hop before the relay reaches
// it, so the informed prefix — and hence the coverage — is exact.
func TestDegradationGrades(t *testing.T) {
	const n = 10
	sever := func(hop int) radiobcast.Option {
		return radiobcast.WithFaultSpec(radiobcast.FaultSpec{
			Model:  radiobcast.FaultModelChurn,
			Events: []radiobcast.ChurnEvent{{Round: 1, U: hop, V: hop + 1}},
		})
	}
	run := func(opts ...radiobcast.Option) *radiobcast.Outcome {
		t.Helper()
		net, err := radiobcast.Family("path", n)
		if err != nil {
			t.Fatal(err)
		}
		out, err := radiobcast.Run(net, "b", append(opts,
			radiobcast.WithMessage("m"), radiobcast.WithMaxRounds(200))...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	clean := run()
	if clean.Coverage != 1 || clean.Degraded != radiobcast.DegradedNone {
		t.Fatalf("clean run: coverage %v, degraded %v", clean.Coverage, clean.Degraded)
	}
	if r, ok := clean.RoundsToCoverage(1); !ok || r != clean.CompletionRound {
		t.Fatalf("RoundsToCoverage(1) = (%d, %v), want completion round %d", r, ok, clean.CompletionRound)
	}
	if r, ok := clean.RoundsToCoverage(0); !ok || r != 0 {
		t.Fatalf("RoundsToCoverage(0) = (%d, %v), want (0, true)", r, ok)
	}

	for _, tc := range []struct {
		hop      int // edge {hop, hop+1} is severed at round 1
		coverage float64
		grade    radiobcast.Degradation
	}{
		{8, 0.9, radiobcast.DegradedMinor},
		{4, 0.5, radiobcast.DegradedMajor},
		{2, 0.3, radiobcast.DegradedSevere},
		{0, 0.1, radiobcast.DegradedTotal},
	} {
		out := run(sever(tc.hop))
		if out.AllInformed {
			t.Fatalf("sever at %d: broadcast still completed", tc.hop)
		}
		if out.Coverage != tc.coverage || out.Degraded != tc.grade {
			t.Fatalf("sever at %d: coverage %v grade %v, want %v %v",
				tc.hop, out.Coverage, out.Degraded, tc.coverage, tc.grade)
		}
		frac := tc.coverage
		if _, ok := out.RoundsToCoverage(frac); !ok {
			t.Fatalf("sever at %d: RoundsToCoverage(%v) unreachable despite coverage %v", tc.hop, frac, out.Coverage)
		}
		if _, ok := out.RoundsToCoverage(frac + 0.05); ok {
			t.Fatalf("sever at %d: RoundsToCoverage(%v) reachable beyond coverage %v", tc.hop, frac+0.05, out.Coverage)
		}
	}
}

// TestRunSweepFaultsAxis pins the sweep's Faults axis at the facade:
// grid order and cell count, the "#index" disambiguation of duplicate
// model labels, Verify gating, and the seed-folding contract (a spec
// with Seed 0 inherits the sweep seed; every repeat adds its index) —
// each faulted cell must be bit-identical to a standalone run with the
// folded seed.
func TestRunSweepFaultsAxis(t *testing.T) {
	faults := []radiobcast.FaultSpec{
		{Model: radiobcast.FaultModelRate, Rate: 0.3},
		{Model: radiobcast.FaultModelRate, Rate: 0.6, Seed: 11},
		{Model: radiobcast.FaultModelDuty, Period: 4, On: 3},
	}
	results, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"grid"},
		Sizes:    []int{16},
		Schemes:  []string{"b"},
		Mu:       "m",
		Seed:     7,
		Repeats:  2,
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Axis: the default clean rate 0 plus three specs, each twice.
	if len(results) != 8 {
		t.Fatalf("got %d cells, want 8", len(results))
	}
	wantLabels := []string{"", "", "rate#0", "rate#0", "rate#1", "rate#1", "duty", "duty"}
	for i, c := range results {
		if c.Err != nil {
			t.Fatalf("cell %s: %v", c.Cell, c.Err)
		}
		if c.Index != i {
			t.Fatalf("cell %d carries index %d: grid order lost", i, c.Index)
		}
		if c.Cell.Fault != wantLabels[i] || c.Cell.Repeat != i%2 {
			t.Fatalf("cell %d = %q rep %d, want %q rep %d",
				i, c.Cell.Fault, c.Cell.Repeat, wantLabels[i], i%2)
		}
		if c.Cell.Faulted() != (wantLabels[i] != "") {
			t.Fatalf("cell %d: Faulted() = %v under label %q", i, c.Cell.Faulted(), c.Cell.Fault)
		}
		if faulted := c.Cell.Faulted(); faulted == c.Verified {
			t.Fatalf("cell %d: faulted %v but verified %v", i, faulted, c.Verified)
		}
		if c.Cell.Faulted() && (c.Outcome.Coverage <= 0 || c.Outcome.Degraded == "") {
			t.Fatalf("cell %d: faulted cell missing degradation metrics", i)
		}
	}

	// Seed folding: spec seeds 0 inherit the sweep seed 7; explicit seeds
	// stand; repeat r adds r. Reproduce each faulted cell standalone.
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b", radiobcast.WithMessage("m"))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[int]radiobcast.FaultSpec{
		2: {Model: radiobcast.FaultModelRate, Rate: 0.3, Seed: 7},
		3: {Model: radiobcast.FaultModelRate, Rate: 0.3, Seed: 8},
		4: {Model: radiobcast.FaultModelRate, Rate: 0.6, Seed: 11},
		5: {Model: radiobcast.FaultModelRate, Rate: 0.6, Seed: 12},
		6: {Model: radiobcast.FaultModelDuty, Period: 4, On: 3, Seed: 7},
		7: {Model: radiobcast.FaultModelDuty, Period: 4, On: 3, Seed: 8},
	} {
		ref, err := radiobcast.RunLabeled(l,
			radiobcast.WithMessage("m"), radiobcast.WithFaultSpec(want))
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(ref.Result, results[i].Outcome.Result) {
			t.Fatalf("cell %d (%s): sweep result differs from standalone run with folded seed %d",
				i, results[i].Cell, want.Seed)
		}
	}
}
