package radiobcast

import (
	"math"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// ChurnEvent is one scheduled topology mutation of the "churn" fault
// model: at the start of Round, the edge {U, V} appears (Add true) or
// disappears. See FaultSpec.
type ChurnEvent = faults.ChurnEvent

// Fault-model names accepted in FaultSpec.Model.
const (
	// FaultModelRate is the i.i.d. channel: every transmission is
	// independently jammed with probability Rate (the FaultRate model).
	FaultModelRate = "rate"
	// FaultModelJam is the budgeted adversarial jammer (greedy
	// frontier-targeting or oblivious; see FaultSpec.Greedy).
	FaultModelJam = "jam"
	// FaultModelCrash is seeded crash–recovery with a heard-state policy.
	FaultModelCrash = "crash"
	// FaultModelChurn replays an edge add/remove schedule mid-run.
	FaultModelChurn = "churn"
	// FaultModelDuty is deterministic duty-cycling (periodic sleep).
	FaultModelDuty = "duty"
)

// FaultSpec is the declarative, wire-transportable description of a fault
// model: the facade (WithFaultSpec), the sweep Faults axis and the daemon
// request schema all accept the same struct. Model selects one of the
// five models; the other fields parameterize it (unused fields are
// ignored). Compose, when non-empty, ignores Model and runs the listed
// specs as one composed adversary.
//
// A spec is validated when the run is prepared; invalid specs (unknown
// model, NaN or out-of-range rates, malformed schedules) are rejected
// with ErrBadFaultSpec before anything executes.
type FaultSpec struct {
	// Model names the fault model: "rate", "jam", "crash", "churn" or
	// "duty" (the FaultModel* constants).
	Model string `json:"model"`
	// Seed drives the model's deterministic randomness. The sweep adds the
	// repeat index so repeats see distinct fault patterns.
	Seed int64 `json:"seed,omitempty"`

	// Rate is the per-transmission jam probability ("rate") or the
	// per-node, per-round crash probability ("crash"); must lie in [0, 1].
	Rate float64 `json:"rate,omitempty"`

	// Budget bounds the total jams of "jam" (≤ 0 = unlimited).
	Budget int `json:"budget,omitempty"`
	// PerRound bounds the jams per round of "jam" (≤ 0 = unlimited).
	PerRound int `json:"per_round,omitempty"`
	// From and To bound the active round window of "jam" and "crash",
	// inclusive; zero means unbounded on that side.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Nodes restricts "jam" to the listed transmitters (empty = any).
	Nodes []int `json:"nodes,omitempty"`
	// Greedy selects "jam"'s frontier-targeting strategy (jam the
	// transmissions that would inform the most uninformed listeners);
	// false is the oblivious seeded variant.
	Greedy bool `json:"greedy,omitempty"`

	// Down is the outage length in rounds of "crash" (< 1 = 1).
	Down int `json:"down,omitempty"`
	// Lose makes crashing nodes drop their pending reception ("crash").
	Lose bool `json:"lose,omitempty"`

	// Period and On define "duty"'s schedule: awake the first On rounds of
	// every Period-round cycle, asleep the rest.
	Period int `json:"period,omitempty"`
	On     int `json:"on,omitempty"`

	// Events is "churn"'s edge add/remove schedule. Events whose nodes
	// exceed the actual graph size are skipped at run time, so one
	// schedule can ride a multi-size sweep.
	Events []ChurnEvent `json:"events,omitempty"`

	// Compose runs the listed specs as one composed model (union of
	// effects; the last churn member controls the topology). When
	// non-empty, every other field of the outer spec is ignored.
	Compose []FaultSpec `json:"compose,omitempty"`
}

// WithFaultSpec injects faults through a declarative model description —
// the option behind every fault model richer than a drop probability:
//
//	out, err := radiobcast.Run(net, "b",
//		radiobcast.WithFaultSpec(radiobcast.FaultSpec{
//			Model: "jam", Greedy: true, Budget: 10, Seed: 7,
//		}))
//
// The spec is validated during run preparation; errors wrap
// ErrBadFaultSpec.
func WithFaultSpec(spec FaultSpec) Option {
	return func(c *Config) { c.Fault = &spec }
}

// FaultRate injects the i.i.d. fault channel: each transmission is
// independently jammed with probability rate, decided by a seeded hash,
// so the same (rate, seed) always jams the same transmissions. Rate 0 is
// the clean channel; rate ≥ 1 jams every transmission; NaN and negative
// rates are rejected with ErrBadFaultSpec when the run is prepared.
//
// It is shorthand for WithFaultSpec(FaultSpec{Model: "rate", …}).
func FaultRate(rate float64, seed int64) Option {
	return WithFaultSpec(FaultSpec{Model: FaultModelRate, Rate: rate, Seed: seed})
}

// name renders the spec's axis label in sweep cells and tables.
func (f *FaultSpec) name() string {
	if len(f.Compose) > 0 {
		s := ""
		for i := range f.Compose {
			if i > 0 {
				s += "+"
			}
			s += f.Compose[i].name()
		}
		return s
	}
	return f.Model
}

// Validate checks the graph-independent part of the spec: the model name
// and every numeric parameter. Run preparation calls it implicitly;
// network front-ends call it up front so a bad spec fails before a
// streaming response commits to a status line. Errors wrap
// ErrBadFaultSpec.
func (f *FaultSpec) Validate() error { return f.validate() }

// validate checks the graph-independent part of the spec.
func (f *FaultSpec) validate() error {
	if len(f.Compose) > 0 {
		for i := range f.Compose {
			if len(f.Compose[i].Compose) > 0 {
				return badFaultSpec("compose members cannot themselves compose")
			}
			if err := f.Compose[i].validate(); err != nil {
				return err
			}
		}
		return nil
	}
	switch f.Model {
	case FaultModelRate, FaultModelCrash:
		// NaN fails every comparison, so spell the check as "not in range".
		if !(f.Rate >= 0) || math.IsNaN(f.Rate) {
			return badFaultSpec("model %q: rate %v is not a probability", f.Model, f.Rate)
		}
		if f.Model == FaultModelCrash && f.Rate > 1 {
			return badFaultSpec("model %q: rate %v exceeds 1", f.Model, f.Rate)
		}
	case FaultModelJam:
		for _, v := range f.Nodes {
			if v < 0 {
				return badFaultSpec("model %q: negative target node %d", f.Model, v)
			}
		}
	case FaultModelDuty:
		if f.Period < 1 {
			return badFaultSpec("model %q: period %d must be ≥ 1", f.Model, f.Period)
		}
		if f.On < 0 || f.On > f.Period {
			return badFaultSpec("model %q: on %d outside [0, %d]", f.Model, f.On, f.Period)
		}
	case FaultModelChurn:
		for _, e := range f.Events {
			if e.U < 0 || e.V < 0 || e.U == e.V {
				return badFaultSpec("model %q: bad event edge {%d,%d}", f.Model, e.U, e.V)
			}
		}
	case "":
		return badFaultSpec("missing model name")
	default:
		return badFaultSpec("unknown model %q", f.Model)
	}
	return nil
}

// materialize validates the spec and builds a fresh model instance bound
// to g. Models are stateful, so every run (and every sweep cell) gets its
// own instance.
func (f *FaultSpec) materialize(g *graph.Graph) (faults.Model, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	if len(f.Compose) > 0 {
		ms := make([]faults.Model, 0, len(f.Compose))
		for i := range f.Compose {
			m, err := f.Compose[i].materialize(g)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		return faults.Compose(ms...), nil
	}
	switch f.Model {
	case FaultModelRate:
		if f.Rate == 0 {
			return nil, nil // clean channel
		}
		return faults.NewRate(f.Rate, f.Seed), nil
	case FaultModelJam:
		return faults.NewJam(faults.JamConfig{
			Budget: f.Budget, PerRound: f.PerRound,
			From: f.From, To: f.To,
			Nodes: f.Nodes, Greedy: f.Greedy, Seed: f.Seed,
		}), nil
	case FaultModelCrash:
		return faults.NewCrash(faults.CrashConfig{
			Rate: f.Rate, Down: f.Down, Lose: f.Lose,
			From: f.From, To: f.To, Seed: f.Seed,
		}), nil
	case FaultModelDuty:
		return faults.NewDutyCycle(faults.DutyConfig{
			Period: f.Period, On: f.On, Seed: f.Seed,
		}), nil
	default: // FaultModelChurn; validate rejected everything else
		return faults.NewChurn(g, f.Events), nil
	}
}
