module radiobcast

go 1.24
