// Package anonymity demonstrates the paper's impossibility argument (§1.1):
// without labels — i.e. when all nodes run the same deterministic program —
// broadcast is impossible even on the four-cycle. The two neighbours of the
// source have identical initial state and, by induction on rounds, identical
// histories: whenever one transmits, so does the other, so the fourth node
// only ever experiences collisions or silence and is never informed.
//
// The package turns that argument into an executable check: it runs any
// deterministic protocol factory on C4 and verifies (a) the two source
// neighbours act identically in every round and (b) the antipodal node is
// never informed, over a configurable horizon. A finite horizon cannot
// replace the induction, but the history argument shows that per-round
// equality of the neighbours' actions is invariant, so the check exercises
// exactly the proof's mechanism.
package anonymity

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// C4 node roles: source 0, its neighbours 1 and 3, antipode 2.
const (
	Source   = 0
	Left     = 1
	Antipode = 2
	Right    = 3
)

// Outcome reports what happened during a four-cycle run.
type Outcome struct {
	// Rounds is the horizon that was simulated.
	Rounds int
	// NeighboursSymmetric is true when nodes 1 and 3 took identical
	// actions in every round (the invariant of the impossibility proof).
	NeighboursSymmetric bool
	// AntipodeInformed is the round node 2 first heard a data message
	// (0 = never, which is what the impossibility predicts).
	AntipodeInformed int
	// AntipodeCollisions counts the collision rounds at node 2.
	AntipodeCollisions int
}

// Factory builds one protocol instance; isSource marks the source node.
// All four instances must run the same deterministic program — the factory
// models an unlabeled network, so it must not vary behaviour by node
// identity (only by isSource, which the model grants: the source knows it
// holds the message).
type Factory func(isSource bool) radio.Protocol

// RunFourCycle executes the factory's protocol on C4 for horizon rounds.
func RunFourCycle(factory Factory, horizon int) *Outcome {
	g := graph.Cycle(4)
	ps := make([]radio.Protocol, 4)
	for v := 0; v < 4; v++ {
		ps[v] = factory(v == Source)
	}
	sym := &symmetryChecker{}
	ps[Left] = sym.wrap(ps[Left], 0)
	ps[Right] = sym.wrap(ps[Right], 1)

	res := radio.Run(g, ps, radio.Options{MaxRounds: horizon})
	return &Outcome{
		Rounds:              res.Rounds,
		NeighboursSymmetric: !sym.diverged,
		AntipodeInformed:    res.FirstReception(Antipode, radio.KindData),
		AntipodeCollisions:  res.Collisions[Antipode],
	}
}

// symmetryChecker records both neighbours' actions per round and flags any
// divergence (which for a deterministic protocol with identical inputs
// would indicate hidden nondeterminism).
type symmetryChecker struct {
	actions  [2][]radio.Action
	diverged bool
}

func (s *symmetryChecker) wrap(p radio.Protocol, idx int) radio.Protocol {
	return &symmetryWrapper{checker: s, idx: idx, inner: p}
}

type symmetryWrapper struct {
	checker *symmetryChecker
	idx     int
	inner   radio.Protocol
}

func (w *symmetryWrapper) Step(rcv *radio.Message) radio.Action {
	act := w.inner.Step(rcv)
	c := w.checker
	c.actions[w.idx] = append(c.actions[w.idx], act)
	round := len(c.actions[w.idx])
	other := 1 - w.idx
	if len(c.actions[other]) >= round {
		a, b := c.actions[w.idx][round-1], c.actions[other][round-1]
		if a.Transmit != b.Transmit || (a.Transmit && a.Msg != b.Msg) {
			c.diverged = true
		}
	}
	return act
}

// Verify runs the factory and returns an error unless the run matches the
// impossibility prediction: symmetric neighbours and an uninformed antipode.
func Verify(factory Factory, horizon int) error {
	out := RunFourCycle(factory, horizon)
	if !out.NeighboursSymmetric {
		return fmt.Errorf("anonymity: neighbours diverged — protocol is not label-oblivious deterministic")
	}
	if out.AntipodeInformed != 0 {
		return fmt.Errorf("anonymity: antipode informed in round %d — impossibility violated", out.AntipodeInformed)
	}
	return nil
}

// PseudorandomProgram returns a Factory whose transmit decisions are an
// arbitrary deterministic function (keyed by seed) of the node's full
// history fingerprint. Sweeping seeds samples the space of deterministic
// anonymous protocols far beyond the natural ones.
func PseudorandomProgram(seed uint64) Factory {
	return func(isSource bool) radio.Protocol {
		return &prProtocol{seed: seed, isSource: isSource, fingerprint: initialFingerprint(isSource)}
	}
}

type prProtocol struct {
	seed        uint64
	isSource    bool
	round       int
	fingerprint uint64
	haveMsg     bool
	msg         string
}

func initialFingerprint(isSource bool) uint64 {
	if isSource {
		return 0x9e3779b97f4a7c15
	}
	return 0xbf58476d1ce4e5b9
}

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Step transmits iff a hash of (seed, history) is even; the history
// fingerprint absorbs every reception, so the function is deterministic in
// exactly the inputs the model allows.
func (p *prProtocol) Step(rcv *radio.Message) radio.Action {
	p.round++
	if rcv != nil {
		p.fingerprint = mix(p.fingerprint, uint64(rcv.Kind)+1)
		p.fingerprint = mix(p.fingerprint, uint64(len(rcv.Payload)))
		if rcv.Kind == radio.KindData && !p.haveMsg {
			p.haveMsg = true
			p.msg = rcv.Payload
		}
	} else {
		p.fingerprint = mix(p.fingerprint, 0)
	}
	decide := mix(p.seed, p.fingerprint)
	if decide&1 == 0 && (p.haveMsg || p.isSource) {
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: p.msg})
	}
	return radio.Listen
}
