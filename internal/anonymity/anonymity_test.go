package anonymity

import (
	"testing"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

func gC4() *graph.Graph { return graph.Cycle(4) }

func TestUniformAlgBNeverInformsAntipode(t *testing.T) {
	// Algorithm B with every node labeled "11" (maximally chatty uniform
	// labels) still cannot break the symmetry.
	factory := func(isSource bool) radio.Protocol {
		var src *string
		if isSource {
			mu := "m"
			src = &mu
		}
		return core.NewAlgB(core.Label("11"), src)
	}
	if err := Verify(factory, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestUniformFloodingNeverInformsAntipode(t *testing.T) {
	factory := func(isSource bool) radio.Protocol {
		return &forwardOnce{isSource: isSource}
	}
	out := RunFourCycle(factory, 100)
	if out.AntipodeInformed != 0 {
		t.Fatalf("antipode informed at %d", out.AntipodeInformed)
	}
	if !out.NeighboursSymmetric {
		t.Fatal("neighbours diverged")
	}
	if out.AntipodeCollisions == 0 {
		t.Fatal("expected at least one collision at the antipode")
	}
}

// forwardOnce retransmits µ once, one round after reception.
type forwardOnce struct {
	isSource bool
	round    int
	haveMsg  bool
	msg      string
	recvAt   int
	sent     bool
}

func (f *forwardOnce) Step(rcv *radio.Message) radio.Action {
	f.round++
	if rcv != nil && rcv.Kind == radio.KindData && !f.haveMsg {
		f.haveMsg = true
		f.msg = rcv.Payload
		f.recvAt = f.round - 1
	}
	if f.isSource && !f.sent {
		f.sent = true
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: f.msg})
	}
	if !f.isSource && f.haveMsg && !f.sent && f.round == f.recvAt+1 {
		f.sent = true
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: f.msg})
	}
	return radio.Listen
}

func TestPseudorandomProgramSweep(t *testing.T) {
	// 300 arbitrary deterministic anonymous programs: none may inform the
	// antipode within the horizon.
	for seed := uint64(0); seed < 300; seed++ {
		if err := Verify(PseudorandomProgram(seed), 200); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLabelsBreakTheSymmetry(t *testing.T) {
	// Control experiment: with the paper's 2-bit labels the four-cycle IS
	// solvable — confirming the impossibility is about missing labels, not
	// about the graph.
	g := coreFourCycleBroadcast(t)
	if g != 3 {
		t.Fatalf("labeled C4 completion = %d, want 3", g)
	}
}

func coreFourCycleBroadcast(t *testing.T) int {
	t.Helper()
	out, err := core.RunBroadcast(gC4(), 0, "m", core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyBroadcast(out, "m"); err != nil {
		t.Fatal(err)
	}
	return out.CompletionRound
}
