package baseline

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
)

func TestRoundRobinLabelsDistinct(t *testing.T) {
	labels := RoundRobinLabels(10)
	if core.Distinct(labels) != 10 {
		t.Fatalf("labels not distinct: %v", labels)
	}
	if core.MaxLen(labels) != 4 { // ⌈log₂ 10⌉
		t.Fatalf("label width = %d, want 4", core.MaxLen(labels))
	}
	if labels[5] != core.Label("0101") {
		t.Fatalf("label(5) = %s, want 0101", labels[5])
	}
}

func TestRoundRobinNoCollisionsEver(t *testing.T) {
	g := graph.Complete(7)
	out, err := RunRoundRobin(g, 0, "m")
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range out.Result.Collisions {
		if c != 0 {
			t.Fatalf("node %d saw %d collisions; round robin must be collision-free", v, c)
		}
	}
	if !out.AllInformed {
		t.Fatal("round robin incomplete")
	}
}

func TestRoundRobinCompletesOnFamilies(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](20)
		out, err := RunRoundRobin(g, 0, "m")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.AllInformed {
			t.Fatalf("%s: incomplete", name)
		}
	}
}

func TestRoundRobinPeriodBound(t *testing.T) {
	// Each BFS layer is fully informed after at most one period, so the
	// completion round is ≤ period · eccentricity.
	g := graph.Path(17)
	out, err := RunRoundRobin(g, 0, "m")
	if err != nil {
		t.Fatal(err)
	}
	period := 1 << uint(out.LabelBits)
	if out.CompletionRound > period*g.Eccentricity(0) {
		t.Fatalf("completion %d > period·ecc = %d", out.CompletionRound, period*g.Eccentricity(0))
	}
}

func TestColorRobinCompletes(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](20)
		out, err := RunColorRobin(g, 0, "m")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.AllInformed {
			t.Fatalf("%s: incomplete", name)
		}
	}
}

func TestColorRobinLabelBits(t *testing.T) {
	// Bounded-degree family: the colour labels must be much shorter than
	// the ⌈log n⌉ identifier labels.
	g := graph.Cycle(256)
	labels, num := ColorRobinLabels(g)
	if num > g.MaxDegree()*g.MaxDegree()+1 {
		t.Fatalf("colors = %d > Δ²+1", num)
	}
	if core.MaxLen(labels) >= core.MaxLen(RoundRobinLabels(256)) {
		t.Fatalf("colour labels (%d bits) not shorter than id labels (%d bits)",
			core.MaxLen(labels), core.MaxLen(RoundRobinLabels(256)))
	}
}

func TestColorRobinQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%40)
		g := graph.GNPConnected(n, 0.2, seed)
		src := int(uint64(seed) % uint64(n))
		out, err := RunColorRobin(g, src, "m")
		return err == nil && out.AllInformed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCentralizedCompletesAndIsFast(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](20)
		out, err := RunCentralized(g, 0, "m")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.AllInformed {
			t.Fatalf("%s: incomplete", name)
		}
		// The centralized schedule should never be slower than λ's 2n−3.
		if out.CompletionRound > 2*g.N()-3 && g.N() > 2 {
			t.Fatalf("%s: centralized %d rounds > 2n−3", name, out.CompletionRound)
		}
	}
}

func TestCentralizedQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%40)
		g := graph.GNPConnected(n, 0.2, seed)
		src := int(uint64(seed) % uint64(n))
		out, err := RunCentralized(g, src, "m")
		return err == nil && out.AllInformed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFloodingPathAllOnes(t *testing.T) {
	// On a path, all-1 labels with delay-1 forwarding complete: the wave
	// travels without collisions.
	n := 9
	labels := make([]core.Label, n)
	for v := range labels {
		labels[v] = core.Label("1")
	}
	out := RunFlooding(graph.Path(n), labels, DefaultDelays, 0, "m")
	if !out.AllInformed {
		t.Fatalf("path flooding incomplete: %v", out.InformedRound)
	}
	// Node v informed in round v.
	for v := 1; v < n; v++ {
		if out.InformedRound[v] != v {
			t.Fatalf("informed(%d) = %d, want %d", v, out.InformedRound[v], v)
		}
	}
}

func TestFloodingEvenCycleAllOnesFails(t *testing.T) {
	// On an even cycle the two waves collide at the antipode forever: this
	// is exactly why the 1-bit cycle scheme needs one 0 label.
	n := 8
	labels := make([]core.Label, n)
	for v := range labels {
		labels[v] = core.Label("1")
	}
	out := RunFlooding(graph.Cycle(n), labels, DefaultDelays, 0, "m")
	if out.AllInformed {
		t.Fatal("all-ones flooding should fail on an even cycle")
	}
	if out.InformedRound[n/2] != 0 {
		t.Fatalf("antipode informed at %d, want never", out.InformedRound[n/2])
	}
}

func TestFloodingZeroBitNeverForwards(t *testing.T) {
	g := graph.Path(3)
	labels := []core.Label{"1", "0", "1"}
	out := RunFlooding(g, labels, DefaultDelays, 0, "m")
	if out.AllInformed {
		t.Fatal("node 2 should stay uninformed behind a 0-labeled node")
	}
	if len(out.Result.Transmits[1]) != 0 {
		t.Fatal("0-labeled node transmitted")
	}
}
