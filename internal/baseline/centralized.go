package baseline

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
	"radiobcast/internal/radio"
)

// Centralized broadcast assumes a controller that knows the whole topology
// and hands every node its personal transmission schedule (the setting of
// the "known topology" literature the paper cites, e.g. Gaber–Mansour and
// Kowalski–Pelc). We implement a greedy scheduler: it repeatedly picks a
// conflict-free set of informed transmitters that each deliver to at least
// one new node, preferring transmitters covering many uninformed targets.
// The resulting schedule is collision-free at every newly-covered node by
// construction. This is a reference point for completion time, not a
// labeling scheme: per-node schedules are Θ(T) bits, not constant.

// BuildSchedule computes per-round transmitter sets for broadcasting from
// source on g. schedule[r-1] lists the transmitters of round r.
func BuildSchedule(g *graph.Graph, source int) [][]int {
	n := g.N()
	csr := g.Freeze()
	informed := nodeset.Of(n, source)
	var schedule [][]int
	for informed.Count() < n {
		round := scheduleOneRound(csr, informed)
		if len(round) == 0 {
			panic("baseline: centralized scheduler stalled (disconnected graph?)")
		}
		schedule = append(schedule, round)
		// Apply the round: a listener is informed iff exactly one
		// transmitting neighbour.
		tx := nodeset.New(n)
		for _, v := range round {
			tx.Add(v)
		}
		for v := 0; v < n; v++ {
			if informed.Has(v) || tx.Has(v) {
				continue
			}
			count := 0
			for _, w := range csr.Neighbors(v) {
				if tx.Has(int(w)) {
					count++
				}
			}
			if count == 1 {
				informed.Add(v)
			}
		}
	}
	return schedule
}

// scheduleOneRound greedily picks transmitters: candidates are informed
// nodes with uninformed neighbours, in decreasing coverage order; a
// candidate joins if it strictly grows the set of listeners that hear
// exactly one transmitter.
func scheduleOneRound(csr *graph.CSR, informed *nodeset.Set) []int {
	n := csr.N()
	type cand struct {
		v    int
		gain int
	}
	var cands []cand
	informed.ForEach(func(v int) {
		gain := 0
		for _, w := range csr.Neighbors(v) {
			if !informed.Has(int(w)) {
				gain++
			}
		}
		if gain > 0 {
			cands = append(cands, cand{v, gain})
		}
	})
	// Sort by gain descending, index ascending (deterministic).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].gain > cands[j-1].gain ||
			(cands[j].gain == cands[j-1].gain && cands[j].v < cands[j-1].v)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	// hits[w] = number of chosen transmitters adjacent to uninformed w.
	hits := make([]int, n)
	var chosen []int
	for _, c := range cands {
		// Would adding c create at least one newly exactly-one-covered
		// node without destroying more coverage than it adds?
		delta := 0
		for _, w := range csr.Neighbors(c.v) {
			if informed.Has(int(w)) {
				continue
			}
			switch hits[w] {
			case 0:
				delta++ // becomes exactly-one
			case 1:
				delta-- // collision: loses coverage
			}
		}
		if delta > 0 {
			chosen = append(chosen, c.v)
			for _, w := range csr.Neighbors(c.v) {
				if !informed.Has(int(w)) {
					hits[w]++
				}
			}
		}
	}
	return chosen
}

// RunCentralized builds the schedule, replays it with Scripted protocols
// through the radio engine (validating collision-freeness end to end) and
// returns the outcome. Labels are nil: this baseline does not label nodes.
func RunCentralized(g *graph.Graph, source int, mu string) (*Outcome, error) {
	return RunCentralizedTuned(g, source, mu, nil)
}

// RunCentralizedTuned is RunCentralized with engine tuning (may be nil).
func RunCentralizedTuned(g *graph.Graph, source int, mu string, tune *radio.Tuning) (*Outcome, error) {
	schedule := BuildSchedule(g, source)
	return RunScheduled(g, schedule, source, mu, tune)
}

// ScheduledProtocols turns a per-round transmitter schedule into compiled
// Scripted protocols (one per node) carrying message mu. Per-node round
// lists are carved out of one arena, so scripting a whole network costs a
// constant number of allocations.
func ScheduledProtocols(n int, schedule [][]int, mu string) []radio.Protocol {
	msg := radio.Message{Kind: radio.KindData, Payload: mu}
	counts := make([]int, n)
	total := 0
	for _, txs := range schedule {
		for _, v := range txs {
			counts[v]++
			total++
		}
	}
	roundsArena := make([]int, total)
	msgsArena := make([]radio.Message, total)
	for i := range msgsArena {
		msgsArena[i] = msg
	}
	perNode := make([][]int, n)
	off := 0
	for v := 0; v < n; v++ {
		perNode[v] = roundsArena[off : off : off+counts[v]]
		off += counts[v]
	}
	for r, txs := range schedule {
		for _, v := range txs {
			perNode[v] = append(perNode[v], r+1)
		}
	}
	scripts := make([]radio.Scripted, n)
	ps := make([]radio.Protocol, n)
	off = 0
	for v := 0; v < n; v++ {
		scripts[v] = radio.CompiledScript(perNode[v], msgsArena[off:off+counts[v]])
		off += counts[v]
		ps[v] = &scripts[v]
	}
	return ps
}

// RunScheduled replays a precomputed transmitter schedule through the
// engine and observes the outcome (used to validate schedules end to end
// without rebuilding them).
func RunScheduled(g *graph.Graph, schedule [][]int, source int, mu string, tune *radio.Tuning) (*Outcome, error) {
	ps := ScheduledProtocols(g.N(), schedule, mu)
	out, err := Observe(g, ps, source, len(schedule)+1, nil, tune)
	if err != nil {
		return out, fmt.Errorf("baseline: centralized schedule incomplete: %w", err)
	}
	return out, nil
}

// ScheduleLength returns the number of rounds of the centralized schedule.
func ScheduleLength(g *graph.Graph, source int) int {
	return len(BuildSchedule(g, source))
}
