package baseline

import (
	"math/bits"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// ColorRobin is the O(log Δ)-bit scheme from the paper's introduction:
// labels are colours of a proper colouring of G², and informed nodes
// transmit in the slot of their colour. Because any two nodes at distance
// ≤ 2 have different colours, at most one neighbour of any listener
// transmits per slot, so every frontier node is informed within one period
// of C = 2^⌈log₂ numColors⌉ rounds of its first informed neighbour.
type ColorRobin struct {
	color  int
	period int

	round   int
	haveMsg bool
	msg     string
}

// NewColorRobin builds the protocol from a colour label.
func NewColorRobin(label core.Label, sourceMsg *string) *ColorRobin {
	c := 0
	for i := 0; i < label.Len(); i++ {
		c <<= 1
		if label.Bit(i) {
			c |= 1
		}
	}
	p := &ColorRobin{color: c, period: 1 << uint(label.Len())}
	if sourceMsg != nil {
		p.haveMsg = true
		p.msg = *sourceMsg
	}
	return p
}

// Step implements radio.Protocol.
func (p *ColorRobin) Step(rcv *radio.Message) radio.Action {
	p.round++
	if rcv != nil && rcv.Kind == radio.KindData && !p.haveMsg {
		p.haveMsg = true
		p.msg = rcv.Payload
	}
	if p.haveMsg && (p.round-1)%p.period == p.color {
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: p.msg})
	}
	return radio.Listen
}

// ColorRobinLabels computes a distance-2 colouring of g and encodes each
// node's colour in ⌈log₂ numColors⌉ bits.
func ColorRobinLabels(g *graph.Graph) ([]core.Label, int) {
	colors, num := g.Distance2Coloring()
	w := 1
	if num > 1 {
		w = bits.Len(uint(num - 1))
	}
	labels := make([]core.Label, g.N())
	for v, c := range colors {
		labels[v] = binaryLabel(c, w)
	}
	return labels, num
}

// NextWake implements radio.Waker: an informed node's next colour slot.
func (p *ColorRobin) NextWake() int {
	return slotWake(p.haveMsg, p.round, p.period, p.color)
}

// Skip implements radio.Waker.
func (p *ColorRobin) Skip(rounds int) { p.round += rounds }

// NewColorRobinProtocols builds one protocol per node, carved from one
// bulk allocation.
func NewColorRobinProtocols(labels []core.Label, source int, mu string) []radio.Protocol {
	nodes := make([]ColorRobin, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewColorRobin(labels[v], src)
		ps[v] = &nodes[v]
	}
	return ps
}

// RunColorRobin colours g, runs the colour-slotted broadcast and returns
// the outcome.
func RunColorRobin(g *graph.Graph, source int, mu string) (*Outcome, error) {
	return RunColorRobinTuned(g, source, mu, nil)
}

// RunColorRobinTuned is RunColorRobin with engine tuning (may be nil).
func RunColorRobinTuned(g *graph.Graph, source int, mu string, tune *radio.Tuning) (*Outcome, error) {
	labels, _ := ColorRobinLabels(g)
	ps := NewColorRobinProtocols(labels, source, mu)
	maxRounds := SlottedMaxRounds(g, source, core.MaxLen(labels))
	return Observe(g, ps, source, maxRounds, labels, tune)
}
