package baseline

import (
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// Flooding is the one-bit protocol family used for the §5 extensions: a
// node retransmits µ exactly once, d rounds after first receiving it, where
// the delay d is selected by the node's single label bit (bit 1 → DelayOne
// rounds, bit 0 → DelayZero rounds; DelayZero = 0 means "never forward").
// The labeling scheme's job is to choose bits so that every node eventually
// has a round in which exactly one neighbour transmits.
type Flooding struct {
	delay int // rounds between first reception and the single retransmission; 0 = never

	round    int
	haveMsg  bool
	msg      string
	recvAt   int
	sent     bool
	isSource bool
}

// FloodingDelays configures the two delays selected by the label bit.
type FloodingDelays struct {
	// DelayOne is the forwarding delay of bit-1 nodes (≥ 1).
	DelayOne int
	// DelayZero is the forwarding delay of bit-0 nodes; 0 disables
	// forwarding entirely.
	DelayZero int
}

// DefaultDelays forwards after 1 round for bit 1 and never for bit 0.
var DefaultDelays = FloodingDelays{DelayOne: 1, DelayZero: 0}

// GridDelays forwards after 1 round for bit 1 and 2 rounds for bit 0,
// the family used by the grid labelings.
var GridDelays = FloodingDelays{DelayOne: 1, DelayZero: 2}

// NewFlooding builds the protocol for a 1-bit label.
func NewFlooding(label core.Label, d FloodingDelays, sourceMsg *string) *Flooding {
	delay := d.DelayZero
	if label.Bit(0) {
		delay = d.DelayOne
	}
	p := &Flooding{delay: delay, recvAt: -1}
	if sourceMsg != nil {
		p.isSource = true
		p.haveMsg = true
		p.msg = *sourceMsg
	}
	return p
}

// Step implements radio.Protocol.
func (p *Flooding) Step(rcv *radio.Message) radio.Action {
	p.round++
	if rcv != nil && rcv.Kind == radio.KindData && !p.haveMsg {
		p.haveMsg = true
		p.msg = rcv.Payload
		p.recvAt = p.round - 1
	}
	switch {
	case p.isSource && !p.sent:
		// The source always transmits once, in its first round.
		p.sent = true
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: p.msg})
	case !p.isSource && p.haveMsg && !p.sent && p.delay > 0 && p.round == p.recvAt+p.delay:
		p.sent = true
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: p.msg})
	default:
		return radio.Listen
	}
}

// NextWake implements radio.Waker: the single delayed retransmission at
// recvAt+delay (the source transmits at its first step, and round 1 is
// always stepped).
func (p *Flooding) NextWake() int {
	if p.sent || !p.haveMsg || p.delay <= 0 {
		return radio.NeverWake
	}
	if w := p.recvAt + p.delay; w > p.round {
		return w
	}
	return radio.NeverWake
}

// Skip implements radio.Waker.
func (p *Flooding) Skip(rounds int) { p.round += rounds }

// NewFloodingProtocols builds one protocol per node, carved from one bulk
// allocation.
func NewFloodingProtocols(labels []core.Label, d FloodingDelays, source int, mu string) []radio.Protocol {
	nodes := make([]Flooding, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewFlooding(labels[v], d, src)
		ps[v] = &nodes[v]
	}
	return ps
}

// RunFlooding runs the delayed-flooding protocol under the given 1-bit
// labeling and returns the outcome (which may be incomplete: callers use
// this to *verify* candidate labelings).
func RunFlooding(g *graph.Graph, labels []core.Label, d FloodingDelays, source int, mu string) *Outcome {
	out, _ := RunFloodingTuned(g, labels, d, source, mu, nil)
	return out
}

// RunFloodingTuned is RunFlooding with engine tuning (may be nil); unlike
// RunFlooding it surfaces the incomplete-broadcast error.
func RunFloodingTuned(g *graph.Graph, labels []core.Label, d FloodingDelays, source int, mu string, tune *radio.Tuning) (*Outcome, error) {
	ps := NewFloodingProtocols(labels, d, source, mu)
	return Observe(g, ps, source, FloodingMaxRounds(g.N()), labels, tune)
}
