// Package baseline implements the comparison algorithms the paper mentions
// in its introduction: round-robin broadcast over distinct O(log n)-bit
// labels, colour-slotted round-robin over a distance-2 colouring
// (O(log Δ)-bit labels), a centralized scheduler with full topology
// knowledge, and one-bit delayed flooding (used by the §5 one-bit
// extensions). These baselines give the BASE experiment its comparison
// axes: label length versus completion time.
package baseline

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// RoundRobin is the classical O(log n)-bit scheme: every node gets a
// distinct identifier; round r is the slot of identifier (r−1) mod P where
// the period P = 2^w is derived from the label width w. Informed nodes
// transmit µ exactly in their own slot, so no two transmissions ever
// collide, and each BFS layer is informed after at most one full period.
type RoundRobin struct {
	id     int
	period int

	round   int
	haveMsg bool
	msg     string
}

// NewRoundRobin builds the protocol from a w-bit identifier label.
func NewRoundRobin(label core.Label, sourceMsg *string) *RoundRobin {
	id := 0
	for i := 0; i < label.Len(); i++ {
		id <<= 1
		if label.Bit(i) {
			id |= 1
		}
	}
	p := &RoundRobin{id: id, period: 1 << uint(label.Len())}
	if sourceMsg != nil {
		p.haveMsg = true
		p.msg = *sourceMsg
	}
	return p
}

// Step implements radio.Protocol.
func (p *RoundRobin) Step(rcv *radio.Message) radio.Action {
	p.round++
	if rcv != nil && rcv.Kind == radio.KindData && !p.haveMsg {
		p.haveMsg = true
		p.msg = rcv.Payload
	}
	if p.haveMsg && (p.round-1)%p.period == p.id {
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: p.msg})
	}
	return radio.Listen
}

// RoundRobinLabels assigns the distinct-identifier labeling: node v gets v
// written in exactly ⌈log₂ n⌉ bits (1 bit for n = 1).
func RoundRobinLabels(n int) []core.Label {
	w := idWidth(n)
	labels := make([]core.Label, n)
	for v := 0; v < n; v++ {
		labels[v] = binaryLabel(v, w)
	}
	return labels
}

func idWidth(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

func binaryLabel(v, w int) core.Label {
	b := make([]byte, w)
	for i := w - 1; i >= 0; i-- {
		if v&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
		v >>= 1
	}
	return core.Label(b)
}

// NextWake implements radio.Waker: an informed node's next own slot; an
// uninformed node acts only after a reception.
func (p *RoundRobin) NextWake() int {
	return slotWake(p.haveMsg, p.round, p.period, p.id)
}

// Skip implements radio.Waker.
func (p *RoundRobin) Skip(rounds int) { p.round += rounds }

// slotWake returns the next round r > round with (r−1) mod period == slot,
// or NeverWake for a node with nothing to transmit yet.
func slotWake(haveMsg bool, round, period, slot int) int {
	if !haveMsg {
		return radio.NeverWake
	}
	next := round + 1
	delta := (slot - (next-1)%period + period) % period
	return next + delta
}

// NewRoundRobinProtocols builds one protocol per node, carved from one
// bulk allocation.
func NewRoundRobinProtocols(labels []core.Label, source int, mu string) []radio.Protocol {
	nodes := make([]RoundRobin, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewRoundRobin(labels[v], src)
		ps[v] = &nodes[v]
	}
	return ps
}

// RunRoundRobin labels g with distinct IDs and runs the round-robin
// broadcast, returning per-node informed rounds and the completion round.
func RunRoundRobin(g *graph.Graph, source int, mu string) (*Outcome, error) {
	return RunRoundRobinTuned(g, source, mu, nil)
}

// RunRoundRobinTuned is RunRoundRobin with engine tuning (may be nil).
func RunRoundRobinTuned(g *graph.Graph, source int, mu string, tune *radio.Tuning) (*Outcome, error) {
	labels := RoundRobinLabels(g.N())
	ps := NewRoundRobinProtocols(labels, source, mu)
	maxRounds := SlottedMaxRounds(g, source, idWidth(g.N()))
	return Observe(g, ps, source, maxRounds, labels, tune)
}

// SlottedMaxRounds bounds a slotted (round-robin / colour-robin) run: one
// full 2^labelBits period per BFS layer, with slack.
func SlottedMaxRounds(g *graph.Graph, source, labelBits int) int {
	return (1 << uint(labelBits)) * (g.Eccentricity(source) + 2)
}

// FloodingMaxRounds bounds a delayed-flooding run.
func FloodingMaxRounds(n int) int { return 3*n + 8 }

// Outcome is the shared result shape for all baseline runs.
type Outcome struct {
	Result          *radio.Result
	Labels          []core.Label
	InformedRound   []int
	AllInformed     bool
	CompletionRound int
	LabelBits       int
}

func Observe(g *graph.Graph, ps []radio.Protocol, source, maxRounds int, labels []core.Label, tune *radio.Tuning) (*Outcome, error) {
	n := g.N()
	informed := make([]int, n)
	// remaining counts the uninformed non-source nodes; observers decrement
	// it atomically (they run inside the engine's phase-1 workers), making
	// the stop predicate O(1) instead of an O(n) rescan every round.
	remaining := int64(n - 1)
	done := func(int) bool {
		return atomic.LoadInt64(&remaining) <= 0
	}
	res := radio.Run(g, wrapObservers(ps, informed, source, &remaining), radio.Options{
		MaxRounds: maxRounds,
		Stop:      done,
	}.With(tune))
	out := &Outcome{
		Result: res, Labels: labels, InformedRound: informed,
		AllInformed: true, LabelBits: core.MaxLen(labels),
	}
	for v := 0; v < n; v++ {
		if v == source {
			continue
		}
		if informed[v] == 0 {
			out.AllInformed = false
		}
		if informed[v] > out.CompletionRound {
			out.CompletionRound = informed[v]
		}
	}
	if !out.AllInformed {
		return out, fmt.Errorf("baseline: broadcast incomplete after %d rounds", res.Rounds)
	}
	return out, nil
}

// observer wraps a protocol to record the round of first data reception.
type observer struct {
	inner     radio.Protocol
	informed  *int
	remaining *int64 // decremented on first reception; nil at the source
	round     int
}

func (o *observer) Step(rcv *radio.Message) radio.Action {
	o.round++
	if rcv != nil && rcv.Kind == radio.KindData && *o.informed == 0 {
		*o.informed = o.round - 1
		if o.remaining != nil {
			atomic.AddInt64(o.remaining, -1)
		}
	}
	return o.inner.Step(rcv)
}

// wakerObserver additionally forwards the inner protocol's sparse-wakeup
// contract, keeping its own round counter in sync through Skip. A skipped
// round heard nothing, so no reception goes unrecorded.
type wakerObserver struct {
	observer
	w radio.Waker
}

func (o *wakerObserver) NextWake() int { return o.w.NextWake() }

func (o *wakerObserver) Skip(rounds int) {
	o.round += rounds
	o.w.Skip(rounds)
}

func wrapObservers(ps []radio.Protocol, informed []int, source int, remaining *int64) []radio.Protocol {
	out := make([]radio.Protocol, len(ps))
	wakers := 0
	for _, p := range ps {
		if _, ok := p.(radio.Waker); ok {
			wakers++
		}
	}
	wobs := make([]wakerObserver, wakers)
	obs := make([]observer, len(ps)-wakers)
	wi, oi := 0, 0
	for v := range ps {
		o := observer{inner: ps[v], informed: &informed[v]}
		if v != source {
			o.remaining = remaining
		}
		if w, ok := ps[v].(radio.Waker); ok {
			wobs[wi] = wakerObserver{observer: o, w: w}
			out[v] = &wobs[wi]
			wi++
		} else {
			obs[oi] = o
			out[v] = &obs[oi]
			oi++
		}
	}
	return out
}
