// Package cdetect implements the collision-detection remark of the paper's
// §1.1: "If collision detection is available, broadcast is trivially
// feasible, even in anonymous networks: consecutive bits of the source
// message can be transmitted by a sequence of silent and noisy rounds,
// using silence as 0 and a message or collision as 1."
//
// The protocol is fully anonymous — no labels, all non-source nodes run the
// same program — and works on every connected graph, in deliberate contrast
// with the four-cycle impossibility of the label-free model without
// collision detection (package anonymity).
//
// Mechanism (a distance-pipelined beep wave): let d(v) be v's BFS distance
// from the source and let bits[0..L-1] be the self-delimiting encoding of µ
// (a start bit, a 16-bit length field, then the payload bits). The source
// (distance class 0) transmits bit k in round 3k+1 iff bits[k] = 1; a node
// of class d first detects noise in round d (the start bit, which is always
// 1), thereby learning d, then reads bit k as the noise flag of round
// 3k + d and relays it in round 3k + d + 1. Classes are scheduled modulo 3,
// so a listener's only transmitting neighbours in its read rounds are in
// class d−1: noise ⟺ bit = 1, with no interference from its own class
// (same schedule) or class d+1 (round ≡ d+2 mod 3). Simultaneous
// transmissions within class d−1 are constructive — a collision still reads
// as "noise", which is exactly the paper's point.
package cdetect

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// Encode converts µ to the bit stream sent on the channel: start bit 1,
// 16-bit big-endian payload length (in bits), then the payload MSB-first.
func Encode(mu string) []bool {
	payload := []byte(mu)
	l := 8 * len(payload)
	if l >= 1<<16 {
		panic(fmt.Sprintf("cdetect: message too long (%d bits)", l))
	}
	bits := make([]bool, 0, 17+l)
	bits = append(bits, true) // start bit
	for i := 15; i >= 0; i-- {
		bits = append(bits, l&(1<<uint(i)) != 0)
	}
	for _, b := range payload {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b&(1<<uint(i)) != 0)
		}
	}
	return bits
}

// Decode inverts Encode. ok is false if the stream is malformed.
func Decode(bits []bool) (mu string, ok bool) {
	if len(bits) < 17 || !bits[0] {
		return "", false
	}
	l := 0
	for i := 1; i <= 16; i++ {
		l <<= 1
		if bits[i] {
			l |= 1
		}
	}
	if l%8 != 0 || len(bits) < 17+l {
		return "", false
	}
	payload := make([]byte, l/8)
	for i := 0; i < l; i++ {
		if bits[17+i] {
			payload[i/8] |= 1 << uint(7-i%8)
		}
	}
	return string(payload), true
}

// Beep is the anonymous collision-detection protocol run at each node.
// All nodes are identical except that the source holds µ.
type Beep struct {
	isSource bool
	bits     []bool // source: full encoding; others: filled in as read

	round    int
	synced   bool
	d        int // first-noise round = BFS distance class
	expected int // number of bits the stream will carry (known after header)

	// Done reports the node decoded µ; Mu is the decoded payload;
	// DoneRound is the round its final bit arrived.
	Done      bool
	Mu        string
	DoneRound int
}

// NewBeep builds the protocol; sourceMsg is non-nil at the source only.
func NewBeep(sourceMsg *string) *Beep {
	b := &Beep{expected: -1}
	if sourceMsg != nil {
		b.isSource = true
		b.bits = Encode(*sourceMsg)
		b.Mu = *sourceMsg
		b.Done = true
	}
	return b
}

// beepMsg is the (contentless) frame used for noise; its payload is never
// read — only the busy flag matters.
var beepMsg = radio.Message{Kind: radio.KindData}

// Step satisfies radio.Protocol so Beep fits the engine's protocol slice;
// the engine always routes collision-detection protocols through StepNoise,
// so this must never be called.
func (b *Beep) Step(*radio.Message) radio.Action {
	panic("cdetect: Beep needs the collision-detection engine path (StepNoise)")
}

// StepNoise implements radio.NoiseProtocol.
func (b *Beep) StepNoise(_ *radio.Message, busyPrev bool) radio.Action {
	b.round++
	r := b.round

	if b.isSource {
		// Transmit bit k in round 3k+1.
		if (r-1)%3 == 0 {
			k := (r - 1) / 3
			if k < len(b.bits) && b.bits[k] {
				return radio.Send(beepMsg)
			}
		}
		return radio.Listen
	}

	// Synchronisation: the first noise ever heard is the start bit,
	// arriving in round d (processed at Step d+1). Fall through: round
	// d+1 is also this node's relay round for bit 0.
	if !b.synced {
		if !busyPrev {
			return radio.Listen
		}
		b.synced = true
		b.d = r - 1
		b.bits = append(b.bits, true) // bit 0 = start bit
	}

	// Read rounds: bit k arrives in round 3k + d; we see its flag while
	// deciding round 3k + d + 1 — which is also the relay round for bit k.
	if (r-1-b.d)%3 == 0 && r-1 > b.d {
		k := (r - 1 - b.d) / 3
		if k == len(b.bits) && !b.finished() {
			b.bits = append(b.bits, busyPrev)
			b.afterRead(r - 1)
		}
	}
	// Relay round for bit k is 3k + d + 1.
	if (r-b.d-1)%3 == 0 {
		k := (r - b.d - 1) / 3
		if k < len(b.bits) && b.bits[k] {
			return radio.Send(beepMsg)
		}
	}
	return radio.Listen
}

// finished reports whether all expected bits have been read.
func (b *Beep) finished() bool {
	return b.expected >= 0 && len(b.bits) >= b.expected
}

func (b *Beep) afterRead(round int) {
	if b.expected < 0 && len(b.bits) == 17 {
		// Header complete: learn the stream length.
		l := 0
		for i := 1; i <= 16; i++ {
			l <<= 1
			if b.bits[i] {
				l |= 1
			}
		}
		b.expected = 17 + l
	}
	if b.finished() && !b.Done {
		if mu, ok := Decode(b.bits); ok {
			b.Done = true
			b.Mu = mu
			b.DoneRound = round
		}
	}
}

// Outcome summarises an anonymous collision-detection broadcast.
type Outcome struct {
	Result      *radio.Result
	Mu          string
	AllDecoded  bool
	DoneRound   []int // per node round its last bit arrived (0 = source)
	TotalRounds int
	BitsSent    int // length of the encoded stream
}

// Run broadcasts mu from source over g using the anonymous beep protocol
// and verifies every node decodes it.
func Run(g *graph.Graph, source int, mu string) (*Outcome, error) {
	n := g.N()
	ps := make([]radio.Protocol, n)
	nodes := make([]*Beep, n)
	for v := 0; v < n; v++ {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = NewBeep(src)
		ps[v] = nodes[v]
	}
	bits := len(Encode(mu))
	ecc := g.Eccentricity(source)
	maxRounds := 3*(bits+2) + ecc + 6
	res := radio.Run(g, ps, radio.Options{
		MaxRounds: maxRounds,
		Stop: func(int) bool {
			for _, nd := range nodes {
				if !nd.Done {
					return false
				}
			}
			return true
		},
	})
	out := &Outcome{Result: res, Mu: mu, AllDecoded: true, DoneRound: make([]int, n), TotalRounds: res.Rounds, BitsSent: bits}
	for v, nd := range nodes {
		if !nd.Done || nd.Mu != mu {
			out.AllDecoded = false
		}
		out.DoneRound[v] = nd.DoneRound
	}
	if !out.AllDecoded {
		return out, fmt.Errorf("cdetect: broadcast incomplete after %d rounds", res.Rounds)
	}
	return out, nil
}
