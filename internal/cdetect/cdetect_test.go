package cdetect

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, mu := range []string{"", "a", "hello", "µ-unicode-ok", "0123456789abcdef"} {
		bits := Encode(mu)
		got, ok := Decode(bits)
		if !ok || got != mu {
			t.Fatalf("round trip of %q failed: %q, %v", mu, got, ok)
		}
		if len(bits) != 17+8*len([]byte(mu)) {
			t.Fatalf("encoding length %d for %q", len(bits), mu)
		}
		if !bits[0] {
			t.Fatal("start bit must be 1")
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, ok := Decode(nil); ok {
		t.Fatal("decoded empty stream")
	}
	bits := Encode("x")
	bits[0] = false // broken start bit
	if _, ok := Decode(bits); ok {
		t.Fatal("decoded stream without start bit")
	}
	if _, ok := Decode(Encode("xy")[:20]); ok {
		t.Fatal("decoded truncated stream")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(mu string) bool {
		if len(mu) > 1000 {
			mu = mu[:1000]
		}
		got, ok := Decode(Encode(mu))
		return ok && got == mu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymousBroadcastFourCycle(t *testing.T) {
	// The headline contrast: C4 is impossible without collision detection
	// (package anonymity), but trivial with it — anonymously.
	out, err := Run(graph.Cycle(4), 0, "beep")
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDecoded {
		t.Fatal("four-cycle anonymous broadcast incomplete")
	}
}

func TestAnonymousBroadcastFamilies(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](20)
		out, err := Run(g, 0, "msg")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.AllDecoded {
			t.Fatalf("%s: incomplete", name)
		}
	}
}

func TestAnonymousBroadcastAllSources(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(5), graph.Grid(3, 3), graph.Figure1(), graph.Complete(5),
	} {
		for src := 0; src < g.N(); src++ {
			out, err := Run(g, src, "m")
			if err != nil {
				t.Fatalf("src=%d: %v", src, err)
			}
			if !out.AllDecoded {
				t.Fatalf("src=%d: incomplete", src)
			}
		}
	}
}

func TestDoneRoundMatchesPipeline(t *testing.T) {
	// On a path, node at distance d decodes in round 3(L−1)+d.
	mu := "ab"
	g := graph.Path(6)
	out, err := Run(g, 0, mu)
	if err != nil {
		t.Fatal(err)
	}
	L := len(Encode(mu))
	for v := 1; v < 6; v++ {
		want := 3*(L-1) + v
		if out.DoneRound[v] != want {
			t.Fatalf("node %d decoded in round %d, want %d", v, out.DoneRound[v], want)
		}
	}
}

func TestQuickAnonymousRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%25)
		g := graph.GNPConnected(n, 0.25, seed)
		src := int(uint64(seed) % uint64(n))
		out, err := Run(g, src, "q")
		return err == nil && out.AllDecoded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNode(t *testing.T) {
	out, err := Run(graph.New(1), 0, "solo")
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDecoded {
		t.Fatal("single node should trivially hold µ")
	}
}

func TestLongMessage(t *testing.T) {
	mu := ""
	for i := 0; i < 64; i++ {
		mu += "x"
	}
	out, err := Run(graph.Path(4), 0, mu)
	if err != nil {
		t.Fatal(err)
	}
	if out.BitsSent != 17+8*64 {
		t.Fatalf("bits sent = %d", out.BitsSent)
	}
}

func TestEncodeTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized message")
		}
	}()
	big := make([]byte, 1<<13)
	Encode(string(big))
}
