// Package cliutil holds the flag conventions shared by the four binaries
// (radiosim, labeler, experiments, radiobcastd): a uniform -version flag
// backed by module build info, and common -addr/-timeout flag
// registrations so the flags read identically across tools.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Version renders the binary's build identity from the module build info:
// module version (or "devel"), VCS revision and dirty marker when stamped,
// and the Go toolchain. It never fails — binaries built without build
// info (go test binaries, exotic builds) report "unknown".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fmt.Sprintf("unknown (%s)", runtime.Version())
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	out := ver
	if rev != "" {
		out += " " + rev + dirty
	}
	return fmt.Sprintf("%s (%s)", out, runtime.Version())
}

// VersionFlag registers the conventional -version flag on the default
// FlagSet. Call the returned function right after flag.Parse: it prints
// "<name> <version>" and exits 0 when the flag was given.
func VersionFlag(name string) func() {
	v := flag.Bool("version", false, "print version (module build info) and exit")
	return func() {
		if *v {
			fmt.Printf("%s %s\n", name, Version())
			os.Exit(0)
		}
	}
}

// AddrFlag registers the conventional -addr flag (listen address).
func AddrFlag(def string) *string {
	return flag.String("addr", def, "listen address (host:port; empty host binds all interfaces)")
}

// TimeoutFlag registers the conventional -timeout flag. What the bound
// covers is per-binary (whole job for radiosim/labeler, per request for
// radiobcastd), so the caller supplies that half of the usage string.
func TimeoutFlag(def time.Duration, covers string) *time.Duration {
	return flag.Duration("timeout", def, fmt.Sprintf("abort %s after this duration (0 = no limit)", covers))
}
