package cliutil

import (
	"runtime"
	"strings"
	"testing"
)

func TestVersionNeverEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() returned an empty string")
	}
	// Whatever build info is (or isn't) stamped, the toolchain is always
	// reported.
	if !strings.Contains(v, runtime.Version()) {
		t.Fatalf("Version() = %q, missing toolchain %q", v, runtime.Version())
	}
}
