package core

import (
	"radiobcast/internal/radio"
)

// AlgB is the universal deterministic broadcast algorithm B (Algorithm 1)
// run at a single node. It is a faithful transcription of the paper's
// pseudocode: decisions depend only on the node's 2-bit label and on the
// rounds (relative to its own history) in which it received µ or "stay".
//
// Construct with NewAlgB; the zero value is not usable.
type AlgB struct {
	label    Label
	isSource bool

	round      int    // local round counter (number of Step calls)
	msg        string // sourcemsg; "" = null
	haveMsg    bool
	everActive bool // "never sent or received a message" guard
	informedAt int  // round of first µ reception (−1 for the source / never)
	lastDataTx int  // last round this node transmitted µ (−1 = never)
	stayAt     int  // round of the most recent "stay" reception (−1 = never)
}

// NewAlgB returns node state for algorithm B. A node is the source iff
// sourceMsg is non-nil; its label is the 2-bit λ label.
func NewAlgB(label Label, sourceMsg *string) *AlgB {
	a := &AlgB{label: label, informedAt: -1, lastDataTx: -1, stayAt: -1}
	if sourceMsg != nil {
		a.isSource = true
		a.haveMsg = true
		a.msg = *sourceMsg
	}
	return a
}

// Informed reports whether the node holds µ, and the round it first
// received it (0 for the source).
func (a *AlgB) Informed() (bool, int) {
	if a.isSource {
		return true, 0
	}
	if a.informedAt > 0 {
		return true, a.informedAt
	}
	return false, 0
}

// Message returns the node's current sourcemsg ("" if uninformed).
func (a *AlgB) Message() string { return a.msg }

// Step implements radio.Protocol, mirroring Algorithm 1 line by line.
func (a *AlgB) Step(rcv *radio.Message) radio.Action {
	a.round++
	r := a.round

	if rcv != nil {
		a.everActive = true
		switch rcv.Kind {
		case radio.KindData:
			// line 5-7: adopt µ on first reception of a non-"stay" message
			if !a.haveMsg {
				a.haveMsg = true
				a.msg = rcv.Payload
				a.informedAt = r - 1
			}
		case radio.KindStay:
			a.stayAt = r - 1
		}
	}

	switch {
	case !a.everActive && a.haveMsg:
		// lines 2-3: the source transmits µ in its first round
		a.everActive = true
		a.lastDataTx = r
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg})

	case !a.haveMsg:
		// line 4: still uninformed — listen
		return radio.Listen

	case a.informedAt > 0 && a.informedAt == r-2:
		// lines 9-12: first received µ two rounds ago
		if a.label.X1() {
			a.lastDataTx = r
			return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg})
		}
		return radio.Listen

	case a.informedAt > 0 && a.informedAt == r-1:
		// lines 13-16: first received µ one round ago
		if a.label.X2() {
			return radio.Send(radio.Message{Kind: radio.KindStay})
		}
		return radio.Listen

	case a.lastDataTx > 0 && a.lastDataTx == r-2 && a.stayAt == r-1:
		// lines 17-19: transmitted µ two rounds ago and heard "stay" since
		a.lastDataTx = r
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg})

	default:
		return radio.Listen
	}
}

// NextWake implements radio.Waker. B is reactive: beyond the source's
// opening transmission (round 1 is always stepped), a node acts only in
// the two rounds after its first µ reception — the "stay" decision at
// informedAt+1 and the retransmission decision at informedAt+2; the
// lines 17-19 retransmission is triggered by a "stay" heard in the
// previous round, which forces a step by itself.
func (a *AlgB) NextWake() int {
	if a.informedAt > 0 {
		if w := a.informedAt + 1; w > a.round {
			return w
		}
		if w := a.informedAt + 2; w > a.round {
			return w
		}
	}
	return radio.NeverWake
}

// Skip implements radio.Waker.
func (a *AlgB) Skip(rounds int) { a.round += rounds }

// NewBProtocols builds one AlgB instance per node for the given labeling
// and source message. The instances are carved from one bulk allocation,
// so a label-once/run-many loop stays allocation-light.
func NewBProtocols(labels []Label, source int, mu string) []radio.Protocol {
	nodes := make([]AlgB, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewAlgB(labels[v], src)
		ps[v] = &nodes[v]
	}
	return ps
}
