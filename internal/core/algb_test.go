package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

func TestAlgBFigure1Golden(t *testing.T) {
	// The flagship golden test: algorithm B on the Figure 1 reconstruction
	// must reproduce the paper's transmit schedule and informed rounds.
	g := graph.Figure1()
	out, err := RunBroadcast(g, graph.Figure1Source, "mu", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBroadcast(out, "mu"); err != nil {
		t.Fatal(err)
	}
	for v, want := range graph.Figure1Transmits {
		got := out.Result.Transmits[v]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("transmits(%d) = %v, want %v", v, got, want)
		}
	}
	for v, want := range graph.Figure1InformedRounds {
		if out.InformedRound[v] != want {
			t.Errorf("informed(%d) = %d, want %d", v, out.InformedRound[v], want)
		}
	}
	if out.CompletionRound != 7 {
		t.Errorf("completion = %d, want 7 (= 2ℓ−3 with ℓ=5)", out.CompletionRound)
	}
}

func TestAlgBSingleEdge(t *testing.T) {
	out, err := RunBroadcast(graph.Path(2), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBroadcast(out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.CompletionRound != 1 {
		t.Fatalf("completion = %d, want 1 = 2n−3", out.CompletionRound)
	}
}

func TestAlgBSingleNode(t *testing.T) {
	out, err := RunBroadcast(graph.New(1), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed || out.CompletionRound != 0 {
		t.Fatal("single-node broadcast should be trivially complete")
	}
}

func TestAlgBPathTiming(t *testing.T) {
	// Path from an endpoint: node i is informed in round 2i−1.
	out, err := RunBroadcast(graph.Path(6), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 6; v++ {
		if out.InformedRound[v] != 2*v-1 {
			t.Fatalf("informed(%d) = %d, want %d", v, out.InformedRound[v], 2*v-1)
		}
	}
	if err := VerifyBroadcast(out, "m"); err != nil {
		t.Fatal(err)
	}
}

func TestAlgBFourCycleWithLabels(t *testing.T) {
	// The four-cycle is the impossibility example *without* labels; with λ
	// it must complete (one of the two source neighbours is pruned from
	// DOM_2, breaking the fatal symmetry).
	out, err := RunBroadcast(graph.Cycle(4), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBroadcast(out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.CompletionRound != 3 {
		t.Fatalf("C4 completion = %d, want 3", out.CompletionRound)
	}
}

func TestAlgBAllSourcesSmallGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"C4":      graph.Cycle(4),
		"C5":      graph.Cycle(5),
		"K4":      graph.Complete(4),
		"P5":      graph.Path(5),
		"star6":   graph.Star(6),
		"grid3x3": graph.Grid(3, 3),
		"K2,3":    graph.CompleteBipartite(2, 3),
		"wheel6":  graph.Wheel(6),
		"Q3":      graph.Hypercube(3),
		"fig1":    graph.Figure1(),
	}
	for name, g := range graphs {
		for src := 0; src < g.N(); src++ {
			out, err := RunBroadcast(g, src, "m", BuildOptions{})
			if err != nil {
				t.Fatalf("%s src=%d: %v", name, src, err)
			}
			if err := VerifyBroadcast(out, "m"); err != nil {
				t.Fatalf("%s src=%d: %v", name, src, err)
			}
		}
	}
}

func TestAlgBAllFamiliesAllOrders(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](40)
		for _, order := range domset.Orders {
			out, err := RunBroadcast(g, 0, "m", BuildOptions{Order: order})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
			if err := VerifyBroadcast(out, "m"); err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
		}
	}
}

func TestAlgBQuickRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%60)
		g := graph.GNPConnected(n, 0.18, seed)
		src := int(uint64(seed) % uint64(n))
		out, err := RunBroadcast(g, src, "m", BuildOptions{})
		if err != nil {
			return false
		}
		return VerifyBroadcast(out, "m") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgBLemma28Characterisation(t *testing.T) {
	// Lemma 2.8: in odd round 2i−1 exactly DOM_i transmits; in even round
	// 2i exactly the x2-labeled members of NEW_i transmit "stay".
	g := graph.Figure1()
	l := mustLambda(t, g, graph.Figure1Source)
	out, err := RunBroadcastLabeled(g, l, graph.Figure1Source, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= l.Stages.NumStored(); i++ {
		stage := l.Stages.Stage(i)
		round := 2*i - 1
		for v := 0; v < g.N(); v++ {
			transmitted := containsInt(out.Result.Transmits[v], round)
			if transmitted != stage.Dom.Has(v) {
				t.Fatalf("round %d: node %d transmitted=%v but DOM_%d membership=%v",
					round, v, transmitted, i, stage.Dom.Has(v))
			}
		}
		// Even round 2i: stays from x2-labeled NEW_i members.
		for v := 0; v < g.N(); v++ {
			transmitted := containsInt(out.Result.Transmits[v], 2*i)
			want := stage.New.Has(v) && l.Labels[v].X2()
			if transmitted != want {
				t.Fatalf("round %d: node %d stay=%v, want %v", 2*i, v, transmitted, want)
			}
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestAlgBMessageSizeConstant(t *testing.T) {
	// B's messages are the source message or "stay": their size must not
	// grow with n (§1.1 "much smaller messages will suffice").
	for _, n := range []int{8, 64, 256} {
		out, err := RunBroadcast(graph.Path(n), 0, "m", BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Result.MaxMessageBits > 3+8 {
			t.Fatalf("n=%d: B message bits = %d, want ≤ 11", n, out.Result.MaxMessageBits)
		}
	}
}

func TestAlgBUninformedIgnoresStay(t *testing.T) {
	// A node that hears only "stay" messages must remain uninformed
	// (Algorithm 1 line 5).
	g := graph.Path(2)
	ps := []radio.Protocol{
		radio.NewScripted(radio.Message{Kind: radio.KindStay}, 1, 2, 3),
		NewAlgB(Label("11"), nil),
	}
	res := radio.Run(g, ps, radio.Options{MaxRounds: 6})
	b := ps[1].(*AlgB)
	if ok, _ := b.Informed(); ok {
		t.Fatal("node adopted a stay message as µ")
	}
	if len(res.Transmits[1]) != 0 {
		t.Fatal("uninformed node transmitted")
	}
}

func TestAlgBZeroLabelNeverTransmits(t *testing.T) {
	// A 00-labeled non-source node receives µ but never transmits.
	g := graph.Path(2)
	mu := "m"
	ps := []radio.Protocol{
		NewAlgB(Label("10"), &mu),
		NewAlgB(Label("00"), nil),
	}
	res := radio.Run(g, ps, radio.Options{MaxRounds: 8, StopAfterSilent: 3})
	if len(res.Transmits[1]) != 0 {
		t.Fatalf("00-labeled node transmitted at %v", res.Transmits[1])
	}
	if got := res.FirstReception(1, radio.KindData); got != 1 {
		t.Fatalf("reception round = %d, want 1", got)
	}
}

func TestAlgBInformedAccessors(t *testing.T) {
	mu := "m"
	src := NewAlgB(Label("10"), &mu)
	if ok, r := src.Informed(); !ok || r != 0 {
		t.Fatal("source must be informed at round 0")
	}
	if src.Message() != "m" {
		t.Fatal("source message wrong")
	}
	other := NewAlgB(Label("00"), nil)
	if ok, _ := other.Informed(); ok {
		t.Fatal("fresh node must be uninformed")
	}
}
