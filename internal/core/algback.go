package core

import (
	"radiobcast/internal/radio"
)

// AlgBack is the acknowledged broadcast algorithm Back (Algorithm 2) run at
// a single node. Beyond B it maintains informedRound (learned from the
// timestamp appended to the first received µ message, Lemma 3.5) and
// transmitRounds (the rounds in which it transmitted µ), and implements the
// acknowledgement chain: the unique node with x3 = 1 starts an "ack"
// carrying its informedRound; a node that transmitted µ in exactly that
// round relays an ack carrying its own informedRound; the chain's round
// numbers strictly decrease (Lemma 3.7) until the source is reached.
type AlgBack struct {
	label    Label
	isSource bool

	round      int
	msg        string
	haveMsg    bool
	everActive bool

	informedRound int // timestamp of first µ reception (−1 = source/never)
	firstRecv     int // local round of first µ reception (−1 = never)
	lastDataTx    int // local round of last µ transmission (−1 = never)
	lastDataTxTS  int // timestamp attached to that transmission
	stayAt        int // local round of last "stay" reception (−1 = never)
	stayTS        int
	ackAt         int // local round of last "ack" reception (−1 = never)
	ackTS         int
	transmitTS    []int // timestamps of own µ transmissions (few entries)

	// AckDone reports, at the source, that an "ack" arrived; AckRound is
	// the local round of that arrival (§3.2, Corollary 3.8).
	AckDone  bool
	AckRound int
}

// NewAlgBack returns node state for algorithm Back with a 3-bit λack label.
func NewAlgBack(label Label, sourceMsg *string) *AlgBack {
	a := &AlgBack{
		label:         label,
		informedRound: -1,
		firstRecv:     -1,
		lastDataTx:    -1,
		stayAt:        -1,
		ackAt:         -1,
	}
	if sourceMsg != nil {
		a.isSource = true
		a.haveMsg = true
		a.msg = *sourceMsg
	}
	return a
}

// Informed reports whether the node holds µ and its informedRound.
func (a *AlgBack) Informed() (bool, int) {
	if a.isSource {
		return true, 0
	}
	if a.firstRecv > 0 {
		return true, a.informedRound
	}
	return false, 0
}

// Step implements radio.Protocol, mirroring Algorithm 2.
func (a *AlgBack) Step(rcv *radio.Message) radio.Action {
	a.round++
	r := a.round

	if rcv != nil {
		a.everActive = true
		switch rcv.Kind {
		case radio.KindData:
			// lines 7-10: adopt µ and record the appended round number.
			// (Algorithm 2 accepts any m ≠ "stay"; restricting to data
			// messages is equivalent by Observation 3.3 and robust.)
			if !a.haveMsg {
				a.haveMsg = true
				a.msg = rcv.Payload
				a.informedRound = rcv.TS
				a.firstRecv = r - 1
			}
		case radio.KindStay:
			a.stayAt = r - 1
			a.stayTS = rcv.TS
		case radio.KindAck:
			if a.isSource {
				// The source's ack reception ends the algorithm (§3.2).
				if !a.AckDone {
					a.AckDone = true
					a.AckRound = r - 1
				}
			} else {
				a.ackAt = r - 1
				a.ackTS = rcv.TS
			}
		}
	}

	switch {
	case !a.everActive && a.haveMsg:
		// lines 4-5: source transmits (µ, 1) in its first round.
		a.everActive = true
		a.lastDataTx = r
		a.lastDataTxTS = 1
		a.transmitTS = append(a.transmitTS, 1)
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg, TS: 1})

	case !a.haveMsg:
		return radio.Listen

	case a.firstRecv > 0 && a.firstRecv == r-2:
		// lines 12-16
		if a.label.X1() {
			ts := a.informedRound + 2
			a.lastDataTx = r
			a.lastDataTxTS = ts
			a.transmitTS = append(a.transmitTS, ts)
			return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg, TS: ts})
		}
		return radio.Listen

	case a.firstRecv > 0 && a.firstRecv == r-1:
		// lines 17-22
		if a.label.X3() {
			return radio.Send(radio.Message{Kind: radio.KindAck, TS: a.informedRound})
		}
		if a.label.X2() {
			return radio.Send(radio.Message{Kind: radio.KindStay, TS: a.informedRound + 1})
		}
		return radio.Listen

	case a.stayAt == r-1 && a.lastDataTx == r-2:
		// lines 23-27
		ts := a.stayTS + 1
		a.lastDataTx = r
		a.lastDataTxTS = ts
		a.transmitTS = append(a.transmitTS, ts)
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: a.msg, TS: ts})

	case a.ackAt == r-1 && !a.isSource && a.sentWithTS(a.ackTS):
		// lines 28-31: relay the ack with our own informedRound.
		return radio.Send(radio.Message{Kind: radio.KindAck, TS: a.informedRound})

	default:
		return radio.Listen
	}
}

// sentWithTS reports whether the node transmitted µ with timestamp ts.
func (a *AlgBack) sentWithTS(ts int) bool {
	for _, t := range a.transmitTS {
		if t == ts {
			return true
		}
	}
	return false
}

// NextWake implements radio.Waker. Like B, Back is reactive: beyond the
// source's opening transmission (round 1 is always stepped), spontaneous
// actions happen only in the two rounds after the first µ reception
// (ack/stay at firstRecv+1, retransmission at firstRecv+2); the remaining
// transmissions are triggered by a "stay" or "ack" heard one round
// earlier, which forces a step by itself.
func (a *AlgBack) NextWake() int {
	if a.firstRecv > 0 {
		if w := a.firstRecv + 1; w > a.round {
			return w
		}
		if w := a.firstRecv + 2; w > a.round {
			return w
		}
	}
	return radio.NeverWake
}

// Skip implements radio.Waker.
func (a *AlgBack) Skip(rounds int) { a.round += rounds }

// NewBackProtocols builds one AlgBack instance per node, carved from one
// bulk allocation.
func NewBackProtocols(labels []Label, source int, mu string) []radio.Protocol {
	nodes := make([]AlgBack, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewAlgBack(labels[v], src)
		ps[v] = &nodes[v]
	}
	return ps
}
