package core

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

func TestAlgBackSingleEdge(t *testing.T) {
	// n=2: v informed in round 1 = 2ℓ−3 (ℓ=2); z = v transmits (ack,1) in
	// round 2 = 2ℓ−2; the source hears it.
	out, err := RunAcknowledged(graph.Path(2), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAcknowledged(out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.AckRound != 2 {
		t.Fatalf("ack round = %d, want 2", out.AckRound)
	}
	if out.Z != 1 {
		t.Fatalf("z = %d, want 1", out.Z)
	}
}

func TestAlgBackFigure1(t *testing.T) {
	// ℓ=5: completion in round 7, ack window {2ℓ−2..3ℓ−4} = {8..11}.
	out, err := RunAcknowledged(graph.Figure1(), graph.Figure1Source, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAcknowledged(out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.CompletionRound != 7 {
		t.Fatalf("completion = %d, want 7", out.CompletionRound)
	}
	if out.AckRound < 8 || out.AckRound > 11 {
		t.Fatalf("ack round = %d, want within [8,11]", out.AckRound)
	}
	// z must be node 12 (the unique last-informed node).
	if out.Z != 12 {
		t.Fatalf("z = %d, want 12", out.Z)
	}
}

func TestAlgBackPath(t *testing.T) {
	// Path from an endpoint: ℓ = n; broadcast t = 2n−3; the ack chain walks
	// back hop by hop: t′ = 3ℓ−4 exactly.
	n := 7
	out, err := RunAcknowledged(graph.Path(n), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAcknowledged(out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.CompletionRound != 2*n-3 {
		t.Fatalf("completion = %d, want %d", out.CompletionRound, 2*n-3)
	}
	if out.AckRound != 3*n-4 {
		t.Fatalf("ack = %d, want 3n−4 = %d", out.AckRound, 3*n-4)
	}
}

func TestAlgBackTheorem39Window(t *testing.T) {
	// Theorem 3.9 in terms of n: t ≤ 2n−3 and t′ ∈ {t+1, …, t+n−2}.
	//
	// Reproduction finding: the upper bound t+n−2 is off by one. The ack
	// delay is t′ − t = ℓ − 1 (Corollary 3.8), and ℓ = n is attainable (a
	// path with the source at an endpoint), giving t′ = t + n − 1. The
	// corrected n-based window {t+1, …, t+n−1} is what we verify here; the
	// exact ℓ-based window of Corollary 3.8 is verified in
	// VerifyAcknowledged. See EXPERIMENTS.md §T39.
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](30)
		n := g.N()
		if n < 3 {
			continue
		}
		out, err := RunAcknowledged(g, 0, "m", BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyAcknowledged(out, "m"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tC, tA := out.CompletionRound, out.AckRound
		if tC > 2*n-3 {
			t.Fatalf("%s: t = %d > 2n−3 = %d", name, tC, 2*n-3)
		}
		if tA < tC+1 || tA > tC+n-1 {
			t.Fatalf("%s: t′ = %d outside {t+1..t+n−1} = {%d..%d}", name, tA, tC+1, tC+n-1)
		}
	}
}

func TestAlgBackQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%50)
		g := graph.GNPConnected(n, 0.2, seed)
		src := int(uint64(seed) % uint64(n))
		out, err := RunAcknowledged(g, src, "m", BuildOptions{})
		if err != nil {
			return false
		}
		return VerifyAcknowledged(out, "m") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgBackAllSourcesSmall(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(5), graph.Grid(3, 3), graph.Complete(5), graph.Figure1(),
	} {
		for src := 0; src < g.N(); src++ {
			out, err := RunAcknowledged(g, src, "m", BuildOptions{})
			if err != nil {
				t.Fatalf("src=%d: %v", src, err)
			}
			if err := VerifyAcknowledged(out, "m"); err != nil {
				t.Fatalf("src=%d: %v", src, err)
			}
		}
	}
}

func TestAlgBackTimestampsMatchRounds(t *testing.T) {
	// Lemma 3.5: a message (µ, t) or ("stay", t) is transmitted only in
	// round t. We check every traced transmission.
	g := graph.Figure1()
	l, err := LambdaAck(g, graph.Figure1Source, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ps := NewBackProtocols(l.Labels, graph.Figure1Source, "m")
	tr := &radio.Trace{}
	radio.Run(g, ps, radio.Options{MaxRounds: 40, StopAfterSilent: 3, Trace: tr})
	for _, round := range tr.Rounds {
		for _, tx := range round.Transmitters {
			if tx.Msg.Kind == radio.KindData || tx.Msg.Kind == radio.KindStay {
				if tx.Msg.TS != round.Round {
					t.Fatalf("round %d: %s transmitted with TS %d (Lemma 3.5 violated)",
						round.Round, tx.Msg.Kind, tx.Msg.TS)
				}
			}
		}
	}
}

func TestAlgBackAtMostOneTransmitterAfterBroadcast(t *testing.T) {
	// Lemma 3.6: after round 2ℓ−3 at most one node transmits per round.
	g := graph.Figure1()
	l, err := LambdaAck(g, graph.Figure1Source, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ps := NewBackProtocols(l.Labels, graph.Figure1Source, "m")
	tr := &radio.Trace{}
	radio.Run(g, ps, radio.Options{MaxRounds: 40, StopAfterSilent: 3, Trace: tr})
	cutoff := 2*l.Stages.L - 3
	for _, round := range tr.Rounds {
		if round.Round > cutoff && len(round.Transmitters) > 1 {
			t.Fatalf("round %d: %d transmitters after broadcast end (Lemma 3.6)",
				round.Round, len(round.Transmitters))
		}
	}
}

func TestAlgBackMessageSizeLogN(t *testing.T) {
	// Back's messages carry an O(log n) timestamp: bits grow
	// logarithmically, not linearly.
	bits64 := ackMaxBits(t, 64)
	bits512 := ackMaxBits(t, 512)
	if bits512 > bits64+4 {
		t.Fatalf("message bits grew too fast: n=64 → %d, n=512 → %d", bits64, bits512)
	}
}

func ackMaxBits(t *testing.T, n int) int {
	t.Helper()
	out, err := RunAcknowledged(graph.Path(n), 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return out.Result.MaxMessageBits
}

func TestAlgBackWrongZPrematureAck(t *testing.T) {
	// ABLZ ablation: choosing a z that is informed early makes the ack
	// arrive before broadcast completion, breaking acknowledgement — this
	// demonstrates why z must be a last-informed node.
	g := graph.Path(6)
	l, err := LambdaAckWithZ(g, 0, 1, BuildOptions{}) // node 1: informed in round 1
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAcknowledgedLabeled(g, l, 0, "m")
	if err != nil {
		t.Fatal(err)
	}
	if out.AckRound == 0 {
		t.Fatal("expected an (incorrectly early) ack")
	}
	if out.AckRound > out.CompletionRound {
		t.Fatalf("ack at %d after completion %d: expected premature ack with wrong z",
			out.AckRound, out.CompletionRound)
	}
}

func TestRunCommonRound(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(6), graph.Figure1(), graph.Grid(3, 3), graph.Cycle(7),
	} {
		out, err := RunCommonRound(g, 0, "m", BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCommonRound(out); err != nil {
			t.Fatal(err)
		}
		// m itself is the first ack round; 2m must exceed the second
		// broadcast's completion round.
		if out.CommonRound != 2*out.M {
			t.Fatalf("common round = %d, want 2m = %d", out.CommonRound, 2*out.M)
		}
	}
}

func TestAlgBackInformedAccessor(t *testing.T) {
	mu := "m"
	src := NewAlgBack(Label("100"), &mu)
	if ok, r := src.Informed(); !ok || r != 0 {
		t.Fatal("source accessor wrong")
	}
	other := NewAlgBack(Label("000"), nil)
	if ok, _ := other.Informed(); ok {
		t.Fatal("fresh node informed")
	}
}
