package core

import (
	"radiobcast/internal/radio"
)

// AlgBarb is the arbitrary-source algorithm of §4.2: the node labeled 111
// (the coordinator r chosen by λarb) drives three phases:
//
//  1. acknowledged broadcast of "initialize" from r; each node v stores the
//     timestamp t_v of its first "initialize"; the x3 node z appends T = t_z
//     to its ack, so r learns T when the ack arrives;
//  2. acknowledged broadcast of ("ready", T) from r, with z's ack
//     suppressed; instead the actual source sG, after receiving "ready",
//     waits T rounds and starts an ack chain carrying µ, so r learns µ;
//  3. plain broadcast (algorithm B) of µ from r. A node that receives µ in
//     this phase waits T − t_v further rounds, after which it knows that
//     every node has µ — all nodes reach this point in the same round,
//     which makes the broadcast acknowledged.
//
// When r itself holds µ, phase 2's ack fetch is unnecessary; r starts
// phase 3 after 2T+2 local rounds of phase 2, a documented benign deviation
// (see DESIGN.md).
type AlgBarb struct {
	label      Label
	isR        bool
	isMuSource bool
	mu         string
	haveMu     bool

	round int
	p     [3]*backPhase

	T     int
	haveT bool

	sgAckRound    int // absolute round at which sG transmits its phase-2 ack
	phase2StartAt int
	phase3StartAt int

	// MuKnownRound is the absolute round in which this node learned µ
	// (0 = held from the start). KnowsCompleteRound is the absolute round
	// from which the node knows that broadcast has completed (0 = not yet).
	MuKnownRound       int
	KnowsCompleteRound int
}

// NewAlgBarb returns node state for Barb. label is the λarb label; the node
// holding µ passes it via sourceMsg.
func NewAlgBarb(label Label, sourceMsg *string) *AlgBarb {
	a := &AlgBarb{label: label, isR: label == Label("111")}
	if sourceMsg != nil {
		a.isMuSource = true
		a.haveMu = true
		a.mu = *sourceMsg
	}
	a.p[0] = newBackPhase(1, radio.KindInit, label, a.isR, true, true)
	a.p[1] = newBackPhase(2, radio.KindReady, label, a.isR, false, true)
	a.p[2] = newBackPhase(3, radio.KindData, label, a.isR, false, false)
	return a
}

// Mu returns the source message if known.
func (a *AlgBarb) Mu() (string, bool) { return a.mu, a.haveMu }

// TValue returns the learned T (valid once haveT).
func (a *AlgBarb) TValue() (int, bool) { return a.T, a.haveT }

// Step implements radio.Protocol.
func (a *AlgBarb) Step(rcv *radio.Message) radio.Action {
	a.round++
	r := a.round

	if rcv != nil {
		if ph := int(rcv.Phase); ph >= 1 && ph <= 3 {
			a.p[ph-1].receive(rcv, r-1)
			a.react(ph, rcv, r-1)
		}
	}

	// Coordinator bootstrapping and phase transitions.
	if a.isR {
		if !a.p[0].started {
			return a.p[0].start(r, "initialize", 0)
		}
		if a.phase2StartAt == r {
			return a.p[1].start(r, "", a.T)
		}
		if a.phase3StartAt == r {
			// Phase-3 start: r knows completion T−1 rounds after this
			// transmission (its own phase-local reception round is 0).
			a.KnowsCompleteRound = r + a.T - 1
			return a.p[2].start(r, a.mu, 0)
		}
	}

	// sG's deferred phase-2 acknowledgement carrying µ.
	if a.sgAckRound == r {
		return radio.Send(radio.Message{
			Kind: radio.KindAck, TS: a.p[1].informedRound, Payload: a.mu, Phase: 2,
		})
	}

	// Standard per-phase duties; later phases take precedence (by the
	// phase-separation argument at most one phase is active per round).
	for i := 2; i >= 0; i-- {
		if act := a.p[i].action(r); act.Transmit {
			return act
		}
	}
	return radio.Listen
}

// react handles the node-level consequences of a reception (recorded at
// round recvRound, processed at the next Step).
func (a *AlgBarb) react(ph int, m *radio.Message, recvRound int) {
	switch {
	case ph == 2 && m.Kind == radio.KindReady && !a.haveT:
		a.T = m.Aux
		a.haveT = true
		if a.isMuSource && !a.isR {
			// §4.2 step 2: wait T rounds after receiving "ready", then
			// start the ack chain carrying µ.
			a.sgAckRound = recvRound + a.T + 1
		}
	case ph == 3 && m.Kind == radio.KindData:
		if !a.haveMu {
			a.mu = m.Payload
			a.haveMu = true
			a.MuKnownRound = recvRound
		}
		// Every node (including sG, which already holds µ) starts its
		// completion wait at its first phase-3 reception: T − t_v rounds
		// after receiving µ in phase 3, all nodes know broadcast completed.
		if a.KnowsCompleteRound == 0 && a.haveT {
			tV := a.p[0].informedRound
			a.KnowsCompleteRound = recvRound + (a.T - tV)
		}
	case a.isR && ph == 1 && m.Kind == radio.KindAck && a.phase2StartAt == 0:
		// Phase 1 complete: the ack carries T.
		a.T = m.Aux
		a.haveT = true
		a.phase2StartAt = recvRound + 1
		if a.isMuSource {
			// r already holds µ: skip the phase-2 fetch and start phase 3
			// once phase 2 has certainly completed.
			a.phase3StartAt = a.phase2StartAt + 2*a.T + 2
		}
	case a.isR && ph == 2 && m.Kind == radio.KindAck && a.phase3StartAt == 0:
		// Phase 2 complete: the ack carries µ.
		a.mu = m.Payload
		a.haveMu = true
		a.MuKnownRound = recvRound
		a.phase3StartAt = recvRound + 1
	}
}

// NewBarbProtocols builds one AlgBarb per node. source is the node holding µ.
func NewBarbProtocols(labels []Label, source int, mu string) []radio.Protocol {
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		ps[v] = NewAlgBarb(labels[v], src)
	}
	return ps
}
