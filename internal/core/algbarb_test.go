package core

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
)

func TestAlgBarbSingleEdge(t *testing.T) {
	// n=2, r=0, sG=1: worked through by hand in the design notes — all
	// nodes must know µ and reach "knows complete" in the same round.
	g := graph.Path(2)
	out, err := RunArbitrary(g, 0, 1, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArbitrary(g, out, "m"); err != nil {
		t.Fatal(err)
	}
	if out.T != 1 {
		t.Fatalf("T = %d, want 1 (= t_z on an edge)", out.T)
	}
}

func TestAlgBarbSourceIsCoordinator(t *testing.T) {
	// sG = r: the documented deviation path (phase-2 fetch skipped).
	g := graph.Path(4)
	out, err := RunArbitrary(g, 0, 0, "m", BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArbitrary(g, out, "m"); err != nil {
		t.Fatal(err)
	}
}

func TestAlgBarbAllSourceCoordinatorPairs(t *testing.T) {
	// Exhaustive sweep over (r, sG) on small graphs: the algorithm must be
	// correct regardless of which node holds µ and which is labeled 111.
	for name, g := range map[string]*graph.Graph{
		"P4":      graph.Path(4),
		"C5":      graph.Cycle(5),
		"star5":   graph.Star(5),
		"K4":      graph.Complete(4),
		"grid3x3": graph.Grid(3, 3),
	} {
		for r := 0; r < g.N(); r++ {
			for src := 0; src < g.N(); src++ {
				out, err := RunArbitrary(g, r, src, "m", BuildOptions{})
				if err != nil {
					t.Fatalf("%s r=%d src=%d: %v", name, r, src, err)
				}
				if err := VerifyArbitrary(g, out, "m"); err != nil {
					t.Fatalf("%s r=%d src=%d: %v", name, r, src, err)
				}
			}
		}
	}
}

func TestAlgBarbFigure1AllSources(t *testing.T) {
	g := graph.Figure1()
	for src := 0; src < g.N(); src++ {
		out, err := RunArbitrary(g, 0, src, "payload", BuildOptions{})
		if err != nil {
			t.Fatalf("src=%d: %v", src, err)
		}
		if err := VerifyArbitrary(g, out, "payload"); err != nil {
			t.Fatalf("src=%d: %v", src, err)
		}
	}
}

func TestAlgBarbFamilies(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](24)
		if g.N() < 2 {
			continue
		}
		src := g.N() - 1
		out, err := RunArbitrary(g, 0, src, "m", BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyArbitrary(g, out, "m"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAlgBarbQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%30)
		g := graph.GNPConnected(n, 0.25, seed)
		r := int(uint64(seed) % uint64(n))
		src := int(uint64(seed/7) % uint64(n))
		out, err := RunArbitrary(g, r, src, "m", BuildOptions{})
		if err != nil {
			return false
		}
		return VerifyArbitrary(g, out, "m") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgBarbTEqualsLastInformedRound(t *testing.T) {
	// T learned by the coordinator equals t_z: the phase-1 informed round
	// of the last-informed node, which is 2ℓ−3 of the construction rooted
	// at r.
	g := graph.Figure1()
	l, err := LambdaArb(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunArbitraryLabeled(g, l, 5, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArbitrary(g, out, "m"); err != nil {
		t.Fatal(err)
	}
	want := 2*l.Stages.L - 3
	if out.T != want {
		t.Fatalf("T = %d, want 2ℓ−3 = %d", out.T, want)
	}
}

func TestAlgBarbRejectsSingleton(t *testing.T) {
	if _, err := RunArbitrary(graph.New(1), 0, 0, "m", BuildOptions{}); err == nil {
		t.Fatal("expected error for n = 1")
	}
}

func TestAlgBarbLinearTime(t *testing.T) {
	// Barb is a constant number of acknowledged broadcasts plus waits: its
	// total round count must stay linear in n.
	for _, n := range []int{8, 16, 32, 64} {
		g := graph.Path(n)
		out, err := RunArbitrary(g, 0, n-1, "m", BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyArbitrary(g, out, "m"); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.TotalRounds > 14*n+40 {
			t.Fatalf("n=%d: %d rounds, exceeds linear budget", n, out.TotalRounds)
		}
	}
}
