package core

import (
	"radiobcast/internal/radio"
)

// backPhase is one acknowledged-broadcast phase of algorithm Barb (§4.2):
// a Back-style state machine parameterised by the message kind that carries
// the phase's broadcast payload, whether the x3 node initiates the
// acknowledgement, and whether timestamps are attached (phase 3 runs plain
// B, without them). All three phase machines of a node share the node's
// local clock; a machine is inert until its origin starts it or until it
// receives its phase's broadcast message.
type backPhase struct {
	phase      uint8
	kind       radio.Kind
	label      Label
	isOrigin   bool
	zAck       bool // x3 node starts the ack chain in this phase
	timestamps bool

	started bool   // origin only: first transmission done
	payload string // payload being disseminated
	aux     int    // Aux value attached to the broadcast (phase 2 carries T)

	haveMsg       bool
	informedRound int // timestamp of first reception (phase-local round)
	firstRecv     int // node-local round of first reception
	lastDataTx    int // node-local round of last broadcast-kind transmission
	stayAt        int // node-local round of last stay reception
	stayTS        int
	ackAt         int // node-local round of last ack reception
	ackTS         int
	ackAux        int
	ackPayload    string
	transmitRds   map[int]bool // timestamps of own broadcast transmissions

	originAckHeard bool // origin only: the phase's ack chain arrived
	originAckRound int
	originAckAux   int
	originAckMsg   string
}

func newBackPhase(phase uint8, kind radio.Kind, label Label, isOrigin, zAck, timestamps bool) *backPhase {
	return &backPhase{
		phase: phase, kind: kind, label: label,
		isOrigin: isOrigin, zAck: zAck, timestamps: timestamps,
		informedRound: -1, firstRecv: -1, lastDataTx: -1,
		stayAt: -1, ackAt: -1,
		transmitRds: make(map[int]bool, 4),
	}
}

// start performs the origin's first transmission, at node-local round r.
func (p *backPhase) start(r int, payload string, aux int) radio.Action {
	p.started = true
	p.payload = payload
	p.aux = aux
	p.lastDataTx = r
	ts := 0
	if p.timestamps {
		ts = 1
		p.transmitRds[1] = true
	}
	return radio.Send(radio.Message{Kind: p.kind, Payload: payload, TS: ts, Aux: aux, Phase: p.phase})
}

// receive processes a message of this phase heard in round recvRound.
func (p *backPhase) receive(m *radio.Message, recvRound int) {
	switch m.Kind {
	case p.kind:
		if !p.haveMsg && !p.isOrigin {
			p.haveMsg = true
			p.payload = m.Payload
			p.aux = m.Aux
			p.informedRound = m.TS
			p.firstRecv = recvRound
		}
	case radio.KindStay:
		p.stayAt = recvRound
		p.stayTS = m.TS
	case radio.KindAck:
		if p.isOrigin {
			if !p.originAckHeard {
				p.originAckHeard = true
				p.originAckRound = recvRound
				p.originAckAux = m.Aux
				p.originAckMsg = m.Payload
			}
		} else {
			p.ackAt = recvRound
			p.ackTS = m.TS
			p.ackAux = m.Aux
			p.ackPayload = m.Payload
		}
	}
}

// action evaluates the Back branches for node-local round r. Machines that
// return Listen have no side effects.
func (p *backPhase) action(r int) radio.Action {
	ts := func(v int) int {
		if p.timestamps {
			return v
		}
		return 0
	}
	switch {
	case p.isOrigin:
		// The origin's only recurring duty is the stay-triggered retransmit.
		if p.started && p.stayAt == r-1 && p.lastDataTx == r-2 {
			p.lastDataTx = r
			t := ts(p.stayTS + 1)
			if t > 0 {
				p.transmitRds[t] = true
			}
			return radio.Send(radio.Message{Kind: p.kind, Payload: p.payload, TS: t, Aux: p.aux, Phase: p.phase})
		}
		return radio.Listen

	case !p.haveMsg:
		return radio.Listen

	case p.firstRecv == r-2:
		if p.label.X1() {
			p.lastDataTx = r
			t := ts(p.informedRound + 2)
			if t > 0 {
				p.transmitRds[t] = true
			}
			return radio.Send(radio.Message{Kind: p.kind, Payload: p.payload, TS: t, Aux: p.aux, Phase: p.phase})
		}
		return radio.Listen

	case p.firstRecv == r-1:
		if p.label.X3() && p.zAck {
			// z starts the ack; in phase 1 it appends T = its own
			// informedRound so the coordinator learns it (§4.2 step 1).
			return radio.Send(radio.Message{Kind: radio.KindAck, TS: p.informedRound, Aux: p.informedRound, Phase: p.phase})
		}
		if p.label.X2() {
			return radio.Send(radio.Message{Kind: radio.KindStay, TS: ts(p.informedRound + 1), Phase: p.phase})
		}
		return radio.Listen

	case p.stayAt == r-1 && p.lastDataTx == r-2:
		p.lastDataTx = r
		t := ts(p.stayTS + 1)
		if t > 0 {
			p.transmitRds[t] = true
		}
		return radio.Send(radio.Message{Kind: p.kind, Payload: p.payload, TS: t, Aux: p.aux, Phase: p.phase})

	case p.ackAt == r-1 && p.transmitRds[p.ackTS]:
		// Relay the ack, preserving the piggybacked Aux/payload (§4.2).
		return radio.Send(radio.Message{Kind: radio.KindAck, TS: p.informedRound, Aux: p.ackAux, Payload: p.ackPayload, Phase: p.phase})

	default:
		return radio.Listen
	}
}
