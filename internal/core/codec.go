package core

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// StageSets extracts the per-stage DOM_i and NEW_i node lists of the
// construction, in stage order. Together with the graph and the source
// they determine the whole structure: INF/UNINF/FRONTIER follow from the
// recurrence of §2.1 — this is exactly the delta representation Stages
// itself stores, so the extraction is a plain copy (see RebuildStages).
func (s *Stages) StageSets() (doms, news [][]int) {
	doms = make([][]int, len(s.doms))
	news = make([][]int, len(s.news))
	for i := range s.doms {
		doms[i] = int32ToIntList(s.doms[i])
		news[i] = int32ToIntList(s.news[i])
	}
	return doms, news
}

func int32ToIntList(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// RebuildStages reconstructs the §2.1 stage structure from its serialized
// core: the graph, the source, ℓ, and the per-stage DOM/NEW lists produced
// by StageSets. Since Stages stores exactly these deltas — INF/UNINF/
// FRONTIER are replayed on demand through the same recurrence BuildStages
// obeys — rebuilding is validation plus normalization: node lists are
// checked against the graph's node range (an error, never a panic; inputs
// may come from an untrusted wire format) and stored sorted and
// duplicate-free, the invariant every delta consumer assumes.
func RebuildStages(g *graph.Graph, source, l int, restricted bool, stalled int, doms, news [][]int) (*Stages, error) {
	n := g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("core: rebuild: source %d out of range [0,%d)", source, n)
	}
	if len(doms) != len(news) {
		return nil, fmt.Errorf("core: rebuild: %d DOM lists but %d NEW lists", len(doms), len(news))
	}
	if len(doms) == 0 {
		return nil, fmt.Errorf("core: rebuild: no stages")
	}
	toList := func(elems []int) ([]int32, error) {
		set := nodeset.New(n)
		for _, v := range elems {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("core: rebuild: stage node %d out of range [0,%d)", v, n)
			}
			set.Add(v)
		}
		return setToInt32(set), nil
	}

	st := &Stages{G: g, Source: source, L: l, Restricted: restricted, Stalled: stalled}
	st.doms = make([][]int32, len(doms))
	st.news = make([][]int32, len(news))
	for i := range doms {
		var err error
		if st.doms[i], err = toList(doms[i]); err != nil {
			return nil, err
		}
		if st.news[i], err = toList(news[i]); err != nil {
			return nil, err
		}
	}
	return st, nil
}
