package core

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// StageSets extracts the per-stage DOM_i and NEW_i node lists of the
// construction, in stage order. Together with the graph and the source
// they determine the whole structure: INF/UNINF/FRONTIER follow from the
// recurrence of §2.1, so a serialized labeling only needs to carry these
// two lists per stage (see RebuildStages).
func (s *Stages) StageSets() (doms, news [][]int) {
	doms = make([][]int, len(s.ByIndex))
	news = make([][]int, len(s.ByIndex))
	for i, st := range s.ByIndex {
		doms[i] = st.Dom.Elements()
		news[i] = st.New.Elements()
	}
	return doms, news
}

// RebuildStages reconstructs the full §2.1 stage structure from its
// serialized core: the graph, the source, ℓ, and the per-stage DOM/NEW
// lists produced by StageSets. INF/UNINF/FRONTIER are replayed through
// the same recurrence BuildStages uses — INF_{i+1} = INF_i ∪ NEW_i,
// FRONTIER_{i+1} = (FRONTIER_i ∪ Γ(NEW_i)) ∩ UNINF_{i+1} — so the result
// is set-for-set equal to the original construction. Node lists are
// validated against the graph's node range; out-of-range entries are an
// error, never a panic (inputs may come from an untrusted wire format).
func RebuildStages(g *graph.Graph, source, l int, restricted bool, stalled int, doms, news [][]int) (*Stages, error) {
	n := g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("core: rebuild: source %d out of range [0,%d)", source, n)
	}
	if len(doms) != len(news) {
		return nil, fmt.Errorf("core: rebuild: %d DOM lists but %d NEW lists", len(doms), len(news))
	}
	if len(doms) == 0 {
		return nil, fmt.Errorf("core: rebuild: no stages")
	}
	toSet := func(elems []int) (*nodeset.Set, error) {
		set := nodeset.New(n)
		for _, v := range elems {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("core: rebuild: stage node %d out of range [0,%d)", v, n)
			}
			set.Add(v)
		}
		return set, nil
	}

	st := &Stages{G: g, Source: source, L: l, Restricted: restricted, Stalled: stalled}
	inf := nodeset.Of(n, source)
	uninf := nodeset.Full(n)
	uninf.Remove(source)
	frontier := nodeset.New(n)
	for _, w := range g.Neighbors(source) {
		frontier.Add(w)
	}
	for i := range doms {
		if i > 0 {
			prevNew := st.ByIndex[i-1].New
			inf = nodeset.Union(inf, prevNew)
			uninf = nodeset.Subtract(uninf, prevNew)
			frontier = nodeset.Intersect(frontier, uninf)
			frontier.UnionWith(nodeset.Intersect(g.Neighborhood(prevNew), uninf))
		}
		dom, err := toSet(doms[i])
		if err != nil {
			return nil, err
		}
		newSet, err := toSet(news[i])
		if err != nil {
			return nil, err
		}
		st.ByIndex = append(st.ByIndex, Stage{
			Inf: inf.Clone(), Uninf: uninf.Clone(), Frontier: frontier.Clone(),
			Dom: dom, New: newSet,
		})
	}
	return st, nil
}
