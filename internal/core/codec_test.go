package core

import (
	"testing"

	"radiobcast/internal/graph"
)

// TestRebuildStagesMatchesConstruction pins the stage codec contract: the
// DOM/NEW lists plus the graph determine the whole structure — rebuilding
// from StageSets output reproduces every one of the five sets of every
// stage, set-for-set.
func TestRebuildStagesMatchesConstruction(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Figure1(),
		graph.Path(17),
		graph.Grid(5, 5),
		graph.Complete(6),
	} {
		st, err := BuildStages(g, 0, BuildOptions{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		doms, news := st.StageSets()
		got, err := RebuildStages(g, st.Source, st.L, st.Restricted, st.Stalled, doms, news)
		if err != nil {
			t.Fatalf("%v: rebuild: %v", g, err)
		}
		if got.L != st.L || got.NumStored() != st.NumStored() {
			t.Fatalf("%v: rebuilt ℓ=%d/%d stages, want ℓ=%d/%d", g, got.L, got.NumStored(), st.L, st.NumStored())
		}
		for i := 1; i <= st.NumStored(); i++ {
			a, b := st.Stage(i), got.Stage(i)
			if !a.Inf.Equal(b.Inf) || !a.Uninf.Equal(b.Uninf) || !a.Frontier.Equal(b.Frontier) ||
				!a.Dom.Equal(b.Dom) || !a.New.Equal(b.New) {
				t.Fatalf("%v: stage %d differs after rebuild", g, i)
			}
		}
	}
}

// TestRebuildStagesRejectsBadInput ensures untrusted stage lists fail with
// errors, not panics.
func TestRebuildStagesRejectsBadInput(t *testing.T) {
	g := graph.Path(5)
	if _, err := RebuildStages(g, 9, 2, false, 0, [][]int{{0}}, [][]int{{1}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := RebuildStages(g, 0, 2, false, 0, [][]int{{0}, {1}}, [][]int{{1}}); err == nil {
		t.Fatal("mismatched list lengths accepted")
	}
	if _, err := RebuildStages(g, 0, 2, false, 0, [][]int{{0}}, [][]int{{99}}); err == nil {
		t.Fatal("out-of-range stage node accepted")
	}
	if _, err := RebuildStages(g, 0, 1, false, 0, nil, nil); err == nil {
		t.Fatal("empty stage lists accepted")
	}
}
