package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// Differential tests: the paper's correctness proofs hinge on three
// executions sharing one transmission schedule — B, the µ/stay prefix of
// Back (Lemma 2.8 applies to both), and each broadcast phase of Barb.
// These tests compare the schedules event by event.

// dataStaySchedule extracts the rounds of µ and "stay" transmissions.
func dataStaySchedule(g *graph.Graph, ps []radio.Protocol, maxRounds int) [][]int {
	tr := &radio.Trace{}
	radio.Run(g, ps, radio.Options{MaxRounds: maxRounds, StopAfterSilent: 3, Trace: tr})
	out := make([][]int, g.N())
	for _, round := range tr.Rounds {
		for _, tx := range round.Transmitters {
			if tx.Msg.Kind == radio.KindData || tx.Msg.Kind == radio.KindStay {
				out[tx.Node] = append(out[tx.Node], round.Round)
			}
		}
	}
	return out
}

func TestBackScheduleEqualsB(t *testing.T) {
	// The broadcast prefix of Back must transmit µ and "stay" in exactly
	// the rounds B does (the ack chain then runs after round 2ℓ−3).
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%40)
		g := graph.GNPConnected(n, 0.2, seed)
		src := int(uint64(seed) % uint64(n))
		l, err := LambdaAck(g, src, BuildOptions{})
		if err != nil {
			return false
		}
		bSched := dataStaySchedule(g, NewBProtocols(l.Labels, src, "m"), 2*n+4)
		backPs := NewBackProtocols(l.Labels, src, "m")
		backSched := dataStaySchedule(g, backPs, 3*n+6)
		cutoff := 2*l.Stages.L - 3
		for v := 0; v < n; v++ {
			// Back's schedule, truncated to the broadcast window, must
			// equal B's schedule (plus possibly z's round-(2ℓ−2) ack which
			// dataStaySchedule already excludes by kind).
			var trimmed []int
			for _, r := range backSched[v] {
				if r <= cutoff {
					trimmed = append(trimmed, r)
				}
			}
			if !reflect.DeepEqual(trimmed, bSched[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBarbPhasesShareSchedule(t *testing.T) {
	// Barb's phase-1 (initialize) and phase-3 (data) broadcasts run the
	// same labels from the same origin, so each node's reception offset
	// from phase start must be identical — this is what makes the T − t_v
	// completion wait land every node on the same round.
	g := graph.Figure1()
	l, err := LambdaArb(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunArbitraryLabeled(g, l, 5, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArbitrary(g, out, "m"); err != nil {
		t.Fatal(err)
	}
	// Phase-1 reception offsets (t_v) from the init receptions.
	initAt := make([]int, g.N())
	dataAt := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		initAt[v] = out.Result.FirstReception(v, radio.KindInit)
		dataAt[v] = out.Result.FirstReception(v, radio.KindData)
	}
	// The coordinator receives neither message; every other node must
	// satisfy dataAt[v] − dataStart == initAt[v] − initStart. Anchor the
	// phase starts at a neighbour of r, which has offset 1 in both phases.
	for v := 1; v < g.N(); v++ {
		if initAt[v] == 0 || dataAt[v] == 0 {
			t.Fatalf("node %d missing phase receptions: init=%d data=%d", v, initAt[v], dataAt[v])
		}
	}
	anchor := g.Neighbors(0)[0]
	initStart := initAt[anchor] - 1
	dataStart := dataAt[anchor] - 1
	for v := 1; v < g.N(); v++ {
		tInit := initAt[v] - initStart
		tData := dataAt[v] - dataStart
		if tInit != tData {
			t.Fatalf("node %d: phase-1 offset %d ≠ phase-3 offset %d", v, tInit, tData)
		}
	}
}
