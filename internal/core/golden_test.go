package core

import (
	"testing"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
	"radiobcast/internal/radio"
)

// Hand-verified golden values for small graphs (worked out on paper from
// the §2.1 definitions with ascending prune order). These pin down the
// construction far more tightly than the invariant checks alone.

func TestGoldenC6(t *testing.T) {
	g := graph.Cycle(6)
	l := mustLambda(t, g, 0)
	st := l.Stages
	if st.L != 4 {
		t.Fatalf("ℓ = %d, want 4", st.L)
	}
	wantDom := []*nodeset.Set{
		nodeset.Of(6, 0), nodeset.Of(6, 1, 5), nodeset.Of(6, 4),
	}
	wantNew := []*nodeset.Set{
		nodeset.Of(6, 1, 5), nodeset.Of(6, 2, 4), nodeset.Of(6, 3),
	}
	for i := 1; i <= 3; i++ {
		if !st.Stage(i).Dom.Equal(wantDom[i-1]) {
			t.Fatalf("DOM_%d = %v, want %v", i, st.Stage(i).Dom, wantDom[i-1])
		}
		if !st.Stage(i).New.Equal(wantNew[i-1]) {
			t.Fatalf("NEW_%d = %v, want %v", i, st.Stage(i).New, wantNew[i-1])
		}
	}
	wantLabels := []Label{"10", "10", "00", "00", "10", "10"}
	for v, w := range wantLabels {
		if l.Labels[v] != w {
			t.Fatalf("labels = %v, want %v", l.Labels, wantLabels)
		}
	}
	out, err := RunBroadcastLabeled(g, l, 0, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantInformed := []int{0, 1, 3, 5, 3, 1}
	for v, w := range wantInformed {
		if out.InformedRound[v] != w {
			t.Fatalf("informed = %v, want %v", out.InformedRound, wantInformed)
		}
	}
}

func TestGoldenK23(t *testing.T) {
	// K_{2,3}: part {0,1}, part {2,3,4}; source 0. DOM_2 prunes 2 and 3
	// (node 1 stays covered by 4), so node 1 is informed by 4 in round 3.
	g := graph.CompleteBipartite(2, 3)
	l := mustLambda(t, g, 0)
	st := l.Stages
	if st.L != 3 {
		t.Fatalf("ℓ = %d, want 3", st.L)
	}
	if !st.Stage(2).Dom.Equal(nodeset.Of(5, 4)) {
		t.Fatalf("DOM_2 = %v, want {4}", st.Stage(2).Dom)
	}
	wantLabels := []Label{"10", "00", "00", "00", "10"}
	for v, w := range wantLabels {
		if l.Labels[v] != w {
			t.Fatalf("labels = %v, want %v", l.Labels, wantLabels)
		}
	}
	out, err := RunBroadcastLabeled(g, l, 0, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.InformedRound[1] != 3 {
		t.Fatalf("node 1 informed at %d, want 3", out.InformedRound[1])
	}
}

func TestGoldenWheel6SourceHub(t *testing.T) {
	// Wheel with hub source: every rim node is adjacent to the hub, so
	// ℓ = 2 and nothing but the hub ever transmits.
	g := graph.Wheel(6)
	l := mustLambda(t, g, 0)
	if l.Stages.L != 2 {
		t.Fatalf("ℓ = %d, want 2", l.Stages.L)
	}
	out, err := RunBroadcastLabeled(g, l, 0, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalTransmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", out.Result.TotalTransmissions)
	}
	if out.CompletionRound != 1 {
		t.Fatalf("completion = %d, want 1", out.CompletionRound)
	}
}

func TestQuiescenceAfterCompletion(t *testing.T) {
	// Observation 3.3 analogue for B: no transmissions occur after round
	// 2ℓ−3 — the network goes permanently silent (we check a 4n horizon).
	for _, g := range []*graph.Graph{
		graph.Figure1(), graph.Grid(4, 4), graph.Cycle(9), graph.BinaryTree(15),
	} {
		l := mustLambda(t, g, 0)
		ps := NewBProtocols(l.Labels, 0, "m")
		res := radio.Run(g, ps, radio.Options{MaxRounds: 4 * g.N()})
		cutoff := 2*l.Stages.L - 3
		for v, rounds := range res.Transmits {
			for _, r := range rounds {
				if r > cutoff {
					t.Fatalf("node %d transmitted in round %d > 2ℓ−3 = %d", v, r, cutoff)
				}
			}
		}
	}
}

func TestBackQuiescenceAfterAck(t *testing.T) {
	// After the source receives the ack, Back goes permanently silent.
	g := graph.Figure1()
	l, err := LambdaAck(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ps := NewBackProtocols(l.Labels, 0, "m")
	src := ps[0].(*AlgBack)
	res := radio.Run(g, ps, radio.Options{MaxRounds: 6 * g.N()})
	if !src.AckDone {
		t.Fatal("no ack")
	}
	for v, rounds := range res.Transmits {
		for _, r := range rounds {
			if r > src.AckRound {
				t.Fatalf("node %d transmitted in round %d after the ack (round %d)", v, r, src.AckRound)
			}
		}
	}
}
