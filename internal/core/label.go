// Package core implements the paper's primary contribution: the stage
// construction of §2.1 (the INF/UNINF/FRONTIER/DOM/NEW sequences), the
// constant-length labeling schemes λ (2 bits, §2.2), λack (3 bits, §3.1)
// and λarb (3 bits, §4.1), and the universal deterministic broadcast
// algorithms B (Algorithm 1), Back (Algorithm 2) and Barb (§4.2), together
// with runtime checks of every fact and lemma the correctness proofs rely
// on, and the one-bit extensions sketched in the paper's conclusion.
package core

import (
	"fmt"
	"strings"
)

// Label is a binary-string node label, e.g. "10" for x1=1, x2=0. Labels
// assigned by a scheme need not be distinct; the length of a scheme is the
// maximum label length it assigns (§1.1).
type Label string

// ParseLabel validates that s consists solely of '0' and '1'.
func ParseLabel(s string) (Label, error) {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '1' {
			return "", fmt.Errorf("core: invalid label %q: byte %d is not a bit", s, i)
		}
	}
	return Label(s), nil
}

// labelTable interns every label of up to 3 bits, indexed by length then
// by bit value (most significant first) — all the labels the paper's
// schemes assign. MakeLabel runs once per node per labeling, so handing
// out interned constants instead of building strings removes an
// allocation from the hottest per-node step of label derivation.
var labelTable = [4][]Label{
	{""},
	{"0", "1"},
	{"00", "01", "10", "11"},
	{"000", "001", "010", "011", "100", "101", "110", "111"},
}

// MakeLabel builds a label from bits (true = '1'), most significant first.
func MakeLabel(bits ...bool) Label {
	if len(bits) < len(labelTable) {
		v := 0
		for _, bit := range bits {
			v <<= 1
			if bit {
				v |= 1
			}
		}
		return labelTable[len(bits)][v]
	}
	var b strings.Builder
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return Label(b.String())
}

// Len returns the label length in bits.
func (l Label) Len() int { return len(l) }

// Bit returns bit i (0-based from the left), or false past the end. The
// paper's x1, x2, x3 are bits 0, 1, 2.
func (l Label) Bit(i int) bool {
	return i >= 0 && i < len(l) && l[i] == '1'
}

// X1 reports the paper's first bit (membership in some DOM_i).
func (l Label) X1() bool { return l.Bit(0) }

// X2 reports the paper's second bit (designated "stay" sender).
func (l Label) X2() bool { return l.Bit(1) }

// X3 reports the paper's third bit (the acknowledgement initiator z).
func (l Label) X3() bool { return l.Bit(2) }

// Strings converts a labeling to plain strings (for rendering and DOT).
func Strings(labels []Label) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = string(l)
	}
	return out
}

// MaxLen returns the length of a labeling scheme: the maximum label length.
func MaxLen(labels []Label) int {
	m := 0
	for _, l := range labels {
		if l.Len() > m {
			m = l.Len()
		}
	}
	return m
}

// Distinct returns the number of distinct labels used (the paper counts
// these in §5: λack uses 5, λarb uses 6).
func Distinct(labels []Label) int {
	seen := make(map[Label]bool, 8)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// Histogram returns label → count.
func Histogram(labels []Label) map[Label]int {
	h := make(map[Label]int, 8)
	for _, l := range labels {
		h[l]++
	}
	return h
}
