package core

import (
	"testing"
)

func TestParseLabel(t *testing.T) {
	if _, err := ParseLabel("0101"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseLabel(""); err != nil {
		t.Fatal("empty label should parse")
	}
	if _, err := ParseLabel("01a"); err == nil {
		t.Fatal("expected error for non-bit byte")
	}
}

func TestMakeLabelAndBits(t *testing.T) {
	l := MakeLabel(true, false, true)
	if l != Label("101") {
		t.Fatalf("MakeLabel = %q", l)
	}
	if !l.X1() || l.X2() || !l.X3() {
		t.Fatalf("bits wrong for %q", l)
	}
	if l.Bit(3) || l.Bit(-1) {
		t.Fatal("out-of-range bits must be false")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLabelHelpers(t *testing.T) {
	labels := []Label{"10", "10", "01", "111"}
	if MaxLen(labels) != 3 {
		t.Fatalf("MaxLen = %d", MaxLen(labels))
	}
	if Distinct(labels) != 3 {
		t.Fatalf("Distinct = %d", Distinct(labels))
	}
	h := Histogram(labels)
	if h["10"] != 2 || h["01"] != 1 || h["111"] != 1 {
		t.Fatalf("Histogram = %v", h)
	}
	s := Strings(labels)
	if len(s) != 4 || s[0] != "10" {
		t.Fatalf("Strings = %v", s)
	}
}
