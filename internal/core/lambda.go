package core

import (
	"fmt"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
)

// Labeling bundles the output of a labeling scheme together with the stage
// construction it was derived from, so experiments can inspect both.
type Labeling struct {
	Labels []Label
	Stages *Stages
	// StayPick[w] = i means w ∈ NEW_i was chosen as the "stay" sender that
	// keeps some v ∈ DOM_{i+1} ∩ DOM_i transmitting (x2(w) = 1); 0 if w was
	// not picked.
	StayPick []int
	// Z is the acknowledgement initiator of λack (−1 for plain λ).
	Z int
	// R is the coordinator of λarb (−1 otherwise).
	R int
}

// Lambda computes the 2-bit labeling scheme λ of §2.2 for graph g with
// designated source. The default options (ascending prune order) reproduce
// the golden values used in tests, including Figure 1.
func Lambda(g *graph.Graph, source int, opt BuildOptions) (*Labeling, error) {
	st, err := BuildStages(g, source, opt)
	if err != nil {
		return nil, err
	}
	return labelsFromStages(st)
}

// labelsFromStages derives λ from the stage deltas. For each i and each
// v ∈ DOM_{i+1} ∩ DOM_i, it picks one w ∈ NEW_i adjacent to v and sets
// x2(w) = 1 (§2.2) — the smallest-index such w, found word-parallel as
// the first set bit of slabs(v) ∩ NEW_i. Lemma 2.4's minimality argument
// guarantees one exists, and because every NEW_i node has exactly one
// DOM_i neighbour, picks for distinct v never interfere (each v hears
// exactly one "stay"). DOM_i ∩ DOM_{i+1} is a merge of the two sorted
// delta lists and NEW_i is materialized as bit words only while stage i
// is in hand, so the whole pass is O(Σ_i |DOM_i| + |NEW_i| + slab reads)
// — no per-stage full-set snapshots anywhere.
func labelsFromStages(st *Stages) (*Labeling, error) {
	g := st.G
	n := g.N()
	bcsr := g.Freeze().Bits()
	x1 := st.DomUnion()
	x2 := make([]bool, n)
	stayPick := make([]int, n)

	newW := make([]uint64, (n+63)/64)
	for i := 1; i+1 <= st.NumStored(); i++ {
		curDom, nextDom, curNew := st.doms[i-1], st.doms[i], st.news[i-1]
		for _, w := range curNew {
			newW[w>>6] |= 1 << (uint(w) & 63)
		}
		for ai, bi := 0, 0; ai < len(curDom) && bi < len(nextDom); {
			switch {
			case curDom[ai] < nextDom[bi]:
				ai++
			case curDom[ai] > nextDom[bi]:
				bi++
			default:
				v := int(curDom[ai])
				w := bcsr.FirstIn(v, newW)
				if w == -1 {
					return nil, fmt.Errorf("core: no NEW_%d neighbour for %d ∈ DOM_%d ∩ DOM_%d", i, v, i, i+1)
				}
				x2[w] = true
				stayPick[w] = i
				ai++
				bi++
			}
		}
		for _, w := range curNew {
			newW[w>>6] &^= 1 << (uint(w) & 63)
		}
	}

	labels := make([]Label, n)
	for v := 0; v < n; v++ {
		labels[v] = MakeLabel(x1.Has(v), x2[v])
	}
	return &Labeling{Labels: labels, Stages: st, StayPick: stayPick, Z: -1, R: -1}, nil
}

// VerifyLambda checks the structural properties the correctness proof of
// algorithm B relies on (beyond the stage invariants):
//
//   - x1(v) = 1 iff v ∈ ⋃ DOM_i;
//   - every v ∈ DOM_{i+1} ∩ DOM_i has exactly one neighbour in NEW_i with
//     x2 = 1 (so v's "stay" reception in round 2i never collides);
//   - every node with x2 = 1 was picked for exactly one stage.
func VerifyLambda(l *Labeling) error {
	st := l.Stages
	g := st.G
	n := g.N()
	// One freeze for the whole verification (the old per-pick re-entry of
	// g.Freeze inside the stage loops is gone).
	bcsr := g.Freeze().Bits()
	domUnion := st.DomUnion()
	for v, lab := range l.Labels {
		if lab.X1() != domUnion.Has(v) {
			return fmt.Errorf("core: x1(%d)=%v but DOM-membership=%v", v, lab.X1(), domUnion.Has(v))
		}
	}
	// newX2W holds the x2 = 1 subset of NEW_i as bit words, so the
	// sender count per v is a popcount over slabs(v) ∩ newX2W.
	newX2W := make([]uint64, (n+63)/64)
	for i := 1; i+1 <= st.NumStored(); i++ {
		curDom, nextDom, curNew := st.doms[i-1], st.doms[i], st.news[i-1]
		for _, w := range curNew {
			if l.Labels[w].X2() {
				newX2W[w>>6] |= 1 << (uint(w) & 63)
			}
		}
		for ai, bi := 0, 0; ai < len(curDom) && bi < len(nextDom); {
			switch {
			case curDom[ai] < nextDom[bi]:
				ai++
			case curDom[ai] > nextDom[bi]:
				bi++
			default:
				v := int(curDom[ai])
				if count := bcsr.CountIn(v, newX2W); count != 1 {
					return fmt.Errorf("core: v=%d ∈ DOM_%d ∩ DOM_%d has %d x2-senders in NEW_%d, want 1", v, i, i+1, count, i)
				}
				ai++
				bi++
			}
		}
		for _, w := range curNew {
			newX2W[w>>6] &^= 1 << (uint(w) & 63)
		}
	}
	for w, lab := range l.Labels {
		if lab.X2() && l.StayPick[w] == 0 {
			return fmt.Errorf("core: x2(%d)=1 but node was never picked", w)
		}
		if !lab.X2() && l.StayPick[w] != 0 {
			return fmt.Errorf("core: x2(%d)=0 but node was picked at stage %d", w, l.StayPick[w])
		}
	}
	// Minimality of every DOM_i (the progress engine); Stage(i) replays
	// the frontier sets sequentially from the deltas.
	for i := 2; i <= st.NumStored(); i++ {
		stage := st.Stage(i)
		if !domset.IsMinimal(g, stage.Dom, stage.Frontier) {
			return fmt.Errorf("core: DOM_%d not minimal", i)
		}
	}
	return nil
}
