package core

import (
	"fmt"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
)

// Labeling bundles the output of a labeling scheme together with the stage
// construction it was derived from, so experiments can inspect both.
type Labeling struct {
	Labels []Label
	Stages *Stages
	// StayPick[w] = i means w ∈ NEW_i was chosen as the "stay" sender that
	// keeps some v ∈ DOM_{i+1} ∩ DOM_i transmitting (x2(w) = 1); 0 if w was
	// not picked.
	StayPick []int
	// Z is the acknowledgement initiator of λack (−1 for plain λ).
	Z int
	// R is the coordinator of λarb (−1 otherwise).
	R int
}

// Lambda computes the 2-bit labeling scheme λ of §2.2 for graph g with
// designated source. The default options (ascending prune order) reproduce
// the golden values used in tests, including Figure 1.
func Lambda(g *graph.Graph, source int, opt BuildOptions) (*Labeling, error) {
	st, err := BuildStages(g, source, opt)
	if err != nil {
		return nil, err
	}
	return labelsFromStages(st)
}

func labelsFromStages(st *Stages) (*Labeling, error) {
	g := st.G
	n := g.N()
	x1 := st.DomUnion()
	x2 := make([]bool, n)
	stayPick := make([]int, n)

	// For each i and each v ∈ DOM_{i+1} ∩ DOM_i, pick one w ∈ NEW_i adjacent
	// to v and set x2(w) = 1 (§2.2). We pick the smallest-index private
	// neighbour; Lemma 2.4's minimality argument guarantees one exists, and
	// because every NEW_i node has exactly one DOM_i neighbour, picks for
	// distinct v never interfere (each v hears exactly one "stay").
	for i := 1; i+1 <= st.NumStored(); i++ {
		cur := st.Stage(i)
		next := st.Stage(i + 1)
		var pickErr error
		cur.Dom.ForEach(func(v int) {
			if pickErr != nil || !next.Dom.Has(v) {
				return
			}
			w := pickStaySender(g, cur, v)
			if w == -1 {
				pickErr = fmt.Errorf("core: no NEW_%d neighbour for %d ∈ DOM_%d ∩ DOM_%d", i, v, i, i+1)
				return
			}
			x2[w] = true
			stayPick[w] = i
		})
		if pickErr != nil {
			return nil, pickErr
		}
	}

	labels := make([]Label, n)
	for v := 0; v < n; v++ {
		labels[v] = MakeLabel(x1.Has(v), x2[v])
	}
	return &Labeling{Labels: labels, Stages: st, StayPick: stayPick, Z: -1, R: -1}, nil
}

// pickStaySender returns the smallest w ∈ NEW_i adjacent to v whose unique
// DOM_i neighbour is v, or -1 if none exists.
func pickStaySender(g *graph.Graph, stage Stage, v int) int {
	for _, w := range g.Freeze().Neighbors(v) {
		if !stage.New.Has(int(w)) {
			continue
		}
		// w ∈ NEW_i has exactly one DOM_i neighbour; if w is adjacent to v,
		// that neighbour is v.
		return int(w)
	}
	return -1
}

// VerifyLambda checks the structural properties the correctness proof of
// algorithm B relies on (beyond the stage invariants):
//
//   - x1(v) = 1 iff v ∈ ⋃ DOM_i;
//   - every v ∈ DOM_{i+1} ∩ DOM_i has exactly one neighbour in NEW_i with
//     x2 = 1 (so v's "stay" reception in round 2i never collides);
//   - every node with x2 = 1 was picked for exactly one stage.
func VerifyLambda(l *Labeling) error {
	g := l.Stages.G
	domUnion := l.Stages.DomUnion()
	for v, lab := range l.Labels {
		if lab.X1() != domUnion.Has(v) {
			return fmt.Errorf("core: x1(%d)=%v but DOM-membership=%v", v, lab.X1(), domUnion.Has(v))
		}
	}
	for i := 1; i+1 <= l.Stages.NumStored(); i++ {
		cur := l.Stages.Stage(i)
		next := l.Stages.Stage(i + 1)
		var err error
		cur.Dom.ForEach(func(v int) {
			if err != nil || !next.Dom.Has(v) {
				return
			}
			count := 0
			for _, w := range g.Neighbors(v) {
				if cur.New.Has(w) && l.Labels[w].X2() {
					count++
				}
			}
			if count != 1 {
				err = fmt.Errorf("core: v=%d ∈ DOM_%d ∩ DOM_%d has %d x2-senders in NEW_%d, want 1", v, i, i+1, count, i)
			}
		})
		if err != nil {
			return err
		}
	}
	for w, lab := range l.Labels {
		if lab.X2() && l.StayPick[w] == 0 {
			return fmt.Errorf("core: x2(%d)=1 but node was never picked", w)
		}
		if !lab.X2() && l.StayPick[w] != 0 {
			return fmt.Errorf("core: x2(%d)=0 but node was picked at stage %d", w, l.StayPick[w])
		}
	}
	// Minimality of every DOM_i (the progress engine).
	for i := 1; i <= l.Stages.NumStored(); i++ {
		stage := l.Stages.Stage(i)
		if i >= 2 && !domset.IsMinimal(g, stage.Dom, stage.Frontier) {
			return fmt.Errorf("core: DOM_%d not minimal", i)
		}
	}
	return nil
}
