package core

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
)

func mustLambda(t *testing.T, g *graph.Graph, source int) *Labeling {
	t.Helper()
	l, err := Lambda(g, source, BuildOptions{})
	if err != nil {
		t.Fatalf("Lambda: %v", err)
	}
	return l
}

func TestLambdaFigure1Golden(t *testing.T) {
	g := graph.Figure1()
	l := mustLambda(t, g, graph.Figure1Source)
	for v, want := range graph.Figure1Labels {
		if string(l.Labels[v]) != want {
			t.Errorf("label(%d) = %s, want %s", v, l.Labels[v], want)
		}
	}
	if err := VerifyLambda(l); err != nil {
		t.Fatal(err)
	}
}

func TestLambdaLength2(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](20)
		l := mustLambda(t, g, 0)
		if MaxLen(l.Labels) != 2 {
			t.Fatalf("%s: λ length = %d, want 2", name, MaxLen(l.Labels))
		}
		if d := Distinct(l.Labels); d > 4 {
			t.Fatalf("%s: λ uses %d labels, want ≤ 4", name, d)
		}
	}
}

func TestLambdaPath(t *testing.T) {
	// On a path from endpoint 0, every internal node is in some DOM and
	// never needs a stay (each DOM_i = {i-1} differs from DOM_{i+1}).
	l := mustLambda(t, graph.Path(5), 0)
	want := []Label{"10", "10", "10", "10", "00"}
	for v, w := range want {
		if l.Labels[v] != w {
			t.Fatalf("path labels = %v, want %v", l.Labels, want)
		}
	}
}

func TestLambdaStar(t *testing.T) {
	// Star from the hub: one stage; leaves are all 00.
	l := mustLambda(t, graph.Star(5), 0)
	if l.Labels[0] != Label("10") {
		t.Fatalf("hub label = %s", l.Labels[0])
	}
	for v := 1; v < 5; v++ {
		if l.Labels[v] != Label("00") {
			t.Fatalf("leaf %d label = %s, want 00", v, l.Labels[v])
		}
	}
}

func TestVerifyLambdaAllFamiliesAllOrders(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](30)
		for _, order := range domset.Orders {
			l, err := Lambda(g, 0, BuildOptions{Order: order})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
			if err := VerifyLambda(l); err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
		}
	}
}

func TestLambdaQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%50)
		g := graph.GNPConnected(n, 0.2, seed)
		src := int(uint64(seed) % uint64(n))
		l, err := Lambda(g, src, BuildOptions{})
		if err != nil {
			return false
		}
		return VerifyLambda(l) == nil && MaxLen(l.Labels) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLambdaAckFact31(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](25)
		l, err := LambdaAck(g, 0, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if MaxLen(l.Labels) != 3 {
			t.Fatalf("%s: λack length = %d, want 3", name, MaxLen(l.Labels))
		}
		// Fact 3.1: labels 101, 111, 011 never assigned → ≤ 5 distinct.
		for v, lab := range l.Labels {
			switch lab {
			case "101", "111", "011":
				t.Fatalf("%s: forbidden label %s at node %d", name, lab, v)
			}
		}
		if d := Distinct(l.Labels); d > 5 {
			t.Fatalf("%s: λack uses %d labels, want ≤ 5", name, d)
		}
		// Exactly one z with x3 = 1.
		count := 0
		for _, lab := range l.Labels {
			if lab.X3() {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%s: %d nodes with x3 = 1, want 1", name, count)
		}
	}
}

func TestLambdaAckZIsLastInformed(t *testing.T) {
	g := graph.Figure1()
	l, err := LambdaAck(g, graph.Figure1Source, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Z != 12 {
		t.Fatalf("z = %d, want 12 (the last-informed node)", l.Z)
	}
	if l.Labels[12] != Label("001") {
		t.Fatalf("label(z) = %s, want 001", l.Labels[12])
	}
}

func TestLambdaAckWithZ(t *testing.T) {
	g := graph.Path(4)
	l, err := LambdaAckWithZ(g, 0, 1, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Labels[1].X3() {
		t.Fatal("explicit z not labeled")
	}
	if _, err := LambdaAckWithZ(g, 0, 9, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range z")
	}
}

func TestLambdaArbSixLabels(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](25)
		l, err := LambdaArb(g, 0, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.Labels[0] != Label("111") {
			t.Fatalf("%s: r label = %s, want 111", name, l.Labels[0])
		}
		if d := Distinct(l.Labels); d > 6 {
			t.Fatalf("%s: λarb uses %d labels, want ≤ 6", name, d)
		}
		// Exactly one node labeled 111.
		count := 0
		for _, lab := range l.Labels {
			if lab == Label("111") {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%s: %d nodes labeled 111", name, count)
		}
	}
}

func TestLambdaArbBadR(t *testing.T) {
	if _, err := LambdaArb(graph.Path(3), 7, BuildOptions{}); err == nil {
		t.Fatal("expected error for out-of-range r")
	}
}
