package core

import (
	"fmt"

	"radiobcast/internal/graph"
)

// LambdaAck computes the 3-bit labeling scheme λack of §3.1: λ extended
// with a third bit x3 that is 1 only at the node z chosen to initiate the
// acknowledgement, where z is a node that receives µ in the last round of
// the broadcast (i.e. z ∈ NEW_{ℓ−1}; we pick the smallest index).
//
// Fact 3.1 holds by construction — z is never in any DOM_i and never a
// stay-pick, so the labels 101, 111 and 011 are never assigned — and is
// re-checked here at runtime.
func LambdaAck(g *graph.Graph, source int, opt BuildOptions) (*Labeling, error) {
	l, err := Lambda(g, source, opt)
	if err != nil {
		return nil, err
	}
	if err := extendToAck(l); err != nil {
		return nil, err
	}
	return l, nil
}

func extendToAck(l *Labeling) error {
	st := l.Stages
	n := st.G.N()
	z := -1
	if st.L >= 2 {
		// NEW_{ℓ−1} is stored ascending, so its first element is the
		// smallest — no stage materialization needed.
		if last := st.news[st.NumStored()-1]; len(last) > 0 {
			z = int(last[0])
		}
		if z == -1 {
			return fmt.Errorf("core: NEW_{ℓ-1} empty, cannot choose z")
		}
	}
	for v := 0; v < n; v++ {
		l.Labels[v] = MakeLabel(l.Labels[v].X1(), l.Labels[v].X2(), v == z)
	}
	l.Z = z
	if z >= 0 {
		if l.Labels[z].X1() || l.Labels[z].X2() {
			return fmt.Errorf("core: Fact 3.1 violated: z=%d has label %s", z, l.Labels[z])
		}
	}
	return checkFact31(l.Labels)
}

// checkFact31 verifies that none of the labels 101, 111, 011 appear.
func checkFact31(labels []Label) error {
	for v, lab := range labels {
		if lab.X3() && (lab.X1() || lab.X2()) {
			return fmt.Errorf("core: Fact 3.1 violated at node %d: label %s", v, lab)
		}
	}
	return nil
}

// LambdaAckWithZ is LambdaAck with an explicit z, used by the ABLZ ablation
// to demonstrate that choosing a non-last node as acknowledgement initiator
// makes the source's ack arrive before broadcast completion.
func LambdaAckWithZ(g *graph.Graph, source, z int, opt BuildOptions) (*Labeling, error) {
	l, err := Lambda(g, source, opt)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if z < 0 || z >= n {
		return nil, fmt.Errorf("core: z=%d out of range", z)
	}
	for v := 0; v < n; v++ {
		l.Labels[v] = MakeLabel(l.Labels[v].X1(), l.Labels[v].X2(), v == z)
	}
	l.Z = z
	return l, nil
}
