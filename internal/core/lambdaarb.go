package core

import (
	"fmt"

	"radiobcast/internal/graph"
)

// LambdaArb computes the 3-bit labeling scheme λarb of §4.1 for the setting
// where the source is not known at labeling time. An arbitrary node r is
// labeled 111; the remaining nodes are labeled by λack computed *as if r
// were the source*. By Fact 3.1 the label 111 is otherwise unused, so r is
// uniquely identifiable and coordinates the three-phase algorithm Barb
// regardless of which node actually holds the source message.
func LambdaArb(g *graph.Graph, r int, opt BuildOptions) (*Labeling, error) {
	n := g.N()
	if r < 0 || r >= n {
		return nil, fmt.Errorf("core: coordinator r=%d out of range [0,%d)", r, n)
	}
	l, err := LambdaAck(g, r, opt)
	if err != nil {
		return nil, err
	}
	l.Labels[r] = Label("111")
	l.R = r
	// λarb uses at most 6 distinct labels: the 5 of λack plus 111 (§5).
	if d := Distinct(l.Labels); d > 6 {
		return nil, fmt.Errorf("core: λarb produced %d distinct labels, want ≤ 6", d)
	}
	return l, nil
}
