package core

import (
	"fmt"

	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// BroadcastOutcome summarises a run of algorithm B.
type BroadcastOutcome struct {
	Result *radio.Result
	// InformedRound[v] is the round in which v first received µ (0 for the
	// source). AllInformed is true when every node received µ.
	InformedRound []int
	AllInformed   bool
	// CompletionRound is the largest InformedRound (the t of Theorem 2.9).
	CompletionRound int
	// Stages is the construction underlying the labels.
	Stages *Stages
	Labels []Label
}

// RunBroadcast labels g with λ (under opt) and executes algorithm B with
// source message mu, returning the outcome. MaxRounds defaults to 2n+4,
// comfortably above the paper's 2n−3 bound.
func RunBroadcast(g *graph.Graph, source int, mu string, opt BuildOptions) (*BroadcastOutcome, error) {
	l, err := Lambda(g, source, opt)
	if err != nil {
		return nil, err
	}
	return RunBroadcastLabeled(g, l, source, mu, nil)
}

// RunBroadcastLabeled executes B on a pre-labeled graph. trace may be nil.
func RunBroadcastLabeled(g *graph.Graph, l *Labeling, source int, mu string, trace *radio.Trace) (*BroadcastOutcome, error) {
	var tune *radio.Tuning
	if trace != nil {
		tune = &radio.Tuning{Trace: trace}
	}
	return RunBroadcastTuned(g, l, source, mu, tune)
}

// RunBroadcastTuned executes B on a pre-labeled graph with engine tuning
// (workers, round-bound override, trace, fault injection) layered onto the
// scheme's default options. tune may be nil.
func RunBroadcastTuned(g *graph.Graph, l *Labeling, source int, mu string, tune *radio.Tuning) (*BroadcastOutcome, error) {
	ps, base, asm := PlanBroadcast(g, l, source, mu)
	return asm(radio.Run(g, ps, base.With(tune))), nil
}

// PlanBroadcast splits a B execution into its three ingredients — the
// protocol vector, the scheme's base engine options, and an assemble
// function that turns the engine Result into the outcome — so callers can
// hand the middle step to a different driver (radio.RunBatch folds many
// plans over one graph into a lockstep batch). RunBroadcastTuned is
// exactly plan → Run → assemble.
func PlanBroadcast(g *graph.Graph, l *Labeling, source int, mu string) ([]radio.Protocol, radio.Options, func(*radio.Result) *BroadcastOutcome) {
	n := g.N()
	ps := NewBProtocols(l.Labels, source, mu)
	base := radio.Options{
		MaxRounds:       2*n + 4,
		StopAfterSilent: 3,
	}
	asm := func(res *radio.Result) *BroadcastOutcome {
		out := &BroadcastOutcome{Result: res, Stages: l.Stages, Labels: l.Labels}
		out.InformedRound = make([]int, n)
		out.AllInformed = true
		for v := 0; v < n; v++ {
			if v == source {
				continue
			}
			r := res.FirstReception(v, radio.KindData)
			out.InformedRound[v] = r
			if r == radio.NoReception {
				out.AllInformed = false
			}
			if r > out.CompletionRound {
				out.CompletionRound = r
			}
		}
		return out
	}
	return ps, base, asm
}

// VerifyBroadcast checks the outcome against the paper's guarantees:
// everyone informed, within 2n−3 rounds (Theorem 2.9), with each node
// informed exactly in round 2i−1 for its stage i (Lemma 2.8), and all
// received payloads equal to µ.
func VerifyBroadcast(out *BroadcastOutcome, mu string) error {
	n := len(out.InformedRound)
	if !out.AllInformed {
		return fmt.Errorf("core: broadcast incomplete: %v", out.InformedRound)
	}
	if n >= 2 && out.CompletionRound > 2*n-3 {
		return fmt.Errorf("core: completion round %d exceeds 2n−3 = %d", out.CompletionRound, 2*n-3)
	}
	stageOf := out.Stages.InformedStage()
	for v := 0; v < n; v++ {
		if v == out.Stages.Source {
			continue
		}
		want := 2*stageOf[v] - 1
		if out.InformedRound[v] != want {
			return fmt.Errorf("core: node %d informed in round %d, Lemma 2.8 predicts %d", v, out.InformedRound[v], want)
		}
		for _, rec := range out.Result.Receives[v] {
			if rec.Msg.Kind == radio.KindData && rec.Msg.Payload != mu {
				return fmt.Errorf("core: node %d received payload %q, want %q", v, rec.Msg.Payload, mu)
			}
		}
	}
	return nil
}

// AckOutcome summarises a run of algorithm Back.
type AckOutcome struct {
	BroadcastOutcome
	// AckRound is the round in which the source received an "ack"
	// (the t′ of Theorem 3.9); 0 if it never arrived.
	AckRound int
	Z        int
}

// RunAcknowledged labels g with λack and executes Back.
func RunAcknowledged(g *graph.Graph, source int, mu string, opt BuildOptions) (*AckOutcome, error) {
	l, err := LambdaAck(g, source, opt)
	if err != nil {
		return nil, err
	}
	return RunAcknowledgedLabeled(g, l, source, mu)
}

// RunAcknowledgedLabeled executes Back on a pre-labeled graph (λack labels).
func RunAcknowledgedLabeled(g *graph.Graph, l *Labeling, source int, mu string) (*AckOutcome, error) {
	return RunAcknowledgedTuned(g, l, source, mu, nil)
}

// RunAcknowledgedTuned executes Back on a pre-labeled graph with engine
// tuning layered onto the scheme's default options. tune may be nil.
func RunAcknowledgedTuned(g *graph.Graph, l *Labeling, source int, mu string, tune *radio.Tuning) (*AckOutcome, error) {
	ps, base, asm := PlanAcknowledged(g, l, source, mu)
	return asm(radio.Run(g, ps, base.With(tune))), nil
}

// PlanAcknowledged is the plan/assemble split of RunAcknowledgedTuned
// (see PlanBroadcast). The assemble closure reads the source protocol's
// ack state, so it must be called on the Result of running exactly the
// returned protocol vector.
func PlanAcknowledged(g *graph.Graph, l *Labeling, source int, mu string) ([]radio.Protocol, radio.Options, func(*radio.Result) *AckOutcome) {
	n := g.N()
	ps := NewBackProtocols(l.Labels, source, mu)
	src := ps[source].(*AlgBack)
	base := radio.Options{
		MaxRounds:       3*n + 6,
		StopAfterSilent: 3,
	}
	asm := func(res *radio.Result) *AckOutcome {
		out := &AckOutcome{Z: l.Z}
		out.Result = res
		out.Stages = l.Stages
		out.Labels = l.Labels
		out.InformedRound = make([]int, n)
		out.AllInformed = true
		for v := 0; v < n; v++ {
			if v == source {
				continue
			}
			r := res.FirstReception(v, radio.KindData)
			out.InformedRound[v] = r
			if r == radio.NoReception {
				out.AllInformed = false
			}
			if r > out.CompletionRound {
				out.CompletionRound = r
			}
		}
		if src.AckDone {
			out.AckRound = src.AckRound
		}
		return out
	}
	return ps, base, asm
}

// VerifyAcknowledged checks Theorem 3.9 and Corollary 3.8: broadcast
// completes by t ≤ 2n−3; the source's ack arrives in a round
// t′ ∈ {2ℓ−2, …, 3ℓ−4}; and the ack arrives strictly after completion.
func VerifyAcknowledged(out *AckOutcome, mu string) error {
	if err := VerifyBroadcast(&out.BroadcastOutcome, mu); err != nil {
		return err
	}
	n := len(out.InformedRound)
	if n < 2 {
		return nil // no acknowledgement needed for a single node
	}
	if out.AckRound == 0 {
		return fmt.Errorf("core: source never received an ack")
	}
	if out.AckRound <= out.CompletionRound {
		return fmt.Errorf("core: ack round %d not after completion round %d", out.AckRound, out.CompletionRound)
	}
	l := out.Stages.L
	lo, hi := 2*l-2, 3*l-4
	if hi < lo {
		hi = lo // ℓ = 2: the window degenerates to {2ℓ−2}
	}
	if out.AckRound < lo || out.AckRound > hi {
		return fmt.Errorf("core: ack round %d outside Corollary 3.8 window [%d,%d] (ℓ=%d)", out.AckRound, lo, hi, l)
	}
	return nil
}

// CommonRoundOutcome summarises the §3 composition Back→B that yields a
// common round in which all nodes know broadcast has completed.
type CommonRoundOutcome struct {
	Ack *AckOutcome
	// M is the round in which the source first received the ack; the second
	// broadcast disseminates m = M and every node knows completion at round
	// 2M of the second execution's clock.
	M int
	// SecondCompletion is the completion round of the second broadcast.
	SecondCompletion int
	// CommonRound is 2M (in the second execution's clock).
	CommonRound int
}

// RunCommonRound performs acknowledged broadcast and then broadcasts the
// ack round m with algorithm B, verifying all nodes receive m before round
// 2m (the paper's closing argument of §3).
func RunCommonRound(g *graph.Graph, source int, mu string, opt BuildOptions) (*CommonRoundOutcome, error) {
	ack, err := RunAcknowledged(g, source, mu, opt)
	if err != nil {
		return nil, err
	}
	if g.N() >= 2 && ack.AckRound == 0 {
		return nil, fmt.Errorf("core: acknowledged broadcast failed")
	}
	out := &CommonRoundOutcome{Ack: ack, M: ack.AckRound, CommonRound: 2 * ack.AckRound}
	// Second execution: B with message m (the labels' 2-bit prefix works
	// unchanged; extra bits are ignored by AlgB).
	second, err := RunBroadcastLabeled(g, &Labeling{Labels: ack.Labels, Stages: ack.Stages}, source, fmt.Sprintf("%d", out.M), nil)
	if err != nil {
		return nil, err
	}
	out.SecondCompletion = second.CompletionRound
	return out, nil
}

// VerifyCommonRound checks that the second broadcast finishes before round
// 2m, so that round 2m is a common completion-knowledge round.
func VerifyCommonRound(out *CommonRoundOutcome) error {
	if out.SecondCompletion >= out.CommonRound {
		return fmt.Errorf("core: second broadcast finished in round %d, not before 2m = %d", out.SecondCompletion, out.CommonRound)
	}
	return nil
}

// ArbOutcome summarises a run of Barb.
type ArbOutcome struct {
	Result *radio.Result
	Labels []Label
	R      int
	Source int
	// MuKnownRound[v]: absolute round when v learned µ (0 = source).
	MuKnownRound []int
	AllKnowMu    bool
	// KnowsCompleteRound[v]: absolute round from which v knows broadcast
	// completed (0 = never); for correct runs all entries are equal.
	KnowsCompleteRound []int
	TotalRounds        int
	T                  int
}

// RunArbitrary labels g with λarb (coordinator r) and runs Barb with node
// source holding message mu. Requires n ≥ 2.
func RunArbitrary(g *graph.Graph, r, source int, mu string, opt BuildOptions) (*ArbOutcome, error) {
	l, err := LambdaArb(g, r, opt)
	if err != nil {
		return nil, err
	}
	return RunArbitraryLabeled(g, l, source, mu)
}

// RunArbitraryLabeled runs Barb on a pre-labeled graph (λarb labels).
func RunArbitraryLabeled(g *graph.Graph, l *Labeling, source int, mu string) (*ArbOutcome, error) {
	return RunArbitraryTuned(g, l, source, mu, nil)
}

// RunArbitraryTuned runs Barb on a pre-labeled graph with engine tuning
// layered onto the scheme's default options. tune may be nil.
func RunArbitraryTuned(g *graph.Graph, l *Labeling, source int, mu string, tune *radio.Tuning) (*ArbOutcome, error) {
	ps, base, asm, err := PlanArbitrary(g, l, source, mu)
	if err != nil {
		return nil, err
	}
	return asm(radio.Run(g, ps, base.With(tune))), nil
}

// PlanArbitrary is the plan/assemble split of RunArbitraryTuned (see
// PlanBroadcast). Both the base Stop predicate and the assemble closure
// read per-node protocol state, so the Result handed to assemble must
// come from running exactly the returned protocol vector. Errors for
// n < 2 (Barb needs a coordinator and at least one other node).
func PlanArbitrary(g *graph.Graph, l *Labeling, source int, mu string) ([]radio.Protocol, radio.Options, func(*radio.Result) *ArbOutcome, error) {
	n := g.N()
	if n < 2 {
		return nil, radio.Options{}, nil, fmt.Errorf("core: Barb needs n ≥ 2")
	}
	ps := NewBarbProtocols(l.Labels, source, mu)
	nodes := make([]*AlgBarb, n)
	for v := range ps {
		nodes[v] = ps[v].(*AlgBarb)
	}
	base := radio.Options{
		MaxRounds: 14*n + 40,
		Stop: func(round int) bool {
			for _, nd := range nodes {
				if nd.KnowsCompleteRound == 0 || round < nd.KnowsCompleteRound {
					return false
				}
			}
			return true
		},
	}
	asm := func(res *radio.Result) *ArbOutcome {
		out := &ArbOutcome{
			Result: res, Labels: l.Labels, R: l.R, Source: source,
			MuKnownRound:       make([]int, n),
			KnowsCompleteRound: make([]int, n),
			AllKnowMu:          true,
			TotalRounds:        res.Rounds,
		}
		for v, nd := range nodes {
			if got, ok := nd.Mu(); !ok || got != mu {
				out.AllKnowMu = false
			}
			out.MuKnownRound[v] = nd.MuKnownRound
			out.KnowsCompleteRound[v] = nd.KnowsCompleteRound
			if t, ok := nd.TValue(); ok && t > out.T {
				out.T = t
			}
		}
		return out
	}
	return ps, base, asm, nil
}

// VerifyArbitrary checks Barb's guarantees: every node learned µ with the
// right payload, and all nodes reach "knows complete" in the same round.
func VerifyArbitrary(g *graph.Graph, out *ArbOutcome, mu string) error {
	n := g.N()
	if !out.AllKnowMu {
		return fmt.Errorf("core: Barb incomplete: some node never learned µ")
	}
	common := 0
	for v := 0; v < n; v++ {
		kc := out.KnowsCompleteRound[v]
		if kc == 0 {
			return fmt.Errorf("core: node %d never knows completion", v)
		}
		if common == 0 {
			common = kc
		} else if kc != common {
			return fmt.Errorf("core: node %d knows completion at %d, others at %d", v, kc, common)
		}
	}
	return nil
}
