package core

import (
	"fmt"

	"radiobcast/internal/graph"
)

// Session supports the paper's motivating deployment (§1.2): labels are
// assigned once by a central monitor, then the source broadcasts *many
// consecutive messages*, each as an acknowledged broadcast, sending the
// next message only after the previous one was acknowledged. A Session
// owns the λack labeling for a (graph, source) pair and replays it.
type Session struct {
	g      *graph.Graph
	source int
	label  *Labeling

	// History accumulates one record per message sent.
	History []SessionRecord
}

// SessionRecord summarises one acknowledged broadcast of a session.
type SessionRecord struct {
	Mu              string
	CompletionRound int
	AckRound        int
}

// NewSession labels g with λack for the given source.
func NewSession(g *graph.Graph, source int, opt BuildOptions) (*Session, error) {
	l, err := LambdaAck(g, source, opt)
	if err != nil {
		return nil, err
	}
	return &Session{g: g, source: source, label: l}, nil
}

// Labels exposes the session's labeling (e.g. to flash onto devices).
func (s *Session) Labels() []Label { return s.label.Labels }

// Z returns the acknowledgement initiator.
func (s *Session) Z() int { return s.label.Z }

// Send performs one acknowledged broadcast of mu and returns its record.
// It fails if the broadcast is not acknowledged — in which case the caller
// must not send further messages (the paper's protocol relies on the
// acknowledgement to serialise messages).
func (s *Session) Send(mu string) (SessionRecord, error) {
	out, err := RunAcknowledgedLabeled(s.g, s.label, s.source, mu)
	if err != nil {
		return SessionRecord{}, err
	}
	if err := VerifyAcknowledged(out, mu); err != nil {
		return SessionRecord{}, fmt.Errorf("core: session send %q: %w", mu, err)
	}
	rec := SessionRecord{Mu: mu, CompletionRound: out.CompletionRound, AckRound: out.AckRound}
	s.History = append(s.History, rec)
	return rec, nil
}

// SendAll sends each message in order, stopping at the first failure, and
// returns the total number of rounds consumed (sum of ack rounds — each
// broadcast starts only after the previous acknowledgement).
func (s *Session) SendAll(mus []string) (totalRounds int, err error) {
	for _, mu := range mus {
		rec, err := s.Send(mu)
		if err != nil {
			return totalRounds, err
		}
		totalRounds += rec.AckRound
	}
	return totalRounds, nil
}
