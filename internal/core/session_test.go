package core

import (
	"testing"

	"radiobcast/internal/graph"
)

func TestSessionSendsSequence(t *testing.T) {
	g := graph.Grid(4, 4)
	s, err := NewSession(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	msgs := []string{"alpha", "beta", "gamma"}
	total, err := s.SendAll(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.History) != 3 {
		t.Fatalf("history length %d", len(s.History))
	}
	sum := 0
	for i, rec := range s.History {
		if rec.Mu != msgs[i] {
			t.Fatalf("history[%d].Mu = %q", i, rec.Mu)
		}
		if rec.AckRound <= rec.CompletionRound {
			t.Fatalf("ack %d not after completion %d", rec.AckRound, rec.CompletionRound)
		}
		sum += rec.AckRound
	}
	if total != sum {
		t.Fatalf("total = %d, want %d", total, sum)
	}
	// Same labels → identical schedule for every message.
	if s.History[0].AckRound != s.History[2].AckRound {
		t.Fatal("repeated broadcasts should have identical timing")
	}
}

func TestSessionLabelsExposed(t *testing.T) {
	g := graph.Path(5)
	s, err := NewSession(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if MaxLen(s.Labels()) != 3 {
		t.Fatalf("label length %d, want 3", MaxLen(s.Labels()))
	}
	if s.Z() != 4 {
		t.Fatalf("z = %d, want the far endpoint 4", s.Z())
	}
}

func TestBroadcastInvariantUnderRelabeling(t *testing.T) {
	// Renaming nodes must preserve every guarantee (the DOM sets chosen may
	// differ, but completion ≤ 2n−3 and full information always hold).
	for seed := int64(0); seed < 20; seed++ {
		g := graph.GNPConnected(24, 0.15, seed)
		perm := graph.RandomPermutation(24, seed+100)
		relabeled := graph.Relabel(g, perm)
		out1, err := RunBroadcast(g, 3, "m", BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out2, err := RunBroadcast(relabeled, perm[3], "m", BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyBroadcast(out1, "m"); err != nil {
			t.Fatal(err)
		}
		if err := VerifyBroadcast(out2, "m"); err != nil {
			t.Fatalf("seed %d: relabeled graph: %v", seed, err)
		}
		// ℓ is permutation-invariant? Not necessarily (prune order is index
		// based), but the 2n−3 bound and stage count ≤ n must hold in both.
		if out1.Stages.L > 24 || out2.Stages.L > 24 {
			t.Fatal("ℓ > n")
		}
	}
}
