package core

import (
	"fmt"
	"sync"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// Stage holds the five sets of one stage i of the construction in §2.1.
type Stage struct {
	// Inf is INF_i: nodes informed before round 2i−1.
	Inf *nodeset.Set
	// Uninf is UNINF_i: nodes not informed before round 2i−1.
	Uninf *nodeset.Set
	// Frontier is FRONTIER_i: uninformed nodes adjacent to an informed one.
	Frontier *nodeset.Set
	// Dom is DOM_i: the minimal dominating subset that transmits in round 2i−1.
	Dom *nodeset.Set
	// New is NEW_i: frontier nodes adjacent to exactly one DOM_i node —
	// exactly the nodes newly informed in round 2i−1 (Lemma 2.8).
	New *nodeset.Set
}

// Stages is the full construction for a (graph, source) pair.
//
// Storage is delta-compressed: only the DOM_i and NEW_i node lists are
// kept — the representation the wire codec already proved sufficient,
// since INF/UNINF/FRONTIER follow deterministically from the recurrence
// INF_{i+1} = INF_i ∪ NEW_i, FRONTIER_{i+1} = (FRONTIER_i ∖ NEW_i) ∪
// (Γ(NEW_i) ∩ UNINF_{i+1}). That replaces the former five-full-sets-per-
// stage snapshots, Θ(n·ℓ) = Θ(n²) bits on deep (path-like) families,
// with Θ(n + Σ_i |DOM_i| + |NEW_i|) words, which is O(n + m) overall —
// the change that makes million-node labelings storable. Stage(i)
// materializes the five sets on demand by replaying the recurrence
// through a cached forward cursor, so sequential consumers (λ
// verification, invariant checks, stage dumps) pay O(deltas) per step.
type Stages struct {
	G      *graph.Graph
	Source int
	// L is ℓ: the smallest i with INF_i = V(G). Stages 1..ℓ−1 are stored
	// when ℓ > 1 (stage ℓ has INF = V and is not stored; DOM_ℓ/NEW_ℓ are
	// empty by construction).
	L int
	// Restricted reports whether the construction used the conclusion's
	// restricted recursion DOM_i ⊆ DOM_{i−1} (see BuildOptions).
	Restricted bool
	// Stalled is the stage at which a restricted construction could not
	// continue (0 when the construction completed). Only a restricted
	// construction can stall; the standard one always progresses (Lemma 2.5).
	Stalled int

	// doms[i-1] and news[i-1] are the DOM_i / NEW_i node lists, ascending
	// and duplicate-free — the entire stored state of the construction.
	doms, news [][]int32

	// mu guards cur so Stage(i) is safe for concurrent readers (the
	// Session shares cached labelings across requests).
	mu  sync.Mutex
	cur stageCursor
}

// stageCursor is the replay state for Stage(i): the three derived sets at
// stage idx. Forward access advances by one NEW delta; backward access
// restarts from stage 1.
type stageCursor struct {
	idx                  int // stage currently materialized; 0 = unset
	inf, uninf, frontier *nodeset.Set
}

// BuildOptions tunes the construction.
type BuildOptions struct {
	// Order is the minimality prune order (default Ascending; any order
	// yields a correct scheme — the ABLDOM experiment compares them).
	Order domset.PruneOrder
	// Restricted, when true, replaces the candidate set DOM_{i−1} ∪ NEW_{i−1}
	// with DOM_{i−1} as hinted in the paper's conclusion for the 1-bit
	// radius-2 scheme. This recursion stalls on general graphs (the hint as
	// literally stated is incomplete); we implement it to document that.
	Restricted bool
	// SkipMinimality, when true, keeps the full candidate set instead of a
	// minimal subset. This deliberately violates the construction to
	// demonstrate that minimality is load-bearing: NEW_i can become empty
	// while FRONTIER_i is not (breaking Lemma 2.4). Used by ablations only.
	SkipMinimality bool
	// Scalar forces the node-at-a-time reference builder instead of the
	// word-parallel kernel. The two are pinned bit-identical by the
	// differential tests; Scalar keeps the reference selectable for those
	// tests and for bisecting a suspected kernel bug. Restricted and
	// SkipMinimality imply the scalar path (the ablations are not hot).
	Scalar bool
}

// BuildStages runs the construction of §2.1 and returns the stage sets.
// It returns an error only in the deliberately broken modes (Restricted or
// SkipMinimality) when progress stops; the standard construction always
// completes on connected graphs. The standard mode runs the word-parallel
// kernel (stages_bitset.go); ablation modes and opt.Scalar run the scalar
// reference (stages_scalar.go). Both emit identical DOM/NEW lists.
func BuildStages(g *graph.Graph, source int, opt BuildOptions) (*Stages, error) {
	if n := g.N(); source < 0 || source >= n {
		panic(fmt.Sprintf("core: source %d out of range [0,%d)", source, n))
	}
	if opt.Scalar || opt.Restricted || opt.SkipMinimality {
		return buildStagesScalar(g, source, opt)
	}
	return buildStagesBitset(g, source, opt)
}

// Stage returns stage i (1-based). Panics if out of range.
//
// The five sets are materialized from the DOM/NEW deltas: Dom and New
// directly from the stored lists, Inf/Uninf/Frontier by replaying the
// recurrence on a cursor cached inside the Stages. Sequential ascending
// access — the pattern of every consumer in this repository — costs
// O(|NEW_{i−1}| + deg(NEW_{i−1})) per step plus the O(n) clone of the
// returned sets; jumping backward restarts the replay from stage 1. The
// returned sets are private copies; mutating them does not affect s.
func (s *Stages) Stage(i int) Stage {
	if i < 1 || i > len(s.doms) {
		panic(fmt.Sprintf("core: stage %d out of range [1,%d]", i, len(s.doms)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.idx == 0 || s.cur.idx > i {
		s.resetCursor()
	}
	for s.cur.idx < i {
		s.advanceCursor()
	}
	n := s.G.N()
	return Stage{
		Inf:      s.cur.inf.Clone(),
		Uninf:    s.cur.uninf.Clone(),
		Frontier: s.cur.frontier.Clone(),
		Dom:      nodeset.OfInt32(n, s.doms[i-1]),
		New:      nodeset.OfInt32(n, s.news[i-1]),
	}
}

// resetCursor rewinds the replay to stage 1: INF = {source}, FRONTIER =
// Γ(source).
func (s *Stages) resetCursor() {
	n := s.G.N()
	s.cur.idx = 1
	s.cur.inf = nodeset.Of(n, s.Source)
	s.cur.uninf = nodeset.Full(n)
	s.cur.uninf.Remove(s.Source)
	s.cur.frontier = nodeset.New(n)
	for _, w := range s.G.Freeze().Neighbors(s.Source) {
		s.cur.frontier.Add(int(w))
	}
}

// advanceCursor steps the replay one stage using the NEW delta. Because
// NEW_i ⊆ FRONTIER_i ⊆ UNINF_i, the frontier survivors FRONTIER_i ∩
// UNINF_{i+1} are exactly FRONTIER_i ∖ NEW_i, so the whole step touches
// only NEW_i and its neighbourhoods.
func (s *Stages) advanceCursor() {
	csr := s.G.Freeze()
	prevNew := s.news[s.cur.idx-1]
	for _, v := range prevNew {
		s.cur.inf.Add(int(v))
		s.cur.uninf.Remove(int(v))
		s.cur.frontier.Remove(int(v))
	}
	for _, v := range prevNew {
		for _, w := range csr.Neighbors(int(v)) {
			if s.cur.uninf.Has(int(w)) {
				s.cur.frontier.Add(int(w))
			}
		}
	}
	s.cur.idx++
}

// NumStored returns the number of stored stages (ℓ−1 for ℓ > 1, else 1).
func (s *Stages) NumStored() int { return len(s.doms) }

// DomUnion returns the union of all DOM_i (the x1 = 1 nodes).
func (s *Stages) DomUnion() *nodeset.Set {
	u := nodeset.New(s.G.N())
	for _, dom := range s.doms {
		for _, v := range dom {
			u.Add(int(v))
		}
	}
	return u
}

// InformedStage returns, for each node, the stage i at which it appears in
// NEW_i (0 for the source). Together with Lemma 2.8 this is the round
// (2i−1) in which the node is informed.
func (s *Stages) InformedStage() []int {
	out := make([]int, s.G.N())
	for i, list := range s.news {
		for _, v := range list {
			out[v] = i + 1
		}
	}
	return out
}

// CheckStageInvariants validates every fact and lemma of §2.1 against the
// computed stages, returning the first violation found. It is used by the
// test suite and the L26 experiment; a nil result machine-checks:
//
//	Fact 2.1:   NEW_i ⊆ FRONTIER_i ⊆ UNINF_i
//	Fact 2.2:   INF_i = INF_1 ∪ ⋃_{j<i} NEW_j and UNINF_i = complement
//	Lemma 2.3:  the NEW_i are pairwise disjoint
//	Lemma 2.4:  INF_i ≠ V ⇒ NEW_i ≠ ∅
//	(step 4):   DOM_i ⊆ DOM_{i−1} ∪ NEW_{i−1}, minimal, dominates FRONTIER_i
//	Lemma 2.6:  ℓ ≤ n
//	Cor. 2.7:   NEW_1 … NEW_{ℓ−1} partition V ∖ {source}
//
// Since the stages are stored as DOM/NEW deltas, the check also exercises
// the replay cursor behind Stage(i) against the independently accumulated
// Fact 2.2 sets.
func CheckStageInvariants(s *Stages) error {
	n := s.G.N()
	if s.L > n {
		return fmt.Errorf("Lemma 2.6 violated: ℓ=%d > n=%d", s.L, n)
	}
	accNew := nodeset.New(n)
	var prev Stage
	for i := 1; i <= s.NumStored(); i++ {
		stage := s.Stage(i)
		if !stage.New.SubsetOf(stage.Frontier) || !stage.Frontier.SubsetOf(stage.Uninf) {
			return fmt.Errorf("Fact 2.1 violated at stage %d", i)
		}
		wantInf := nodeset.Of(n, s.Source).UnionWith(accNew)
		if !stage.Inf.Equal(wantInf) {
			return fmt.Errorf("Fact 2.2 violated at stage %d: INF=%v want %v", i, stage.Inf, wantInf)
		}
		wantUninf := nodeset.Subtract(nodeset.Full(n), wantInf)
		if !stage.Uninf.Equal(wantUninf) {
			return fmt.Errorf("Fact 2.2 violated at stage %d: UNINF=%v want %v", i, stage.Uninf, wantUninf)
		}
		if !accNew.Disjoint(stage.New) {
			return fmt.Errorf("Lemma 2.3 violated at stage %d: NEW sets intersect", i)
		}
		if stage.Inf.Count() < n && stage.New.Empty() && s.Stalled == 0 {
			return fmt.Errorf("Lemma 2.4 violated at stage %d: no progress", i)
		}
		if i >= 2 {
			candidates := nodeset.Union(prev.Dom, prev.New)
			if s.Restricted {
				candidates = prev.Dom.Clone()
			}
			if !stage.Dom.SubsetOf(candidates) {
				return fmt.Errorf("DOM_%d not a subset of DOM_%d ∪ NEW_%d", i, i-1, i-1)
			}
			if !domset.IsMinimal(s.G, stage.Dom, stage.Frontier) {
				return fmt.Errorf("DOM_%d not a minimal dominating set of FRONTIER_%d", i, i)
			}
		}
		// NEW_i definition check.
		want := exactlyOneNeighbor(s.G, stage.Frontier, stage.Dom)
		if !stage.New.Equal(want) {
			return fmt.Errorf("NEW_%d ≠ exactly-one-DOM-neighbour set", i)
		}
		accNew.UnionWith(stage.New)
		prev = stage
	}
	if s.Stalled == 0 {
		// Corollary 2.7: the NEW sets partition V ∖ {source}.
		wantAll := nodeset.Full(n)
		wantAll.Remove(s.Source)
		if !accNew.Equal(wantAll) {
			return fmt.Errorf("Corollary 2.7 violated: ⋃NEW=%v ≠ V∖{s}", accNew)
		}
	}
	return nil
}
