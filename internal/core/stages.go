package core

import (
	"fmt"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// Stage holds the five sets of one stage i of the construction in §2.1.
type Stage struct {
	// Inf is INF_i: nodes informed before round 2i−1.
	Inf *nodeset.Set
	// Uninf is UNINF_i: nodes not informed before round 2i−1.
	Uninf *nodeset.Set
	// Frontier is FRONTIER_i: uninformed nodes adjacent to an informed one.
	Frontier *nodeset.Set
	// Dom is DOM_i: the minimal dominating subset that transmits in round 2i−1.
	Dom *nodeset.Set
	// New is NEW_i: frontier nodes adjacent to exactly one DOM_i node —
	// exactly the nodes newly informed in round 2i−1 (Lemma 2.8).
	New *nodeset.Set
}

// Stages is the full construction for a (graph, source) pair.
type Stages struct {
	G      *graph.Graph
	Source int
	// ByIndex[i-1] is stage i; stages run 1..L.
	ByIndex []Stage
	// L is ℓ: the smallest i with INF_i = V(G). The last entry of ByIndex
	// is stage L−1 when L > 1 (stage L has INF = V and is not stored;
	// DOM_L/NEW_L are empty by construction).
	L int
	// Restricted reports whether the construction used the conclusion's
	// restricted recursion DOM_i ⊆ DOM_{i−1} (see BuildOptions).
	Restricted bool
	// Stalled is the stage at which a restricted construction could not
	// continue (0 when the construction completed). Only a restricted
	// construction can stall; the standard one always progresses (Lemma 2.5).
	Stalled int
}

// BuildOptions tunes the construction.
type BuildOptions struct {
	// Order is the minimality prune order (default Ascending; any order
	// yields a correct scheme — the ABLDOM experiment compares them).
	Order domset.PruneOrder
	// Restricted, when true, replaces the candidate set DOM_{i−1} ∪ NEW_{i−1}
	// with DOM_{i−1} as hinted in the paper's conclusion for the 1-bit
	// radius-2 scheme. This recursion stalls on general graphs (the hint as
	// literally stated is incomplete); we implement it to document that.
	Restricted bool
	// SkipMinimality, when true, keeps the full candidate set instead of a
	// minimal subset. This deliberately violates the construction to
	// demonstrate that minimality is load-bearing: NEW_i can become empty
	// while FRONTIER_i is not (breaking Lemma 2.4). Used by ablations only.
	SkipMinimality bool
}

// BuildStages runs the construction of §2.1 and returns the stage sets.
// It returns an error only in the deliberately broken modes (Restricted or
// SkipMinimality) when progress stops; the standard construction always
// completes on connected graphs.
func BuildStages(g *graph.Graph, source int, opt BuildOptions) (*Stages, error) {
	n := g.N()
	if source < 0 || source >= n {
		panic(fmt.Sprintf("core: source %d out of range [0,%d)", source, n))
	}
	st := &Stages{G: g, Source: source, Restricted: opt.Restricted}
	csr := g.Freeze()

	inf := nodeset.Of(n, source)
	uninf := nodeset.Full(n)
	uninf.Remove(source)
	frontier := nodeset.New(n)
	for _, w := range csr.Neighbors(source) {
		frontier.Add(int(w))
	}
	dom := nodeset.Of(n, source)
	newSet := frontier.Clone()

	st.ByIndex = append(st.ByIndex, Stage{
		Inf: inf.Clone(), Uninf: uninf.Clone(), Frontier: frontier.Clone(),
		Dom: dom.Clone(), New: newSet.Clone(),
	})
	if inf.Count()+newSet.Count() == n && n == 1 {
		st.L = 1
		return st, nil
	}

	for i := 2; ; i++ {
		prevDom, prevNew := dom, newSet
		inf = nodeset.Union(inf, prevNew)
		if inf.Count() == n {
			st.L = i
			return st, nil
		}
		uninf = nodeset.Subtract(uninf, prevNew)
		// FRONTIER_i = UNINF_i ∩ Γ(INF_i), computed incrementally:
		// previous frontier survivors plus uninformed neighbours of NEW_{i−1}.
		frontier = nodeset.Intersect(frontier, uninf)
		frontier.UnionWith(nodeset.Intersect(g.Neighborhood(prevNew), uninf))

		candidates := prevDom.Clone()
		if !opt.Restricted {
			candidates.UnionWith(prevNew)
		}
		if opt.SkipMinimality {
			dom = restrictToUseful(g, candidates, frontier)
			if !domset.Dominates(g, dom, frontier) {
				st.Stalled = i
				return st, fmt.Errorf("core: stage %d: candidates do not dominate frontier (skip-minimality mode)", i)
			}
		} else {
			var err error
			dom, err = domset.MinimalSubset(g, candidates, frontier, opt.Order)
			if err != nil {
				st.Stalled = i
				return st, fmt.Errorf("core: stage %d: %v (restricted=%v)", i, err, opt.Restricted)
			}
		}

		newSet = exactlyOneNeighbor(g, frontier, dom)
		st.ByIndex = append(st.ByIndex, Stage{
			Inf: inf.Clone(), Uninf: uninf.Clone(), Frontier: frontier.Clone(),
			Dom: dom.Clone(), New: newSet.Clone(),
		})
		if newSet.Empty() {
			// Lemma 2.4 guarantees this never happens in the standard
			// construction; it does happen with SkipMinimality.
			st.Stalled = i
			return st, fmt.Errorf("core: stage %d: no progress (NEW empty, frontier %v)", i, frontier)
		}
		if i > n {
			st.Stalled = i
			return st, fmt.Errorf("core: stage count exceeded n=%d (Lemma 2.6 violated)", n)
		}
	}
}

// restrictToUseful keeps candidates with at least one frontier neighbour.
func restrictToUseful(g *graph.Graph, candidates, frontier *nodeset.Set) *nodeset.Set {
	csr := g.Freeze()
	kept := nodeset.New(g.N())
	candidates.ForEach(func(c int) {
		for _, w := range csr.Neighbors(c) {
			if frontier.Has(int(w)) {
				kept.Add(c)
				return
			}
		}
	})
	return kept
}

// exactlyOneNeighbor returns the frontier nodes with exactly one neighbour
// in dom (the definition of NEW_i).
func exactlyOneNeighbor(g *graph.Graph, frontier, dom *nodeset.Set) *nodeset.Set {
	csr := g.Freeze()
	out := nodeset.New(g.N())
	frontier.ForEach(func(v int) {
		count := 0
		for _, w := range csr.Neighbors(v) {
			if dom.Has(int(w)) {
				count++
				if count > 1 {
					return
				}
			}
		}
		if count == 1 {
			out.Add(v)
		}
	})
	return out
}

// Stage returns stage i (1-based). Panics if out of range.
func (s *Stages) Stage(i int) Stage {
	if i < 1 || i > len(s.ByIndex) {
		panic(fmt.Sprintf("core: stage %d out of range [1,%d]", i, len(s.ByIndex)))
	}
	return s.ByIndex[i-1]
}

// NumStored returns the number of stored stages (ℓ−1 for ℓ > 1, else 1).
func (s *Stages) NumStored() int { return len(s.ByIndex) }

// DomUnion returns the union of all DOM_i (the x1 = 1 nodes).
func (s *Stages) DomUnion() *nodeset.Set {
	u := nodeset.New(s.G.N())
	for _, stage := range s.ByIndex {
		u.UnionWith(stage.Dom)
	}
	return u
}

// InformedStage returns, for each node, the stage i at which it appears in
// NEW_i (0 for the source). Together with Lemma 2.8 this is the round
// (2i−1) in which the node is informed.
func (s *Stages) InformedStage() []int {
	out := make([]int, s.G.N())
	for i, stage := range s.ByIndex {
		stage.New.ForEach(func(v int) { out[v] = i + 1 })
	}
	return out
}

// CheckStageInvariants validates every fact and lemma of §2.1 against the
// computed stages, returning the first violation found. It is used by the
// test suite and the L26 experiment; a nil result machine-checks:
//
//	Fact 2.1:   NEW_i ⊆ FRONTIER_i ⊆ UNINF_i
//	Fact 2.2:   INF_i = INF_1 ∪ ⋃_{j<i} NEW_j and UNINF_i = complement
//	Lemma 2.3:  the NEW_i are pairwise disjoint
//	Lemma 2.4:  INF_i ≠ V ⇒ NEW_i ≠ ∅
//	(step 4):   DOM_i ⊆ DOM_{i−1} ∪ NEW_{i−1}, minimal, dominates FRONTIER_i
//	Lemma 2.6:  ℓ ≤ n
//	Cor. 2.7:   NEW_1 … NEW_{ℓ−1} partition V ∖ {source}
func CheckStageInvariants(s *Stages) error {
	n := s.G.N()
	if s.L > n {
		return fmt.Errorf("Lemma 2.6 violated: ℓ=%d > n=%d", s.L, n)
	}
	accNew := nodeset.New(n)
	for i, stage := range s.ByIndex {
		idx := i + 1
		if !stage.New.SubsetOf(stage.Frontier) || !stage.Frontier.SubsetOf(stage.Uninf) {
			return fmt.Errorf("Fact 2.1 violated at stage %d", idx)
		}
		wantInf := nodeset.Of(n, s.Source).UnionWith(accNew)
		if !stage.Inf.Equal(wantInf) {
			return fmt.Errorf("Fact 2.2 violated at stage %d: INF=%v want %v", idx, stage.Inf, wantInf)
		}
		wantUninf := nodeset.Subtract(nodeset.Full(n), wantInf)
		if !stage.Uninf.Equal(wantUninf) {
			return fmt.Errorf("Fact 2.2 violated at stage %d: UNINF=%v want %v", idx, stage.Uninf, wantUninf)
		}
		if !accNew.Disjoint(stage.New) {
			return fmt.Errorf("Lemma 2.3 violated at stage %d: NEW sets intersect", idx)
		}
		if stage.Inf.Count() < n && stage.New.Empty() && s.Stalled == 0 {
			return fmt.Errorf("Lemma 2.4 violated at stage %d: no progress", idx)
		}
		if idx >= 2 {
			prev := s.ByIndex[i-1]
			candidates := nodeset.Union(prev.Dom, prev.New)
			if s.Restricted {
				candidates = prev.Dom.Clone()
			}
			if !stage.Dom.SubsetOf(candidates) {
				return fmt.Errorf("DOM_%d not a subset of DOM_%d ∪ NEW_%d", idx, idx-1, idx-1)
			}
			if !domset.IsMinimal(s.G, stage.Dom, stage.Frontier) {
				return fmt.Errorf("DOM_%d not a minimal dominating set of FRONTIER_%d", idx, idx)
			}
		}
		// NEW_i definition check.
		want := exactlyOneNeighbor(s.G, stage.Frontier, stage.Dom)
		if !stage.New.Equal(want) {
			return fmt.Errorf("NEW_%d ≠ exactly-one-DOM-neighbour set", idx)
		}
		accNew.UnionWith(stage.New)
	}
	if s.Stalled == 0 {
		// Corollary 2.7: the NEW sets partition V ∖ {source}.
		wantAll := nodeset.Full(n)
		wantAll.Remove(s.Source)
		if !accNew.Equal(wantAll) {
			return fmt.Errorf("Corollary 2.7 violated: ⋃NEW=%v ≠ V∖{s}", accNew)
		}
	}
	return nil
}
