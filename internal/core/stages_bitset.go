package core

import (
	"fmt"
	"math/bits"
	"sort"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// buildStagesBitset is the word-parallel construction of §2.1 — the
// preprocessing-side mirror of the bitset run engine. UNINF and FRONTIER
// live as []uint64 bit words over the frozen CSR; per stage, the work is
// proportional to the deltas, not to n:
//
//   - the frontier update touches only NEW_{i−1} and its neighbourhood
//     slabs (FRONTIER_i ∖ NEW_i survivors, then Γ(NEW_{i−1}) ∩ UNINF_i
//     ORed in word-wise), so frontier maintenance is O(Σ slabs(NEW_i)) =
//     O(m) over the whole construction;
//   - minimality pruning runs through domset.Pruner (cover counts with an
//     eq1 bit mirror, word-AND removable tests);
//   - NEW_i ("exactly one DOM_i neighbour") uses the same carry-save
//     trick as the engine's collision resolver: busy2 |= busy1 & slab,
//     busy1 |= slab over DOM_i's slabs, then NEW_i = busy1 ∧ ¬busy2 ∧
//     FRONTIER_i read out of only the touched words.
//
// Combined with the delta storage in Stages, labeling a deep 10⁶-node
// family becomes O(n + m) time and memory where the scalar builder's
// snapshots alone were Θ(n²) bits. The emitted DOM/NEW lists are pinned
// bit-identical to buildStagesScalar across every prune order.
func buildStagesBitset(g *graph.Graph, source int, opt BuildOptions) (*Stages, error) {
	n := g.N()
	st := &Stages{G: g, Source: source}
	csr := g.Freeze()
	bcsr := csr.Bits()

	// Stage 1: INF_1 = DOM_1 = {source}, NEW_1 = FRONTIER_1 = Γ(source).
	nbrS := csr.Neighbors(source)
	st.doms = append(st.doms, []int32{int32(source)})
	st.news = append(st.news, append(make([]int32, 0, len(nbrS)), nbrS...))
	if n == 1 {
		st.L = 1
		return st, nil
	}

	nw := (n + 63) / 64
	uninfW := make([]uint64, nw)
	for i := range uninfW {
		uninfW[i] = ^uint64(0)
	}
	if n%64 != 0 {
		uninfW[nw-1] = (uint64(1) << (uint(n) & 63)) - 1
	}
	uninfW[source>>6] &^= 1 << (uint(source) & 63)
	frontierW := make([]uint64, nw)
	for _, w := range nbrS {
		frontierW[w>>6] |= 1 << (uint(w) & 63)
	}
	frontierCount := len(nbrS)
	informed := 1

	pruner := domset.NewPruner(n)
	// Carry-save accumulators for the exactly-one-neighbour classification,
	// plus a touched-word list so only dirtied words are read and cleared.
	busy1 := make([]uint64, nw)
	busy2 := make([]uint64, nw)
	wmark := make([]bool, nw)
	var wlist []int32
	var cand []int32

	for i := 2; ; i++ {
		prevDom, prevNew := st.doms[i-2], st.news[i-2]
		informed += len(prevNew)
		if informed == n {
			st.L = i
			return st, nil
		}

		// UNINF_i = UNINF_{i−1} ∖ NEW_{i−1}; the frontier survivors
		// FRONTIER_{i−1} ∩ UNINF_i are exactly FRONTIER_{i−1} ∖ NEW_{i−1}.
		for _, v := range prevNew {
			uninfW[v>>6] &^= 1 << (uint(v) & 63)
			frontierW[v>>6] &^= 1 << (uint(v) & 63)
		}
		frontierCount -= len(prevNew)
		// Grow by Γ(NEW_{i−1}) ∩ UNINF_i, counting only genuinely new bits.
		for _, v := range prevNew {
			words, masks := bcsr.Slabs(int(v))
			for k, wi := range words {
				if add := masks[k] & uninfW[wi] &^ frontierW[wi]; add != 0 {
					frontierW[wi] |= add
					frontierCount += bits.OnesCount64(add)
				}
			}
		}

		// Candidates DOM_{i−1} ∪ NEW_{i−1}: the two lists are disjoint
		// (DOM ⊆ INF, NEW ⊆ UNINF) and sorted, so a plain merge.
		cand = mergeSortedInt32(cand[:0], prevDom, prevNew)
		domList, err := pruner.Prune(csr, cand, frontierW, frontierCount, opt.Order)
		if err != nil {
			st.Stalled = i
			return st, fmt.Errorf("core: stage %d: %v (restricted=%v)", i, err, opt.Restricted)
		}

		// NEW_i = FRONTIER_i nodes covered by exactly one DOM_i member.
		wlist = wlist[:0]
		for _, c := range domList {
			words, masks := bcsr.Slabs(int(c))
			for k, wi := range words {
				if !wmark[wi] {
					wmark[wi] = true
					wlist = append(wlist, wi)
				}
				busy2[wi] |= busy1[wi] & masks[k]
				busy1[wi] |= masks[k]
			}
		}
		// Touched words in ascending order make the extracted list ascending.
		sort.Slice(wlist, func(a, b int) bool { return wlist[a] < wlist[b] })
		newList := make([]int32, 0, len(prevNew))
		for _, wi := range wlist {
			x := busy1[wi] &^ busy2[wi] & frontierW[wi]
			base := int32(wi) << 6
			for ; x != 0; x &= x - 1 {
				newList = append(newList, base|int32(bits.TrailingZeros64(x)))
			}
			busy1[wi], busy2[wi] = 0, 0
			wmark[wi] = false
		}

		st.doms = append(st.doms, domList)
		st.news = append(st.news, newList)
		if len(newList) == 0 {
			// Lemma 2.4 rules this out for the standard construction this
			// kernel serves; kept as a defensive mirror of the scalar path.
			st.Stalled = i
			return st, fmt.Errorf("core: stage %d: no progress (NEW empty, frontier %v)", i, nodeset.FromWords(n, frontierW))
		}
		if i > n {
			st.Stalled = i
			return st, fmt.Errorf("core: stage count exceeded n=%d (Lemma 2.6 violated)", n)
		}
	}
}

// mergeSortedInt32 merges two sorted, disjoint lists into dst.
func mergeSortedInt32(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
