package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
)

// The word-parallel stage kernel must be indistinguishable from the
// scalar reference: same DOM/NEW lists, same ℓ, same labels, same stay
// picks — bit for bit, for every prune order. These differential tests
// are the contract that lets the kernel be the default while the scalar
// builder stays selectable via BuildOptions.Scalar.

// assertStagesIdentical compares the full delta representation (which
// determines everything else) plus the scalar metadata.
func assertStagesIdentical(t *testing.T, tag string, bit, sca *Stages) {
	t.Helper()
	if bit.L != sca.L || bit.Stalled != sca.Stalled || bit.NumStored() != sca.NumStored() {
		t.Fatalf("%s: bitset ℓ=%d stalled=%d stages=%d, scalar ℓ=%d stalled=%d stages=%d",
			tag, bit.L, bit.Stalled, bit.NumStored(), sca.L, sca.Stalled, sca.NumStored())
	}
	bd, bn := bit.StageSets()
	sd, sn := sca.StageSets()
	if !reflect.DeepEqual(bd, sd) {
		t.Fatalf("%s: DOM lists differ:\nbitset %v\nscalar %v", tag, bd, sd)
	}
	if !reflect.DeepEqual(bn, sn) {
		t.Fatalf("%s: NEW lists differ:\nbitset %v\nscalar %v", tag, bn, sn)
	}
}

func assertLabelingsIdentical(t *testing.T, tag string, bit, sca *Labeling) {
	t.Helper()
	if !reflect.DeepEqual(bit.Labels, sca.Labels) {
		t.Fatalf("%s: labels differ:\nbitset %v\nscalar %v", tag, bit.Labels, sca.Labels)
	}
	if !reflect.DeepEqual(bit.StayPick, sca.StayPick) {
		t.Fatalf("%s: stay picks differ:\nbitset %v\nscalar %v", tag, bit.StayPick, sca.StayPick)
	}
	if bit.Z != sca.Z || bit.R != sca.R {
		t.Fatalf("%s: z/r differ: bitset (%d,%d) scalar (%d,%d)", tag, bit.Z, bit.R, sca.Z, sca.R)
	}
	assertStagesIdentical(t, tag, bit.Stages, sca.Stages)
}

// TestBitsetScalarStagesIdentical pins the two builders set-for-set equal
// across every family, prune order and a spread of sources — including
// the five materialized sets of every stage, which exercises the replay
// cursor against the scalar construction's own snapshots.
func TestBitsetScalarStagesIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{"figure1": graph.Figure1()}
	for _, name := range graph.FamilyNames() {
		graphs[name] = graph.Families[name](24)
	}
	for name, g := range graphs {
		for _, order := range domset.Orders {
			for _, src := range []int{0, g.N() / 2, g.N() - 1} {
				tag := name + "/" + order.String()
				bit, err := BuildStages(g, src, BuildOptions{Order: order})
				if err != nil {
					t.Fatalf("%s: bitset: %v", tag, err)
				}
				sca, err := BuildStages(g, src, BuildOptions{Order: order, Scalar: true})
				if err != nil {
					t.Fatalf("%s: scalar: %v", tag, err)
				}
				assertStagesIdentical(t, tag, bit, sca)
				for i := 1; i <= bit.NumStored(); i++ {
					b, s := bit.Stage(i), sca.Stage(i)
					if !b.Inf.Equal(s.Inf) || !b.Uninf.Equal(s.Uninf) || !b.Frontier.Equal(s.Frontier) ||
						!b.Dom.Equal(s.Dom) || !b.New.Equal(s.New) {
						t.Fatalf("%s: stage %d sets differ", tag, i)
					}
				}
			}
		}
	}
}

// TestBitsetScalarLabelingsIdentical pins λ, λack and λarb — labels, stay
// picks, z and r — across the scheme × family × order matrix.
func TestBitsetScalarLabelingsIdentical(t *testing.T) {
	schemes := map[string]func(g *graph.Graph, opt BuildOptions) (*Labeling, error){
		"lambda":    func(g *graph.Graph, opt BuildOptions) (*Labeling, error) { return Lambda(g, 0, opt) },
		"lambdaack": func(g *graph.Graph, opt BuildOptions) (*Labeling, error) { return LambdaAck(g, 0, opt) },
		"lambdaarb": func(g *graph.Graph, opt BuildOptions) (*Labeling, error) { return LambdaArb(g, 0, opt) },
	}
	graphs := map[string]*graph.Graph{"figure1": graph.Figure1()}
	for _, name := range graph.FamilyNames() {
		graphs[name] = graph.Families[name](24)
	}
	for gname, g := range graphs {
		for sname, label := range schemes {
			for _, order := range domset.Orders {
				tag := sname + "/" + gname + "/" + order.String()
				bit, err := label(g, BuildOptions{Order: order})
				if err != nil {
					t.Fatalf("%s: bitset: %v", tag, err)
				}
				sca, err := label(g, BuildOptions{Order: order, Scalar: true})
				if err != nil {
					t.Fatalf("%s: scalar: %v", tag, err)
				}
				assertLabelingsIdentical(t, tag, bit, sca)
			}
		}
	}
}

// TestBitsetScalarQuickRandom drives both builders over random connected
// G(n,p) graphs with random sources and orders.
func TestBitsetScalarQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%60)
		g := graph.GNPConnected(n, 0.15, seed)
		src := int(uint64(seed) % uint64(n))
		order := domset.Orders[uint64(seed)%uint64(len(domset.Orders))]
		bit, err1 := Lambda(g, src, BuildOptions{Order: order})
		sca, err2 := Lambda(g, src, BuildOptions{Order: order, Scalar: true})
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(bit.Labels, sca.Labels) &&
			reflect.DeepEqual(bit.StayPick, sca.StayPick) &&
			bit.Stages.L == sca.Stages.L
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBitsetSingleNode pins the n=1 degenerate case on both builders.
func TestBitsetSingleNode(t *testing.T) {
	g := graph.Complete(1)
	bit, err := BuildStages(g, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sca, err := BuildStages(g, 0, BuildOptions{Scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	assertStagesIdentical(t, "K1", bit, sca)
	if bit.L != 1 {
		t.Fatalf("ℓ = %d, want 1", bit.L)
	}
}
