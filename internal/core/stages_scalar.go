package core

import (
	"fmt"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// buildStagesScalar is the node-at-a-time reference construction of §2.1:
// the sets are full nodeset.Sets updated per stage, exactly the loop the
// paper describes. It serves the ablation modes (Restricted,
// SkipMinimality), the Scalar escape hatch, and the differential tests
// that pin the word-parallel kernel bit-identical to it.
func buildStagesScalar(g *graph.Graph, source int, opt BuildOptions) (*Stages, error) {
	n := g.N()
	st := &Stages{G: g, Source: source, Restricted: opt.Restricted}
	csr := g.Freeze()

	inf := nodeset.Of(n, source)
	uninf := nodeset.Full(n)
	uninf.Remove(source)
	frontier := nodeset.New(n)
	for _, w := range csr.Neighbors(source) {
		frontier.Add(int(w))
	}
	dom := nodeset.Of(n, source)
	newSet := frontier.Clone()

	st.appendStage(dom, newSet)
	if inf.Count()+newSet.Count() == n && n == 1 {
		st.L = 1
		return st, nil
	}

	for i := 2; ; i++ {
		prevDom, prevNew := dom, newSet
		inf = nodeset.Union(inf, prevNew)
		if inf.Count() == n {
			st.L = i
			return st, nil
		}
		uninf = nodeset.Subtract(uninf, prevNew)
		// FRONTIER_i = UNINF_i ∩ Γ(INF_i), computed incrementally:
		// previous frontier survivors plus uninformed neighbours of NEW_{i−1}.
		frontier = nodeset.Intersect(frontier, uninf)
		frontier.UnionWith(nodeset.Intersect(g.Neighborhood(prevNew), uninf))

		candidates := prevDom.Clone()
		if !opt.Restricted {
			candidates.UnionWith(prevNew)
		}
		if opt.SkipMinimality {
			dom = restrictToUseful(g, candidates, frontier)
			if !domset.Dominates(g, dom, frontier) {
				st.Stalled = i
				return st, fmt.Errorf("core: stage %d: candidates do not dominate frontier (skip-minimality mode)", i)
			}
		} else {
			var err error
			dom, err = domset.MinimalSubset(g, candidates, frontier, opt.Order)
			if err != nil {
				st.Stalled = i
				return st, fmt.Errorf("core: stage %d: %v (restricted=%v)", i, err, opt.Restricted)
			}
		}

		newSet = exactlyOneNeighbor(g, frontier, dom)
		st.appendStage(dom, newSet)
		if newSet.Empty() {
			// Lemma 2.4 guarantees this never happens in the standard
			// construction; it does happen with SkipMinimality.
			st.Stalled = i
			return st, fmt.Errorf("core: stage %d: no progress (NEW empty, frontier %v)", i, frontier)
		}
		if i > n {
			st.Stalled = i
			return st, fmt.Errorf("core: stage count exceeded n=%d (Lemma 2.6 violated)", n)
		}
	}
}

// appendStage records one stage's DOM/NEW delta lists.
func (s *Stages) appendStage(dom, newSet *nodeset.Set) {
	s.doms = append(s.doms, setToInt32(dom))
	s.news = append(s.news, setToInt32(newSet))
}

// setToInt32 extracts a set's members as an ascending int32 list — the
// delta-storage form of Stages.
func setToInt32(s *nodeset.Set) []int32 {
	out := make([]int32, 0, s.Count())
	s.ForEach(func(v int) { out = append(out, int32(v)) })
	return out
}

// restrictToUseful keeps candidates with at least one frontier neighbour.
func restrictToUseful(g *graph.Graph, candidates, frontier *nodeset.Set) *nodeset.Set {
	csr := g.Freeze()
	kept := nodeset.New(g.N())
	candidates.ForEach(func(c int) {
		for _, w := range csr.Neighbors(c) {
			if frontier.Has(int(w)) {
				kept.Add(c)
				return
			}
		}
	})
	return kept
}

// exactlyOneNeighbor returns the frontier nodes with exactly one neighbour
// in dom (the definition of NEW_i).
func exactlyOneNeighbor(g *graph.Graph, frontier, dom *nodeset.Set) *nodeset.Set {
	csr := g.Freeze()
	out := nodeset.New(g.N())
	frontier.ForEach(func(v int) {
		count := 0
		for _, w := range csr.Neighbors(v) {
			if dom.Has(int(w)) {
				count++
				if count > 1 {
					return
				}
			}
		}
		if count == 1 {
			out.Add(v)
		}
	})
	return out
}
