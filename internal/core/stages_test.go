package core

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

func mustStages(t *testing.T, g *graph.Graph, source int) *Stages {
	t.Helper()
	st, err := BuildStages(g, source, BuildOptions{})
	if err != nil {
		t.Fatalf("BuildStages: %v", err)
	}
	return st
}

func TestStagesSingleNode(t *testing.T) {
	st := mustStages(t, graph.New(1), 0)
	if st.L != 1 {
		t.Fatalf("ℓ = %d, want 1", st.L)
	}
	if err := CheckStageInvariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestStagesEdge(t *testing.T) {
	st := mustStages(t, graph.Path(2), 0)
	if st.L != 2 {
		t.Fatalf("ℓ = %d, want 2", st.L)
	}
	s1 := st.Stage(1)
	if !s1.Dom.Equal(nodeset.Of(2, 0)) || !s1.New.Equal(nodeset.Of(2, 1)) {
		t.Fatalf("stage 1 = %+v", s1)
	}
	if err := CheckStageInvariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestStagesPath(t *testing.T) {
	// Path 0-1-2-3-4, source 0: one new node per stage, ℓ = 5.
	st := mustStages(t, graph.Path(5), 0)
	if st.L != 5 {
		t.Fatalf("ℓ = %d, want 5", st.L)
	}
	for i := 1; i <= 4; i++ {
		stage := st.Stage(i)
		if !stage.New.Equal(nodeset.Of(5, i)) {
			t.Fatalf("NEW_%d = %v, want {%d}", i, stage.New, i)
		}
		if !stage.Dom.Equal(nodeset.Of(5, i-1)) {
			t.Fatalf("DOM_%d = %v, want {%d}", i, stage.Dom, i-1)
		}
	}
	if err := CheckStageInvariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestStagesStar(t *testing.T) {
	// Star with centre source: everything informed in stage 1, ℓ = 2.
	st := mustStages(t, graph.Star(6), 0)
	if st.L != 2 {
		t.Fatalf("ℓ = %d, want 2", st.L)
	}
	if st.Stage(1).New.Count() != 5 {
		t.Fatalf("NEW_1 = %v", st.Stage(1).New)
	}
}

func TestStagesStarLeafSource(t *testing.T) {
	// Star with a leaf source: hub at stage 1, other leaves at stage 2.
	st := mustStages(t, graph.Star(6), 3)
	if st.L != 3 {
		t.Fatalf("ℓ = %d, want 3", st.L)
	}
	if !st.Stage(1).New.Equal(nodeset.Of(6, 0)) {
		t.Fatalf("NEW_1 = %v, want {0}", st.Stage(1).New)
	}
	if st.Stage(2).New.Count() != 4 {
		t.Fatalf("NEW_2 = %v", st.Stage(2).New)
	}
}

func TestStagesFourCycle(t *testing.T) {
	// C4, source 0: neighbours 1,3 at stage 1; DOM_2 must be a minimal
	// dominating set of {2}, i.e. exactly one of {1,3}; node 2 then has a
	// unique DOM_2 neighbour and is informed at stage 2.
	st := mustStages(t, graph.Cycle(4), 0)
	if st.L != 3 {
		t.Fatalf("ℓ = %d, want 3", st.L)
	}
	dom2 := st.Stage(2).Dom
	if dom2.Count() != 1 {
		t.Fatalf("DOM_2 = %v, want a singleton", dom2)
	}
	if !st.Stage(2).New.Equal(nodeset.Of(4, 2)) {
		t.Fatalf("NEW_2 = %v, want {2}", st.Stage(2).New)
	}
	if err := CheckStageInvariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestStagesFigure1(t *testing.T) {
	// Golden structure derived by hand for the Figure 1 reconstruction.
	g := graph.Figure1()
	st := mustStages(t, g, graph.Figure1Source)
	if st.L != 5 {
		t.Fatalf("ℓ = %d, want 5", st.L)
	}
	wantDom := []*nodeset.Set{
		nodeset.Of(13, 0),
		nodeset.Of(13, 1, 2, 3),
		nodeset.Of(13, 2, 3, 4, 5, 6),
		nodeset.Of(13, 3),
	}
	wantNew := []*nodeset.Set{
		nodeset.Of(13, 1, 2, 3),
		nodeset.Of(13, 4, 5, 6),
		nodeset.Of(13, 7, 8, 9, 10, 11),
		nodeset.Of(13, 12),
	}
	for i := 1; i <= 4; i++ {
		if !st.Stage(i).Dom.Equal(wantDom[i-1]) {
			t.Errorf("DOM_%d = %v, want %v", i, st.Stage(i).Dom, wantDom[i-1])
		}
		if !st.Stage(i).New.Equal(wantNew[i-1]) {
			t.Errorf("NEW_%d = %v, want %v", i, st.Stage(i).New, wantNew[i-1])
		}
	}
	if err := CheckStageInvariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestStagesInformedStage(t *testing.T) {
	st := mustStages(t, graph.Path(4), 0)
	got := st.InformedStage()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InformedStage = %v, want %v", got, want)
		}
	}
}

func TestStagesAllFamiliesAllOrders(t *testing.T) {
	for _, name := range graph.FamilyNames() {
		g := graph.Families[name](24)
		for _, order := range domset.Orders {
			st, err := BuildStages(g, 0, BuildOptions{Order: order})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
			if err := CheckStageInvariants(st); err != nil {
				t.Fatalf("%s/%v: %v", name, order, err)
			}
		}
	}
}

func TestStagesQuickRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%60)
		g := graph.GNPConnected(n, 0.15, seed)
		src := int(uint64(seed) % uint64(n))
		st, err := BuildStages(g, src, BuildOptions{})
		if err != nil {
			return false
		}
		return CheckStageInvariants(st) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStagesSkipMinimalityStalls(t *testing.T) {
	// On C4 with source 0, keeping both candidates {1,3} as DOM_2 makes
	// node 2 adjacent to two dominators: NEW_2 is empty and the
	// construction stalls — demonstrating that minimality is what powers
	// Lemma 2.4.
	_, err := BuildStages(graph.Cycle(4), 0, BuildOptions{SkipMinimality: true})
	if err == nil {
		t.Fatal("expected stall with SkipMinimality on C4")
	}
}

func TestStagesRestrictedStallsOnRadius2(t *testing.T) {
	// The conclusion's literal hint (DOM_i ⊆ DOM_{i−1}) cannot reach
	// distance-2 nodes: DOM collapses to {source}, which does not dominate
	// the distance-2 frontier. Documented in EXPERIMENTS.md §ONEBIT.
	_, err := BuildStages(graph.Path(3), 0, BuildOptions{Restricted: true})
	if err == nil {
		t.Fatal("expected restricted construction to stall on P3")
	}
}

func TestStageAccessorPanics(t *testing.T) {
	st := mustStages(t, graph.Path(3), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range stage")
		}
	}()
	st.Stage(99)
}

func TestDomUnion(t *testing.T) {
	st := mustStages(t, graph.Path(4), 0)
	// DOM_1..DOM_3 = {0},{1},{2}.
	if !st.DomUnion().Equal(nodeset.Of(4, 0, 1, 2)) {
		t.Fatalf("DomUnion = %v", st.DomUnion())
	}
}
