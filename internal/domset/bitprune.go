package domset

import (
	"fmt"
	"math/bits"
	"sort"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// Pruner is the word-parallel form of MinimalSubset, built for the bitset
// stage kernel in package core: candidates arrive as a sorted int32 list,
// targets as a frontier bit-word vector, and the minimal subset comes back
// as a fresh ascending int32 list. The algorithm is the same
// greedy-removal loop as MinimalSubset — same usefulness filter, same
// candidate permutation per PruneOrder (including the stable degree
// sorts), same removable test, same decrements — so for equal inputs the
// two produce the identical set. The speed comes from two word-level
// tricks:
//
//   - cover counts are exact per-target int32s, but the *removable* test
//     ("does c have a target neighbour with cover exactly 1?") runs as
//     slabs(c) ∩ frontier ∩ eq1 over words, where eq1 mirrors the
//     cover==1 targets as a bitset maintained on every ±1 update;
//   - domination is checked by comparing the count of targets first
//     touched during the scatter against the caller-supplied frontier
//     popcount, so the happy path never scans the target vector at all.
//
// A Pruner amortizes its scratch (cover, eq1, touched list) across the
// stages of one construction; cover and eq1 are cleared sparsely on exit,
// touching only the words the call dirtied. Not safe for concurrent use.
type Pruner struct {
	n     int
	cover []int32  // cover[t] = |Γ(t) ∩ kept candidates|, zero outside calls
	eq1   []uint64 // bit t set iff cover[t] == 1, zero outside calls
	tlist []int32  // targets touched by the current call, for sparse reset
	kept  []int32  // useful candidates, ascending
	ord   []int32  // removal-order permutation: indices into kept
}

// NewPruner returns a Pruner for graphs over n nodes.
func NewPruner(n int) *Pruner {
	return &Pruner{
		n:     n,
		cover: make([]int32, n),
		eq1:   make([]uint64, (n+63)/64),
	}
}

// Prune returns the minimal subset of candidates dominating the frontier,
// matching MinimalSubset(g, candidates, frontier, order) element for
// element. candidates must be sorted ascending; frontierW is the frontier
// as bit words with frontierCount bits set. The returned slice is freshly
// allocated (callers keep it as stage storage); scratch state is reset
// before returning on every path, including the error path.
func (p *Pruner) Prune(csr *graph.CSR, candidates []int32, frontierW []uint64, frontierCount int, order PruneOrder) ([]int32, error) {
	bcsr := csr.Bits()
	p.kept = p.kept[:0]
	p.tlist = p.tlist[:0]
	defer func() {
		for _, t := range p.tlist {
			p.cover[t] = 0
			p.eq1[t>>6] &^= 1 << (uint(t) & 63)
		}
	}()

	// Scatter: count, per frontier target, its neighbours among the
	// candidates, maintaining the eq1 mirror and recording first touches.
	covered := 0
	for _, c := range candidates {
		words, masks := bcsr.Slabs(int(c))
		useful := false
		for k, wi := range words {
			x := masks[k] & frontierW[wi]
			if x == 0 {
				continue
			}
			useful = true
			base := int32(wi) << 6
			for ; x != 0; x &= x - 1 {
				t := base | int32(bits.TrailingZeros64(x))
				p.cover[t]++
				switch p.cover[t] {
				case 1:
					covered++
					p.tlist = append(p.tlist, t)
					p.eq1[wi] |= 1 << (uint(t) & 63)
				case 2:
					p.eq1[wi] &^= 1 << (uint(t) & 63)
				}
			}
		}
		if useful {
			p.kept = append(p.kept, c)
		}
	}
	if covered != frontierCount {
		// Error path only: find the first undominated target to report,
		// mirroring MinimalSubset's message.
		for wi, w := range frontierW {
			for x := w; x != 0; x &= x - 1 {
				t := int32(wi)<<6 | int32(bits.TrailingZeros64(x))
				if p.cover[t] == 0 {
					return nil, fmt.Errorf("domset: target %d not dominated by candidate set %v",
						t, nodeset.OfInt32(p.n, candidates))
				}
			}
		}
	}

	// Removal order: a permutation of kept positions, matching
	// orderedElements (ascending input + the same stable comparators).
	k := len(p.kept)
	if cap(p.ord) < k {
		p.ord = make([]int32, k)
	}
	p.ord = p.ord[:k]
	for i := range p.ord {
		p.ord[i] = int32(i)
	}
	switch order {
	case Ascending:
	case Descending:
		for i, j := 0, k-1; i < j; i, j = i+1, j-1 {
			p.ord[i], p.ord[j] = p.ord[j], p.ord[i]
		}
	case DegreeAsc:
		sort.SliceStable(p.ord, func(i, j int) bool {
			return csr.Degree(int(p.kept[p.ord[i]])) < csr.Degree(int(p.kept[p.ord[j]]))
		})
	case DegreeDesc:
		sort.SliceStable(p.ord, func(i, j int) bool {
			return csr.Degree(int(p.kept[p.ord[i]])) > csr.Degree(int(p.kept[p.ord[j]]))
		})
	}

	// Greedy removal: c is removable iff it has no target neighbour that
	// only c covers — one masked AND against eq1 per slab.
	removed := 0
	for _, pos := range p.ord {
		c := int(p.kept[pos])
		words, masks := bcsr.Slabs(c)
		removable := true
		for k, wi := range words {
			if masks[k]&frontierW[wi]&p.eq1[wi] != 0 {
				removable = false
				break
			}
		}
		if !removable {
			continue
		}
		removed++
		p.kept[pos] = -1 - p.kept[pos] // mark without losing ascending order
		for k, wi := range words {
			x := masks[k] & frontierW[wi]
			base := int32(wi) << 6
			for ; x != 0; x &= x - 1 {
				t := base | int32(bits.TrailingZeros64(x))
				p.cover[t]--
				switch p.cover[t] {
				case 1:
					p.eq1[wi] |= 1 << (uint(t) & 63)
				case 0:
					p.eq1[wi] &^= 1 << (uint(t) & 63)
				}
			}
		}
	}

	out := make([]int32, 0, k-removed)
	for i, c := range p.kept {
		if c >= 0 {
			out = append(out, c)
		} else {
			p.kept[i] = -1 - c // unmark so tlist reset assumptions stay local
		}
	}
	return out, nil
}
