package domset

import (
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// pruneViaWords runs Pruner on set-typed inputs, converting at the seam.
func pruneViaWords(t *testing.T, p *Pruner, g *graph.Graph, candidates, targets *nodeset.Set, order PruneOrder) (*nodeset.Set, error) {
	t.Helper()
	cand := make([]int32, 0, candidates.Count())
	candidates.ForEach(func(v int) { cand = append(cand, int32(v)) })
	got, err := p.Prune(g.Freeze(), cand, targets.Words(), targets.Count(), order)
	if err != nil {
		return nil, err
	}
	return nodeset.OfInt32(g.N(), got), nil
}

// TestPrunerMatchesMinimalSubset pins the word-parallel pruner element-
// for-element equal to the scalar reference across random graphs,
// candidate/target splits and every prune order.
func TestPrunerMatchesMinimalSubset(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%70)
		g := graph.GNPConnected(n, 0.2, seed)
		p := NewPruner(n)
		// Candidates: every third node plus node 0; targets: the rest that
		// have a candidate neighbour (so domination holds by construction).
		candidates := nodeset.New(n)
		for v := 0; v < n; v += 3 {
			candidates.Add(v)
		}
		candidates.Add(0)
		csr := g.Freeze()
		targets := nodeset.New(n)
		for v := 0; v < n; v++ {
			if candidates.Has(v) {
				continue
			}
			for _, w := range csr.Neighbors(v) {
				if candidates.Has(int(w)) {
					targets.Add(v)
					break
				}
			}
		}
		if targets.Empty() {
			return true
		}
		for _, order := range Orders {
			want, err1 := MinimalSubset(g, candidates, targets, order)
			got, err2 := pruneViaWords(t, p, g, candidates, targets, order)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && !got.Equal(want) {
				t.Logf("seed %d order %v: got %v want %v", seed, order, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPrunerUndominatedTarget checks the error path mirrors the scalar
// message, and that scratch state is reset so the Pruner stays reusable.
func TestPrunerUndominatedTarget(t *testing.T) {
	g := graph.Path(5)
	p := NewPruner(5)
	targets := nodeset.Of(5, 4).Words() // node 4's only neighbour is 3
	if _, err := p.Prune(g.Freeze(), []int32{0, 1}, targets, 1, Ascending); err == nil {
		t.Fatal("expected undominated-target error")
	}
	// Reuse after the error: {3} dominates {4} and is already minimal.
	got, err := p.Prune(g.Freeze(), []int32{3}, targets, 1, Ascending)
	if err != nil {
		t.Fatalf("reuse after error: %v", err)
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Prune = %v, want [3]", got)
	}
}

// TestPrunerReuseAcrossCalls drives one Pruner through many stages'
// worth of calls, checking the sparse reset leaves no residue.
func TestPrunerReuseAcrossCalls(t *testing.T) {
	g := graph.Grid(7, 7)
	p := NewPruner(g.N())
	for trial := 0; trial < 20; trial++ {
		candidates := nodeset.New(g.N())
		for v := trial % 7; v < g.N(); v += 7 {
			candidates.Add(v)
		}
		csr := g.Freeze()
		targets := nodeset.New(g.N())
		for v := 0; v < g.N(); v++ {
			if candidates.Has(v) {
				continue
			}
			for _, w := range csr.Neighbors(v) {
				if candidates.Has(int(w)) {
					targets.Add(v)
					break
				}
			}
		}
		if targets.Empty() {
			continue
		}
		want, err1 := MinimalSubset(g, candidates, targets, Ascending)
		got, err2 := pruneViaWords(t, p, g, candidates, targets, Ascending)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errs %v / %v", trial, err1, err2)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}
