// Package domset computes minimal dominating subsets, the combinatorial
// heart of the paper's stage construction: DOM_i is defined as a *minimal*
// subset of DOM_{i−1} ∪ NEW_{i−1} that dominates FRONTIER_i (§2.1, step 4).
// Minimality — no single member can be removed — is what guarantees
// progress (Lemma 2.4): every member of a minimal dominating set has a
// private neighbour dominated by nobody else, and that private neighbour
// hears the member's transmission without collision.
package domset

import (
	"fmt"
	"sort"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

// PruneOrder selects the order in which candidates are tried for removal
// when reducing a dominating set to a minimal one. The paper allows any
// minimal set; different orders yield different (all correct) labelings,
// which the ABLDOM ablation experiment compares.
type PruneOrder int

const (
	// Ascending tries candidates in ascending node index (the default;
	// all golden values in this repository assume it).
	Ascending PruneOrder = iota
	// Descending tries candidates in descending node index.
	Descending
	// DegreeAsc tries low-degree candidates first (tends to keep hubs).
	DegreeAsc
	// DegreeDesc tries high-degree candidates first (tends to keep leaves).
	DegreeDesc
)

// String names the order for experiment tables.
func (o PruneOrder) String() string {
	switch o {
	case Ascending:
		return "ascending"
	case Descending:
		return "descending"
	case DegreeAsc:
		return "degree-asc"
	case DegreeDesc:
		return "degree-desc"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// Orders lists all prune orders (for ablation sweeps).
var Orders = []PruneOrder{Ascending, Descending, DegreeAsc, DegreeDesc}

// MinimalSubset returns a minimal subset of candidates that dominates all
// of targets in g: every target has at least one neighbour in the result,
// and removing any single member would break that. Candidates with no
// target neighbour are dropped outright. It returns an error if candidates
// do not dominate targets.
func MinimalSubset(g *graph.Graph, candidates, targets *nodeset.Set, order PruneOrder) (*nodeset.Set, error) {
	n := g.N()
	csr := g.Freeze()
	// cover[t] = number of kept candidates adjacent to target t.
	cover := make([]int, n)
	kept := nodeset.New(n)
	candidates.ForEach(func(c int) {
		useful := false
		for _, w := range csr.Neighbors(c) {
			if targets.Has(int(w)) {
				cover[w]++
				useful = true
			}
		}
		if useful {
			kept.Add(c)
		}
	})
	undominated := -1
	targets.ForEach(func(t int) {
		if cover[t] == 0 && undominated == -1 {
			undominated = t
		}
	})
	if undominated != -1 {
		return nil, fmt.Errorf("domset: target %d not dominated by candidate set %v", undominated, candidates)
	}

	for _, c := range orderedElements(g, kept, order) {
		removable := true
		for _, w := range csr.Neighbors(c) {
			if targets.Has(int(w)) && cover[w] == 1 {
				removable = false
				break
			}
		}
		if removable {
			kept.Remove(c)
			for _, w := range csr.Neighbors(c) {
				if targets.Has(int(w)) {
					cover[w]--
				}
			}
		}
	}
	return kept, nil
}

func orderedElements(g *graph.Graph, s *nodeset.Set, order PruneOrder) []int {
	elems := s.Elements() // ascending
	switch order {
	case Ascending:
	case Descending:
		for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
			elems[i], elems[j] = elems[j], elems[i]
		}
	case DegreeAsc:
		sort.SliceStable(elems, func(i, j int) bool {
			return g.Degree(elems[i]) < g.Degree(elems[j])
		})
	case DegreeDesc:
		sort.SliceStable(elems, func(i, j int) bool {
			return g.Degree(elems[i]) > g.Degree(elems[j])
		})
	}
	return elems
}

// Dominates reports whether every target has a neighbour in dom.
func Dominates(g *graph.Graph, dom, targets *nodeset.Set) bool {
	csr := g.Freeze()
	ok := true
	targets.ForEach(func(t int) {
		if !ok {
			return
		}
		found := false
		for _, w := range csr.Neighbors(t) {
			if dom.Has(int(w)) {
				found = true
				break
			}
		}
		if !found {
			ok = false
		}
	})
	return ok
}

// IsMinimal reports whether dom dominates targets and no single member can
// be removed: equivalently, every member has a private neighbour among the
// targets (Lemma 2.4's progress witness).
func IsMinimal(g *graph.Graph, dom, targets *nodeset.Set) bool {
	if !Dominates(g, dom, targets) {
		return false
	}
	minimal := true
	dom.ForEach(func(c int) {
		if !minimal {
			return
		}
		if PrivateNeighbor(g, dom, targets, c) == -1 {
			minimal = false
		}
	})
	return minimal
}

// PrivateNeighbor returns a target adjacent to c and to no other member of
// dom, or -1 if none exists.
func PrivateNeighbor(g *graph.Graph, dom, targets *nodeset.Set, c int) int {
	csr := g.Freeze()
	for _, w := range csr.Neighbors(c) {
		if !targets.Has(int(w)) {
			continue
		}
		private := true
		for _, x := range csr.Neighbors(int(w)) {
			if int(x) != c && dom.Has(int(x)) {
				private = false
				break
			}
		}
		if private {
			return int(w)
		}
	}
	return -1
}
