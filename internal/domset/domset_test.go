package domset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
	"radiobcast/internal/nodeset"
)

func TestMinimalSubsetStar(t *testing.T) {
	// Star: hub 0, leaves 1..4. Candidates {0}, targets = leaves.
	g := graph.Star(5)
	cand := nodeset.Of(5, 0)
	targets := nodeset.Of(5, 1, 2, 3, 4)
	dom, err := MinimalSubset(g, cand, targets, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(nodeset.Of(5, 0)) {
		t.Fatalf("dom = %v, want {0}", dom)
	}
}

func TestMinimalSubsetDropsRedundant(t *testing.T) {
	// C4: 0-1-2-3-0, source 0. Candidates {1,3} both dominate target {2}.
	// Minimality must keep exactly one.
	g := graph.Cycle(4)
	cand := nodeset.Of(4, 1, 3)
	targets := nodeset.Of(4, 2)
	dom, err := MinimalSubset(g, cand, targets, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Count() != 1 {
		t.Fatalf("dom = %v, want singleton", dom)
	}
	if !dom.Has(3) {
		// ascending prune removes 1 first (2 still covered by 3)
		t.Fatalf("ascending prune should keep node 3, got %v", dom)
	}
	dom2, err := MinimalSubset(g, cand, targets, Descending)
	if err != nil {
		t.Fatal(err)
	}
	if !dom2.Has(1) {
		t.Fatalf("descending prune should keep node 1, got %v", dom2)
	}
}

func TestMinimalSubsetDropsUseless(t *testing.T) {
	// A candidate with no target neighbours must be dropped even if it
	// could never be pruned by the minimality pass.
	g := graph.Path(4) // 0-1-2-3
	cand := nodeset.Of(4, 0, 2)
	targets := nodeset.Of(4, 3)
	dom, err := MinimalSubset(g, cand, targets, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(nodeset.Of(4, 2)) {
		t.Fatalf("dom = %v, want {2}", dom)
	}
}

func TestMinimalSubsetUndominated(t *testing.T) {
	g := graph.Path(4)
	cand := nodeset.Of(4, 0)
	targets := nodeset.Of(4, 3)
	if _, err := MinimalSubset(g, cand, targets, Ascending); err == nil {
		t.Fatal("expected error for undominated target")
	}
}

func TestMinimalSubsetEmptyTargets(t *testing.T) {
	g := graph.Path(4)
	dom, err := MinimalSubset(g, nodeset.Of(4, 1, 2), nodeset.New(4), Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Empty() {
		t.Fatalf("dom = %v, want empty for empty targets", dom)
	}
}

func TestDominates(t *testing.T) {
	g := graph.Path(5)
	if !Dominates(g, nodeset.Of(5, 1, 3), nodeset.Of(5, 0, 2, 4)) {
		t.Fatal("expected domination")
	}
	if Dominates(g, nodeset.Of(5, 1), nodeset.Of(5, 4)) {
		t.Fatal("unexpected domination")
	}
	if !Dominates(g, nodeset.New(5), nodeset.New(5)) {
		t.Fatal("empty set should dominate empty targets")
	}
}

func TestPrivateNeighbor(t *testing.T) {
	// Path 0-1-2-3-4; dom {1,3}, targets {0,2,4}.
	g := graph.Path(5)
	dom := nodeset.Of(5, 1, 3)
	targets := nodeset.Of(5, 0, 2, 4)
	if got := PrivateNeighbor(g, dom, targets, 1); got != 0 {
		// 2 is adjacent to both 1 and 3, so 1's private neighbour is 0
		t.Fatalf("private(1) = %d, want 0", got)
	}
	if got := PrivateNeighbor(g, dom, targets, 3); got != 4 {
		t.Fatalf("private(3) = %d, want 4", got)
	}
}

func TestIsMinimal(t *testing.T) {
	g := graph.Cycle(4)
	targets := nodeset.Of(4, 2)
	if IsMinimal(g, nodeset.Of(4, 1, 3), targets) {
		t.Fatal("non-minimal set reported minimal")
	}
	if !IsMinimal(g, nodeset.Of(4, 1), targets) {
		t.Fatal("minimal set reported non-minimal")
	}
	if IsMinimal(g, nodeset.Of(4, 0), targets) {
		t.Fatal("non-dominating set reported minimal")
	}
}

func TestQuickMinimalInvariants(t *testing.T) {
	// For random graphs and random candidate/target splits where the
	// candidates dominate the targets, MinimalSubset must (1) dominate,
	// (2) be minimal, (3) be a subset of the candidates — for every order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		g := graph.GNPConnected(n, 0.25, seed)
		// Candidates: random half; targets: nodes dominated by candidates.
		cand := nodeset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				cand.Add(v)
			}
		}
		targets := nodeset.New(n)
		for v := 0; v < n; v++ {
			if cand.Has(v) {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if cand.Has(w) {
					targets.Add(v)
					break
				}
			}
		}
		for _, order := range Orders {
			dom, err := MinimalSubset(g, cand, targets, order)
			if err != nil {
				return false
			}
			if !dom.SubsetOf(cand) {
				return false
			}
			if !IsMinimal(g, dom, targets) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderStrings(t *testing.T) {
	for _, o := range Orders {
		if o.String() == "" {
			t.Fatal("empty order name")
		}
	}
}
