package experiments

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/domset"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// DomAblationExperiment compares the four minimality prune orders (all
// correct, different schedules) and demonstrates that *skipping* minimality
// breaks the construction: with a non-minimal DOM, a frontier node can be
// adjacent to two dominators forever, so NEW_i empties while the frontier
// does not (Lemma 2.4's progress argument fails).
func DomAblationExperiment(cfg Config) ([]*Table, error) {
	orders := &Table{
		ID:      "ABLDOM-orders",
		Title:   "Prune-order ablation: any minimal DOM works; schedules differ slightly",
		Columns: []string{"family", "n", "order", "ℓ", "completion", "total tx"},
	}
	type job struct {
		c     familyCase
		order domset.PruneOrder
	}
	var jobs []job
	for _, c := range familyGrid(Config{Quick: true, Workers: cfg.Workers}) {
		for _, o := range domset.Orders {
			jobs = append(jobs, job{c, o})
		}
	}
	type row struct {
		fam                    string
		n                      int
		order                  string
		l, completion, totalTx int
		err                    error
	}
	rows := sweep.Map(jobs, cfg.Workers, func(j job) row {
		g := graph.Families[j.c.Family](j.c.N)
		out, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{Order: j.order})
		if err != nil {
			return row{fam: j.c.Family, n: g.N(), order: j.order.String(), err: err}
		}
		if err := core.VerifyBroadcast(out, "m"); err != nil {
			return row{fam: j.c.Family, n: g.N(), order: j.order.String(), err: err}
		}
		return row{
			fam: j.c.Family, n: g.N(), order: j.order.String(),
			l: out.Stages.L, completion: out.CompletionRound,
			totalTx: out.Result.TotalTransmissions,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d %s: %w", r.fam, r.n, r.order, r.err)
		}
		orders.AddRow(r.fam, r.n, r.order, r.l, r.completion, r.totalTx)
	}

	stall := &Table{
		ID:    "ABLDOM-stall",
		Title: "Removing minimality stalls the construction (Lemma 2.4 is load-bearing)",
		Caption: "skip-minimality keeps the full candidate set as DOM; frontier nodes with ≥ 2" +
			" dominators collide forever.",
		Columns: []string{"graph", "n", "standard ℓ", "skip-minimality result"},
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"C4", graph.Cycle(4)},
		{"C6", graph.Cycle(6)},
		{"K2,3", graph.CompleteBipartite(2, 3)},
		{"grid3x3", graph.Grid(3, 3)},
	} {
		std, err := core.BuildStages(tc.g, 0, core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		_, err = core.BuildStages(tc.g, 0, core.BuildOptions{SkipMinimality: true})
		result := "completes (no ≥2-dominator ties on this graph)"
		if err != nil {
			result = fmt.Sprintf("stalls: %v", err)
		}
		stall.AddRow(tc.name, tc.g.N(), std.L, result)
	}
	return []*Table{orders, stall}, nil
}

// ZAblationExperiment demonstrates why λack must pick z among the
// last-informed nodes: an early-informed z makes the source's ack arrive
// before broadcast completion, so "acknowledged" would be a lie.
func ZAblationExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "ABLZ",
		Title:   "z-choice ablation: premature acknowledgements with a wrong z",
		Caption: "correct z = smallest node of NEW_{ℓ−1}; wrong z = a stage-1 node.",
		Columns: []string{"graph", "n", "z", "completion t", "ack t′", "t′ > t"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"P8", graph.Path(8)},
		{"figure1", graph.Figure1()},
		{"grid4x4", graph.Grid(4, 4)},
	}
	for _, tc := range cases {
		// Correct choice.
		good, err := core.RunAcknowledged(tc.g, 0, "m", core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		if err := core.VerifyAcknowledged(good, "m"); err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		t.AddRow(tc.name, tc.g.N(), fmt.Sprintf("%d (correct)", good.Z),
			good.CompletionRound, good.AckRound, boolMark(good.AckRound > good.CompletionRound))

		// Wrong choice: a node informed in stage 1.
		wrongZ := good.Stages.Stage(1).New.Min()
		l, err := core.LambdaAckWithZ(tc.g, 0, wrongZ, core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		bad, err := core.RunAcknowledgedLabeled(tc.g, l, 0, "m")
		if err != nil {
			return nil, err
		}
		if bad.AckRound != 0 && bad.AckRound > bad.CompletionRound {
			return nil, fmt.Errorf("%s: wrong z unexpectedly produced a valid ack", tc.name)
		}
		t.AddRow(tc.name, tc.g.N(), fmt.Sprintf("%d (wrong)", wrongZ),
			bad.CompletionRound, bad.AckRound, boolMark(bad.AckRound > bad.CompletionRound))
	}
	return []*Table{t}, nil
}
