package experiments

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// Theorem39Experiment measures the acknowledgement round t′ against both
// windows: the exact Corollary 3.8 window {2ℓ−2..3ℓ−4} and the n-based
// Theorem 3.9 window {t+1..t+n−2}. Reproduction finding: the latter is off
// by one (ℓ = n on a path gives t′ = t + n − 1); the table records both.
func Theorem39Experiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "T39",
		Title: "Acknowledged broadcast Back: completion t and ack round t′",
		Caption: "cor3.8 = t′ ∈ {2ℓ−2..3ℓ−4}; thm3.9(n) = t′ ≤ t+n−2 as printed in the paper" +
			" (off by one when ℓ = n); corrected = t′ ≤ t+n−1.",
		Columns: []string{"family", "n", "ℓ", "t", "t′", "2ℓ−2", "3ℓ−4", "cor3.8", "thm3.9(n)", "corrected"},
	}
	type row struct {
		fam                        string
		n, l, tc, ta, lo, hi       int
		cor, thm, corrected, valid bool
		err                        error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		n := g.N()
		if n < 2 {
			return row{fam: c.Family, n: n, valid: false}
		}
		out, err := core.RunAcknowledged(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		if err := core.VerifyAcknowledged(out, "m"); err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		l := out.Stages.L
		lo, hi := 2*l-2, 3*l-4
		if hi < lo {
			hi = lo
		}
		return row{
			fam: c.Family, n: n, l: l, tc: out.CompletionRound, ta: out.AckRound,
			lo: lo, hi: hi,
			cor:       out.AckRound >= lo && out.AckRound <= hi,
			thm:       out.AckRound <= out.CompletionRound+n-2,
			corrected: out.AckRound <= out.CompletionRound+n-1,
			valid:     true,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if !r.valid {
			continue
		}
		if !r.cor || !r.corrected {
			return nil, fmt.Errorf("%s n=%d: ack window violated (t′=%d)", r.fam, r.n, r.ta)
		}
		t.AddRow(r.fam, r.n, r.l, r.tc, r.ta, r.lo, r.hi,
			boolMark(r.cor), boolMark(r.thm), boolMark(r.corrected))
	}
	return []*Table{t}, nil
}

// CommonRoundExperiment verifies the §3 composition: after Back, the source
// broadcasts m (its ack round) with B; everyone receives m before round 2m,
// so round 2m is a common completion-knowledge round.
func CommonRoundExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "CR",
		Title:   "Common completion-knowledge round (Back then B with message m)",
		Columns: []string{"family", "n", "m", "2m", "second completion", "before 2m"},
	}
	type row struct {
		fam          string
		n, m, second int
		ok, valid    bool
		err          error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		if g.N() < 2 {
			return row{fam: c.Family, n: g.N()}
		}
		out, err := core.RunCommonRound(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		return row{
			fam: c.Family, n: g.N(), m: out.M, second: out.SecondCompletion,
			ok: core.VerifyCommonRound(out) == nil, valid: true,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if !r.valid {
			continue
		}
		if !r.ok {
			return nil, fmt.Errorf("%s n=%d: common-round property violated", r.fam, r.n)
		}
		t.AddRow(r.fam, r.n, r.m, 2*r.m, r.second, boolMark(r.ok))
	}
	return []*Table{t}, nil
}
