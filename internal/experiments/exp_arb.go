package experiments

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// ArbitraryExperiment exercises Barb two ways: an exhaustive sweep over all
// (coordinator, source) pairs on small graphs, and a scaling run across the
// family sweep with the source placed far from the coordinator.
func ArbitraryExperiment(cfg Config) ([]*Table, error) {
	exhaustive := &Table{
		ID:      "ARB-exhaustive",
		Title:   "Barb: exhaustive (r, sG) sweep on small graphs",
		Columns: []string{"graph", "n", "pairs", "all correct", "max rounds"},
	}
	small := map[string]*graph.Graph{
		"P5":      graph.Path(5),
		"C6":      graph.Cycle(6),
		"K4":      graph.Complete(4),
		"star6":   graph.Star(6),
		"grid3x3": graph.Grid(3, 3),
		"figure1": graph.Figure1(),
	}
	names := make([]string, 0, len(small))
	for name := range small {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		g := small[name]
		pairs, maxRounds := 0, 0
		for r := 0; r < g.N(); r++ {
			l, err := core.LambdaArb(g, r, core.BuildOptions{})
			if err != nil {
				return nil, fmt.Errorf("%s r=%d: %w", name, r, err)
			}
			for src := 0; src < g.N(); src++ {
				out, err := core.RunArbitraryLabeled(g, l, src, "m")
				if err != nil {
					return nil, fmt.Errorf("%s r=%d src=%d: %w", name, r, src, err)
				}
				if err := core.VerifyArbitrary(g, out, "m"); err != nil {
					return nil, fmt.Errorf("%s r=%d src=%d: %w", name, r, src, err)
				}
				pairs++
				if out.TotalRounds > maxRounds {
					maxRounds = out.TotalRounds
				}
			}
		}
		exhaustive.AddRow(name, g.N(), pairs, "yes", maxRounds)
	}

	scale := &Table{
		ID:      "ARB-scale",
		Title:   "Barb at scale: r = 0, sG = farthest node",
		Caption: "common round = round in which every node knows broadcast completed; linear in n.",
		Columns: []string{"family", "n", "T", "total rounds", "common round", "rounds/n"},
	}
	type row struct {
		fam                string
		n, T, rounds, know int
		err                error
		skip               bool
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		if g.N() < 2 {
			return row{skip: true}
		}
		// Source: the node maximising distance from the coordinator 0.
		dist := g.BFS(0)
		src, best := 0, -1
		for v, d := range dist {
			if d > best {
				src, best = v, d
			}
		}
		out, err := core.RunArbitrary(g, 0, src, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		if err := core.VerifyArbitrary(g, out, "m"); err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		return row{fam: c.Family, n: g.N(), T: out.T, rounds: out.TotalRounds, know: out.KnowsCompleteRound[0]}
	})
	for _, r := range rows {
		if r.skip {
			continue
		}
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		scale.AddRow(r.fam, r.n, r.T, r.rounds, r.know, float64(r.rounds)/float64(r.n))
	}
	return []*Table{exhaustive, scale}, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
