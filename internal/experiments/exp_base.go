package experiments

import (
	"fmt"

	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// BaselinesExperiment compares λ against the introduction's alternatives on
// both axes the paper cares about: label length (bits) and completion time
// (rounds). The expected shape: λ always uses 2 bits with Θ(n) time;
// round-robin uses ⌈log n⌉ bits with Θ(n·D)-ish time; colour-robin uses
// O(log Δ) bits and wins on time for bounded-degree graphs but its label
// length blows up on stars/cliques; the centralized scheduler (full
// topology knowledge, no labels) lower-bounds what schedules can do.
func BaselinesExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "BASE",
		Title: "Label bits vs completion rounds: λ, round-robin, colour-robin, centralized",
		Caption: "bits = scheme length in bits (centralized hands out full schedules, not labels);" +
			" rounds = completion round of the broadcast.",
		Columns: []string{"family", "n", "Δ", "ecc",
			"λ bits", "λ rounds", "RR bits", "RR rounds",
			"color bits", "color rounds", "central rounds"},
	}
	type row struct {
		fam                string
		n, maxDeg, ecc     int
		lamRounds          int
		rrBits, rrRounds   int
		colBits, colRounds int
		centralRounds      int
		err                error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		n := g.N()
		if n < 2 {
			return row{fam: c.Family, n: n}
		}
		lam, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		rr, err := baseline.RunRoundRobin(g, 0, "m")
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		col, err := baseline.RunColorRobin(g, 0, "m")
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		cen, err := baseline.RunCentralized(g, 0, "m")
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		return row{
			fam: c.Family, n: n, maxDeg: g.MaxDegree(), ecc: g.Eccentricity(0),
			lamRounds: lam.CompletionRound,
			rrBits:    rr.LabelBits, rrRounds: rr.CompletionRound,
			colBits: col.LabelBits, colRounds: col.CompletionRound,
			centralRounds: cen.CompletionRound,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if r.n < 2 {
			continue
		}
		t.AddRow(r.fam, r.n, r.maxDeg, r.ecc,
			2, r.lamRounds, r.rrBits, r.rrRounds,
			r.colBits, r.colRounds, r.centralRounds)
	}
	return []*Table{t}, nil
}

// MessageSizeExperiment verifies the message-size claims: B's messages stay
// constant-size (kind + |µ|) while Back's grow as Θ(log n) (the appended
// round number, Lemma 3.5).
func MessageSizeExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "MSG",
		Title:   "Maximum message size in bits (paths; payload µ = 1 byte)",
		Caption: "B is constant; Back tracks 3 + 8 + ⌈log₂(max timestamp)⌉ ≈ O(log n).",
		Columns: []string{"n", "B bits", "Back bits", "⌈log₂(2n)⌉"},
	}
	for _, n := range cfg.Sizes() {
		g := graph.Path(n)
		b, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		back, err := core.RunAcknowledged(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		logTerm := 0
		for (1 << uint(logTerm)) < 2*n {
			logTerm++
		}
		if b.Result.MaxMessageBits > 11 {
			return nil, fmt.Errorf("n=%d: B messages %d bits, want constant", n, b.Result.MaxMessageBits)
		}
		t.AddRow(n, b.Result.MaxMessageBits, back.Result.MaxMessageBits, logTerm)
	}
	return []*Table{t}, nil
}

// EnergyExperiment measures per-node and total transmissions of B: the
// schedule transmits only from DOM sets, so totals stay linear in n.
func EnergyExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "ENERGY",
		Title:   "Transmission counts of algorithm B",
		Columns: []string{"family", "n", "total tx", "tx/n", "max tx per node"},
	}
	type row struct {
		fam          string
		n, total, mx int
		err          error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		out, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		return row{
			fam: c.Family, n: g.N(),
			total: out.Result.TotalTransmissions,
			mx:    out.Result.MaxTransmissionsPerNode(),
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		t.AddRow(r.fam, r.n, r.total, float64(r.total)/float64(r.n), r.mx)
	}
	return []*Table{t}, nil
}
