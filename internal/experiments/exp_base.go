package experiments

import (
	"fmt"

	"radiobcast"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// BaselinesExperiment compares λ against the introduction's alternatives on
// both axes the paper cares about: label length (bits) and completion time
// (rounds). The expected shape: λ always uses 2 bits with Θ(n) time;
// round-robin uses ⌈log n⌉ bits with Θ(n·D)-ish time; colour-robin uses
// O(log Δ) bits and wins on time for bounded-degree graphs but its label
// length blows up on stars/cliques; the centralized scheduler (full
// topology knowledge, no labels) lower-bounds what schedules can do.
//
// The whole family × size × scheme grid runs as one radiobcast.RunSweep
// job: frozen graphs and labelings are shared across cells and every
// worker reuses one engine, so the quick path stays quick as sizes grow.
func BaselinesExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "BASE",
		Title: "Label bits vs completion rounds: λ, round-robin, colour-robin, centralized",
		Caption: "bits = scheme length in bits (centralized hands out full schedules, not labels);" +
			" rounds = completion round of the broadcast.",
		Columns: []string{"family", "n", "Δ", "ecc",
			"λ bits", "λ rounds", "RR bits", "RR rounds",
			"color bits", "color rounds", "central rounds"},
	}
	schemes := []string{"b", "roundrobin", "colorrobin", "centralized"}
	results, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: graph.FamilyNames(),
		Sizes:    cfg.Sizes(),
		Schemes:  schemes,
		Mu:       "m",
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Grid order groups the per-(family, size) cells into scheme-order
	// chunks; assemble one table row per chunk.
	for i := 0; i < len(results); i += len(schemes) {
		chunk := results[i : i+len(schemes)]
		if chunk[0].N < 2 {
			continue
		}
		cells := make(map[string]radiobcast.CellResult, len(schemes))
		for _, c := range chunk {
			if c.Err != nil {
				return nil, fmt.Errorf("%s: %w", c.Cell, c.Err)
			}
			cells[c.Cell.Scheme] = c
		}
		lam, rr, col, cen := cells["b"], cells["roundrobin"], cells["colorrobin"], cells["centralized"]
		g := lam.Outcome.Graph
		t.AddRow(lam.Cell.Family, lam.N, g.MaxDegree(), g.Eccentricity(0),
			core.MaxLen(lam.Outcome.Labeling.Labels), lam.Outcome.CompletionRound,
			rr.Outcome.Labeling.Bits(), rr.Outcome.CompletionRound,
			col.Outcome.Labeling.Bits(), col.Outcome.CompletionRound,
			cen.Outcome.CompletionRound)
	}
	return []*Table{t}, nil
}

// MessageSizeExperiment verifies the message-size claims: B's messages stay
// constant-size (kind + |µ|) while Back's grow as Θ(log n) (the appended
// round number, Lemma 3.5).
func MessageSizeExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "MSG",
		Title:   "Maximum message size in bits (paths; payload µ = 1 byte)",
		Caption: "B is constant; Back tracks 3 + 8 + ⌈log₂(max timestamp)⌉ ≈ O(log n).",
		Columns: []string{"n", "B bits", "Back bits", "⌈log₂(2n)⌉"},
	}
	for _, n := range cfg.Sizes() {
		g := graph.Path(n)
		b, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		back, err := core.RunAcknowledged(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		logTerm := 0
		for (1 << uint(logTerm)) < 2*n {
			logTerm++
		}
		if b.Result.MaxMessageBits > 11 {
			return nil, fmt.Errorf("n=%d: B messages %d bits, want constant", n, b.Result.MaxMessageBits)
		}
		t.AddRow(n, b.Result.MaxMessageBits, back.Result.MaxMessageBits, logTerm)
	}
	return []*Table{t}, nil
}

// EnergyExperiment measures per-node and total transmissions of B: the
// schedule transmits only from DOM sets, so totals stay linear in n.
func EnergyExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "ENERGY",
		Title:   "Transmission counts of algorithm B",
		Columns: []string{"family", "n", "total tx", "tx/n", "max tx per node"},
	}
	type row struct {
		fam          string
		n, total, mx int
		err          error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		out, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		return row{
			fam: c.Family, n: g.N(),
			total: out.Result.TotalTransmissions,
			mx:    out.Result.MaxTransmissionsPerNode(),
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		t.AddRow(r.fam, r.n, r.total, float64(r.total)/float64(r.n), r.mx)
	}
	return []*Table{t}, nil
}
