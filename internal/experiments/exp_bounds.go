package experiments

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// familyCase is one cell of the family × size sweep.
type familyCase struct {
	Family string
	N      int
}

func familyGrid(cfg Config) []familyCase {
	var cases []familyCase
	for _, fam := range graph.FamilyNames() {
		for _, n := range cfg.Sizes() {
			cases = append(cases, familyCase{fam, n})
		}
	}
	return cases
}

// Theorem29Experiment sweeps algorithm B over every graph family and size,
// verifying completion within 2n−3 rounds and Lemma 2.8 round-exactness.
func Theorem29Experiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "T29",
		Title:   "Broadcast time of algorithm B vs the 2n−3 bound (Theorem 2.9)",
		Caption: "completion = round of last first-reception; verified = Lemma 2.8 exactness + payloads.",
		Columns: []string{"family", "n", "ℓ", "completion", "2n−3", "within", "verified"},
	}
	type row struct {
		fam                     string
		n, l, completion, bound int
		within, verified        bool
		err                     error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		n := g.N()
		out, err := core.RunBroadcast(g, 0, "m", core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: n, err: err}
		}
		verified := core.VerifyBroadcast(out, "m") == nil
		bound := 2*n - 3
		if n < 2 {
			bound = 0
		}
		return row{
			fam: c.Family, n: n, l: out.Stages.L,
			completion: out.CompletionRound, bound: bound,
			within: out.CompletionRound <= bound || n < 2, verified: verified,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if !r.within || !r.verified {
			return nil, fmt.Errorf("%s n=%d: bound/verification failed", r.fam, r.n)
		}
		t.AddRow(r.fam, r.n, r.l, r.completion, r.bound, boolMark(r.within), boolMark(r.verified))
	}
	return []*Table{t}, nil
}

// Lemma26Experiment machine-checks the §2.1 construction invariants
// (Facts 2.1–2.2, Lemmas 2.3–2.6, Corollary 2.7) across the sweep.
func Lemma26Experiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "L26",
		Title:   "Stage construction invariants (ℓ ≤ n and §2.1 facts)",
		Caption: "invariants = CheckStageInvariants: Facts 2.1–2.2, Lemmas 2.3–2.5, Cor 2.7; λ-checks = VerifyLambda.",
		Columns: []string{"family", "n", "ℓ", "ℓ≤n", "invariants", "λ-checks"},
	}
	type row struct {
		fam           string
		n, l          int
		lOK, inv, lam bool
		err           error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		l, err := core.Lambda(g, 0, core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		return row{
			fam: c.Family, n: g.N(), l: l.Stages.L,
			lOK: l.Stages.L <= g.N(),
			inv: core.CheckStageInvariants(l.Stages) == nil,
			lam: core.VerifyLambda(l) == nil,
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if !r.lOK || !r.inv || !r.lam {
			return nil, fmt.Errorf("%s n=%d: invariant violation", r.fam, r.n)
		}
		t.AddRow(r.fam, r.n, r.l, boolMark(r.lOK), boolMark(r.inv), boolMark(r.lam))
	}
	return []*Table{t}, nil
}
