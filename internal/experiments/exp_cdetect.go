package experiments

import (
	"fmt"

	"radiobcast/internal/cdetect"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// CollisionDetectionExperiment demonstrates the paper's §1.1 remark: with
// collision detection, broadcast is feasible even in anonymous networks
// (no labels at all) — including on the four-cycle where the label-free
// model without collision detection provably fails (experiment IMP).
func CollisionDetectionExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "CD",
		Title: "Anonymous broadcast with collision detection (§1.1 remark)",
		Caption: "beep pipeline: bit k reaches distance class d in round 3k+d;" +
			" completion = 3(L−1) + ecc with L = 17 + 8·|µ| encoded bits.",
		Columns: []string{"family", "n", "ecc", "bits L", "completion", "3(L−1)+ecc", "exact"},
	}
	mu := "µ!"
	type row struct {
		fam                      string
		n, ecc, bits, done, pred int
		err                      error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		out, err := cdetect.Run(g, 0, mu)
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		done := 0
		for _, d := range out.DoneRound {
			if d > done {
				done = d
			}
		}
		return row{
			fam: c.Family, n: g.N(), ecc: g.Eccentricity(0),
			bits: out.BitsSent, done: done,
			pred: 3*(out.BitsSent-1) + g.Eccentricity(0),
		}
	})
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		exact := r.done == r.pred
		if !exact {
			return nil, fmt.Errorf("%s n=%d: completion %d, predicted %d", r.fam, r.n, r.done, r.pred)
		}
		t.AddRow(r.fam, r.n, r.ecc, r.bits, r.done, r.pred, boolMark(exact))
	}

	// The headline contrast with IMP: the four-cycle, anonymously.
	c4 := &Table{
		ID:      "CD-fourcycle",
		Title:   "Four-cycle: impossible without collision detection, trivial with it",
		Columns: []string{"model", "labels", "antipode informed"},
	}
	out, err := cdetect.Run(graph.Cycle(4), 0, mu)
	if err != nil {
		return nil, err
	}
	c4.AddRow("no collision detection (IMP)", "none (uniform)", "never")
	c4.AddRow("collision detection (this experiment)", "none (anonymous)",
		fmt.Sprintf("decodes µ by round %d", out.DoneRound[2]))
	c4.AddRow("no collision detection + λ (T29)", "2-bit λ", "round 3")
	return []*Table{t, c4}, nil
}
