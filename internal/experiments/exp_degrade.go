package experiments

import (
	"fmt"

	"radiobcast"
)

// degradeSpecs is the adversary ladder of the DEGRADE table: each entry
// is one point on the sweep's Faults axis, labeled for the table. The
// ladder walks scheme × model × budget — i.i.d. noise at two rates, the
// budgeted jammer at rising budgets (greedy and oblivious at the same
// budget, so the targeting premium is visible), crash–recovery under both
// memory policies, duty-cycling, and topology churn.
func degradeSpecs() (labels []string, specs []radiobcast.FaultSpec) {
	add := func(label string, s radiobcast.FaultSpec) {
		labels = append(labels, label)
		specs = append(specs, s)
	}
	add("rate 5%", radiobcast.FaultSpec{Model: radiobcast.FaultModelRate, Rate: 0.05})
	add("rate 20%", radiobcast.FaultSpec{Model: radiobcast.FaultModelRate, Rate: 0.2})
	add("jam greedy b=4", radiobcast.FaultSpec{Model: radiobcast.FaultModelJam, Greedy: true, Budget: 4})
	add("jam greedy b=16", radiobcast.FaultSpec{Model: radiobcast.FaultModelJam, Greedy: true, Budget: 16})
	add("jam oblivious b=16", radiobcast.FaultSpec{Model: radiobcast.FaultModelJam, Budget: 16})
	add("crash retain", radiobcast.FaultSpec{Model: radiobcast.FaultModelCrash, Rate: 0.02, Down: 3})
	add("crash lose", radiobcast.FaultSpec{Model: radiobcast.FaultModelCrash, Rate: 0.02, Down: 3, Lose: true})
	add("duty 3/4", radiobcast.FaultSpec{Model: radiobcast.FaultModelDuty, Period: 4, On: 3})
	add("churn edge flap", radiobcast.FaultSpec{Model: radiobcast.FaultModelChurn, Events: []radiobcast.ChurnEvent{
		{Round: 2, U: 0, V: 1},            // sever the source's first edge…
		{Round: 6, Add: true, U: 0, V: 1}, // …and restore it four rounds later
	}})
	return labels, specs
}

// DegradeExperiment is the graceful-degradation table (an extension
// beyond the paper, which assumes a fault-free channel): every fault
// model of the adversarial subsystem runs against the labeled schemes,
// and the outcome is graded by delivery coverage rather than the binary
// AllInformed. The expected shape follows from the schedule's FAULT-table
// fragility — a deterministic relay race with no redundancy: even a
// minimal jam budget is fatal (the adversary kills the source's one µ
// transmission), crashes and i.i.d. noise degrade partially (coverage
// tracks how far the relay got), and a temporary edge loss is tolerated
// exactly when the DOM sets offer an alternative relay path.
func DegradeExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "DEGRADE",
		Title: "Graceful degradation: scheme × fault model × budget",
		Caption: "coverage = informed fraction of the network; grade = degradation class" +
			" (none ≥ 100%, minor ≥ 90%, major ≥ 50%, severe > source only, total);" +
			" r90 = rounds to 90% coverage (- when never reached).",
		Columns: []string{"scheme", "n", "fault", "coverage", "grade", "rounds", "r90"},
	}
	labels, specs := degradeSpecs()
	sizes := []int{16, 64}
	if !cfg.Quick {
		sizes = []int{16, 64, 256}
	}
	results, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"grid"},
		Sizes:    sizes,
		Schemes:  []string{"b", "back"},
		Mu:       "m",
		Seed:     1,
		Faults:   specs,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Grid order nests the fault axis innermost, so results arrive in
	// chunks of len(specs) per (size, scheme); the spec index recovers
	// the ladder label.
	for _, c := range results {
		if c.Err != nil {
			return nil, fmt.Errorf("%s: %w", c.Cell, c.Err)
		}
		out := c.Outcome
		r90 := "-"
		if r, ok := out.RoundsToCoverage(0.9); ok {
			r90 = fmt.Sprintf("%d", r)
		}
		// The sweep's fault axis leads with the default clean cell (rate
		// 0), which anchors the table as the no-adversary baseline.
		label := "(clean)"
		if c.Cell.Fault != "" {
			label = labels[degradeSpecIndex(c.Cell.Fault, specs)]
		}
		if !c.Cell.Faulted() && !c.Verified {
			return nil, fmt.Errorf("%s: clean baseline cell failed verification", c.Cell)
		}
		t.AddRow(c.Cell.Scheme, c.N, label,
			out.Coverage, string(out.Degraded), out.CompletionRound, r90)
	}
	if len(t.Rows) != len(results) || len(results) == 0 {
		return nil, fmt.Errorf("degradation table lost rows: %d of %d", len(t.Rows), len(results))
	}
	return []*Table{t}, nil
}

// degradeSpecIndex maps a cell's fault label back to its ladder index.
// Sweep labels are the model name, and every occurrence of a model that
// appears more than once carries a "#index" suffix — so regenerating the
// labels in spec order recovers the index.
func degradeSpecIndex(label string, specs []radiobcast.FaultSpec) int {
	names := make([]string, len(specs))
	seen := map[string]int{}
	for i, s := range specs {
		names[i] = s.Model
		seen[names[i]]++
	}
	for i, n := range names {
		if seen[n] > 1 {
			n = fmt.Sprintf("%s#%d", n, i)
		}
		if n == label {
			return i
		}
	}
	return 0
}
