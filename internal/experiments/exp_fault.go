package experiments

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
	"radiobcast/internal/sweep"
)

// FaultExperiment quantifies how much algorithm B's schedule relies on
// lossless delivery (an extension beyond the paper, which assumes a
// fault-free channel): for every single transmission (v, round) of a
// nominal run, we re-run the broadcast with exactly that transmission
// jammed and record whether broadcast still completes. The expectation is
// high fragility — the schedule is a deterministic relay race, so most µ
// and "stay" transmissions are load-bearing — which is the price of 2-bit
// labels; redundancy would need more label bits or more time.
func FaultExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "FAULT",
		Title: "Single-transmission erasures vs algorithm B (extension)",
		Caption: "events = transmissions in the fault-free run; survived = erased runs that still" +
			" inform everyone (within 4n rounds).",
		Columns: []string{"graph", "n", "events", "survived", "survived %", "fatal µ", "fatal stay"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"figure1", graph.Figure1()},
		{"P10", graph.Path(10)},
		{"C12", graph.Cycle(12)},
		{"grid4x4", graph.Grid(4, 4)},
		{"btree15", graph.BinaryTree(15)},
		{"gnp20", graph.GNPConnected(20, 0.2, 9)},
	}
	for _, tc := range cases {
		g := tc.g
		l, err := core.Lambda(g, 0, core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		nominal, err := core.RunBroadcastLabeled(g, l, 0, "m", nil)
		if err != nil {
			return nil, err
		}
		// Enumerate all (node, round) transmission events.
		type event struct{ node, round int }
		var events []event
		for v, rounds := range nominal.Result.Transmits {
			for _, r := range rounds {
				events = append(events, event{v, r})
			}
		}
		type outcome struct {
			survived bool
			wasStay  bool
		}
		results := sweep.Map(events, cfg.Workers, func(e event) outcome {
			ps := core.NewBProtocols(l.Labels, 0, "m")
			res := radio.Run(g, ps, radio.Options{
				MaxRounds:       4 * g.N(),
				StopAfterSilent: 3,
				Faults: faults.DropFunc(func(node, round int) bool {
					return node == e.node && round == e.round
				}),
			})
			informed := true
			for v := 0; v < g.N(); v++ {
				if v != 0 && res.FirstReception(v, radio.KindData) == radio.NoReception {
					informed = false
					break
				}
			}
			return outcome{survived: informed, wasStay: e.round%2 == 0}
		})
		survived, fatalMu, fatalStay := 0, 0, 0
		for _, r := range results {
			switch {
			case r.survived:
				survived++
			case r.wasStay:
				fatalStay++
			default:
				fatalMu++
			}
		}
		t.AddRow(tc.name, g.N(), len(events), survived,
			float64(100*survived)/float64(len(events)), fatalMu, fatalStay)
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("fault experiment produced no rows")
	}
	return []*Table{t}, nil
}
