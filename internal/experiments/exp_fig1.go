package experiments

import (
	"fmt"
	"sort"
	"strings"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// Figure1Experiment reproduces the paper's Figure 1: it labels the
// reconstructed 13-node graph with λ, runs algorithm B, and renders the
// per-node annotations (label, transmit rounds, receive rounds) in the
// figure's format, cross-checking each against the golden values.
func Figure1Experiment(cfg Config) ([]*Table, error) {
	g := graph.Figure1()
	l, err := core.Lambda(g, graph.Figure1Source, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	tr := &radio.Trace{}
	out, err := core.RunBroadcastLabeled(g, l, graph.Figure1Source, "µ", tr)
	if err != nil {
		return nil, err
	}
	if err := core.VerifyBroadcast(out, "µ"); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "FIG1",
		Title: "Figure 1 reconstruction (13 nodes, ℓ=5, completes in round 7 = 2ℓ−3)",
		Caption: "{..} = rounds the node transmits, (..) = rounds it first receives µ / acts on a message;" +
			" golden = values derived from the paper's figure.",
		Columns: []string{"node", "label", "transmits", "golden-tx", "informed", "golden-informed", "match"},
	}
	for v := 0; v < g.N(); v++ {
		tx := intSet(out.Result.Transmits[v])
		goldenTx := intSet(graph.Figure1Transmits[v])
		informed := out.InformedRound[v]
		goldenInf := graph.Figure1InformedRounds[v]
		labelOK := string(l.Labels[v]) == graph.Figure1Labels[v]
		match := tx == goldenTx && informed == goldenInf && labelOK
		t.AddRow(v, string(l.Labels[v]), tx, goldenTx, informed, goldenInf, boolMark(match))
	}

	round := &Table{
		ID:      "FIG1-rounds",
		Title:   "Figure 1 round-by-round channel activity",
		Columns: []string{"round", "transmitters", "deliveries", "meaning"},
	}
	for _, r := range tr.Rounds {
		var txs, rxs []string
		for _, tx := range r.Transmitters {
			txs = append(txs, fmt.Sprintf("%d", tx.Node))
		}
		for _, rx := range r.Deliveries {
			rxs = append(rxs, fmt.Sprintf("%d", rx.Node))
		}
		meaning := "µ from DOM_" + fmt.Sprintf("%d", (r.Round+1)/2)
		if r.Round%2 == 0 {
			meaning = "stay from NEW_" + fmt.Sprintf("%d", r.Round/2)
		}
		round.AddRow(r.Round, strings.Join(txs, " "), strings.Join(rxs, " "), meaning)
	}
	return []*Table{t, round}, nil
}

func intSet(xs []int) string {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, x := range sorted {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
