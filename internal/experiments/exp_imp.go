package experiments

import (
	"fmt"

	"radiobcast/internal/anonymity"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
	"radiobcast/internal/sweep"
)

func gC4() *graph.Graph { return graph.Cycle(4) }

// ImpossibilityExperiment runs the four-cycle impossibility battery: a set
// of natural uniform protocols plus hundreds of pseudorandom deterministic
// programs; none may inform the antipodal node, while the labeled control
// (λ + B) must complete in 3 rounds.
func ImpossibilityExperiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "IMP",
		Title: "Four-cycle impossibility without labels (§1.1)",
		Caption: "Every uniform deterministic protocol leaves the antipode uninformed;" +
			" the labeled control breaks the symmetry.",
		Columns: []string{"protocol", "instances", "horizon", "antipode informed", "neighbours symmetric"},
	}
	horizon := 1000
	seeds := 1000
	if cfg.Quick {
		horizon, seeds = 200, 200
	}

	// Natural uniform protocols.
	natural := []struct {
		name    string
		factory anonymity.Factory
	}{
		{"algorithm B, all labels 11", func(isSource bool) radio.Protocol {
			var src *string
			if isSource {
				mu := "m"
				src = &mu
			}
			return core.NewAlgB(core.Label("11"), src)
		}},
		{"algorithm B, all labels 10", func(isSource bool) radio.Protocol {
			var src *string
			if isSource {
				mu := "m"
				src = &mu
			}
			return core.NewAlgB(core.Label("10"), src)
		}},
		{"always transmit once informed", anonymity.PseudorandomProgram(0x5555555555555555)},
	}
	for _, p := range natural {
		out := anonymity.RunFourCycle(p.factory, horizon)
		if out.AntipodeInformed != 0 {
			return nil, fmt.Errorf("%s: antipode informed in round %d", p.name, out.AntipodeInformed)
		}
		t.AddRow(p.name, 1, horizon, "never", boolMark(out.NeighboursSymmetric))
	}

	// Pseudorandom deterministic program sweep.
	seedList := make([]uint64, seeds)
	for i := range seedList {
		seedList[i] = uint64(i)
	}
	type res struct {
		informed int
		sym      bool
	}
	results := sweep.Map(seedList, cfg.Workers, func(seed uint64) res {
		out := anonymity.RunFourCycle(anonymity.PseudorandomProgram(seed), horizon/4)
		return res{out.AntipodeInformed, out.NeighboursSymmetric}
	})
	informedCount, asym := 0, 0
	for _, r := range results {
		if r.informed != 0 {
			informedCount++
		}
		if !r.sym {
			asym++
		}
	}
	if informedCount > 0 || asym > 0 {
		return nil, fmt.Errorf("pseudorandom sweep: %d informed, %d asymmetric", informedCount, asym)
	}
	t.AddRow("pseudorandom deterministic programs", seeds, horizon/4, "never (all seeds)", "yes")

	// Labeled control: λ + B completes on C4.
	out, err := core.RunBroadcast(gC4(), 0, "m", core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	if err := core.VerifyBroadcast(out, "m"); err != nil {
		return nil, err
	}
	t.AddRow("control: λ labels + algorithm B", 1, out.CompletionRound,
		fmt.Sprintf("round %d", out.InformedRound[anonymity.Antipode]), "n/a (labels differ)")
	return []*Table{t}, nil
}
