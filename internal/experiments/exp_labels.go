package experiments

import (
	"fmt"
	"sort"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/sweep"
)

// Fact31Experiment tallies the distinct labels used by λ, λack and λarb
// across the sweep: the paper claims ≤ 4, 5 (Fact 3.1) and 6 (§5).
func Fact31Experiment(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:      "F31",
		Title:   "Distinct labels used by each scheme (paper: λ ≤ 4, λack = 5, λarb = 6)",
		Caption: "Forbidden λack labels 101/111/011 (Fact 3.1) are checked per node.",
		Columns: []string{"family", "n", "λ distinct", "λack distinct", "λack forbidden", "λarb distinct"},
	}
	agg := &Table{
		ID:      "F31-histogram",
		Title:   "Aggregate label histogram across the full sweep",
		Columns: []string{"scheme", "label", "count"},
	}
	type row struct {
		fam                     string
		n, dl, dack, darb       int
		forbidden               int
		histL, histAck, histArb map[core.Label]int
		err                     error
	}
	rows := sweep.Map(familyGrid(cfg), cfg.Workers, func(c familyCase) row {
		g := graph.Families[c.Family](c.N)
		l, err := core.Lambda(g, 0, core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		ack, err := core.LambdaAck(g, 0, core.BuildOptions{})
		if err != nil {
			return row{fam: c.Family, n: g.N(), err: err}
		}
		forbidden := 0
		for _, lab := range ack.Labels {
			switch lab {
			case "101", "111", "011":
				forbidden++
			}
		}
		var arbLabels []core.Label
		darb := 0
		if g.N() >= 2 {
			arb, err := core.LambdaArb(g, 0, core.BuildOptions{})
			if err != nil {
				return row{fam: c.Family, n: g.N(), err: err}
			}
			arbLabels = arb.Labels
			darb = core.Distinct(arb.Labels)
		}
		return row{
			fam: c.Family, n: g.N(),
			dl: core.Distinct(l.Labels), dack: core.Distinct(ack.Labels), darb: darb,
			forbidden: forbidden,
			histL:     core.Histogram(l.Labels),
			histAck:   core.Histogram(ack.Labels),
			histArb:   core.Histogram(arbLabels),
		}
	})
	totals := map[string]map[core.Label]int{"λ": {}, "λack": {}, "λarb": {}}
	for _, r := range rows {
		if r.err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", r.fam, r.n, r.err)
		}
		if r.dl > 4 || r.dack > 5 || r.darb > 6 || r.forbidden > 0 {
			return nil, fmt.Errorf("%s n=%d: label-count claim violated (λ=%d λack=%d λarb=%d forbidden=%d)",
				r.fam, r.n, r.dl, r.dack, r.darb, r.forbidden)
		}
		t.AddRow(r.fam, r.n, r.dl, r.dack, r.forbidden, r.darb)
		for lab, c := range r.histL {
			totals["λ"][lab] += c
		}
		for lab, c := range r.histAck {
			totals["λack"][lab] += c
		}
		for lab, c := range r.histArb {
			totals["λarb"][lab] += c
		}
	}
	for _, scheme := range []string{"λ", "λack", "λarb"} {
		labs := make([]string, 0, len(totals[scheme]))
		for lab := range totals[scheme] {
			labs = append(labs, string(lab))
		}
		sort.Strings(labs)
		for _, lab := range labs {
			agg.AddRow(scheme, lab, totals[scheme][core.Label(lab)])
		}
	}
	return []*Table{t, agg}, nil
}
