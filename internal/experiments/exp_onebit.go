package experiments

import (
	"fmt"

	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/onebit"
	"radiobcast/internal/sweep"
)

// OneBitExperiment covers the paper's §5 one-bit claims: verified
// constructive schemes for paths, cycles and grids; a search-based
// feasibility study on random radius-2 graphs; and the demonstration that
// the conclusion's literal hint (DOM_i ⊆ DOM_{i−1}) stalls.
func OneBitExperiment(cfg Config) ([]*Table, error) {
	constructive := &Table{
		ID:      "ONEBIT-constructive",
		Title:   "Verified 1-bit labelings (delayed-flooding protocol family)",
		Caption: "Every row is machine-verified by exact simulation; completion is the measured round.",
		Columns: []string{"graph", "n", "delays (1-bit/0-bit)", "completion", "verified"},
	}
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{8, 32}
	}
	for _, n := range sizes {
		s, err := onebit.PathScheme(graph.Path(n), 0)
		if err != nil {
			return nil, err
		}
		constructive.AddRow(fmt.Sprintf("path %d", n), n, "1/never", s.CompletionRound, "yes")
	}
	for _, n := range sizes {
		s, err := onebit.CycleScheme(graph.Cycle(n), 0)
		if err != nil {
			return nil, err
		}
		constructive.AddRow(fmt.Sprintf("cycle %d", n), n, "1/never", s.CompletionRound, "yes")
	}
	gridSizes := [][2]int{{4, 4}, {5, 9}, {9, 5}, {12, 12}, {20, 20}}
	if cfg.Quick {
		gridSizes = [][2]int{{4, 4}, {5, 9}}
	}
	for _, sz := range gridSizes {
		s, g, err := onebit.GridScheme(sz[0], sz[1])
		if err != nil {
			return nil, err
		}
		constructive.AddRow(fmt.Sprintf("grid %dx%d", sz[0], sz[1]), g.N(), "1/2", s.CompletionRound, "yes")
	}

	search := &Table{
		ID:    "ONEBIT-search",
		Title: "1-bit feasibility search on random graphs (hill-climb, 2000 flips)",
		Caption: "families from the paper's §5 claims: source-radius-2 graphs and series-parallel" +
			" graphs; found = labelings completing broadcast under delays 1/2 or 1/never;" +
			" a non-found entry means the search failed, not that no scheme exists.",
		Columns: []string{"family", "n", "instances", "found", "found %"},
	}
	searchNs := []int{6, 8, 10, 12, 14}
	instances := 40
	if cfg.Quick {
		searchNs = []int{6, 10}
		instances = 15
	}
	searchFams := []struct {
		name  string
		build func(n int, seed int64) *graph.Graph
	}{
		{"radius-2", func(n int, seed int64) *graph.Graph { return graph.RandomRadius2(n, 0.3, seed) }},
		{"series-parallel", graph.SeriesParallel},
	}
	for _, fam := range searchFams {
		for _, n := range searchNs {
			seeds := make([]int64, instances)
			for i := range seeds {
				seeds[i] = int64(n*1000 + i)
			}
			found := sweep.Map(seeds, cfg.Workers, func(seed int64) bool {
				g := fam.build(n, seed)
				for _, d := range []baseline.FloodingDelays{baseline.GridDelays, baseline.DefaultDelays} {
					if _, ok := onebit.SearchRandom(g, d, 0, 2000, seed); ok {
						return true
					}
				}
				return false
			})
			count := 0
			for _, f := range found {
				if f {
					count++
				}
			}
			search.AddRow(fam.name, n, instances, count, float64(100*count)/float64(instances))
		}
	}

	hint := &Table{
		ID:    "ONEBIT-hint",
		Title: "The conclusion's literal hint (DOM_i ⊆ DOM_{i−1}) stalls",
		Caption: "Restricting the candidate set as printed prevents newly informed nodes from ever" +
			" dominating, so any node at distance 2 from the source is unreachable.",
		Columns: []string{"graph", "n", "restricted construction"},
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"P3", graph.Path(3)},
		{"radius-2 random (n=10)", graph.RandomRadius2(10, 0.3, 7)},
		{"grid3x3", graph.Grid(3, 3)},
	} {
		_, err := core.BuildStages(tc.g, 0, core.BuildOptions{Restricted: true})
		result := "completes"
		if err != nil {
			result = fmt.Sprintf("stalls: %v", err)
		}
		hint.AddRow(tc.name, tc.g.N(), result)
	}
	return []*Table{constructive, search, hint}, nil
}
