package experiments

import (
	"fmt"
	"reflect"
	"time"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// ParallelExperiment validates the parallel engine against the sequential
// one (bit-identical results on the paper's algorithms) and reports the
// wall-clock speedup on a large dense instance.
func ParallelExperiment(cfg Config) ([]*Table, error) {
	equiv := &Table{
		ID:      "PAR-equivalence",
		Title:   "Parallel engine ≡ sequential engine (algorithm B runs)",
		Columns: []string{"graph", "n", "workers", "identical results"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"figure1", graph.Figure1()},
		{"gnp-dense 200", graph.GNPConnected(200, 0.1, 5)},
		{"grid 20x20", graph.Grid(20, 20)},
	}
	for _, tc := range cases {
		l, err := core.Lambda(tc.g, 0, core.BuildOptions{})
		if err != nil {
			return nil, err
		}
		seq := runEngine(tc.g, l, 1)
		for _, workers := range []int{2, 4, 8} {
			par := runEngine(tc.g, l, workers)
			same := reflect.DeepEqual(seq.Transmits, par.Transmits) &&
				reflect.DeepEqual(seq.Receives, par.Receives) &&
				seq.Rounds == par.Rounds
			if !same {
				return nil, fmt.Errorf("%s workers=%d: parallel engine diverged", tc.name, workers)
			}
			equiv.AddRow(tc.name, tc.g.N(), workers, "yes")
		}
	}

	speed := &Table{
		ID:      "PAR-speedup",
		Title:   "Engine wall-clock on a dense instance (informational)",
		Caption: "Per-round work is Θ(Σ deg); parallel pays off only on dense graphs.",
		Columns: []string{"graph", "n", "edges", "workers", "ms"},
	}
	n := 3000
	if cfg.Quick {
		n = 800
	}
	big := graph.GNPConnected(n, 8.0/float64(n), 42)
	l, err := core.Lambda(big, 0, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		runEngine(big, l, workers)
		speed.AddRow(fmt.Sprintf("gnp n=%d", n), big.N(), big.M(), workers,
			time.Since(start).Milliseconds())
	}
	return []*Table{equiv, speed}, nil
}

func runEngine(g *graph.Graph, l *core.Labeling, workers int) *radio.Result {
	ps := core.NewBProtocols(l.Labels, 0, "m")
	return radio.Run(g, ps, radio.Options{
		MaxRounds:       2*g.N() + 4,
		StopAfterSilent: 3,
		Workers:         workers,
	})
}
