package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Workers: 4} }

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo", Caption: "cap",
		Columns: []string{"a", "bee"},
	}
	tab.AddRow(1, "x")
	tab.AddRow(22, 3.14159)
	out := tab.Render()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "3.14") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("x,y", `q"z`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""z"`) {
		t.Fatalf("csv quoting wrong:\n%s", csv)
	}
}

func TestFindRegistry(t *testing.T) {
	if _, ok := Find("T29"); !ok {
		t.Fatal("T29 missing from registry")
	}
	if _, ok := Find("NOPE"); ok {
		t.Fatal("found nonexistent experiment")
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Desc == "" || e.Gen == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestConfigSizes(t *testing.T) {
	if len(Config{Quick: true}.Sizes()) >= len(Config{}.Sizes()) {
		t.Fatal("quick sweep should be smaller")
	}
}

// Each experiment runs end to end in quick mode and produces non-empty,
// well-formed tables. These tests ARE the reproduction: a generator fails
// if any paper claim it checks is violated.

func runExp(t *testing.T, id string) []*Table {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables, err := e.Gen(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s/%s: empty table", id, tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s/%s: ragged row %v", id, tab.ID, row)
			}
		}
	}
	return tables
}

func TestFigure1Experiment(t *testing.T) {
	tables := runExp(t, "FIG1")
	// Every node row must match the golden values.
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("FIG1 mismatch: %v", row)
		}
	}
}

func TestTheorem29Experiment(t *testing.T)          { runExp(t, "T29") }
func TestLemma26Experiment(t *testing.T)            { runExp(t, "L26") }
func TestFact31Experiment(t *testing.T)             { runExp(t, "F31") }
func TestTheorem39Experiment(t *testing.T)          { runExp(t, "T39") }
func TestCommonRoundExperiment(t *testing.T)        { runExp(t, "CR") }
func TestArbitraryExperiment(t *testing.T)          { runExp(t, "ARB") }
func TestImpossibilityExperiment(t *testing.T)      { runExp(t, "IMP") }
func TestCollisionDetectionExperiment(t *testing.T) { runExp(t, "CD") }
func TestBaselinesExperiment(t *testing.T)          { runExp(t, "BASE") }
func TestMessageSizeExperiment(t *testing.T)        { runExp(t, "MSG") }
func TestEnergyExperiment(t *testing.T)             { runExp(t, "ENERGY") }
func TestDomAblationExperiment(t *testing.T)        { runExp(t, "ABLDOM") }
func TestZAblationExperiment(t *testing.T)          { runExp(t, "ABLZ") }
func TestOneBitExperiment(t *testing.T)             { runExp(t, "ONEBIT") }
func TestFaultExperiment(t *testing.T)              { runExp(t, "FAULT") }
func TestParallelExperiment(t *testing.T)           { runExp(t, "PAR") }

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < len(Registry) {
		t.Fatalf("RunAll produced %d tables for %d experiments", len(tables), len(Registry))
	}
}
