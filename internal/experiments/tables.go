// Package experiments regenerates every artifact of the paper's evaluation:
// Figure 1 and the quantitative content of its facts, lemmas and theorems
// (the paper has no tables). Each experiment is a registered generator that
// produces plain-text tables; the cmd/experiments tool and the root
// bench_test.go harness both drive this registry, and EXPERIMENTS.md records
// paper-versus-measured values for every entry.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (cells with commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSV := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeCSV(t.Columns)
	for _, row := range t.Rows {
		writeCSV(row)
	}
	return b.String()
}

// Config tunes experiment scale.
type Config struct {
	// Workers is the sweep parallelism (≤ 0 → GOMAXPROCS).
	Workers int
	// Quick shrinks sweeps for fast CI-style runs.
	Quick bool
}

// Sizes returns the graph-size sweep for the configuration.
func (c Config) Sizes() []int {
	if c.Quick {
		return []int{8, 32, 128}
	}
	return []int{8, 16, 32, 64, 128, 256, 512}
}

// Generator produces the tables of one experiment.
type Generator func(cfg Config) ([]*Table, error)

// Entry describes one registered experiment.
type Entry struct {
	ID   string
	Desc string
	Gen  Generator
}

// Registry lists all experiments in EXPERIMENTS.md order.
var Registry = []Entry{
	{"FIG1", "Figure 1: example execution of algorithm B", Figure1Experiment},
	{"T29", "Theorem 2.9: broadcast completes within 2n−3 rounds", Theorem29Experiment},
	{"L26", "Lemma 2.6 and §2.1 invariants: ℓ ≤ n, facts machine-checked", Lemma26Experiment},
	{"F31", "Fact 3.1: label usage of λ, λack, λarb", Fact31Experiment},
	{"T39", "Theorem 3.9 / Corollary 3.8: acknowledgement window", Theorem39Experiment},
	{"CR", "§3: common completion-knowledge round 2m", CommonRoundExperiment},
	{"ARB", "§4: arbitrary-source broadcast Barb", ArbitraryExperiment},
	{"IMP", "§1: four-cycle impossibility without labels", ImpossibilityExperiment},
	{"CD", "§1: anonymous broadcast with collision detection", CollisionDetectionExperiment},
	{"BASE", "Baselines: label length vs completion time", BaselinesExperiment},
	{"MSG", "Message sizes: B is O(1)+|µ|, Back is O(log n)", MessageSizeExperiment},
	{"ENERGY", "Transmission counts of algorithm B", EnergyExperiment},
	{"ABLDOM", "Ablation: DOM prune order and the necessity of minimality", DomAblationExperiment},
	{"ABLZ", "Ablation: z must be a last-informed node", ZAblationExperiment},
	{"ONEBIT", "§5: one-bit schemes for paths, cycles, grids; search study", OneBitExperiment},
	{"FAULT", "Extension: single-transmission erasures vs algorithm B", FaultExperiment},
	{"DEGRADE", "Extension: graceful degradation under adversarial fault models", DegradeExperiment},
	{"PAR", "Infrastructure: parallel engine equivalence and speedup", ParallelExperiment},
}

// Groups names thematic experiment subsets for cmd/experiments' -table
// flag: a friendly handle (e.g. "fault") expands to the IDs that tell
// that chapter's story.
var Groups = map[string][]string{
	"fault":    {"FAULT", "DEGRADE"},
	"figure":   {"FIG1"},
	"theorems": {"T29", "L26", "F31", "T39", "CR"},
	"baseline": {"BASE", "MSG", "ENERGY"},
	"ablation": {"ABLDOM", "ABLZ"},
}

// Find returns the registered experiment with the given ID.
func Find(id string) (Entry, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// RunAll executes every experiment and returns all tables.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, e := range Registry {
		ts, err := e.Gen(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
