package faults

import (
	"sort"

	"radiobcast/internal/graph"
)

// ChurnEvent is one scheduled topology mutation: at the start of Round,
// the undirected edge {U, V} appears (Add) or disappears. Events on
// already-present (or already-absent) edges are no-ops, matching the
// graph's AddEdge/RemoveEdge tolerance.
type ChurnEvent struct {
	Round int  `json:"round"`
	Add   bool `json:"add"`
	U     int  `json:"u"`
	V     int  `json:"v"`
}

// churn replays an edge add/remove schedule against a private clone of
// the base graph, re-freezing into a model-owned CSR buffer whenever the
// topology actually changes.
type churn struct {
	base   *graph.Graph
	events []ChurnEvent // sorted by round, original order preserved within a round

	g    *graph.Graph
	next int
	csr  graph.CSR
}

// NewChurn returns a topology-churn model applying events to (a private
// clone of) base. The schedule is sorted by round; events sharing a round
// apply in their given order.
func NewChurn(base *graph.Graph, events []ChurnEvent) TopologyModel {
	evs := append([]ChurnEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Round < evs[j].Round })
	return &churn{base: base, events: evs}
}

func (c *churn) Reset(int) {
	c.g = c.base.Clone()
	c.next = 0
}

func (c *churn) Apply(*State, []Effect) {}

func (c *churn) Topology(round int) *graph.CSR {
	changed := false
	for c.next < len(c.events) && c.events[c.next].Round <= round {
		e := c.events[c.next]
		c.next++
		if e.U == e.V || e.U < 0 || e.U >= c.g.N() || e.V < 0 || e.V >= c.g.N() {
			continue
		}
		if e.Add {
			if c.g.HasEdge(e.U, e.V) {
				continue
			}
			c.g.AddEdge(e.U, e.V)
		} else {
			if !c.g.HasEdge(e.U, e.V) {
				continue
			}
			c.g.RemoveEdge(e.U, e.V)
		}
		changed = true
	}
	if !changed {
		return nil
	}
	c.g.FreezeInto(&c.csr)
	return &c.csr
}
