package faults

// CrashConfig parameterizes the crash–recovery model.
type CrashConfig struct {
	// Rate is the per-node, per-round probability of starting an outage
	// while healthy; must lie in [0, 1].
	Rate float64
	// Down is the outage length in rounds; values < 1 are treated as 1.
	Down int
	// Lose selects the memory policy: when true a crashing node also
	// discards its pending (not yet processed) reception — the
	// crash-with-memory-loss policy; when false it retains everything it
	// heard and resumes where it left off.
	Lose bool
	// From and To bound the rounds in which new crashes may start,
	// inclusive; zero means unbounded on that side. Outages themselves may
	// extend past To.
	From, To int
	// Seed drives the crash draws.
	Seed int64
}

// crasher is the seeded crash–recovery model.
type crasher struct {
	cfg       CrashConfig
	bound     uint64
	downUntil []int // last round of v's current outage; 0 = healthy
}

// NewCrash returns the crash–recovery model described by cfg.
func NewCrash(cfg CrashConfig) Model {
	if cfg.Down < 1 {
		cfg.Down = 1
	}
	return &crasher{cfg: cfg, bound: threshold(cfg.Rate)}
}

func (c *crasher) Reset(n int) {
	if cap(c.downUntil) < n {
		c.downUntil = make([]int, n)
	}
	c.downUntil = c.downUntil[:n]
	for i := range c.downUntil {
		c.downUntil[i] = 0
	}
}

func (c *crasher) Apply(st *State, effects []Effect) {
	if st.Transmitters != nil {
		return // crashes land before the protocols step
	}
	r := st.Round
	inWindow := r >= c.cfg.From && (c.cfg.To <= 0 || r <= c.cfg.To)
	for v := range c.downUntil {
		if r <= c.downUntil[v] {
			effects[v] |= Down // outage in progress
			continue
		}
		if inWindow && hash64(c.cfg.Seed, v, r) < c.bound {
			c.downUntil[v] = r + c.cfg.Down - 1
			effects[v] |= Down
			if c.cfg.Lose {
				effects[v] |= Wipe
			}
		}
	}
}
