package faults

// DutyConfig parameterizes the deterministic duty-cycling model.
type DutyConfig struct {
	// Period is the schedule length in rounds; values < 1 disable the
	// model (every node always awake).
	Period int
	// On is the number of awake rounds at the start of each period,
	// clamped to [0, Period]. A node sleeps — radio off, protocol clock
	// still running — for the remaining Period−On rounds.
	On int
	// Seed staggers the per-node phase offsets. Seed 0 aligns every
	// node's schedule (all sleep together); any other seed spreads the
	// phases by coordinate hash.
	Seed int64
}

// duty is the deterministic sleep-schedule model.
type duty struct {
	cfg   DutyConfig
	phase []int
}

// NewDutyCycle returns the duty-cycling model described by cfg.
func NewDutyCycle(cfg DutyConfig) Model {
	if cfg.On < 0 {
		cfg.On = 0
	}
	if cfg.Period > 0 && cfg.On > cfg.Period {
		cfg.On = cfg.Period
	}
	return &duty{cfg: cfg}
}

func (d *duty) Reset(n int) {
	if cap(d.phase) < n {
		d.phase = make([]int, n)
	}
	d.phase = d.phase[:n]
	for v := range d.phase {
		if d.cfg.Seed == 0 || d.cfg.Period < 1 {
			d.phase[v] = 0
		} else {
			d.phase[v] = int(hash64(d.cfg.Seed, v, 0) % uint64(d.cfg.Period))
		}
	}
}

func (d *duty) Apply(st *State, effects []Effect) {
	if st.Transmitters != nil || d.cfg.Period < 1 || d.cfg.On >= d.cfg.Period {
		return
	}
	for v := range d.phase {
		if (st.Round-1+d.phase[v])%d.cfg.Period >= d.cfg.On {
			effects[v] |= Down
		}
	}
}
