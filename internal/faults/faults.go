// Package faults is the adversarial fault-injection subsystem of the
// radio engine: a composable Model interface that replaces the engine's
// old bare Drop hook, plus four concrete adversaries — budgeted jamming
// (greedy frontier-targeting and oblivious), crash–recovery with a
// heard-state policy, topology churn with incremental CSR re-freezes, and
// deterministic duty-cycling.
//
// The contract is engine-neutral: a model is a pure, seeded function of
// the run so far, so the same (model, seed) produces bit-identical
// results across the sparse/dense and sequential/parallel engines. The
// engine consults a model twice per round — once before the protocols
// step (where crash/sleep effects must land, so a down node's radio is
// off for the whole round) and once after the round's actions are decided
// (where transmission-level jamming lands, with the round's transmitter
// list in hand). Models carry per-run state (budgets, outage timers,
// churned topologies); Reset rewinds them, and a single model value must
// not be shared by concurrent runs.
package faults

import "radiobcast/internal/graph"

// Effect is the per-node, per-round fault bit set a Model writes.
type Effect uint8

const (
	// Jam suppresses the node's transmission at the channel this round:
	// no neighbour hears it (nor counts it towards a collision), while
	// the node itself believes it transmitted.
	Jam Effect = 1 << iota
	// Down turns the node's radio off for the round: it neither transmits
	// nor hears (no delivery, no collision, no noise). Its protocol still
	// steps — the node's clock runs — so recovery needs no resync: the
	// first post-outage delivery re-wakes it through the engine's normal
	// sparse-wakeup path.
	Down
	// Wipe discards the node's pending (delivered but not yet processed)
	// reception before this round's step — the crash-with-memory-loss
	// policy. Meaningful only alongside Down at a crash round.
	Wipe
)

// State is the engine snapshot a Model may consult in Apply. All slices
// are owned by the engine and read-only for models.
type State struct {
	// Round is the current 1-based round.
	Round int
	// CSR is the topology in effect this round.
	CSR *graph.CSR
	// Heard[v] reports whether v has successfully received at least one
	// message so far — the adversary's view of the informed frontier.
	Heard []bool
	// Transmitters lists the nodes whose decided action this round is
	// Transmit. It is nil in the pre-step call and set in the
	// post-decision call; models gate their two phases on it.
	Transmitters []int32
}

// Model is the engine-facing fault-injection contract. Apply is called
// twice per round: once before the protocols step (st.Transmitters ==
// nil) — crash/sleep effects (Down, Wipe) must be set here so they cover
// the whole round — and once after the round's actions are decided
// (st.Transmitters != nil) — transmission effects (Jam) may be added
// here. The effects slice arrives zeroed before the first call and
// persists between the two.
type Model interface {
	// Reset prepares the model for a fresh run over n nodes, rewinding
	// budgets, outage timers and any churned topology. Determinism
	// contract: after Reset, the same sequence of Apply calls with the
	// same States produces the same effects.
	Reset(n int)
	// Apply ORs this round's effects into effects[v] for every affected
	// node (see Model).
	Apply(st *State, effects []Effect)
}

// TopologyModel is an optional Model extension for adversaries that
// mutate the graph mid-run (churn). The engine calls Topology at the
// start of every round, before Apply; a non-nil return replaces the CSR
// for this and subsequent rounds, a nil return keeps the current one.
type TopologyModel interface {
	Model
	Topology(round int) *graph.CSR
}

// hash64 is the package's deterministic coordinate hash: splitmix64 over
// the packed (seed, a, b) triple — the same construction the facade's
// FaultRate uses, so every model's randomness is a pure function of its
// coordinates and no random-number state is shared across goroutines.
func hash64(seed int64, a, b int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(a)<<32 + uint64(b) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// threshold converts a probability into the fixed-point comparison bound
// for hash64 draws. p ≥ 1 saturates (every draw hits); p ≤ 0 yields 0
// (no draw hits) — callers reject NaN and negatives before this.
func threshold(p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * (1 << 63) * 2)
}

// DropFunc adapts the engine's historical fault hook — jam node v's
// round-r transmission when f(v, r) is true — into a Model, so callers of
// the old WithFaults(func) API run unchanged on the new subsystem. The
// adapter consults f only for actual transmitters, which is exactly the
// set the old engine's delivery semantics depended on.
func DropFunc(f func(node, round int) bool) Model {
	if f == nil {
		return nil
	}
	return dropFunc{f}
}

type dropFunc struct{ f func(node, round int) bool }

func (dropFunc) Reset(int) {}

func (d dropFunc) Apply(st *State, effects []Effect) {
	if st.Transmitters == nil {
		return
	}
	for _, t := range st.Transmitters {
		if d.f(int(t), st.Round) {
			effects[t] |= Jam
		}
	}
}

// NewRate returns the i.i.d. per-transmission jamming model: each (node,
// round) transmission is independently jammed with probability rate,
// decided by a seeded coordinate hash — the historical FaultRate channel.
// rate ≥ 1 jams every transmission outright (no hash draw, so the
// boundary cannot leak a lucky maximal hash); callers reject NaN and
// negative rates before construction.
func NewRate(rate float64, seed int64) Model {
	return &rateModel{seed: seed, bound: threshold(rate), always: rate >= 1}
}

type rateModel struct {
	seed   int64
	bound  uint64
	always bool
}

func (*rateModel) Reset(int) {}

func (r *rateModel) Apply(st *State, effects []Effect) {
	if st.Transmitters == nil {
		return
	}
	for _, t := range st.Transmitters {
		if r.always || hash64(r.seed, int(t), st.Round) < r.bound {
			effects[t] |= Jam
		}
	}
}

// Compose runs several models as one: effects are the union (each model
// sees the bits its predecessors already set), and the last composed
// TopologyModel wins the round's topology. Nil members are skipped.
func Compose(models ...Model) Model {
	var ms []Model
	for _, m := range models {
		if m != nil {
			ms = append(ms, m)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	}
	// A composition of WordModels keeps the vectorized fast path; one
	// member without it drops the whole composition to the scalar path.
	allWords := true
	for _, m := range ms {
		if _, ok := m.(WordModel); !ok {
			allWords = false
			break
		}
	}
	if allWords {
		return &wordComposite{composite{models: ms}}
	}
	return &composite{models: ms}
}

type composite struct{ models []Model }

func (c *composite) Reset(n int) {
	for _, m := range c.models {
		m.Reset(n)
	}
}

func (c *composite) Apply(st *State, effects []Effect) {
	for _, m := range c.models {
		m.Apply(st, effects)
	}
}

func (c *composite) Topology(round int) *graph.CSR {
	var csr *graph.CSR
	for _, m := range c.models {
		if tm, ok := m.(TopologyModel); ok {
			if t := tm.Topology(round); t != nil {
				csr = t
			}
		}
	}
	return csr
}
