// Unit tests of the fault models against hand-built States: the seeded
// hash, the rate boundary, jam budgets and targeting, crash outage
// timing, duty schedules, churn replay and composition — all independent
// of the engine, which gets its own faulted bit-identity tests.
package faults

import (
	"testing"

	"radiobcast/internal/graph"
)

// path5 is 0-1-2-3-4.
func path5() *graph.Graph {
	g := graph.New(5)
	for v := 0; v < 4; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func applyPost(t *testing.T, m Model, st *State, n int) []Effect {
	t.Helper()
	effects := make([]Effect, n)
	pre := *st
	pre.Transmitters = nil
	m.Apply(&pre, effects)
	m.Apply(st, effects)
	return effects
}

func TestHash64Deterministic(t *testing.T) {
	seen := map[uint64]bool{}
	for _, c := range [][3]int{{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {1, 2, 4}} {
		h := hash64(int64(c[0]), c[1], c[2])
		if h != hash64(int64(c[0]), c[1], c[2]) {
			t.Fatalf("hash64%v not deterministic", c)
		}
		if seen[h] {
			t.Fatalf("hash64%v collides with a permuted coordinate — packing is not injective enough", c)
		}
		seen[h] = true
	}
}

func TestThresholdBoundaries(t *testing.T) {
	if got := threshold(1); got != ^uint64(0) {
		t.Fatalf("threshold(1) = %d, want max", got)
	}
	if got := threshold(1.5); got != ^uint64(0) {
		t.Fatalf("threshold(1.5) = %d, want max", got)
	}
	if got := threshold(0); got != 0 {
		t.Fatalf("threshold(0) = %d, want 0", got)
	}
	if half := threshold(0.5); half < 1<<62 || half > 3<<62 {
		t.Fatalf("threshold(0.5) = %d, wildly off the midpoint", half)
	}
}

// TestRateBoundary pins the rate ≥ 1 fix: every transmission is jammed,
// not "all but nodes whose hash lands on the maximal value".
func TestRateBoundary(t *testing.T) {
	csr := path5().Freeze()
	tx := []int32{0, 1, 2, 3, 4}
	for _, rate := range []float64{1, 1.5, 100} {
		m := NewRate(rate, 42)
		m.Reset(5)
		for round := 1; round <= 50; round++ {
			eff := applyPost(t, m, &State{Round: round, CSR: csr, Heard: make([]bool, 5), Transmitters: tx}, 5)
			for v, e := range eff {
				if e&Jam == 0 {
					t.Fatalf("rate %g: node %d round %d escaped the jam", rate, v, round)
				}
			}
		}
	}
	// Rate 0 jams nothing.
	m := NewRate(0, 42)
	m.Reset(5)
	eff := applyPost(t, m, &State{Round: 1, CSR: csr, Heard: make([]bool, 5), Transmitters: tx}, 5)
	for v, e := range eff {
		if e != 0 {
			t.Fatalf("rate 0 jammed node %d", v)
		}
	}
}

func TestRateSeedAndPhase(t *testing.T) {
	csr := path5().Freeze()
	tx := []int32{0, 1, 2, 3, 4}
	jams := func(seed int64) []Effect {
		m := NewRate(0.5, seed)
		m.Reset(5)
		return applyPost(t, m, &State{Round: 3, CSR: csr, Heard: make([]bool, 5), Transmitters: tx}, 5)
	}
	a, b := jams(7), jams(7)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different jams")
		}
	}
	// The pre-step phase must be a no-op for a transmission-level model.
	m := NewRate(1, 7)
	m.Reset(5)
	eff := make([]Effect, 5)
	m.Apply(&State{Round: 1, CSR: csr, Heard: make([]bool, 5)}, eff)
	for v, e := range eff {
		if e != 0 {
			t.Fatalf("rate model acted in the pre-step phase (node %d)", v)
		}
	}
}

func TestJamBudgetAndPerRound(t *testing.T) {
	csr := path5().Freeze()
	m := NewJam(JamConfig{Budget: 3, PerRound: 2, Seed: 1})
	m.Reset(5)
	heard := make([]bool, 5)
	total := 0
	for round := 1; round <= 10; round++ {
		eff := applyPost(t, m, &State{Round: round, CSR: csr, Heard: heard, Transmitters: []int32{0, 1, 2, 3, 4}}, 5)
		jammed := 0
		for _, e := range eff {
			if e&Jam != 0 {
				jammed++
			}
		}
		if jammed > 2 {
			t.Fatalf("round %d: %d jams exceed PerRound 2", round, jammed)
		}
		total += jammed
	}
	if total != 3 {
		t.Fatalf("spent %d jams over the run, want exactly Budget 3", total)
	}
}

func TestJamGreedyTargetsFrontier(t *testing.T) {
	// Heard: 0 and 1 know the message; 2, 3, 4 do not. Transmitters 1 and
	// 3: jamming 1 denies an uninformed neighbour (2); 3's neighbours (2,
	// 4) are both uninformed, gain 2 — the greedy adversary with quota 1
	// must pick 3.
	csr := path5().Freeze()
	m := NewJam(JamConfig{Budget: 1, Greedy: true})
	m.Reset(5)
	heard := []bool{true, true, false, false, false}
	eff := applyPost(t, m, &State{Round: 1, CSR: csr, Heard: heard, Transmitters: []int32{1, 3}}, 5)
	if eff[3]&Jam == 0 || eff[1]&Jam != 0 {
		t.Fatalf("greedy jam picked %v, want node 3 (gain 2) over node 1 (gain 1)", eff)
	}

	// Zero-gain transmissions never cost budget: with everyone informed,
	// the greedy adversary holds fire.
	m.Reset(5)
	all := []bool{true, true, true, true, true}
	eff = applyPost(t, m, &State{Round: 1, CSR: csr, Heard: all, Transmitters: []int32{1, 3}}, 5)
	for v, e := range eff {
		if e != 0 {
			t.Fatalf("greedy jam wasted budget on zero-gain node %d", v)
		}
	}
}

func TestJamWindowAndNodes(t *testing.T) {
	csr := path5().Freeze()
	m := NewJam(JamConfig{From: 3, To: 4, Nodes: []int{2}})
	m.Reset(5)
	for round := 1; round <= 6; round++ {
		eff := applyPost(t, m, &State{Round: round, CSR: csr, Heard: make([]bool, 5), Transmitters: []int32{1, 2, 3}}, 5)
		inWindow := round >= 3 && round <= 4
		for v, e := range eff {
			wantJam := inWindow && v == 2
			if (e&Jam != 0) != wantJam {
				t.Fatalf("round %d node %d: jam=%v, want %v", round, v, e&Jam != 0, wantJam)
			}
		}
	}
}

func TestCrashOutageTiming(t *testing.T) {
	// Rate 1 in a one-round window: every node crashes at round 2 and
	// stays down for Down=3 rounds (2, 3, 4), then recovers.
	m := NewCrash(CrashConfig{Rate: 1, Down: 3, From: 2, To: 2, Lose: true, Seed: 9})
	m.Reset(3)
	for round := 1; round <= 6; round++ {
		eff := make([]Effect, 3)
		m.Apply(&State{Round: round}, eff)
		down := round >= 2 && round <= 4
		for v, e := range eff {
			if (e&Down != 0) != down {
				t.Fatalf("round %d node %d: down=%v, want %v", round, v, e&Down != 0, down)
			}
			// Wipe fires only at the crash round itself, not during the
			// outage tail.
			if wantWipe := round == 2; (e&Wipe != 0) != wantWipe {
				t.Fatalf("round %d node %d: wipe=%v, want %v", round, v, e&Wipe != 0, wantWipe)
			}
		}
	}
	// Without Lose, no Wipe.
	m = NewCrash(CrashConfig{Rate: 1, Down: 1, From: 1, To: 1})
	m.Reset(2)
	eff := make([]Effect, 2)
	m.Apply(&State{Round: 1}, eff)
	if eff[0]&Wipe != 0 {
		t.Fatal("retain-policy crash set Wipe")
	}
	// The post-decide phase is a no-op for crashes.
	eff = make([]Effect, 2)
	m.Apply(&State{Round: 1, Transmitters: []int32{0}}, eff)
	if eff[0] != 0 {
		t.Fatal("crash model acted in the post-decide phase")
	}
}

func TestDutySchedule(t *testing.T) {
	// Period 4, On 3, seed 0: everyone awake rounds 1-3, asleep round 4,
	// awake 5-7, asleep 8, …
	m := NewDutyCycle(DutyConfig{Period: 4, On: 3})
	m.Reset(4)
	for round := 1; round <= 12; round++ {
		eff := make([]Effect, 4)
		m.Apply(&State{Round: round}, eff)
		asleep := round%4 == 0
		for v, e := range eff {
			if (e&Down != 0) != asleep {
				t.Fatalf("round %d node %d: down=%v, want %v", round, v, e&Down != 0, asleep)
			}
		}
	}
	// A non-zero seed staggers phases: over one full period, each node
	// sleeps exactly Period-On rounds, but not all in the same round.
	m = NewDutyCycle(DutyConfig{Period: 4, On: 3, Seed: 11})
	const n = 64
	m.Reset(n)
	sleeps := make([]int, n)
	aligned := true
	var first []bool
	for round := 1; round <= 4; round++ {
		eff := make([]Effect, n)
		m.Apply(&State{Round: round}, eff)
		cur := make([]bool, n)
		for v, e := range eff {
			if e&Down != 0 {
				sleeps[v]++
				cur[v] = true
			}
		}
		if first == nil {
			first = cur
		}
		for v := range cur {
			if cur[v] != first[v] {
				aligned = false
			}
		}
	}
	for v, s := range sleeps {
		if s != 1 {
			t.Fatalf("node %d slept %d rounds per period, want 1", v, s)
		}
	}
	if aligned {
		t.Fatal("seeded duty cycle left all 64 phases aligned")
	}
	// On == Period disables sleeping entirely.
	m = NewDutyCycle(DutyConfig{Period: 4, On: 4})
	m.Reset(2)
	eff := make([]Effect, 2)
	m.Apply(&State{Round: 4}, eff)
	if eff[0] != 0 || eff[1] != 0 {
		t.Fatal("always-on duty cycle put a node to sleep")
	}
}

func TestChurnReplay(t *testing.T) {
	base := path5()
	m := NewChurn(base, []ChurnEvent{
		{Round: 3, Add: true, U: 0, V: 4},
		{Round: 5, U: 2, V: 3},            // remove
		{Round: 5, Add: true, U: 2, V: 3}, // …and re-add in the same round: net no-op, but a fresh freeze
		{Round: 7, U: 9, V: 1},            // out of range: skipped
		{Round: 8, Add: true, U: 1, V: 2}, // already present: no-op
	})
	m.Reset(5)
	if csr := m.Topology(1); csr != nil {
		t.Fatalf("round 1: topology changed with no due events")
	}
	csr := m.Topology(3)
	if csr == nil {
		t.Fatal("round 3: add event produced no new topology")
	}
	if csr.M() != 5 || csr.Degree(0) != 2 {
		t.Fatalf("round 3 CSR: m=%d deg(0)=%d, want 5 and 2", csr.M(), csr.Degree(0))
	}
	// Round 5's remove+re-add cancels out but still counts as change.
	csr = m.Topology(5)
	if csr == nil || csr.M() != 5 {
		t.Fatalf("round 5 CSR = %v", csr)
	}
	if m.Topology(7) != nil {
		t.Fatal("out-of-range event must not re-freeze")
	}
	if m.Topology(8) != nil {
		t.Fatal("no-op add must not re-freeze")
	}
	// The base graph is untouched throughout.
	if base.M() != 4 || base.HasEdge(0, 4) {
		t.Fatalf("churn mutated the base graph: m=%d", base.M())
	}
	// Reset rewinds the schedule.
	m.Reset(5)
	if csr := m.Topology(10); csr == nil || csr.M() != 5 {
		t.Fatal("after Reset, replaying to round 10 lost the schedule")
	}
}

func TestCompose(t *testing.T) {
	if Compose() != nil || Compose(nil, nil) != nil {
		t.Fatal("empty composition must be nil (clean)")
	}
	r := NewRate(1, 1)
	if Compose(nil, r) != r {
		t.Fatal("single-member composition must unwrap")
	}

	// Union of effects: crash (Down, pre-step) + rate 1 (Jam, post-step).
	crash := NewCrash(CrashConfig{Rate: 1, Down: 10, From: 1, To: 1})
	m := Compose(crash, NewRate(1, 1))
	m.Reset(3)
	eff := make([]Effect, 3)
	m.Apply(&State{Round: 1}, eff)
	m.Apply(&State{Round: 1, Transmitters: []int32{0, 1, 2}}, eff)
	for v, e := range eff {
		if e&Down == 0 || e&Jam == 0 {
			t.Fatalf("node %d effects = %v, want Down|Jam", v, e)
		}
	}

	// A composed churn member still steers the topology.
	base := path5()
	tm := Compose(NewRate(0.5, 1), NewChurn(base, []ChurnEvent{{Round: 2, Add: true, U: 0, V: 2}}))
	tmTop, ok := tm.(TopologyModel)
	if !ok {
		t.Fatal("composition with a churn member lost the TopologyModel face")
	}
	tm.Reset(5)
	if csr := tmTop.Topology(2); csr == nil || csr.M() != 5 {
		t.Fatal("composed churn did not surface its topology")
	}
}

func TestDropFuncAdapter(t *testing.T) {
	if DropFunc(nil) != nil {
		t.Fatal("DropFunc(nil) must be nil")
	}
	var calls [][2]int
	m := DropFunc(func(node, round int) bool {
		calls = append(calls, [2]int{node, round})
		return node == 1
	})
	m.Reset(3)
	eff := make([]Effect, 3)
	m.Apply(&State{Round: 4}, eff) // pre-step: must not consult f
	if len(calls) != 0 {
		t.Fatal("DropFunc consulted f in the pre-step phase")
	}
	m.Apply(&State{Round: 4, Transmitters: []int32{0, 1}}, eff)
	if len(calls) != 2 || calls[0] != [2]int{0, 4} || calls[1] != [2]int{1, 4} {
		t.Fatalf("DropFunc consulted f at %v", calls)
	}
	if eff[0] != 0 || eff[1]&Jam == 0 || eff[2] != 0 {
		t.Fatalf("DropFunc effects = %v", eff)
	}
}
