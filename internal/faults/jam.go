package faults

import "sort"

// JamConfig parameterizes the budgeted jamming adversary.
type JamConfig struct {
	// Budget is the total number of transmissions the adversary may jam
	// over the whole run; ≤ 0 means unlimited (bounded only by PerRound
	// and the window).
	Budget int
	// PerRound caps the jams spent in a single round; ≤ 0 means
	// unlimited.
	PerRound int
	// From and To bound the active round window, inclusive; zero means
	// unbounded on that side (From defaults to round 1).
	From, To int
	// Nodes restricts the targetable transmitters; empty means any node.
	Nodes []int
	// Greedy selects the frontier-targeting strategy: jam the
	// transmitters whose delivery would inform the most still-uninformed
	// neighbours (ties to the lower node id), and never waste budget on a
	// transmission that informs nobody new. When false the adversary is
	// oblivious: it picks among eligible transmitters by seeded hash,
	// ignoring protocol progress.
	Greedy bool
	// Seed drives the oblivious variant's selection.
	Seed int64
}

// jammer is the budgeted adversarial jamming model.
type jammer struct {
	cfg     JamConfig
	spent   int
	targets []bool // nil when every node is targetable

	// scratch for per-round candidate ranking
	cand []jamCandidate
}

type jamCandidate struct {
	node int32
	key  uint64 // ranking key: gain (greedy) or hash draw (oblivious)
}

// NewJam returns the budgeted jamming adversary described by cfg.
func NewJam(cfg JamConfig) Model {
	return &jammer{cfg: cfg}
}

func (j *jammer) Reset(n int) {
	j.spent = 0
	j.targets = nil
	if len(j.cfg.Nodes) > 0 {
		j.targets = make([]bool, n)
		for _, v := range j.cfg.Nodes {
			if v >= 0 && v < n {
				j.targets[v] = true
			}
		}
	}
}

func (j *jammer) Apply(st *State, effects []Effect) {
	if st.Transmitters == nil {
		return // jamming is decided once the round's transmitters are known
	}
	if st.Round < j.cfg.From || (j.cfg.To > 0 && st.Round > j.cfg.To) {
		return
	}
	left := -1 // unlimited
	if j.cfg.Budget > 0 {
		left = j.cfg.Budget - j.spent
		if left <= 0 {
			return
		}
	}
	quota := left
	if j.cfg.PerRound > 0 && (quota < 0 || j.cfg.PerRound < quota) {
		quota = j.cfg.PerRound
	}

	j.cand = j.cand[:0]
	for _, t := range st.Transmitters {
		if j.targets != nil && !j.targets[t] {
			continue
		}
		if j.cfg.Greedy {
			// Gain: how many uninformed listeners would this transmission
			// reach? Zero-gain transmissions are never worth budget.
			gain := uint64(0)
			for _, w := range st.CSR.Neighbors(int(t)) {
				if !st.Heard[w] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			j.cand = append(j.cand, jamCandidate{node: t, key: gain})
		} else {
			j.cand = append(j.cand, jamCandidate{node: t, key: hash64(j.cfg.Seed, int(t), st.Round)})
		}
	}
	if len(j.cand) == 0 {
		return
	}
	if quota >= 0 && len(j.cand) > quota {
		// Rank: greedy wants the highest gain first, oblivious the
		// smallest hash first; both tie-break on the node id so the
		// selection is deterministic.
		sort.Slice(j.cand, func(a, b int) bool {
			ca, cb := j.cand[a], j.cand[b]
			if ca.key != cb.key {
				if j.cfg.Greedy {
					return ca.key > cb.key
				}
				return ca.key < cb.key
			}
			return ca.node < cb.node
		})
		j.cand = j.cand[:quota]
	}
	for _, c := range j.cand {
		effects[c.node] |= Jam
		j.spent++
	}
}
