package faults

// Words is the bit-packed form of a round's effect vector: bit v of
// word v/64 set in Jam/Down/Wipe corresponds to effects[v] carrying the
// matching Effect bit. The bitset engine hands models a Words view so
// effects land directly in the engine's word-parallel state, skipping
// the per-node Effect array entirely; word slices are sized ⌈n/64⌉ and
// arrive with this round's prior phase bits preserved, exactly like the
// effects slice in Apply.
type Words struct {
	Jam, Down, Wipe []uint64
}

// SetJam sets node v's Jam bit.
func (w *Words) SetJam(v int) { w.Jam[v>>6] |= 1 << (uint(v) & 63) }

// SetDown sets node v's Down bit.
func (w *Words) SetDown(v int) { w.Down[v>>6] |= 1 << (uint(v) & 63) }

// SetWipe sets node v's Wipe bit.
func (w *Words) SetWipe(v int) { w.Wipe[v>>6] |= 1 << (uint(v) & 63) }

// WordModel is the optional vectorized fast path of a Model: ApplyWords
// is Apply with the effect vector in bit-packed form, called under the
// identical two-phase contract (pre-step with st.Transmitters == nil,
// post-decision with the transmitter list). Implementations MUST set in
// Words exactly the bits Apply would set in the effects slice — the
// engine-mode differential tests pin this — and must draw any hashes in
// the same order, so stateful models (crash outage timers) stay
// bit-identical whichever path the engine picks. Models whose effect
// computation is inherently order-sensitive over an explicit candidate
// list (the budgeted jammer) simply do not implement WordModel; the
// engine then falls back to Apply and packs the result.
type WordModel interface {
	Model
	ApplyWords(st *State, w *Words)
}

// ApplyWords implements WordModel for the historical Drop hook.
func (d dropFunc) ApplyWords(st *State, w *Words) {
	if st.Transmitters == nil {
		return
	}
	for _, t := range st.Transmitters {
		if d.f(int(t), st.Round) {
			w.SetJam(int(t))
		}
	}
}

// ApplyWords implements WordModel for the i.i.d. jamming channel.
func (r *rateModel) ApplyWords(st *State, w *Words) {
	if st.Transmitters == nil {
		return
	}
	for _, t := range st.Transmitters {
		if r.always || hash64(r.seed, int(t), st.Round) < r.bound {
			w.SetJam(int(t))
		}
	}
}

// ApplyWords implements WordModel for crash–recovery. The loop mirrors
// Apply exactly — same iteration order, same hash draws for healthy
// nodes only — so the outage timers evolve identically on both paths.
func (c *crasher) ApplyWords(st *State, w *Words) {
	if st.Transmitters != nil {
		return
	}
	r := st.Round
	inWindow := r >= c.cfg.From && (c.cfg.To <= 0 || r <= c.cfg.To)
	for v := range c.downUntil {
		if r <= c.downUntil[v] {
			w.SetDown(v)
			continue
		}
		if inWindow && hash64(c.cfg.Seed, v, r) < c.bound {
			c.downUntil[v] = r + c.cfg.Down - 1
			w.SetDown(v)
			if c.cfg.Lose {
				w.SetWipe(v)
			}
		}
	}
}

// ApplyWords implements WordModel for duty-cycling. Seed 0 aligns every
// phase, so a sleeping round fills whole words at once (the tail bits
// past n are harmless: no channel mask ever carries them).
func (d *duty) ApplyWords(st *State, w *Words) {
	if st.Transmitters != nil || d.cfg.Period < 1 || d.cfg.On >= d.cfg.Period {
		return
	}
	if d.cfg.Seed == 0 {
		if (st.Round-1)%d.cfg.Period >= d.cfg.On {
			for i := range w.Down {
				w.Down[i] = ^uint64(0)
			}
		}
		return
	}
	for v := range d.phase {
		if (st.Round-1+d.phase[v])%d.cfg.Period >= d.cfg.On {
			w.SetDown(v)
		}
	}
}

// ApplyWords implements WordModel for churn, whose Apply is a no-op (its
// whole effect is the Topology swap).
func (c *churn) ApplyWords(*State, *Words) {}

// wordComposite is the composite returned by Compose when every member
// has the vectorized path, so the composition keeps it.
type wordComposite struct{ composite }

func (c *wordComposite) ApplyWords(st *State, w *Words) {
	for _, m := range c.models {
		m.(WordModel).ApplyWords(st, w)
	}
}
