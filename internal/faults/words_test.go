// Differential tests of the vectorized WordModel path: for every model
// that implements it, ApplyWords must set exactly the bits Apply sets —
// round by round, phase by phase, with stateful models (crash timers)
// evolving identically on both paths.
package faults

import (
	"testing"

	"radiobcast/internal/graph"
)

// wordCases enumerates every WordModel constructor with configurations
// that exercise both phases and all three effect bits. The budgeted
// jammer is deliberately absent: its candidate-order sensitivity is why
// it does not implement WordModel.
func wordCases() map[string]func() Model {
	drop := func(node, round int) bool { return (node+round)%3 == 0 }
	return map[string]func() Model{
		"drop":         func() Model { return DropFunc(drop) },
		"rate":         func() Model { return NewRate(0.4, 11) },
		"rate-certain": func() Model { return NewRate(1, 11) },
		"crash-retain": func() Model { return NewCrash(CrashConfig{Rate: 0.15, Down: 3, Seed: 11}) },
		"crash-lose":   func() Model { return NewCrash(CrashConfig{Rate: 0.15, Down: 2, Lose: true, Seed: 11}) },
		"crash-window": func() Model { return NewCrash(CrashConfig{Rate: 0.3, Down: 4, From: 5, To: 9, Seed: 11}) },
		"duty-aligned": func() Model { return NewDutyCycle(DutyConfig{Period: 4, On: 2}) },
		"duty-phased":  func() Model { return NewDutyCycle(DutyConfig{Period: 5, On: 3, Seed: 11}) },
		"compose": func() Model {
			return Compose(
				NewRate(0.3, 7),
				NewCrash(CrashConfig{Rate: 0.1, Down: 2, Seed: 9}),
				NewDutyCycle(DutyConfig{Period: 3, On: 2, Seed: 4}),
			)
		},
	}
}

// packWords converts an Apply-produced effects slice to the bit-packed
// form, independently of the engine's own packer.
func packWords(effects []Effect, w *Words) {
	for v, e := range effects {
		if e&Jam != 0 {
			w.SetJam(v)
		}
		if e&Down != 0 {
			w.SetDown(v)
		}
		if e&Wipe != 0 {
			w.SetWipe(v)
		}
	}
}

// TestApplyWordsMatchesApply runs each WordModel twice over the same
// 20-round schedule — one instance through Apply, one through
// ApplyWords — and compares the packed effect vectors bit for bit. Only
// the first n bits are compared: duty's aligned fast path fills whole
// words, and tail bits past n are out of contract.
func TestApplyWordsMatchesApply(t *testing.T) {
	const n = 70 // more than one 64-bit word, with a ragged tail
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(v, v+1)
	}
	csr := g.Freeze()
	for name, mk := range wordCases() {
		t.Run(name, func(t *testing.T) {
			scalar := mk()
			vector, ok := mk().(WordModel)
			if !ok {
				t.Fatalf("%s does not implement WordModel", name)
			}
			scalar.Reset(n)
			vector.(Model).Reset(n)

			heard := make([]bool, n)
			words := (n + 63) / 64
			mask := make([]uint64, words)
			for i := range mask {
				mask[i] = ^uint64(0)
			}
			if r := uint(n % 64); r != 0 {
				mask[words-1] = (1 << r) - 1
			}
			for round := 1; round <= 20; round++ {
				// A varying transmitter set: every node whose index shares a
				// residue with the round, so jams move across words.
				var tx []int32
				for v := 0; v < n; v++ {
					if (v+round)%4 == 0 {
						tx = append(tx, int32(v))
					}
				}
				effects := make([]Effect, n)
				want := Words{Jam: make([]uint64, words), Down: make([]uint64, words), Wipe: make([]uint64, words)}
				got := Words{Jam: make([]uint64, words), Down: make([]uint64, words), Wipe: make([]uint64, words)}

				pre := State{Round: round, CSR: csr, Heard: heard}
				post := State{Round: round, CSR: csr, Heard: heard, Transmitters: tx}
				scalar.Apply(&pre, effects)
				scalar.Apply(&post, effects)
				packWords(effects, &want)
				vector.ApplyWords(&pre, &got)
				vector.ApplyWords(&post, &got)

				for i := 0; i < words; i++ {
					if (want.Jam[i]^got.Jam[i])&mask[i] != 0 ||
						(want.Down[i]^got.Down[i])&mask[i] != 0 ||
						(want.Wipe[i]^got.Wipe[i])&mask[i] != 0 {
						t.Fatalf("round %d word %d: Apply {%x %x %x} vs ApplyWords {%x %x %x}",
							round, i, want.Jam[i], want.Down[i], want.Wipe[i],
							got.Jam[i], got.Down[i], got.Wipe[i])
					}
				}
				// Advance the informed frontier so Heard-sensitive models see
				// changing state.
				for _, v := range tx {
					heard[v] = true
				}
			}
		})
	}
}

// TestComposeKeepsWordPath pins the Compose promotion rule: a composite
// of WordModels is itself a WordModel, and mixing in one scalar-only
// model demotes the whole composition to the scalar path.
func TestComposeKeepsWordPath(t *testing.T) {
	allWords := Compose(NewRate(0.5, 1), NewDutyCycle(DutyConfig{Period: 3, On: 2}))
	if _, ok := allWords.(WordModel); !ok {
		t.Fatal("composite of WordModels lost the vectorized path")
	}
	mixed := Compose(NewRate(0.5, 1), NewJam(JamConfig{Budget: 4, Seed: 1}))
	if _, ok := mixed.(WordModel); ok {
		t.Fatal("composite containing the budgeted jammer must not claim WordModel")
	}
}
