package gjp

import (
	"fmt"
	"sort"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// exhaustiveMax bounds the per-stage exhaustive subset enumeration: with
// at most this many newly informed nodes, every bit assignment for the
// stage is scored; beyond it, a fixed family of heuristic assignments
// competes instead.
const exhaustiveMax = 10

// branchMax bounds the backtracking fanout per stage (the top-scoring
// candidates are kept, the rest pruned).
const branchMax = 4

// DefaultBudget is the default bound on stage-candidate evaluations per
// Build; QuickBudget is the reduced bound for quick mode.
const (
	DefaultBudget = 4096
	QuickBudget   = 256
)

// Build computes a 1-bit labeling under which the echo-controlled
// protocol (see Node) completes broadcast from source, by exact
// simulation of the stage dynamics with backtracking.
//
// The dynamics are deterministic given the bits, so construction walks
// data rounds d = 1, 3, 5, …: the transmitter set T of round d newly
// informs NEW (the uninformed nodes with exactly one neighbor in T); the
// builder then chooses which subset S ⊆ NEW gets bit 1 (forwarding µ at
// d+2) — the rest get bit 0 and echo at d+1, reviving every t ∈ T that
// hears a lone echo — and recurses on the next transmitter set. A stage
// whose every candidate informs nobody is a dead end and backtracks;
// budget bounds the total candidate evaluations.
//
// Like the scheme it adapts, 1-bit broadcast is not universal: Build
// returns an error when no assignment within budget sustains the wave.
// Every labeling returned has been verified by running the real protocol
// on the engine.
func Build(g *graph.Graph, source int, budget int) ([]core.Label, error) {
	n := g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("gjp: source %d out of range [0,%d)", source, n)
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	b := &builder{g: g, n: n, bits: make([]int8, n), informed: make([]bool, n), budget: budget}
	for i := range b.bits {
		b.bits[i] = -1
	}
	b.informed[source] = true
	b.ninf = 1
	if !b.search([]int{source}) {
		return nil, fmt.Errorf("gjp: no 1-bit labeling found for %v from source %d (echo-controlled broadcast is not universal)", g, source)
	}
	labels := make([]core.Label, n)
	for v := range labels {
		labels[v] = core.MakeLabel(b.bits[v] == 1)
	}
	if err := verify(g, labels, source); err != nil {
		return nil, err
	}
	return labels, nil
}

type builder struct {
	g        *graph.Graph
	n        int
	bits     []int8 // -1 = unassigned
	informed []bool
	ninf     int
	budget   int
}

// search advances one stage: T is the transmitter set of the current
// data round. It returns true once every node is informed, assigning
// bits along the way (and unassigning them on backtrack).
func (b *builder) search(T []int) bool {
	if b.ninf == b.n {
		return true
	}
	if len(T) == 0 {
		return false
	}
	newly := b.newlyInformed(T)
	if len(newly) == 0 {
		return false
	}
	for _, v := range newly {
		b.informed[v] = true
	}
	b.ninf += len(newly)
	if b.ninf == b.n {
		// The wave just finished; the last stage's bits are free.
		for _, v := range newly {
			b.bits[v] = 0
		}
		return true
	}

	cands := b.candidates(T, newly)
	for _, c := range cands {
		if b.budget <= 0 {
			break
		}
		b.budget--
		for i, v := range newly {
			if c.sel[i] {
				b.bits[v] = 1
			} else {
				b.bits[v] = 0
			}
		}
		if b.search(c.next) {
			return true
		}
		for _, v := range newly {
			b.bits[v] = -1
		}
	}

	for _, v := range newly {
		b.informed[v] = false
	}
	b.ninf -= len(newly)
	return false
}

// newlyInformed returns the uninformed nodes with exactly one neighbor
// in T, in ascending node order.
func (b *builder) newlyInformed(T []int) []int {
	count := map[int]int{}
	for _, t := range T {
		for _, w := range b.g.Neighbors(t) {
			if !b.informed[w] {
				count[w]++
			}
		}
	}
	var out []int
	for w, c := range count {
		if c == 1 {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// candidate is one scored bit assignment for a stage: sel[i] marks the
// stage's i-th newly informed node as a bit-1 forwarder, next is the
// resulting next transmitter set, and score how many nodes that set
// newly informs.
type candidate struct {
	sel   []bool
	next  []int
	score int
}

// candidates enumerates and scores the stage's bit assignments, best
// first (dead assignments — score 0 — are dropped: with uninformed
// nodes remaining they can only stall the wave). Enumeration is
// exhaustive for small stages, heuristic beyond: all-forward, all-echo,
// and a greedy unique-cover of the next frontier.
func (b *builder) candidates(T, newly []int) []candidate {
	k := len(newly)
	var sels [][]bool
	if k <= exhaustiveMax {
		for m := 0; m < 1<<uint(k); m++ {
			sel := make([]bool, k)
			for i := 0; i < k; i++ {
				sel[i] = m&(1<<uint(i)) != 0
			}
			sels = append(sels, sel)
		}
	} else {
		all := make([]bool, k)
		for i := range all {
			all[i] = true
		}
		sels = append(sels, all, make([]bool, k), b.coverSel(newly))
	}
	seen := map[string]bool{}
	var out []candidate
	for _, sel := range sels {
		key := selKey(sel)
		if seen[key] {
			continue
		}
		seen[key] = true
		next, score := b.step(T, newly, sel)
		if score == 0 {
			continue
		}
		out = append(out, candidate{sel: sel, next: next, score: score})
	}
	// Best score first; among equals, fewer forwarders (sparser
	// selections leave more echoers to revive stalled transmitters
	// later); then enumeration order for determinism.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return ones(out[i].sel) < ones(out[j].sel)
	})
	if len(out) > branchMax {
		out = out[:branchMax]
	}
	return out
}

func selKey(sel []bool) string {
	b := make([]byte, len(sel))
	for i, s := range sel {
		if s {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func ones(sel []bool) int {
	c := 0
	for _, s := range sel {
		if s {
			c++
		}
	}
	return c
}

// coverSel greedily marks, in node order, each newly informed node that
// still has an uncovered uninformed neighbor — a cheap approximation of
// a collision-minimizing forwarder set.
func (b *builder) coverSel(newly []int) []bool {
	sel := make([]bool, len(newly))
	covered := map[int]bool{}
	for i, v := range newly {
		for _, w := range b.g.Neighbors(v) {
			if b.informed[w] || covered[w] {
				continue
			}
			covered[w] = true
			sel[i] = true
		}
	}
	return sel
}

// step simulates one stage under the assignment sel: the echo round
// (bit-0 newly informed echo; transmitters hearing a lone echo continue)
// and the next data round (bit-1 newly informed plus continuers
// transmit). It returns the next transmitter set and how many nodes it
// newly informs.
func (b *builder) step(T, newly []int, sel []bool) (next []int, score int) {
	inNew := map[int]bool{}
	echo := map[int]bool{}
	for i, v := range newly {
		inNew[v] = true
		if sel[i] {
			next = append(next, v)
		} else {
			echo[v] = true
		}
	}
	for _, t := range T {
		echoes := 0
		for _, w := range b.g.Neighbors(t) {
			if echo[w] {
				echoes++
			}
		}
		if echoes == 1 {
			next = append(next, t)
		}
	}
	sort.Ints(next)
	count := map[int]int{}
	for _, t := range next {
		for _, w := range b.g.Neighbors(t) {
			if !b.informed[w] && !inNew[w] {
				count[w]++
			}
		}
	}
	for _, c := range count {
		if c == 1 {
			score++
		}
	}
	return next, score
}

// verify runs the real protocol over the constructed labeling and
// confirms complete broadcast — the constructive simulation and the
// engine must agree, so a failure here is a bug, not a search miss.
func verify(g *graph.Graph, labels []core.Label, source int) error {
	mu := "µ"
	ps := NewProtocols(labels, source, mu)
	radio.Run(g, ps, radio.Options{MaxRounds: MaxRounds(g.N()), StopAfterSilent: 3})
	for v, p := range ps {
		if ok, _ := p.(*Node).Informed(); !ok {
			return fmt.Errorf("gjp: internal error: constructed labeling leaves node %d uninformed", v)
		}
	}
	return nil
}
