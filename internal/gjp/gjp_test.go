package gjp

import (
	"testing"

	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// complete runs the constructed labeling through the real engine and
// reports whether every node ends up informed.
func complete(t *testing.T, g *graph.Graph, labels []core.Label, source int) bool {
	t.Helper()
	mu := "µ"
	ps := NewProtocols(labels, source, mu)
	radio.Run(g, ps, radio.Options{MaxRounds: MaxRounds(g.N()), StopAfterSilent: 3})
	for _, p := range ps {
		ok, _ := p.(*Node).Informed()
		if !ok {
			return false
		}
		if got := p.(*Node).Message(); got != mu {
			t.Fatalf("informed node holds %q, want %q", got, mu)
		}
	}
	return true
}

func TestBuildFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-12", graph.Path(12)},
		{"path-2", graph.Path(2)},
		{"cycle-9", graph.Cycle(9)},
		{"cycle-3", graph.Cycle(3)},
		{"star-10", graph.Star(10)},
		{"wheel-9", graph.Wheel(9)},
		{"complete-8", graph.Complete(8)},
		{"grid-4x4", graph.Grid(4, 4)},
		{"grid-6x6", graph.Grid(6, 6)},
		{"torus-4x4", graph.Torus(4, 4)},
		{"btree-15", graph.BinaryTree(15)},
		{"hypercube-4", graph.Hypercube(4)},
		{"caterpillar", graph.Caterpillar(6, 2)},
		{"lollipop", graph.Lollipop(4, 12)},
		{"barbell", graph.Barbell(4, 12)},
	}
	for _, tc := range cases {
		labels, err := Build(tc.g, 0, DefaultBudget)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(labels) != tc.g.N() {
			t.Errorf("%s: %d labels for %d nodes", tc.name, len(labels), tc.g.N())
			continue
		}
		for v, l := range labels {
			if l.Len() > 1 {
				t.Errorf("%s: node %d has %d-bit label, scheme is 1-bit", tc.name, v, l.Len())
			}
		}
		if !complete(t, tc.g, labels, 0) {
			t.Errorf("%s: constructed labeling does not complete broadcast", tc.name)
		}
	}
}

func TestBuildAllSourcesSmall(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(9), graph.Cycle(8), graph.Grid(3, 3)} {
		for src := 0; src < g.N(); src++ {
			labels, err := Build(g, src, DefaultBudget)
			if err != nil {
				t.Fatalf("n=%d src=%d: %v", g.N(), src, err)
			}
			if !complete(t, g, labels, src) {
				t.Fatalf("n=%d src=%d: incomplete broadcast", g.N(), src)
			}
		}
	}
}

// TestBuildDeterministic: two builds of the same instance must agree
// bit for bit — the search has no hidden randomness, so labelings are
// reproducible across processes (the store contract depends on this).
func TestBuildDeterministic(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Grid(5, 5), graph.Cycle(17), graph.BinaryTree(31)} {
		a, err := Build(g, 0, DefaultBudget)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(g, 0, DefaultBudget)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("n=%d node %d: %q vs %q across builds", g.N(), v, a[v], b[v])
			}
		}
	}
}

// TestBuildFigure1Fails pins the scheme's known limit: the paper's
// Figure 1 graph defeats every 1-bit echo assignment, and Build must
// report that as an error instead of returning a broken labeling.
func TestBuildFigure1Fails(t *testing.T) {
	if _, err := Build(graph.Figure1(), 0, DefaultBudget); err == nil {
		t.Fatal("Build succeeded on Figure 1; expected the documented failure")
	}
}

func TestBuildQuickBudget(t *testing.T) {
	g := graph.Grid(4, 4)
	labels, err := Build(g, 0, QuickBudget)
	if err != nil {
		t.Fatalf("quick budget: %v", err)
	}
	if !complete(t, g, labels, 0) {
		t.Fatal("quick-budget labeling does not complete broadcast")
	}
}

// TestProtocolTiming exercises the node state machine directly on a
// 3-path with the middle node labeled 1: source sends in round 1, the
// bit-1 middle node forwards µ at informedAt+2.
func TestProtocolTiming(t *testing.T) {
	mu := "µ"
	src := NewNode(core.MakeLabel(false), &mu)
	mid := NewNode(core.MakeLabel(true), nil)
	end := NewNode(core.MakeLabel(false), nil)

	// Round 1: source transmits; receptions are delivered at the NEXT
	// round's Step (the engine hands round r−1's airwaves to round r).
	a := src.Step(nil)
	if !a.Transmit || a.Msg.Kind != radio.KindData || a.Msg.Payload != mu {
		t.Fatalf("source round 1: %+v", a)
	}
	mid.Step(nil)
	end.Step(nil)

	// Round 2: middle processes the µ it heard in round 1 (informedAt=1);
	// it is bit-1, so no echo and no transmission yet.
	src.Step(nil)
	if a := mid.Step(&radio.Message{Kind: radio.KindData, Payload: mu}); a.Transmit {
		t.Fatalf("bit-1 node acted on reception round: %+v", a)
	}
	end.Step(nil)

	// Round 3 (= informedAt+2): middle forwards µ.
	src.Step(nil)
	if a := mid.Step(nil); !a.Transmit || a.Msg.Kind != radio.KindData || a.Msg.Payload != mu {
		t.Fatalf("middle round 3: %+v", a)
	}
	end.Step(nil)

	// Round 4: end processes the forwarded µ — informed as of round 3.
	end.Step(&radio.Message{Kind: radio.KindData, Payload: mu})
	if ok, at := end.Informed(); !ok || at != 3 {
		t.Fatalf("end Informed = %v at %d, want round 3", ok, at)
	}
}

// TestProtocolEchoKeepsWaveAlive: a bit-0 node answers with a stay echo
// at informedAt+1, and the transmitter that hears the lone echo
// retransmits µ one round later.
func TestProtocolEchoKeepsWaveAlive(t *testing.T) {
	mu := "µ"
	src := NewNode(core.MakeLabel(false), &mu)
	zero := NewNode(core.MakeLabel(false), nil)

	src.Step(nil) // round 1: transmit µ
	zero.Step(nil)

	// Round 2: the bit-0 node processes the reception (informedAt=1) and
	// echoes in the same step.
	src.Step(nil)
	a := zero.Step(&radio.Message{Kind: radio.KindData, Payload: mu})
	if !a.Transmit || a.Msg.Kind != radio.KindStay {
		t.Fatalf("bit-0 node round 2: %+v", a)
	}

	// Round 3: the source processes the lone echo (echoAt=2) and, having
	// last sent µ in round 1 (= r−2), retransmits to keep the wave alive.
	if a := src.Step(&radio.Message{Kind: radio.KindStay}); !a.Transmit || a.Msg.Kind != radio.KindData || a.Msg.Payload != mu {
		t.Fatalf("source after lone echo: %+v", a)
	}
}

func TestMaxRounds(t *testing.T) {
	if got := MaxRounds(10); got != 24 {
		t.Fatalf("MaxRounds(10) = %d, want 24", got)
	}
}
