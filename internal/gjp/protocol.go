// Package gjp implements a 1-bit labeling scheme in the style of
// Gańczorz–Jurdziński–Pelc (arXiv:2410.07382), who close the paper's
// open question on the optimal label length for deterministic radio
// broadcast. Our adaptation keeps their central mechanism — a single
// label bit steering an echo-controlled broadcast wave — on top of this
// repo's engine: a newly informed bit-1 node retransmits µ two rounds
// after first hearing it, a newly informed bit-0 node instead sends a
// constant-size "stay" echo one round after, and a transmitter that
// hears a *collision-free* echo retransmits µ, keeping the wave alive
// through regions where no bit-1 node was newly informed. The labeling
// is found constructively by exact simulation with backtracking (see
// Build); like the paper's scheme it is not universal — Build fails on
// graphs where no 1-bit assignment sustains the wave — and every
// labeling returned is verified by running the real protocol.
package gjp

import (
	"radiobcast/internal/core"
	"radiobcast/internal/radio"
)

// Node is the per-node protocol: decisions depend only on the node's
// 1-bit label and the rounds (relative to its own history) in which it
// received µ or the echo. The timing mirrors Algorithm B's skeleton:
//
//	r = informedAt+1: a bit-0 node sends the "stay" echo
//	r = informedAt+2: a bit-1 node retransmits µ
//	r = lastDataTx+2: any transmitter that heard a lone echo at
//	                  lastDataTx+1 retransmits µ (wave continuation)
//
// Construct with NewNode; the zero value is not usable.
type Node struct {
	one      bool // the label bit
	isSource bool

	round      int
	msg        string
	haveMsg    bool
	everActive bool
	informedAt int // round of first µ reception (−1 for the source / never)
	lastDataTx int // last round this node transmitted µ (−1 = never)
	echoAt     int // round of the most recent echo reception (−1 = never)
}

// NewNode returns node state for the echo-controlled protocol. A node is
// the source iff sourceMsg is non-nil; label is its 1-bit label.
func NewNode(label core.Label, sourceMsg *string) *Node {
	n := &Node{one: label.Bit(0), informedAt: -1, lastDataTx: -1, echoAt: -1}
	if sourceMsg != nil {
		n.isSource = true
		n.haveMsg = true
		n.msg = *sourceMsg
	}
	return n
}

// Informed reports whether the node holds µ, and the round it first
// received it (0 for the source).
func (n *Node) Informed() (bool, int) {
	if n.isSource {
		return true, 0
	}
	if n.informedAt > 0 {
		return true, n.informedAt
	}
	return false, 0
}

// Message returns the node's current sourcemsg ("" if uninformed).
func (n *Node) Message() string { return n.msg }

// Step implements radio.Protocol.
func (n *Node) Step(rcv *radio.Message) radio.Action {
	n.round++
	r := n.round

	if rcv != nil {
		n.everActive = true
		switch rcv.Kind {
		case radio.KindData:
			if !n.haveMsg {
				n.haveMsg = true
				n.msg = rcv.Payload
				n.informedAt = r - 1
			}
		case radio.KindStay:
			n.echoAt = r - 1
		}
	}

	switch {
	case !n.everActive && n.haveMsg:
		// The source transmits µ in its first round.
		n.everActive = true
		n.lastDataTx = r
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: n.msg})

	case !n.haveMsg:
		return radio.Listen

	case n.informedAt > 0 && n.informedAt == r-1 && !n.one:
		// Newly informed bit-0 node: acknowledge with the echo (this is
		// the step that processed the µ reception itself).
		return radio.Send(radio.Message{Kind: radio.KindStay})

	case n.informedAt > 0 && n.informedAt == r-2 && n.one:
		// Newly informed bit-1 node: forward µ.
		n.lastDataTx = r
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: n.msg})

	case n.lastDataTx > 0 && n.lastDataTx == r-2 && n.echoAt == r-1:
		// Heard a lone echo after transmitting: the wave stalled past us,
		// keep it alive.
		n.lastDataTx = r
		return radio.Send(radio.Message{Kind: radio.KindData, Payload: n.msg})

	default:
		return radio.Listen
	}
}

// NextWake implements radio.Waker. Like B, the protocol is reactive: a
// node acts in the two rounds after its first µ reception (the echo at
// informedAt+1, the bit-1 forward at informedAt+2); the continuation
// retransmission is triggered by an echo heard in the previous round,
// which forces a step by itself.
func (n *Node) NextWake() int {
	if n.informedAt > 0 {
		if w := n.informedAt + 1; w > n.round {
			return w
		}
		if w := n.informedAt + 2; w > n.round {
			return w
		}
	}
	return radio.NeverWake
}

// Skip implements radio.Waker.
func (n *Node) Skip(rounds int) { n.round += rounds }

// NewProtocols builds one protocol per node, carved from one bulk
// allocation.
func NewProtocols(labels []core.Label, source int, mu string) []radio.Protocol {
	nodes := make([]Node, len(labels))
	ps := make([]radio.Protocol, len(labels))
	for v := range labels {
		var src *string
		if v == source {
			src = &mu
		}
		nodes[v] = *NewNode(labels[v], src)
		ps[v] = &nodes[v]
	}
	return ps
}

// MaxRounds bounds a run: the wave informs at least one node every two
// rounds while it is alive, plus slack for the opening and the final
// echo/forward pair.
func MaxRounds(n int) int { return 2*n + 4 }
