package graph

import "math/bits"

// BitCSR is the word-parallel companion of a CSR: each node's sorted
// adjacency list is regrouped into neighborhood slabs — (word, mask)
// pairs where word indexes a 64-node block of the node space and mask
// has one bit set per neighbour inside that block. A transmitter's
// neighbourhood is then ORed into per-word channel accumulators in
// O(slabs) word operations instead of O(degree) per-node writes, which
// is what lets the bitset engine resolve collisions without touching
// individual listeners (see internal/radio).
//
// Consecutive neighbours sharing a 64-block share one slab, so for the
// sparse families (paths, grids, trees, sparse G(n,p)) the slab count is
// close to the degree, while for locally dense graphs (cliques, dense
// neighbourhoods) it approaches degree/64.
type BitCSR struct {
	// Off has n+1 entries; node v's slabs are Words[Off[v]:Off[v+1]]
	// paired with Masks[Off[v]:Off[v+1]].
	Off []int32
	// Words holds the 64-node block index of each slab, strictly
	// ascending within a node.
	Words []int32
	// Masks holds the neighbour bits of each slab.
	Masks []uint64
}

// Slabs returns node v's neighborhood slabs as parallel word/mask views.
// The slices are owned by the BitCSR and must not be modified.
func (b *BitCSR) Slabs(v int) ([]int32, []uint64) {
	lo, hi := b.Off[v], b.Off[v+1]
	return b.Words[lo:hi], b.Masks[lo:hi]
}

// FirstIn returns the smallest neighbour of v whose bit is set in words
// (the same 64-per-word layout as nodeset and the engine state), or -1 if
// no neighbour is in the set. Slabs are stored in ascending word order and
// TrailingZeros finds the lowest bit, so the scan is word-parallel yet
// returns exactly the ascending-order answer a per-neighbour loop would —
// this is what the stay-sender pick of §2.2 and the stage kernels use to
// stay bit-identical to the scalar construction.
func (b *BitCSR) FirstIn(v int, words []uint64) int {
	lo, hi := b.Off[v], b.Off[v+1]
	for k := lo; k < hi; k++ {
		wi := b.Words[k]
		if x := b.Masks[k] & words[wi]; x != 0 {
			return int(wi)<<6 | bits.TrailingZeros64(x)
		}
	}
	return -1
}

// CountIn returns the number of neighbours of v whose bit is set in words
// — one popcount per slab instead of a membership test per neighbour.
func (b *BitCSR) CountIn(v int, words []uint64) int {
	lo, hi := b.Off[v], b.Off[v+1]
	c := 0
	for k := lo; k < hi; k++ {
		c += bits.OnesCount64(b.Masks[k] & words[b.Words[k]])
	}
	return c
}

// Bits returns the slab form of the CSR, building it on first use and
// caching it on the CSR. Unlike Freeze, the cache is safe for concurrent
// use: a frozen graph shared across goroutines (the sweep pool, the
// serving daemon) may have the slab form built lazily from inside
// concurrent runs. Two racing builders do redundant work; both end up
// with the same immutable winner.
func (c *CSR) Bits() *BitCSR {
	if b := c.bits.Load(); b != nil {
		return b
	}
	n := c.N()
	b := &BitCSR{Off: make([]int32, n+1)}
	// First pass: count slabs so Words/Masks allocate exactly once.
	slabs := 0
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range c.Neighbors(v) {
			if blk := w >> 6; blk != prev {
				slabs++
				prev = blk
			}
		}
	}
	b.Words = make([]int32, 0, slabs)
	b.Masks = make([]uint64, 0, slabs)
	for v := 0; v < n; v++ {
		b.Off[v] = int32(len(b.Words))
		prev := int32(-1)
		for _, w := range c.Neighbors(v) {
			blk := w >> 6
			bit := uint64(1) << (uint(w) & 63)
			if blk == prev {
				b.Masks[len(b.Masks)-1] |= bit
			} else {
				b.Words = append(b.Words, blk)
				b.Masks = append(b.Masks, bit)
				prev = blk
			}
		}
	}
	b.Off[n] = int32(len(b.Words))
	if !c.bits.CompareAndSwap(nil, b) {
		return c.bits.Load() // a racing builder won; adopt its (identical) result
	}
	return b
}
