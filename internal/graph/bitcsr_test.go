package graph

import "testing"

func TestBitCSRFirstIn(t *testing.T) {
	g := Path(200) // neighbours of v are v−1 and v+1
	bcsr := g.Freeze().Bits()
	words := make([]uint64, (200+63)/64)
	set := func(v int) { words[v>>6] |= 1 << (uint(v) & 63) }

	if got := bcsr.FirstIn(100, words); got != -1 {
		t.Fatalf("FirstIn over empty set = %d, want -1", got)
	}
	set(101)
	if got := bcsr.FirstIn(100, words); got != 101 {
		t.Fatalf("FirstIn = %d, want 101", got)
	}
	set(99) // smaller neighbour wins regardless of insertion order
	if got := bcsr.FirstIn(100, words); got != 99 {
		t.Fatalf("FirstIn = %d, want 99", got)
	}
	set(100) // v's own bit is irrelevant — only neighbours count
	if got := bcsr.FirstIn(100, words); got != 99 {
		t.Fatalf("FirstIn = %d, want 99 (self bit must not count)", got)
	}
}

func TestBitCSRCountIn(t *testing.T) {
	g := Complete(70)
	bcsr := g.Freeze().Bits()
	words := make([]uint64, 2)
	for _, v := range []int{0, 5, 64, 69} {
		words[v>>6] |= 1 << (uint(v) & 63)
	}
	// Node 5 is adjacent to all other nodes; 3 of the 4 set bits are
	// neighbours (its own bit is not an edge in a loop-free graph).
	if got := bcsr.CountIn(5, words); got != 3 {
		t.Fatalf("CountIn = %d, want 3", got)
	}
	if got := bcsr.CountIn(1, words); got != 4 {
		t.Fatalf("CountIn = %d, want 4", got)
	}
}
