package graph

import "sync/atomic"

// CSR is the frozen compressed-sparse-row form of a Graph: the adjacency
// of node v is Targets[Offsets[v]:Offsets[v+1]], in ascending order. The
// two flat int32 arrays replace the pointer-chased [][]int adjacency on
// every hot path (the radio engine's channel resolution, the §2.1 stage
// construction, dominating-set pruning, the centralized scheduler), so a
// run touches two contiguous allocations instead of n+1 and the per-node
// indirection disappears.
//
// A CSR is immutable. Obtain one with Graph.Freeze.
type CSR struct {
	// Offsets has n+1 entries; node v's adjacency starts at Offsets[v].
	Offsets []int32
	// Targets concatenates all adjacency lists (2m entries).
	Targets []int32

	// bits is the lazily built slab form (see Bits); FreezeInto
	// invalidates it when the CSR is rebuilt in place. Unlike the Freeze
	// cache it is atomic: pre-frozen graphs are routinely shared across
	// goroutines (sweep pools, the serving daemon), and the bitset engine
	// builds the slab form lazily inside those concurrent runs.
	bits atomic.Pointer[BitCSR]
}

// Freeze returns the CSR form of g, building it on first use and caching
// it until the next AddEdge. Freezing is idempotent and cheap after the
// first call, so callers on hot paths just call Freeze every time.
//
// The cache write is not synchronised: when a graph is shared across
// goroutines (the Sweep worker pool, parallel labelings), call Freeze once
// before handing the graph out; afterwards all uses are read-only.
func (g *Graph) Freeze() *CSR {
	if g.csr != nil {
		return g.csr
	}
	offsets := make([]int32, g.n+1)
	targets := make([]int32, 0, 2*g.m)
	for v := 0; v < g.n; v++ {
		offsets[v] = int32(len(targets))
		for _, w := range g.adj[v] {
			targets = append(targets, int32(w))
		}
	}
	offsets[g.n] = int32(len(targets))
	g.csr = &CSR{Offsets: offsets, Targets: targets}
	return g.csr
}

// FreezeInto rebuilds dst as the CSR form of g, reusing dst's arrays when
// they are large enough. It is the incremental-re-freeze primitive for
// callers that mutate a graph mid-run (topology churn) and want a fresh
// snapshot every few rounds without an allocation per rebuild. Unlike
// Freeze it neither reads nor populates the graph's CSR cache: dst is
// owned by the caller, and later graph mutations do not invalidate it.
func (g *Graph) FreezeInto(dst *CSR) {
	dst.bits.Store(nil) // the slab cache describes the old topology
	if cap(dst.Offsets) < g.n+1 {
		dst.Offsets = make([]int32, g.n+1)
	}
	dst.Offsets = dst.Offsets[:g.n+1]
	if cap(dst.Targets) < 2*g.m {
		dst.Targets = make([]int32, 0, 2*g.m)
	}
	dst.Targets = dst.Targets[:0]
	for v := 0; v < g.n; v++ {
		dst.Offsets[v] = int32(len(dst.Targets))
		for _, w := range g.adj[v] {
			dst.Targets = append(dst.Targets, int32(w))
		}
	}
	dst.Offsets[g.n] = int32(len(dst.Targets))
}

// N returns the number of nodes.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// M returns the number of edges.
func (c *CSR) M() int { return len(c.Targets) / 2 }

// Neighbors returns v's adjacency in ascending order as a sub-slice of
// Targets. The slice is owned by the CSR and must not be modified.
func (c *CSR) Neighbors(v int) []int32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}
