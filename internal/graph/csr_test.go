package graph

import (
	"reflect"
	"testing"
)

func TestFreezeMatchesAdjacency(t *testing.T) {
	for _, g := range []*Graph{
		New(0), New(1), Path(7), Cycle(9), Grid(4, 4), Star(6),
		GNPConnected(40, 0.15, 3),
	} {
		csr := g.Freeze()
		if csr.N() != g.N() || csr.M() != g.M() {
			t.Fatalf("%v: CSR has n=%d m=%d", g, csr.N(), csr.M())
		}
		for v := 0; v < g.N(); v++ {
			want := g.Neighbors(v)
			got := csr.Neighbors(v)
			if len(got) != len(want) || csr.Degree(v) != g.Degree(v) {
				t.Fatalf("%v node %d: CSR degree %d, graph degree %d", g, v, len(got), len(want))
			}
			for i, w := range got {
				if int(w) != want[i] {
					t.Fatalf("%v node %d: CSR neighbours %v, want %v", g, v, got, want)
				}
			}
		}
	}
}

func TestFreezeCachedAndInvalidated(t *testing.T) {
	g := Path(5)
	c1 := g.Freeze()
	if c2 := g.Freeze(); c2 != c1 {
		t.Fatal("Freeze rebuilt the CSR without a mutation")
	}
	g.AddEdge(0, 4)
	c3 := g.Freeze()
	if c3 == c1 {
		t.Fatal("Freeze returned a stale CSR after AddEdge")
	}
	if got := c3.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("refrozen neighbours of 0 = %v, want [1 4]", got)
	}
	// Re-adding an existing edge is a no-op and must keep the cache.
	c4 := g.Freeze()
	g.AddEdge(0, 4)
	if g.Freeze() != c4 {
		t.Fatal("no-op AddEdge invalidated the CSR cache")
	}
}

func TestFreezeOffsetsShape(t *testing.T) {
	g := Grid(3, 3)
	csr := g.Freeze()
	if len(csr.Offsets) != g.N()+1 {
		t.Fatalf("offsets length %d, want %d", len(csr.Offsets), g.N()+1)
	}
	if int(csr.Offsets[g.N()]) != 2*g.M() || len(csr.Targets) != 2*g.M() {
		t.Fatalf("targets length %d, final offset %d, want %d", len(csr.Targets), csr.Offsets[g.N()], 2*g.M())
	}
	if !reflect.DeepEqual(g.Freeze(), csr) {
		t.Fatal("cached CSR differs")
	}
}
