package graph

// Figure1 returns the 13-node reconstruction of the paper's Figure 1.
//
// The arXiv text rendering of the figure is corrupted (the 2-D drawing
// collapsed into interleaved token rows and the printed reception sets are
// mutually inconsistent — see DESIGN.md §2). This reconstruction was derived
// from the printed transmit sets and label rows; under the default λ
// construction (ascending prune order) it reproduces the figure exactly:
//
//	label multiset:  5×"10", 2×"11", 1×"01", 5×"00"
//	transmit rounds: {1},{3},{3,5},{3,5,7},{5},{4,5},{4,5},{6},∅,∅,∅,∅,∅
//	broadcast completes in round 7 = 2ℓ−3 with ℓ = 5 stages
//
// Node roles (ids fixed so the default construction reproduces the figure):
//
//	0  source s                             label 10, transmits {1}
//	1  first-ring node A (DOM_2, pruned from DOM_3)   10, {3}
//	2  first-ring node C (DOM_2 ∩ DOM_3)              10, {3,5}
//	3  first-ring node B (DOM_2 ∩ DOM_3 ∩ DOM_4)      10, {3,5,7}
//	4  E = A's private frontier node (DOM_3)          10, {5}
//	5  D = B's private, stay-sender for B             11, {4,5}
//	6  F = C's private, stay-sender for C             11, {4,5}
//	7  G = stay-sender keeping B in DOM_4             01, {6}
//	8  K — informed round 5 via C                     00
//	9,10,11 — privates of E, D, F, informed round 5   00
//	12 P — collision node, informed last (round 7)    00
func Figure1() *Graph {
	g := New(13)
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, // source to first ring A, C, B
		{1, 2},         // A–C: makes A collide in round 5
		{1, 4},         // A–E (A's private)
		{3, 5},         // B–D (B's private / stay sender)
		{2, 6},         // C–F (C's private / stay sender)
		{1, 7}, {3, 7}, // G adjacent to A and B: collision in round 3
		{1, 8}, {2, 8}, // K adjacent to A and C: collision in round 3
		{4, 9},           // E's private at stage 3
		{5, 10},          // D's private at stage 3
		{6, 11},          // F's private at stage 3
		{3, 12}, {2, 12}, // P adjacent to B and C: informed last
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Figure1Source is the designated source node of the Figure 1 graph.
const Figure1Source = 0

// Figure1Labels is the expected λ labeling of the Figure 1 graph
// ("x1x2" strings), used as a golden value in tests.
var Figure1Labels = []string{
	"10", "10", "10", "10", "10", "11", "11", "01", "00", "00", "00", "00", "00",
}

// Figure1Transmits is the expected per-node transmit schedule of algorithm B
// on the Figure 1 graph (golden value; matches the paper's printed sets).
var Figure1Transmits = [][]int{
	{1}, {3}, {3, 5}, {3, 5, 7}, {5}, {4, 5}, {4, 5}, {6}, {}, {}, {}, {}, {},
}

// Figure1InformedRounds is the expected round in which each node first
// receives the source message (0 for the source itself).
var Figure1InformedRounds = []int{0, 1, 1, 1, 3, 3, 3, 5, 5, 5, 5, 5, 7}
