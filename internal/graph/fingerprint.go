package graph

// Fingerprint returns a 64-bit structural hash of the graph: two graphs
// with the same node count and the same edge set (over the same node
// numbering) have the same fingerprint. It is the cache key of the
// facade's labeling cache — a labeling computed for one *Graph serves any
// structurally identical one — and is computed over the frozen CSR form
// (FNV-1a over n and the flattened adjacency), then cached until the next
// AddEdge.
//
// Like Freeze, the cache write is not synchronised: when a graph is
// shared across goroutines, call Fingerprint (or Freeze) once before
// handing it out.
func (g *Graph) Fingerprint() uint64 {
	if g.fpValid {
		return g.fp
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	csr := g.Freeze()
	mix(uint64(g.n))
	// Offsets are determined by Targets plus the per-node degrees; hashing
	// both arrays pins the structure completely.
	for _, o := range csr.Offsets {
		mix(uint64(uint32(o)))
	}
	for _, t := range csr.Targets {
		mix(uint64(uint32(t)))
	}
	g.fp = h
	g.fpValid = true
	return h
}
