package graph

import "testing"

func TestFingerprintStructural(t *testing.T) {
	a, b := Grid(4, 4), Grid(4, 4)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("structurally identical graphs have different fingerprints")
	}
	if Path(16).Fingerprint() == Grid(4, 4).Fingerprint() {
		t.Fatal("path and grid of the same size collide")
	}
	if Path(16).Fingerprint() == Path(17).Fingerprint() {
		t.Fatal("paths of different lengths collide")
	}
}

func TestFingerprintInvalidatedByAddEdge(t *testing.T) {
	g := Path(8)
	before := g.Fingerprint()
	g.AddEdge(0, 7)
	after := g.Fingerprint()
	if before == after {
		t.Fatal("AddEdge did not change the fingerprint")
	}
	want := Cycle(8).Fingerprint()
	if after != want {
		t.Fatal("path+closing edge does not fingerprint like the cycle")
	}
}

func TestFingerprintCached(t *testing.T) {
	g := Grid(5, 5)
	if g.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}
