package graph

import (
	"fmt"
	"math/rand"
)

// This file provides the graph families used throughout the experiments.
// All generators are deterministic: random families take an explicit seed.

// Path returns the path P_n: 0 - 1 - ... - n-1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n ≥ 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star K_{1,n-1} with centre 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Wheel returns the wheel: a cycle on nodes 1..n-1 plus hub 0 (n ≥ 4).
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: wheel needs n ≥ 4, got %d", n))
	}
	g := Star(n)
	for i := 1; i < n; i++ {
		j := i + 1
		if j == n {
			j = 1
		}
		g.AddEdge(i, j)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on one side, a..a+b-1 on
// the other.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// GridIndex maps (row, col) in an rows×cols grid to a node id.
func GridIndex(rows, cols, r, c int) int { return r*cols + c }

// Grid returns the rows×cols grid graph; node (r,c) has id r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(GridIndex(rows, cols, r, c), GridIndex(rows, cols, r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(GridIndex(rows, cols, r, c), GridIndex(rows, cols, r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wraparound); needs
// rows, cols ≥ 3 to stay simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs rows, cols ≥ 3, got %d×%d", rows, cols))
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(GridIndex(rows, cols, r, c), GridIndex(rows, cols, r, (c+1)%cols))
			g.AddEdge(GridIndex(rows, cols, r, c), GridIndex(rows, cols, (r+1)%rows, c))
		}
	}
	return g
}

// BinaryTree returns the complete-ish binary tree on n nodes with root 0
// (heap indexing: children of i are 2i+1 and 2i+2).
func BinaryTree(n int) *Graph {
	return KAryTree(n, 2)
}

// KAryTree returns the k-ary tree on n nodes with root 0 (heap indexing).
func KAryTree(n, k int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("graph: k-ary tree needs k ≥ 1, got %d", k))
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/k)
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant legs attached to each spine node. n = spine*(1+legs).
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(i, next)
			next++
		}
	}
	return g
}

// Lollipop returns a clique K_k joined to a path of length n-k; node k-1 is
// the junction.
func Lollipop(k, n int) *Graph {
	if k < 1 || n < k {
		panic(fmt.Sprintf("graph: lollipop needs 1 ≤ k ≤ n, got k=%d n=%d", k, n))
	}
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := k - 1; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Barbell returns two cliques K_k joined by a path, n total nodes.
func Barbell(k, n int) *Graph {
	if k < 1 || n < 2*k {
		panic(fmt.Sprintf("graph: barbell needs 1 ≤ 2k ≤ n, got k=%d n=%d", k, n))
	}
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
			g.AddEdge(n-1-i, n-1-j)
		}
	}
	for i := k - 1; i < n-k; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes.
func Hypercube(d int) *Graph {
	if d < 0 || d > 24 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n nodes derived
// from a random Prüfer-like attachment: node i attaches to a uniformly
// random earlier node. Deterministic in seed.
func RandomTree(n int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	return g
}

// GNPConnected returns a connected Erdős–Rényi-style graph: a random tree
// (guaranteeing connectivity) plus each remaining pair independently with
// probability p. Deterministic in seed. At streamGNPThreshold nodes and
// above, construction switches to the O(m) streaming sampler that emits
// the CSR directly (see StreamGNPConnected) — same distribution and seed
// determinism, different random sequence — so million-node members of the
// gnp families are constructible without the quadratic pair loop.
func GNPConnected(n int, p float64, seed int64) *Graph {
	if n >= streamGNPThreshold && p < 1 {
		return StreamGNPConnected(n, p, seed)
	}
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, r.Intn(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) && r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomRadius2 returns a random connected graph in which every node is at
// distance at most 2 from node 0: node 0's neighbours are a random nonempty
// subset, every other node attaches to ≥1 neighbour of 0, and extra edges
// are sprinkled with probability p. Used by the §5 one-bit experiments.
func RandomRadius2(n int, p float64, seed int64) *Graph {
	if n < 2 {
		return Path(n)
	}
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	// First ring: at least one neighbour of the centre.
	ring := 1 + r.Intn(n-1)
	for i := 1; i <= ring; i++ {
		g.AddEdge(0, i)
	}
	// Second ring: attach to random first-ring nodes.
	for i := ring + 1; i < n; i++ {
		g.AddEdge(i, 1+r.Intn(ring))
		// extra attachments increase collision pressure
		for j := 1; j <= ring; j++ {
			if !g.HasEdge(i, j) && r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// FamilyFunc builds the n-node member of a named family (see Families).
type FamilyFunc func(n int) *Graph

// Families maps family names to constructors used by the experiment sweep.
// Constructors accept a target size n and may round it (e.g. grids use the
// nearest square); callers should read the actual size from the result.
var Families = map[string]FamilyFunc{
	"path":     Path,
	"cycle":    func(n int) *Graph { return Cycle(max(3, n)) },
	"star":     Star,
	"complete": Complete,
	"wheel":    func(n int) *Graph { return Wheel(max(4, n)) },
	"grid":     func(n int) *Graph { s := isqrt(n); return Grid(s, s) },
	"torus":    func(n int) *Graph { s := max(3, isqrt(n)); return Torus(s, s) },
	"btree":    BinaryTree,
	"caterpillar": func(n int) *Graph {
		spine := max(1, n/4)
		return Caterpillar(spine, 3)
	},
	"lollipop":  func(n int) *Graph { return Lollipop(max(1, n/3), n) },
	"hypercube": func(n int) *Graph { return Hypercube(ilog2(max(1, n))) },
	"gnp-sparse": func(n int) *Graph {
		return GNPConnected(n, 2.0/float64(max(2, n)), int64(n))
	},
	"gnp-dense": func(n int) *Graph {
		return GNPConnected(n, 0.3, int64(n))
	},
	"seriesparallel": func(n int) *Graph { return SeriesParallel(n, int64(n)) },
}

// FamilyNames returns the sorted family names (deterministic sweep order).
func FamilyNames() []string {
	names := make([]string, 0, len(Families))
	for k := range Families {
		names = append(names, k)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func isqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return max(1, s)
}

func ilog2(n int) int {
	l := 0
	for (1 << uint(l+1)) <= n {
		l++
	}
	return l
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
