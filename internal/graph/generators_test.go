package graph

import (
	"testing"
	"testing/quick"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.M() != 4 || !g.IsConnected() {
		t.Fatalf("P5: m=%d connected=%v", g.M(), g.IsConnected())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
}

func TestPathDegenerate(t *testing.T) {
	if g := Path(1); g.N() != 1 || g.M() != 0 {
		t.Fatal("P1 wrong")
	}
	if g := Path(0); g.N() != 0 {
		t.Fatal("P0 wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("C6 m = %d", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("C6 degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCycleTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cycle(2)
}

func TestStarWheelComplete(t *testing.T) {
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Fatal("star wrong")
	}
	if g := Wheel(7); g.M() != 12 || g.Degree(0) != 6 || g.Degree(1) != 3 {
		t.Fatal("wheel wrong")
	}
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Fatal("complete wrong")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K3,4: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatal("K3,4 edge structure wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n = %d", g.N())
	}
	if g.M() != 3*3+2*4 { // rows*(cols-1) + (rows-1)*cols
		t.Fatalf("grid m = %d", g.M())
	}
	if !g.HasEdge(GridIndex(3, 4, 1, 1), GridIndex(3, 4, 1, 2)) {
		t.Fatal("grid horizontal edge missing")
	}
	if g.HasEdge(GridIndex(3, 4, 0, 3), GridIndex(3, 4, 1, 0)) {
		t.Fatal("grid has wraparound edge")
	}
	if d := g.Diameter(); d != 2+3 {
		t.Fatalf("grid diameter = %d, want 5", d)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 5)
	if g.N() != 15 {
		t.Fatalf("torus n = %d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestTrees(t *testing.T) {
	g := BinaryTree(7)
	if g.M() != 6 || !g.IsConnected() {
		t.Fatal("binary tree wrong")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 3) {
		t.Fatal("binary tree heap structure wrong")
	}
	k := KAryTree(13, 3)
	if k.Degree(0) != 3 {
		t.Fatalf("3-ary root degree = %d", k.Degree(0))
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 12 || g.M() != 11 || !g.IsConnected() {
		t.Fatalf("caterpillar n=%d m=%d", g.N(), g.M())
	}
}

func TestLollipopBarbell(t *testing.T) {
	g := Lollipop(4, 10)
	if g.N() != 10 || !g.IsConnected() {
		t.Fatal("lollipop wrong")
	}
	if g.M() != 6+6 { // K4 + path of 6 edges
		t.Fatalf("lollipop m = %d", g.M())
	}
	b := Barbell(3, 10)
	if b.N() != 10 || !b.IsConnected() {
		t.Fatal("barbell wrong")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 degree(%d) = %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Q4 diameter = %d", d)
	}
}

func TestRandomTreeDeterministicAndConnected(t *testing.T) {
	a := RandomTree(50, 7)
	b := RandomTree(50, 7)
	if len(a.Edges()) != len(b.Edges()) {
		t.Fatal("RandomTree not deterministic in seed")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatal("RandomTree not deterministic in seed")
		}
	}
	if a.M() != 49 || !a.IsConnected() {
		t.Fatal("RandomTree not a tree")
	}
	c := RandomTree(50, 8)
	same := true
	ae, ce := a.Edges(), c.Edges()
	if len(ae) == len(ce) {
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trees (suspicious)")
	}
}

func TestGNPConnected(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%50)
		g := GNPConnected(n, 0.1, seed)
		return g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRadius2(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%30)
		g := RandomRadius2(n, 0.3, seed)
		if !g.IsConnected() {
			return false
		}
		return g.Eccentricity(0) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesParallel(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%60)
		g := SeriesParallel(n, seed)
		return g.IsConnected() && IsSeriesParallelSize(g) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFamiliesAllConnected(t *testing.T) {
	for _, name := range FamilyNames() {
		build := Families[name]
		for _, n := range []int{4, 9, 16, 33} {
			g := build(n)
			if g.N() == 0 {
				t.Fatalf("%s(%d): empty graph", name, n)
			}
			if !g.IsConnected() {
				t.Fatalf("%s(%d): not connected", name, n)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if g.N() != 13 {
		t.Fatalf("Figure1 n = %d, want 13", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("Figure1 not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Structural spot checks from the reconstruction.
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 12) || !g.HasEdge(2, 12) {
		t.Fatal("Figure1 key edges missing")
	}
	if g.Degree(9) != 1 || g.Degree(12) != 2 {
		t.Fatal("Figure1 degrees wrong")
	}
}
