// Package graph implements the network substrate of the paper: simple
// undirected connected graphs with nodes identified by integers 0..n-1.
// It provides construction, traversal (BFS distances, eccentricity, radius,
// diameter), the graph square and distance-2 colorings used by the
// O(log Δ)-bit baseline, a library of generators covering the graph
// families exercised in the experiments, and simple text I/O.
package graph

import (
	"fmt"
	"sort"

	"radiobcast/internal/nodeset"
)

// Graph is a simple undirected graph over nodes 0..n-1, stored as sorted
// adjacency lists. Construct with New and AddEdge; adjacency lists are kept
// sorted and duplicate-free so that all downstream algorithms iterate
// neighbours in a deterministic order.
type Graph struct {
	n    int
	adj  [][]int
	m    int
	sets []*nodeset.Set // lazily built adjacency bitsets for O(1) HasEdge
	csr  *CSR           // lazily built frozen form (see Freeze)

	fp      uint64 // cached structural hash (see Fingerprint)
	fpValid bool
}

// New returns an edgeless graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected;
// re-adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.ensureAdj()
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.insert(u, v)
	g.insert(v, u)
	g.m++
	g.sets = nil // invalidate caches
	g.csr = nil
	g.fpValid = false
}

// RemoveEdge deletes the undirected edge {u, v}. Removing an absent edge
// is a no-op, mirroring AddEdge's tolerance of re-adds.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.ensureAdj()
	if u == v || !g.HasEdge(u, v) {
		return
	}
	g.remove(u, v)
	g.remove(v, u)
	g.m--
	g.sets = nil // invalidate caches
	g.csr = nil
	g.fpValid = false
}

func (g *Graph) remove(u, v int) {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	copy(a[i:], a[i+1:])
	g.adj[u] = a[:len(a)-1]
}

func (g *Graph) insert(u, v int) {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	g.adj[u] = a
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	g.ensureAdj()
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Neighbors returns v's adjacency list in ascending order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	g.ensureAdj()
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	g.ensureAdj()
	return len(g.adj[v])
}

// MaxDegree returns Δ(G), or 0 for an edgeless graph.
func (g *Graph) MaxDegree() int {
	g.ensureAdj()
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	g.ensureAdj()
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	g.ensureAdj()
	c := New(g.n)
	c.m = g.m
	for v := 0; v < g.n; v++ {
		c.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return c
}

// NeighborSet returns v's neighbourhood as a nodeset.Set. Sets are cached;
// they are owned by the graph and must not be modified.
func (g *Graph) NeighborSet(v int) *nodeset.Set {
	g.check(v)
	g.ensureAdj()
	if g.sets == nil {
		g.sets = make([]*nodeset.Set, g.n)
	}
	if g.sets[v] == nil {
		s := nodeset.New(g.n)
		for _, w := range g.adj[v] {
			s.Add(w)
		}
		g.sets[v] = s
	}
	return g.sets[v]
}

// Neighborhood returns Γ(X): the set of nodes adjacent to at least one
// member of X (the paper's Γ; note Γ(X) may intersect X).
func (g *Graph) Neighborhood(x *nodeset.Set) *nodeset.Set {
	csr := g.Freeze()
	out := nodeset.New(g.n)
	x.ForEach(func(v int) {
		for _, w := range csr.Neighbors(v) {
			out.Add(int(w))
		}
	})
	return out
}

// Validate checks structural invariants (sorted, symmetric, loop-free
// adjacency). It returns nil for graphs built through AddEdge and exists to
// guard graphs constructed by external decoders.
func (g *Graph) Validate() error {
	g.ensureAdj()
	count := 0
	for u := 0; u < g.n; u++ {
		a := g.adj[u]
		for i, v := range a {
			if v < 0 || v >= g.n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if i > 0 && a[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not sorted/unique", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, v)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency size %d", g.m, count)
	}
	return nil
}

// String renders a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m)
}
