package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/nodeset"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N,M = %d,%d, want 5,0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing or asymmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after duplicate AddEdge", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(3).AddEdge(1, 1)
}

func TestOutOfRangeNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	New(3).AddEdge(0, 3)
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 {
		t.Fatalf("hub degree = %d, want 5", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("leaf degree = %d, want 1", g.Degree(3))
	}
	if g.MaxDegree() != 5 {
		t.Fatalf("MaxDegree = %d, want 5", g.MaxDegree())
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(1, 0)
	g.AddEdge(0, 3)
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("Clone shares adjacency with original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M = %d, want %d", c.M(), g.M()+1)
	}
}

func TestNeighborhood(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	x := nodeset.Of(5, 1, 2)
	got := g.Neighborhood(x)
	// Γ({1,2}) = {0,1,2,3}
	want := nodeset.Of(5, 0, 1, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("Γ({1,2}) = %v, want %v", got, want)
	}
}

func TestNeighborSetCacheInvalidation(t *testing.T) {
	g := Path(4)
	before := g.NeighborSet(0)
	if before.Count() != 1 {
		t.Fatalf("deg(0) = %d, want 1", before.Count())
	}
	g.AddEdge(0, 3)
	after := g.NeighborSet(0)
	if after.Count() != 2 {
		t.Fatalf("deg(0) after AddEdge = %d, want 2", after.Count())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(3)
	g.adj[0] = append(g.adj[0], 2) // asymmetric corruption
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted graph")
	}
}

func TestQuickEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		if g.Validate() != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		// Handshake lemma.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.RemoveEdge(2, 1)
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge {1,2} survived removal")
	}
	if g.M() != 2 {
		t.Fatalf("M = %d after removal, want 2", g.M())
	}
	if d := g.Degree(1); d != 1 {
		t.Fatalf("deg(1) = %d after removal, want 1", d)
	}
	// Removing an absent edge (or a self-loop coordinate) is a no-op.
	g.RemoveEdge(1, 2)
	g.RemoveEdge(4, 4)
	g.RemoveEdge(0, 4)
	if g.M() != 2 {
		t.Fatalf("no-op removals changed M to %d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove-then-re-add round-trips.
	g.AddEdge(1, 2)
	if !g.HasEdge(1, 2) || g.M() != 3 {
		t.Fatal("re-add after removal failed")
	}
}

func TestRemoveEdgeInvalidatesCaches(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	csr := g.Freeze()
	fp := g.Fingerprint()
	set := g.NeighborSet(1)
	if !set.Has(2) {
		t.Fatal("precondition: 2 in N(1)")
	}
	g.RemoveEdge(1, 2)
	if g.Freeze() == csr {
		t.Fatal("RemoveEdge did not invalidate the CSR cache")
	}
	if g.Freeze().M() != 2 {
		t.Fatalf("refrozen CSR has M = %d, want 2", g.Freeze().M())
	}
	if g.Fingerprint() == fp {
		t.Fatal("RemoveEdge did not change the fingerprint")
	}
	if g.NeighborSet(1).Has(2) {
		t.Fatal("RemoveEdge did not invalidate the neighbor-set cache")
	}
}

func TestFreezeInto(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var dst CSR
	g.FreezeInto(&dst)
	want := g.Freeze()
	if !reflect.DeepEqual(dst.Offsets, want.Offsets) || !reflect.DeepEqual(dst.Targets, want.Targets) {
		t.Fatalf("FreezeInto = {%v %v}, Freeze = {%v %v}", dst.Offsets, dst.Targets, want.Offsets, want.Targets)
	}
	// FreezeInto does not touch the graph's cache: the cached CSR keeps
	// its identity and its contents across an into-freeze.
	if g.Freeze() != want {
		t.Fatal("FreezeInto disturbed the Freeze cache")
	}

	// Mutate and re-freeze into the same buffers: contents track the
	// graph, and when capacity suffices the arrays are reused.
	g.AddEdge(2, 3)
	offsBefore, tgtsBefore := &dst.Offsets[0], cap(dst.Targets)
	g.FreezeInto(&dst)
	if dst.M() != 3 || dst.Degree(2) != 2 {
		t.Fatalf("re-freeze content wrong: M=%d deg(2)=%d", dst.M(), dst.Degree(2))
	}
	if &dst.Offsets[0] != offsBefore {
		t.Fatal("re-freeze with sufficient capacity reallocated Offsets")
	}
	_ = tgtsBefore
	// The caller-owned snapshot is decoupled from later mutations.
	g.RemoveEdge(0, 1)
	if dst.M() != 3 {
		t.Fatal("caller-owned CSR changed under a later graph mutation")
	}
	// Shrinking works too: a smaller graph refreezes cleanly into the
	// larger buffer.
	small := New(2)
	small.AddEdge(0, 1)
	small.FreezeInto(&dst)
	if dst.N() != 2 || dst.M() != 1 {
		t.Fatalf("shrink re-freeze: N=%d M=%d, want 2,1", dst.N(), dst.M())
	}
}
