package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/nodeset"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N,M = %d,%d, want 5,0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing or asymmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after duplicate AddEdge", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(3).AddEdge(1, 1)
}

func TestOutOfRangeNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	New(3).AddEdge(0, 3)
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 {
		t.Fatalf("hub degree = %d, want 5", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("leaf degree = %d, want 1", g.Degree(3))
	}
	if g.MaxDegree() != 5 {
		t.Fatalf("MaxDegree = %d, want 5", g.MaxDegree())
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2)
	g.AddEdge(1, 0)
	g.AddEdge(0, 3)
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("Clone shares adjacency with original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M = %d, want %d", c.M(), g.M()+1)
	}
}

func TestNeighborhood(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	x := nodeset.Of(5, 1, 2)
	got := g.Neighborhood(x)
	// Γ({1,2}) = {0,1,2,3}
	want := nodeset.Of(5, 0, 1, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("Γ({1,2}) = %v, want %v", got, want)
	}
}

func TestNeighborSetCacheInvalidation(t *testing.T) {
	g := Path(4)
	before := g.NeighborSet(0)
	if before.Count() != 1 {
		t.Fatalf("deg(0) = %d, want 1", before.Count())
	}
	g.AddEdge(0, 3)
	after := g.NeighborSet(0)
	if after.Count() != 2 {
		t.Fatalf("deg(0) after AddEdge = %d, want 2", after.Count())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(3)
	g.adj[0] = append(g.adj[0], 2) // asymmetric corruption
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted graph")
	}
}

func TestQuickEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		if g.Validate() != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		// Handshake lemma.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
