package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text I/O for the command-line tools: a trivial edge-list format and DOT
// export for visualisation.
//
// Edge-list format: first non-comment line is the node count, each
// subsequent line "u v" is an edge. '#' starts a comment.

// WriteEdgeList writes g in edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graph: line %d: want node count, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[0])
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v {
			return nil, fmt.Errorf("graph: line %d: invalid edge {%d,%d} for n=%d", line, u, v, g.N())
		}
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}

// WriteDOT writes g in Graphviz DOT format. If labels is non-nil it must
// have one entry per node; labels are shown alongside node ids.
func WriteDOT(w io.Writer, g *Graph, labels []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph radio {")
	fmt.Fprintln(bw, "  node [shape=circle];")
	for v := 0; v < g.N(); v++ {
		if labels != nil {
			fmt.Fprintf(bw, "  %d [label=\"%d\\n%s\"];\n", v, v, labels[v])
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
