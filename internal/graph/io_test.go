package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := Figure1()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# a comment
3

0 1  # trailing comment
1 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad count":      "x\n",
		"bad edge arity": "3\n0 1 2\n",
		"bad edge token": "3\n0 q\n",
		"out of range":   "3\n0 5\n",
		"self loop":      "3\n1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []string{"10", "00", "01"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph radio {", "0 -- 1", "1 -- 2", `label="1\n00"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "  1;") {
		t.Fatal("unlabeled DOT missing plain node")
	}
}

func TestRelabel(t *testing.T) {
	g := Path(4) // 0-1-2-3
	perm := []int{3, 2, 1, 0}
	r := Relabel(g, perm)
	if !r.HasEdge(3, 2) || !r.HasEdge(1, 0) || r.HasEdge(0, 3) {
		t.Fatalf("relabel wrong: %v", r.Edges())
	}
	if r.M() != g.M() {
		t.Fatal("edge count changed")
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Relabel(Path(3), []int{0, 0, 1})
}

func TestRandomPermutationDeterministic(t *testing.T) {
	a := RandomPermutation(20, 1)
	b := RandomPermutation(20, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	seen := make([]bool, 20)
	for _, p := range a {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
}
