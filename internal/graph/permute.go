package graph

import (
	"fmt"
	"math/rand"
)

// Relabel returns the graph with node v renamed to perm[v]. perm must be a
// permutation of 0..n-1. Used by the test suite to check that the paper's
// guarantees are invariant under renaming (the labeling construction itself
// may pick different — equally valid — DOM sets under different orderings).
func Relabel(g *Graph, perm []int) *Graph {
	n := g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: permutation length %d for %d nodes", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic("graph: not a permutation")
		}
		seen[p] = true
	}
	out := New(n)
	for _, e := range g.Edges() {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

// RandomPermutation returns a uniformly random permutation of 0..n-1,
// deterministic in seed.
func RandomPermutation(n int, seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
