package graph

import "math/rand"

// Series-parallel graphs appear in the paper's conclusion as a family where
// single-bit labels suffice for broadcast. We generate them by the standard
// recursive definition: an SP graph with terminals (s, t) is either a single
// edge, a series composition (identify t1 with s2), or a parallel
// composition (identify s1=s2 and t1=t2).

// SeriesParallel returns a random connected series-parallel graph with
// roughly n nodes. Terminals of the outermost composition are nodes 0 and
// the last node created. Deterministic in seed.
func SeriesParallel(n int, seed int64) *Graph {
	if n < 2 {
		return Path(max(2, n))
	}
	r := rand.New(rand.NewSource(seed))
	b := &spBuilder{r: r}
	s, t := b.newNode(), b.newNode()
	b.compose(s, t, n-2)
	g := New(b.next)
	for _, e := range b.edges {
		if e[0] != e[1] && !g.HasEdge(e[0], e[1]) {
			g.AddEdge(e[0], e[1])
		}
	}
	return g
}

type spBuilder struct {
	r     *rand.Rand
	next  int
	edges [][2]int
}

func (b *spBuilder) newNode() int {
	v := b.next
	b.next++
	return v
}

// compose builds an SP component between terminals s and t using up to
// budget internal nodes.
func (b *spBuilder) compose(s, t, budget int) {
	if budget <= 0 {
		b.edges = append(b.edges, [2]int{s, t})
		return
	}
	switch b.r.Intn(3) {
	case 0: // base edge
		b.edges = append(b.edges, [2]int{s, t})
	case 1: // series: s - mid - t
		mid := b.newNode()
		left := (budget - 1) / 2
		b.compose(s, mid, left)
		b.compose(mid, t, budget-1-left)
	default: // parallel: two components between the same terminals
		left := budget / 2
		b.compose(s, t, left)
		b.compose(s, t, budget-left)
	}
}

// IsSeriesParallelSize is a light sanity predicate used in tests: every
// simple connected series-parallel graph satisfies m ≤ 2n − 3.
func IsSeriesParallelSize(g *Graph) bool {
	if g.N() < 2 {
		return true
	}
	return g.M() <= 2*g.N()-3
}
