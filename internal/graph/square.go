package graph

// This file supports the O(log Δ)-bit baseline sketched in the paper's
// introduction: "by using a proper colouring of the square of the graph,
// O(log Δ)-bit labels are enough to successfully broadcast". We build G²
// and colour it greedily; any two nodes at distance ≤ 2 in G receive
// distinct colours, so in a colour-slotted round-robin at most one
// neighbour of any listener transmits per slot.

// Square returns G²: same nodes, with an edge between every pair of
// distinct nodes at distance 1 or 2 in g.
func (g *Graph) Square() *Graph {
	sq := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				sq.AddEdge(u, v)
			}
			for _, w := range g.adj[v] {
				if u < w {
					sq.AddEdge(u, w)
				}
			}
		}
	}
	return sq
}

// GreedyColoring colours the graph greedily in ascending node order and
// returns (colors, numColors). Colours are 0-based and at most MaxDegree+1
// of them are used.
func (g *Graph) GreedyColoring() ([]int, int) {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.MaxDegree()+1)
	numColors := 0
	for v := 0; v < g.n; v++ {
		for i := range used {
			used[i] = false
		}
		for _, w := range g.adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

// Distance2Coloring returns a colouring of g in which nodes at distance
// ≤ 2 get distinct colours, together with the number of colours used
// (at most Δ² + 1).
func (g *Graph) Distance2Coloring() ([]int, int) {
	return g.Square().GreedyColoring()
}

// VerifyColoring reports whether colors is a proper colouring of g.
func VerifyColoring(g *Graph, colors []int) bool {
	if len(colors) != g.N() {
		return false
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return false
		}
	}
	return true
}
