package graph

import (
	"testing"
	"testing/quick"
)

func TestSquarePath(t *testing.T) {
	g := Path(5)
	sq := g.Square()
	// P5²: edges at distance 1 and 2.
	if !sq.HasEdge(0, 2) || !sq.HasEdge(1, 3) || !sq.HasEdge(0, 1) {
		t.Fatal("square missing distance-2 edges")
	}
	if sq.HasEdge(0, 3) {
		t.Fatal("square has distance-3 edge")
	}
	if sq.M() != 4+3 {
		t.Fatalf("P5² m = %d, want 7", sq.M())
	}
}

func TestSquareStar(t *testing.T) {
	// Star's square is complete: all leaves are at distance 2.
	sq := Star(6).Square()
	if sq.M() != 15 {
		t.Fatalf("K1,5² m = %d, want 15", sq.M())
	}
}

func TestGreedyColoringProper(t *testing.T) {
	g := Cycle(7)
	colors, k := g.GreedyColoring()
	if !VerifyColoring(g, colors) {
		t.Fatal("greedy colouring not proper")
	}
	if k > g.MaxDegree()+1 {
		t.Fatalf("greedy used %d colours > Δ+1 = %d", k, g.MaxDegree()+1)
	}
}

func TestDistance2ColoringSeparatesNeighbourhoods(t *testing.T) {
	g := Grid(4, 4)
	colors, k := g.Distance2Coloring()
	if k < 1 {
		t.Fatal("no colours")
	}
	// No two distinct neighbours of any node may share a colour.
	for v := 0; v < g.N(); v++ {
		seen := map[int]int{}
		for _, w := range g.Neighbors(v) {
			if prev, ok := seen[colors[w]]; ok {
				t.Fatalf("nodes %d and %d (both neighbours of %d) share colour %d",
					prev, w, v, colors[w])
			}
			seen[colors[w]] = w
		}
		// v itself must differ from all its neighbours.
		for _, w := range g.Neighbors(v) {
			if colors[w] == colors[v] {
				t.Fatalf("node %d and neighbour %d share colour", v, w)
			}
		}
	}
}

func TestQuickDistance2ColoringBound(t *testing.T) {
	// At most Δ²+1 colours for the square colouring.
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%40)
		g := GNPConnected(n, 0.15, seed)
		colors, k := g.Distance2Coloring()
		if !VerifyColoring(g.Square(), colors) {
			return false
		}
		d := g.MaxDegree()
		return k <= d*d+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyColoringRejects(t *testing.T) {
	g := Path(3)
	if VerifyColoring(g, []int{0, 0, 1}) {
		t.Fatal("accepted improper colouring")
	}
	if VerifyColoring(g, []int{0}) {
		t.Fatal("accepted wrong-length colouring")
	}
}
