package graph

import (
	"math"
	"math/rand"
	"sort"
)

// This file is the million-node construction path: generators that emit
// the frozen CSR directly, skipping the [][]int adjacency intermediate
// (and its n+1 allocations), plus FromCSR to wrap the result as a Graph.
// The adjacency lists materialize lazily only if a caller actually asks
// for them; the radio engine runs off the CSR alone.

// streamGNPThreshold is the size at which GNPConnected switches from the
// quadratic pair loop to the streaming geometric-skip sampler. The two
// algorithms draw different random sequences, so the threshold is far
// above every size the golden tests pin.
const streamGNPThreshold = 50000

// FromCSR wraps a frozen CSR as a Graph without materializing adjacency
// lists: the CSR itself becomes the Freeze cache, so engine runs touch
// only the two flat arrays. Callers that later need per-node []int
// adjacency (mutation, Validate, NeighborSet) trigger a lazy one-time
// materialization. The CSR must be structurally valid (sorted, symmetric,
// loop-free adjacency — what a generator emits); FromCSR takes ownership.
func FromCSR(c *CSR) *Graph {
	return &Graph{n: c.N(), m: c.M(), csr: c}
}

// ensureAdj materializes the [][]int adjacency of a FromCSR graph on
// first use. Graphs built through New always have adj set, so the check
// is a nil test on every other path.
func (g *Graph) ensureAdj() {
	if g.adj != nil {
		return
	}
	g.adj = make([][]int, g.n)
	if g.csr == nil {
		return
	}
	backing := make([]int, len(g.csr.Targets))
	for i, t := range g.csr.Targets {
		backing[i] = int(t)
	}
	for v := 0; v < g.n; v++ {
		// Full-slice expressions cap each node's slice at its own row, so a
		// later AddEdge append reallocates instead of clobbering the next
		// node's neighbours in the shared backing array.
		g.adj[v] = backing[g.csr.Offsets[v]:g.csr.Offsets[v+1]:g.csr.Offsets[v+1]]
	}
}

// StreamGNPConnected is the streaming form of GNPConnected for large n:
// a random attachment tree guarantees connectivity and the G(n,p) pairs
// are drawn by geometric skipping in O(m) instead of testing all n(n-1)/2
// pairs, with the edge set assembled directly into a CSR. Deterministic
// in seed; the random sequence differs from GNPConnected's, so results
// agree in distribution but not bit-for-bit.
func StreamGNPConnected(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	// Edge keys i*n+j (i < j): the tree plus the sampled pairs, deduped.
	keys := make([]int64, 0, n-1+int(float64(n)*(float64(n-1)/2)*p)+16)
	for i := 1; i < n; i++ {
		j := r.Intn(i)
		keys = append(keys, int64(j)*int64(n)+int64(i))
	}
	if p > 0 && p < 1 && n > 1 {
		total := int64(n) * int64(n-1) / 2
		logq := math.Log1p(-p)
		k := int64(-1)
		// rowBase is the number of pairs preceding row i; advancing the
		// row cursor is amortized O(n) over the whole walk.
		row, rowBase := int64(0), int64(0)
		for {
			u := r.Float64()
			k += 1 + int64(math.Log1p(-u)/logq)
			if k >= total || k < 0 {
				break
			}
			for k >= rowBase+int64(n)-1-row {
				rowBase += int64(n) - 1 - row
				row++
			}
			i, j := row, row+1+(k-rowBase)
			keys = append(keys, i*int64(n)+j)
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	edges := keys[:0]
	for idx, key := range keys {
		if idx == 0 || key != edges[len(edges)-1] {
			edges = append(edges, key)
		}
	}
	return FromCSR(edgesToCSR(n, edges))
}

// edgesToCSR assembles sorted, deduplicated i*n+j edge keys (i < j) into
// a CSR in two counting passes. Per-node target lists come out ascending:
// for node v, the sub-v neighbours arrive while scanning rows 0..v-1 in
// order, then v's own row appends the super-v neighbours in order.
func edgesToCSR(n int, edges []int64) *CSR {
	offsets := make([]int32, n+1)
	for _, key := range edges {
		i, j := key/int64(n), key%int64(n)
		offsets[i+1]++
		offsets[j+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]int32, 2*len(edges))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, key := range edges {
		i, j := int32(key/int64(n)), int32(key%int64(n))
		targets[cursor[i]] = j
		cursor[i]++
		targets[cursor[j]] = i
		cursor[j]++
	}
	return &CSR{Offsets: offsets, Targets: targets}
}
