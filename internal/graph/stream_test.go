// Tests for the streaming CSR-direct construction path: generator
// validity, seed determinism, the GNPConnected dispatch threshold, and
// the lazy adjacency materialization of FromCSR graphs.
package graph

import (
	"reflect"
	"testing"
)

// TestStreamGNPValidAndConnected: the streaming generator must emit a
// structurally valid, connected, simple graph — the attachment tree
// guarantees connectivity regardless of p, and the dedup pass must
// remove any pair the sampler drew on top of a tree edge.
func TestStreamGNPValidAndConnected(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		seed int64
	}{
		{2, 0, 1}, {50, 0, 3}, {200, 0.05, 7}, {500, 0.01, 1}, {300, 0.9, 2},
	} {
		g := StreamGNPConnected(tc.n, tc.p, tc.seed)
		if g.N() != tc.n {
			t.Fatalf("n=%d p=%g: N() = %d", tc.n, tc.p, g.N())
		}
		// Validate walks the lazily materialized adjacency: sortedness,
		// symmetry, no loops, no duplicates, M consistency.
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d p=%g seed=%d: %v", tc.n, tc.p, tc.seed, err)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d p=%g seed=%d: not connected", tc.n, tc.p, tc.seed)
		}
		if tc.p == 0 && g.M() != tc.n-1 {
			t.Fatalf("p=0 must yield a tree: m = %d on %d nodes", g.M(), tc.n)
		}
	}
}

// TestStreamGNPDeterministic: same (n, p, seed) — same edge set; a
// different seed must move at least one edge on a non-trivial graph.
func TestStreamGNPDeterministic(t *testing.T) {
	a := StreamGNPConnected(400, 0.02, 9)
	b := StreamGNPConnected(400, 0.02, 9)
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("same seed produced different graphs")
	}
	c := StreamGNPConnected(400, 0.02, 10)
	if reflect.DeepEqual(a.Edges(), c.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestGNPDispatchThreshold pins the GNPConnected routing contract:
// below streamGNPThreshold the quadratic pair loop runs (the golden
// tests depend on its exact random sequence), at and above it the
// streaming sampler takes over — recognizable by its CSR-first Graph,
// which carries a Freeze cache before anyone asked for one.
func TestGNPDispatchThreshold(t *testing.T) {
	small := GNPConnected(100, 0.1, 5)
	if small.csr != nil {
		t.Fatal("small GNPConnected went through the streaming path")
	}
	large := GNPConnected(streamGNPThreshold, 2.0/float64(streamGNPThreshold), 5)
	if large.csr == nil {
		t.Fatal("threshold-sized GNPConnected skipped the streaming path")
	}
	if large.adj != nil {
		t.Fatal("streaming construction materialized adjacency lists eagerly")
	}
	want := StreamGNPConnected(streamGNPThreshold, 2.0/float64(streamGNPThreshold), 5)
	if large.M() != want.M() {
		t.Fatalf("dispatch changed the graph: m=%d direct, m=%d streamed", want.M(), large.M())
	}
}

// TestFromCSRLazyAdjacency: a FromCSR graph answers N/M/Freeze straight
// off the CSR; the first adjacency-needing call materializes per-node
// lists that match the CSR exactly, and mutation keeps working after.
func TestFromCSRLazyAdjacency(t *testing.T) {
	// 0-1-2-3 path as raw edge keys i*n+j.
	const n = 4
	g := FromCSR(edgesToCSR(n, []int64{0*n + 1, 1*n + 2, 2*n + 3}))
	if g.N() != n || g.M() != 3 {
		t.Fatalf("FromCSR reports n=%d m=%d", g.N(), g.M())
	}
	if g.adj != nil {
		t.Fatal("FromCSR materialized adjacency eagerly")
	}
	if g.Freeze() != g.csr {
		t.Fatal("Freeze did not reuse the wrapped CSR")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v after lazy materialization", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 3)
	if !g.HasEdge(0, 3) || g.M() != 4 {
		t.Fatal("mutation broken after lazy materialization")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEdgesToCSRAscendingTargets pins the CSR assembly invariant the
// bitset slabs rely on: per-node target lists come out sorted.
func TestEdgesToCSRAscendingTargets(t *testing.T) {
	const n = 6
	// A node with neighbours on both sides: 3-0, 3-1, 3-4, 3-5 plus 0-5.
	c := edgesToCSR(n, []int64{0*n + 3, 0*n + 5, 1*n + 3, 3*n + 4, 3*n + 5})
	for v := 0; v < n; v++ {
		row := c.Targets[c.Offsets[v]:c.Offsets[v+1]]
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("node %d targets not strictly ascending: %v", v, row)
			}
		}
	}
	if got := c.Targets[c.Offsets[3]:c.Offsets[4]]; !reflect.DeepEqual(got, []int32{0, 1, 4, 5}) {
		t.Fatalf("node 3 row = %v", got)
	}
}
