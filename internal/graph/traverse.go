package graph

// This file implements BFS-based traversal metrics. The broadcast bounds of
// the paper are phrased in terms of n, but the baselines' completion times
// depend on the source eccentricity and the diameter, so the experiment
// harness needs exact distance computations.

// BFS returns the distance (in hops) from src to every node, with -1 for
// unreachable nodes.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Layers returns the BFS layers from src: Layers(src)[d] is the sorted list
// of nodes at distance d. Unreachable nodes are omitted.
func (g *Graph) Layers(src int) [][]int {
	dist := g.BFS(src)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	layers := make([][]int, maxD+1)
	for v, d := range dist {
		if d >= 0 {
			layers[d] = append(layers[d], v)
		}
	}
	return layers
}

// IsConnected reports whether the graph is connected (a 0-node graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns max_v dist(src, v). It panics on disconnected graphs.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d == -1 {
			panic("graph: eccentricity of disconnected graph")
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns max_u ecc(u). Cost is O(n·m); only used on experiment-
// scale graphs. Panics on disconnected graphs.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// Radius returns min_u ecc(u). Panics on disconnected graphs.
func (g *Graph) Radius() int {
	if g.n == 0 {
		return 0
	}
	r := g.Eccentricity(0)
	for v := 1; v < g.n; v++ {
		if e := g.Eccentricity(v); e < r {
			r = e
		}
	}
	return r
}

// ConnectedComponents returns the node sets of each connected component,
// ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
