package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	want := []int{0, 1, 2, 3, 4}
	if got := g.BFS(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFS(0) = %v, want %v", got, want)
	}
	want = []int{2, 1, 0, 1, 2}
	if got := g.BFS(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFS(2) = %v, want %v", got, want)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	d := g.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable distances = %v, want -1s", d[2:])
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestLayers(t *testing.T) {
	g := Star(5)
	layers := g.Layers(0)
	if len(layers) != 2 {
		t.Fatalf("star layers = %d, want 2", len(layers))
	}
	if !reflect.DeepEqual(layers[0], []int{0}) {
		t.Fatalf("layer 0 = %v", layers[0])
	}
	if !reflect.DeepEqual(layers[1], []int{1, 2, 3, 4}) {
		t.Fatalf("layer 1 = %v", layers[1])
	}
}

func TestEccentricityRadiusDiameter(t *testing.T) {
	g := Path(5)
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("ecc(0) = %d, want 4", e)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Fatalf("ecc(2) = %d, want 2", e)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	if r := g.Radius(); r != 2 {
		t.Fatalf("radius = %d, want 2", r)
	}

	c := Cycle(6)
	if d := c.Diameter(); d != 3 {
		t.Fatalf("C6 diameter = %d, want 3", d)
	}
	if r := c.Radius(); r != 3 {
		t.Fatalf("C6 radius = %d, want 3", r)
	}
}

func TestEccentricityDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(3)
	g.AddEdge(0, 1)
	g.Eccentricity(0)
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if !reflect.DeepEqual(comps[1], []int{2, 3, 4}) {
		t.Fatalf("comps[1] = %v", comps[1])
	}
}

func TestQuickTriangleInequalityOnTrees(t *testing.T) {
	// In a tree, dist(u,v) ≤ dist(u,w) + dist(w,v) with equality when w is
	// on the u–v path; BFS distances must satisfy the inequality.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(60)
		g := RandomTree(n, seed)
		u, v, w := r.Intn(n), r.Intn(n), r.Intn(n)
		du := g.BFS(u)
		dw := g.BFS(w)
		return du[v] <= du[w]+dw[v]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRadiusDiameterSandwich(t *testing.T) {
	// radius ≤ diameter ≤ 2·radius on connected graphs.
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%40)
		g := GNPConnected(n, 0.2, seed)
		r, d := g.Radius(), g.Diameter()
		return r <= d && d <= 2*r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
