package httpd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"radiobcast/client"
	"radiobcast/internal/httpd"
)

// startLongSweep opens a sweep expected to stream many cells and blocks
// until the first cell arrives, so the caller knows the sweep is truly in
// flight. The returned reader continues the NDJSON stream.
func startLongSweep(t *testing.T, base string) (*http.Response, *bufio.Reader) {
	t.Helper()
	body := `{"families":["path"],"sizes":[32],"schemes":["b"],"fault_rates":[0.2],"repeats":200}`
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("long sweep: status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		resp.Body.Close()
		t.Fatalf("reading first sweep cell: %v", err)
	}
	return resp, br
}

// drainStream reads the rest of an NDJSON sweep stream and reports whether
// it ended with a clean done line and how many cells arrived in total
// (including the one startLongSweep consumed).
func drainStream(t *testing.T, br *bufio.Reader) (cells int, done bool) {
	t.Helper()
	cells = 1 // the cell startLongSweep already read
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return cells, done
		}
		var sl client.SweepLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad sweep line %q: %v", line, err)
		}
		switch {
		case sl.Cell != nil:
			cells++
		case sl.Done != nil:
			return cells, true
		case sl.Error != nil:
			t.Fatalf("sweep stream ended in error line: %+v", sl.Error)
		}
	}
}

// TestDrainInFlightCompletes pins the core drain contract at the handler
// level: once StartDrain is called, new API requests are refused with 503
// "draining" and readiness flips, while an in-flight sweep streams to its
// clean end.
func TestDrainInFlightCompletes(t *testing.T) {
	srv, ts, c := newTestServer(t, httpd.Config{})
	resp, br := startLongSweep(t, ts.URL)
	defer resp.Body.Close()

	srv.StartDrain()

	err := c.Ready(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after StartDrain: %v, want 503", err)
	}
	_, err = c.Run(context.Background(), client.RunRequest{
		Graph: client.GraphSpec{Family: "path", N: 8}, Scheme: "b",
	})
	if !errors.As(err, &ae) || ae.Code != "draining" || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("new run during drain: %v, want 503 draining", err)
	}

	cells, done := drainStream(t, br)
	if !done {
		t.Fatalf("in-flight sweep truncated during drain after %d cells", cells)
	}
	if want := 200; cells != want {
		t.Fatalf("in-flight sweep streamed %d cells during drain, want %d", cells, want)
	}
}

// TestServeGracefulDrain exercises the full Serve lifecycle on a real
// listener: cancel the serve context mid-sweep and require that the
// stream still completes, Serve returns nil, and the port then refuses
// connections.
func TestServeGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := httpd.New(httpd.Config{RatePerSec: -1, DrainTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	c := client.New(base)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, br := startLongSweep(t, base)
	defer resp.Body.Close()

	cancel() // SIGTERM equivalent

	cells, done := drainStream(t, br)
	if !done {
		t.Fatalf("sweep truncated by graceful drain after %d cells", cells)
	}

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("daemon still answering after Serve returned")
	}
	// The shared Session drained too: further use is refused.
	if _, err := srv.Session().Label(context.Background(), nil, "b"); err == nil {
		t.Fatal("session still open after drain")
	}
}

// TestServeDrainDeadline proves the other half of the contract: when
// in-flight work outlives DrainTimeout, its request context is cancelled
// — the stream ends early but intact (an error line, not a hang) and
// Serve still returns.
func TestServeDrainDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := httpd.New(httpd.Config{RatePerSec: -1, DrainTimeout: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	c := client.New(base)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A sweep far too large to finish in 50ms.
	body := `{"families":["path"],"sizes":[256],"schemes":["b"],"fault_rates":[0.2],"repeats":5000}`
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first sweep cell: %v", err)
	}

	cancel()

	// The stream must terminate promptly; whether the tail is an error
	// line (context cancelled) or a connection close is timing-dependent,
	// but it must not deliver the full 5000-cell grid.
	streamEnded := make(chan int, 1)
	go func() {
		cells := 1
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				streamEnded <- cells
				return
			}
			var sl client.SweepLine
			if json.Unmarshal([]byte(line), &sl) == nil && sl.Cell != nil {
				cells++
			}
		}
	}()
	select {
	case cells := <-streamEnded:
		if cells >= 5000 {
			t.Fatalf("deadline drain still delivered the whole %d-cell grid", cells)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep stream survived the drain deadline")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after deadline drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after deadline drain")
	}
}
