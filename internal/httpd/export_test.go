package httpd

// AcquireSweepSlot takes one slot of the bounded sweep pool exactly as a
// running sweep would, returning its release func. Test-only: it lets the
// saturation path be exercised deterministically instead of racing a real
// sweep's completion.
func (s *Server) AcquireSweepSlot() func() {
	s.sweepSem <- struct{}{}
	return func() { <-s.sweepSem }
}
