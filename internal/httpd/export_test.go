package httpd

// AcquireSweepSlot takes one slot of the bounded sweep pool exactly as a
// running sweep would, returning its release func. Test-only: it lets the
// saturation path be exercised deterministically instead of racing a real
// sweep's completion.
func (s *Server) AcquireSweepSlot() func() {
	s.sweepSem <- struct{}{}
	return func() { <-s.sweepSem }
}

// HandlerFunc re-exports the route-body signature for test routes.
type HandlerFunc = handlerFunc

// RegisterTestRoute mounts an extra handler behind the daemon's full
// middleware stack (metrics + panic recovery), attributed to the named
// metrics endpoint. Test-only: it lets middleware behavior — panic
// recovery in particular — be exercised without teaching a production
// handler to fail on demand.
func (s *Server) RegisterTestRoute(pattern, endpoint string, h HandlerFunc) {
	s.mux.Handle(pattern, s.instrumented(endpoint, h))
}

// PanicsTotal reads the recovered-panic counter.
func (s *Server) PanicsTotal() uint64 { return s.panics.Load() }
