package httpd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"

	"radiobcast"
	"radiobcast/client"
	"radiobcast/internal/graph"
)

// httpErr carries a pre-mapped (status, code, message) triple through the
// handler helpers.
type httpErr struct {
	status int
	code   string
	msg    string
}

func (e *httpErr) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpErr {
	return &httpErr{http.StatusBadRequest, "bad_request", fmt.Sprintf(format, args...)}
}

func limitExceeded(format string, args ...any) *httpErr {
	return &httpErr{http.StatusBadRequest, "limit_exceeded", fmt.Sprintf(format, args...)}
}

// writeError emits the canonical JSON error body and returns the status
// for the metrics layer.
func writeError(w http.ResponseWriter, status int, code, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(client.ErrorBody{Error: client.ErrorDetail{Code: code, Message: msg}})
	return status
}

func (e *httpErr) write(w http.ResponseWriter) int {
	return writeError(w, e.status, e.code, e.msg)
}

// writeFacadeError maps a facade error (typed sentinel, cancellation, …)
// to its stable code and writes it.
func writeFacadeError(w http.ResponseWriter, err error) int {
	status, code := mapError(err)
	msg := err.Error()
	if code == "internal" {
		msg = "internal error" // never leak unclassified error text
	}
	return writeError(w, status, code, msg)
}

func writeJSON(w http.ResponseWriter, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
	return http.StatusOK
}

// decodeJSON strictly decodes the request body into v; on failure it has
// already written the error and returns the status (0 on success).
// Unknown fields are rejected — a typoed "schema" must not silently
// become a default run.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) int {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return writeError(w, http.StatusRequestEntityTooLarge, "limit_exceeded",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		}
		return writeError(w, http.StatusBadRequest, "bad_request", "decoding request: "+err.Error())
	}
	return 0
}

// buildNetwork realizes a GraphSpec under the server's size limits.
func (s *Server) buildNetwork(spec client.GraphSpec) (*radiobcast.Network, *httpErr) {
	switch {
	case spec.Family != "" && len(spec.Edges) > 0:
		return nil, badRequest("graph spec has both a family and an edge list; send one")
	case spec.Family != "":
		if spec.N > s.cfg.MaxGraphN {
			return nil, limitExceeded("graph size %d exceeds the limit of %d nodes", spec.N, s.cfg.MaxGraphN)
		}
		net, err := radiobcast.Family(spec.Family, spec.N)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if net.Graph.N() > s.cfg.MaxGraphN {
			return nil, limitExceeded("family %q rounded n to %d, exceeding the limit of %d nodes",
				spec.Family, net.Graph.N(), s.cfg.MaxGraphN)
		}
		return net, nil
	case len(spec.Edges) > 0:
		n := spec.Nodes
		for _, e := range spec.Edges {
			if e[0] < 0 || e[1] < 0 {
				return nil, badRequest("edge {%d,%d} has a negative endpoint", e[0], e[1])
			}
			if e[0] == e[1] {
				return nil, badRequest("self-loop {%d,%d} is not a radio link", e[0], e[1])
			}
			n = max(n, e[0]+1, e[1]+1)
		}
		if n > s.cfg.MaxGraphN {
			return nil, limitExceeded("graph size %d exceeds the limit of %d nodes", n, s.cfg.MaxGraphN)
		}
		g := graph.New(n)
		for _, e := range spec.Edges {
			g.AddEdge(e[0], e[1])
		}
		if !g.IsConnected() {
			return nil, badRequest("graph is not connected (%d nodes, %d edges)", g.N(), g.M())
		}
		return radiobcast.NewNetwork(g), nil
	default:
		return nil, badRequest("graph spec needs a family or an edge list")
	}
}

// handleLabel computes (or cache-hits) a labeling and returns the binary
// wire format. The metadata envelope travels as the Radiobcast-Meta
// header; clients that ask "Accept: application/json" instead get a JSON
// envelope with the blob base64-encoded.
func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) int {
	var req client.LabelRequest
	if code := decodeJSON(w, r, &req); code != 0 {
		return code
	}
	net, herr := s.buildNetwork(req.Graph)
	if herr != nil {
		return herr.write(w)
	}
	net.At(req.Source).Coordinated(req.Coordinator)
	l, err := s.sess.Label(r.Context(), net, req.Scheme)
	if err != nil {
		return writeFacadeError(w, err)
	}
	blob, err := l.MarshalBinary()
	if err != nil {
		return writeFacadeError(w, err)
	}
	meta := client.LabelMeta{
		Scheme: l.Scheme, N: l.Graph.N(), M: l.Graph.M(), Source: l.Source,
		Bits: l.Bits(), Distinct: l.Distinct(), Bytes: len(blob),
	}
	if wantsJSON(r) {
		return writeJSON(w, client.LabelEnvelope{Meta: meta, Labeling: blob})
	}
	metaJSON, _ := json.Marshal(meta)
	w.Header().Set("Content-Type", radiobcast.LabelingContentType)
	w.Header().Set(client.MetaHeader, string(metaJSON))
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
	return http.StatusOK
}

func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// handleRun labels (through the Session cache) and executes one
// broadcast, answering the Outcome as JSON.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) int {
	var req client.RunRequest
	if code := decodeJSON(w, r, &req); code != 0 {
		return code
	}
	if req.FaultRate < 0 || req.FaultRate >= 1 {
		return badRequest("fault_rate %g outside [0,1)", req.FaultRate).write(w)
	}
	if req.Fault != nil && req.FaultRate > 0 {
		return badRequest("request has both fault_rate and fault; send one").write(w)
	}
	if req.MaxRounds > s.cfg.MaxRounds {
		return limitExceeded("max_rounds %d exceeds the limit of %d", req.MaxRounds, s.cfg.MaxRounds).write(w)
	}
	net, herr := s.buildNetwork(req.Graph)
	if herr != nil {
		return herr.write(w)
	}
	net.At(req.Source).Coordinated(req.Coordinator)
	var opts []radiobcast.Option
	if req.Mu != "" {
		opts = append(opts, radiobcast.WithMessage(req.Mu))
	}
	if req.MaxRounds > 0 {
		opts = append(opts, radiobcast.WithMaxRounds(req.MaxRounds))
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	faulty := false
	switch {
	case req.Fault != nil:
		fs := *req.Fault
		if fs.Seed == 0 {
			fs.Seed = seed
		}
		// An invalid spec surfaces as bad_fault_spec from the facade.
		opts = append(opts, radiobcast.WithFaultSpec(fs))
		faulty = true
	case req.FaultRate > 0:
		opts = append(opts, radiobcast.FaultRate(req.FaultRate, seed))
		faulty = true
	}
	out, err := s.sess.Run(r.Context(), net, req.Scheme, opts...)
	if err != nil {
		return writeFacadeError(w, err)
	}
	return writeJSON(w, outcomeJSON(out, faulty))
}

// handleRunLabeled executes a broadcast over an uploaded wire-format
// labeling; run options arrive as query parameters (the body is the
// labeling itself).
func (s *Server) handleRunLabeled(w http.ResponseWriter, r *http.Request) int {
	if ct := r.Header.Get("Content-Type"); ct != "" &&
		ct != radiobcast.LabelingContentType && ct != "application/octet-stream" {
		return writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
			fmt.Sprintf("run-labeled takes a %s body, got %q", radiobcast.LabelingContentType, ct))
	}
	l, err := radiobcast.ReadLabeling(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return writeError(w, http.StatusRequestEntityTooLarge, "limit_exceeded",
				fmt.Sprintf("labeling exceeds %d bytes", mbe.Limit))
		}
		return writeError(w, http.StatusBadRequest, "bad_request", "decoding labeling: "+err.Error())
	}
	if l.Graph.N() > s.cfg.MaxGraphN {
		return limitExceeded("labeling's graph has %d nodes, exceeding the limit of %d", l.Graph.N(), s.cfg.MaxGraphN).write(w)
	}
	var opts []radiobcast.Option
	q := r.URL.Query()
	if v := q.Get("source"); v != "" {
		src, err := strconv.Atoi(v)
		if err != nil {
			return badRequest("bad source %q", v).write(w)
		}
		opts = append(opts, radiobcast.WithSource(src))
	}
	if v := q.Get("mu"); v != "" {
		opts = append(opts, radiobcast.WithMessage(v))
	}
	if v := q.Get("max_rounds"); v != "" {
		mr, err := strconv.Atoi(v)
		if err != nil {
			return badRequest("bad max_rounds %q", v).write(w)
		}
		if mr > s.cfg.MaxRounds {
			return limitExceeded("max_rounds %d exceeds the limit of %d", mr, s.cfg.MaxRounds).write(w)
		}
		opts = append(opts, radiobcast.WithMaxRounds(mr))
	}
	out, err := s.sess.RunLabeled(r.Context(), l, opts...)
	if err != nil {
		return writeFacadeError(w, err)
	}
	return writeJSON(w, outcomeJSON(out, false))
}

// handleSweep validates the grid, takes a slot of the bounded sweep pool
// (answering 429 + Retry-After when saturated — the pool never queues),
// and streams cells as NDJSON in completion order straight off
// Session.Sweep's iterator. Client disconnect cancels through the request
// context; the paid-for prefix is whatever was already flushed.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) int {
	var req client.SweepRequest
	if code := decodeJSON(w, r, &req); code != 0 {
		return code
	}
	spec := radiobcast.SweepSpec{
		Families: req.Families, Sizes: req.Sizes, Schemes: req.Schemes,
		Sources: req.Sources, FaultRates: req.FaultRates, Faults: req.Faults,
		Repeats: req.Repeats,
		Mu:      req.Mu, MaxRounds: req.MaxRounds, Seed: req.Seed,
		Workers: s.cfg.SweepWorkers,
	}
	if herr := s.validateSweep(&req); herr != nil {
		return herr.write(w)
	}

	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusTooManyRequests, "saturated",
			fmt.Sprintf("all %d sweep slots busy; retry later", cap(s.sweepSem)))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	cells := 0
	for res, err := range s.sess.Sweep(r.Context(), spec) {
		if err != nil {
			// Whole-sweep failure (cancellation, closed session): the
			// status line already went out, so the error travels as the
			// final NDJSON line.
			_, code := mapError(err)
			_ = enc.Encode(client.SweepLine{Error: &client.ErrorDetail{Code: code, Message: err.Error()}})
			_ = rc.Flush()
			return http.StatusOK
		}
		if err := enc.Encode(client.SweepLine{Cell: cellJSON(res)}); err != nil {
			return http.StatusOK // client went away; ctx cancellation stops the pool
		}
		cells++
		_ = rc.Flush()
	}
	_ = enc.Encode(client.SweepLine{Done: &client.SweepSummary{Cells: cells}})
	_ = rc.Flush()
	return http.StatusOK
}

// validateSweep front-loads every check that should 4xx before the
// streaming response commits to a 200.
func (s *Server) validateSweep(req *client.SweepRequest) *httpErr {
	if len(req.Families) == 0 || len(req.Sizes) == 0 || len(req.Schemes) == 0 {
		return badRequest("sweep needs at least one family, size and scheme")
	}
	known := radiobcast.FamilyNames()
	for _, f := range req.Families {
		if !slices.Contains(known, f) {
			return badRequest("unknown graph family %q (known: %v)", f, known)
		}
	}
	for _, sch := range req.Schemes {
		if _, ok := radiobcast.Lookup(sch); !ok {
			return &httpErr{http.StatusBadRequest, "unknown_scheme",
				fmt.Sprintf("unknown scheme %q (registered: %v)", sch, radiobcast.SchemeNames())}
		}
	}
	for _, n := range req.Sizes {
		if n > s.cfg.MaxGraphN {
			return limitExceeded("graph size %d exceeds the limit of %d nodes", n, s.cfg.MaxGraphN)
		}
	}
	for _, rate := range req.FaultRates {
		if rate < 0 || rate >= 1 {
			return badRequest("fault_rate %g outside [0,1)", rate)
		}
	}
	for i, fs := range req.Faults {
		if err := fs.Validate(); err != nil {
			return &httpErr{http.StatusBadRequest, "bad_fault_spec",
				fmt.Sprintf("faults[%d]: %v", i, err)}
		}
	}
	if req.MaxRounds > s.cfg.MaxRounds {
		return limitExceeded("max_rounds %d exceeds the limit of %d", req.MaxRounds, s.cfg.MaxRounds)
	}
	cells := len(req.Families) * len(req.Sizes) * len(req.Schemes) *
		max(1, len(req.Sources)) * max(1, len(req.FaultRates)+len(req.Faults)) * max(1, req.Repeats)
	if cells > s.cfg.MaxSweepCells {
		return limitExceeded("sweep grid has %d cells, exceeding the limit of %d", cells, s.cfg.MaxSweepCells)
	}
	return nil
}

func cellJSON(res radiobcast.CellResult) *client.SweepCellResult {
	c := &client.SweepCellResult{
		Family: res.Cell.Family, Size: res.Cell.Size, Scheme: res.Cell.Scheme,
		Source: res.Cell.Source, FaultRate: res.Cell.FaultRate, Fault: res.Cell.Fault,
		Repeat: res.Cell.Repeat,
		Index:  res.Index, N: res.N, Verified: res.Verified,
	}
	if res.Outcome != nil {
		c.AllInformed = res.Outcome.AllInformed
		c.CompletionRound = res.Outcome.CompletionRound
		c.Coverage = res.Outcome.Coverage
		c.Degraded = string(res.Outcome.Degraded)
		if res.Outcome.Result != nil {
			c.Rounds = res.Outcome.Result.Rounds
		}
	}
	if res.Err != nil {
		c.Error = res.Err.Error()
	}
	return c
}

func outcomeJSON(out *radiobcast.Outcome, faulty bool) *client.RunResponse {
	resp := &client.RunResponse{
		Scheme: out.Scheme, N: out.Graph.N(), M: out.Graph.M(),
		Source: out.Source, Mu: out.Mu,
		AllInformed: out.AllInformed, CompletionRound: out.CompletionRound,
		Coverage: out.Coverage, Degraded: string(out.Degraded),
		AckRound: out.AckRound,
	}
	if out.Result != nil {
		resp.Rounds = out.Result.Rounds
		resp.TotalTransmissions = out.Result.TotalTransmissions
		resp.MaxMessageBits = out.Result.MaxMessageBits
		resp.Interrupted = out.Result.Interrupted
	}
	if out.Labeling != nil {
		resp.LabelBits = out.Labeling.Bits()
	}
	if !faulty && !resp.Interrupted {
		if err := radiobcast.Verify(out); err != nil {
			resp.VerifyError = err.Error()
		} else {
			resp.Verified = true
		}
	}
	return resp
}
