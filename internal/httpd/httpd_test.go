// Endpoint-level tests of the daemon: every route through a real
// httptest server, driven by the typed client where one exists — so the
// wire contract is exercised from both ends at once.
package httpd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"radiobcast"
	"radiobcast/client"
	"radiobcast/internal/httpd"
)

// newTestServer builds a daemon with rate limiting off (tests hammer from
// one address) and returns it with an httptest server and a typed client.
func newTestServer(t *testing.T, cfg httpd.Config) (*httpd.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.RatePerSec == 0 {
		cfg.RatePerSec = -1
	}
	srv := httpd.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, client.New(ts.URL)
}

func TestHealthzReadyz(t *testing.T) {
	srv, _, c := newTestServer(t, httpd.Config{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}
	srv.StartDrain()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz while draining must stay 200 (liveness): %v", err)
	}
	err := c.Ready(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: err = %v, want 503", err)
	}
}

func TestLabelBinary(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{})
	l, meta, err := c.Label(context.Background(), client.LabelRequest{
		Graph:  client.GraphSpec{Family: "grid", N: 25},
		Scheme: "b",
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheme != "b" || l.Graph.N() != 25 {
		t.Fatalf("labeling = scheme %q n=%d, want b n=25", l.Scheme, l.Graph.N())
	}
	if meta.N != 25 || meta.Bits == 0 || meta.Bytes == 0 || meta.Scheme != "b" {
		t.Fatalf("meta envelope = %+v", meta)
	}
	// The downloaded artifact must actually run.
	out, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		t.Fatalf("downloaded labeling failed verification: %v", err)
	}
}

func TestLabelJSONEnvelope(t *testing.T) {
	_, ts, _ := newTestServer(t, httpd.Config{})
	body := `{"graph":{"family":"path","n":8},"scheme":"back"}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/label", strings.NewReader(body))
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var env client.LabelEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Meta.Scheme != "back" || env.Meta.N != 8 || len(env.Labeling) != env.Meta.Bytes {
		t.Fatalf("envelope meta %+v with %d blob bytes", env.Meta, len(env.Labeling))
	}
	var l radiobcast.Labeling
	if err := l.UnmarshalBinary(env.Labeling); err != nil {
		t.Fatalf("base64 blob does not decode: %v", err)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{MaxRounds: 1000, MaxGraphN: 100})
	ctx := context.Background()
	for _, tc := range []struct {
		name     string
		req      client.RunRequest
		wantCode string // "" = success
	}{
		{"grid b", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 64}, Scheme: "b", Mu: "hello"}, ""},
		{"figure1 back", client.RunRequest{Graph: client.GraphSpec{Family: "figure1"}, Scheme: "back"}, ""},
		{"explicit edges", client.RunRequest{Graph: client.GraphSpec{Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}, Scheme: "b"}, ""},
		{"faulty run", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 25}, Scheme: "b", FaultRate: 0.2}, ""},
		{"unknown scheme", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "nope"}, "unknown_scheme"},
		{"unknown family", client.RunRequest{Graph: client.GraphSpec{Family: "toroid", N: 16}, Scheme: "b"}, "bad_request"},
		{"source out of range", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b", Source: 99}, "node_out_of_range"},
		{"empty graph spec", client.RunRequest{Scheme: "b"}, "bad_request"},
		{"family and edges", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 9, Edges: [][2]int{{0, 1}}}, Scheme: "b"}, "bad_request"},
		{"disconnected edges", client.RunRequest{Graph: client.GraphSpec{Edges: [][2]int{{0, 1}, {2, 3}}}, Scheme: "b"}, "bad_request"},
		{"self loop", client.RunRequest{Graph: client.GraphSpec{Edges: [][2]int{{1, 1}}}, Scheme: "b"}, "bad_request"},
		{"fault rate 1", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b", FaultRate: 1}, "bad_request"},
		{"rounds over cap", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b", MaxRounds: 5000}, "limit_exceeded"},
		{"graph over cap", client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 900}, Scheme: "b"}, "limit_exceeded"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := c.Run(ctx, tc.req)
			if tc.wantCode == "" {
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if !out.AllInformed {
					// Faulty runs may legitimately fail to inform; only
					// fault-free runs must complete and verify.
					if tc.req.FaultRate == 0 {
						t.Fatalf("fault-free run did not inform everyone: %+v", out)
					}
				}
				if tc.req.FaultRate == 0 && !out.Verified {
					t.Fatalf("fault-free run not verified: %+v", out)
				}
				if tc.req.FaultRate > 0 && out.Verified {
					t.Fatalf("faulty run claims verification: %+v", out)
				}
				return
			}
			var ae *client.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("err = %v, want *APIError with code %q", err, tc.wantCode)
			}
			if ae.Code != tc.wantCode {
				t.Fatalf("code = %q (%s), want %q", ae.Code, ae.Message, tc.wantCode)
			}
			if ae.Status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", ae.Status)
			}
		})
	}
}

func TestRunLabeledEndpoint(t *testing.T) {
	_, ts, c := newTestServer(t, httpd.Config{})
	ctx := context.Background()
	net, err := radiobcast.Family("grid", 25)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.RunLabeled(ctx, l, client.RunLabeledParams{Mu: "shipped"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed || !out.Verified || out.Mu != "shipped" {
		t.Fatalf("run-labeled outcome: %+v", out)
	}

	// A wrong content type is refused before the body is read.
	resp, err := http.Post(ts.URL+"/v1/run-labeled", "text/csv", strings.NewReader("a,b"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/csv body: status = %d, want 415", resp.StatusCode)
	}

	// A corrupt blob is a 400 with a decode message, never a panic.
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1]++ // break the checksum
	resp, err = http.Post(ts.URL+"/v1/run-labeled", radiobcast.LabelingContentType, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var eb client.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
		t.Fatalf("corrupt blob: status=%d body=%+v", resp.StatusCode, eb)
	}
}

func TestRunLabeledBodyLimit(t *testing.T) {
	_, ts, _ := newTestServer(t, httpd.Config{MaxBodyBytes: 64})
	net, err := radiobcast.Family("grid", 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := radiobcast.WriteLabeling(&body, l); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run-labeled", radiobcast.LabelingContentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	var eb client.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Error.Code != "limit_exceeded" {
		t.Fatalf("oversized labeling: status=%d body=%+v", resp.StatusCode, eb)
	}
}

func TestSweepStream(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{})
	var mu sync.Mutex
	seen := map[int]bool{}
	cells, err := c.Sweep(context.Background(), client.SweepRequest{
		Families:   []string{"path", "grid"},
		Sizes:      []int{16},
		Schemes:    []string{"b", "back"},
		FaultRates: []float64{0, 0.1},
	}, func(cell client.SweepCellResult) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[cell.Index] {
			return fmt.Errorf("cell index %d streamed twice", cell.Index)
		}
		seen[cell.Index] = true
		if cell.FaultRate == 0 && !cell.Verified {
			return fmt.Errorf("fault-free cell %d not verified: %+v", cell.Index, cell)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 1 * 2 * 2; cells != want {
		t.Fatalf("streamed %d cells, want %d", cells, want)
	}
}

func TestSweepValidation(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{MaxSweepCells: 10})
	ctx := context.Background()
	for _, tc := range []struct {
		name     string
		req      client.SweepRequest
		wantCode string
	}{
		{"empty grid", client.SweepRequest{}, "bad_request"},
		{"unknown scheme", client.SweepRequest{Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"nope"}}, "unknown_scheme"},
		{"unknown family", client.SweepRequest{Families: []string{"toroid"}, Sizes: []int{8}, Schemes: []string{"b"}}, "bad_request"},
		{"grid too big", client.SweepRequest{Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"}, Repeats: 100}, "limit_exceeded"},
		{"bad fault rate", client.SweepRequest{Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"}, FaultRates: []float64{2}}, "bad_request"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Sweep(ctx, tc.req, nil)
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.Code != tc.wantCode {
				t.Fatalf("err = %v, want code %q", err, tc.wantCode)
			}
			// Validation failures must 4xx before the stream commits to 200.
			if ae.Status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", ae.Status)
			}
		})
	}
}

// TestSweepSaturation pins the backpressure contract: with every sweep
// slot occupied, the next sweep is refused with 429 + Retry-After instead
// of queueing, and a freed slot makes the identical request succeed.
func TestSweepSaturation(t *testing.T) {
	srv, _, c := newTestServer(t, httpd.Config{MaxConcurrentSweeps: 1})
	release := srv.AcquireSweepSlot()

	small := client.SweepRequest{Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"}}
	_, err := c.Sweep(context.Background(), small, nil)
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("saturated sweep: err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.Code != "saturated" {
		t.Fatalf("saturated sweep: %+v", ae)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("saturated sweep carries no Retry-After: %+v", ae)
	}

	release()
	if _, err := c.Sweep(context.Background(), small, nil); err != nil {
		t.Fatalf("sweep after slot freed: %v", err)
	}
}

func TestRateLimitEndpointRejects(t *testing.T) {
	// Tiny refill rate, burst of 3: the 4th rapid request must be turned
	// away with 429, a rate_limited code and a Retry-After hint.
	_, _, c := newTestServer(t, httpd.Config{RatePerSec: 0.01, RateBurst: 3})
	ctx := context.Background()
	var limited *client.APIError
	for i := 0; i < 6; i++ {
		if err := c.Ready(ctx); err != nil {
			t.Fatalf("readyz must not be rate limited: %v", err)
		}
		_, err := c.Run(ctx, client.RunRequest{Graph: client.GraphSpec{Family: "path", N: 8}, Scheme: "b"})
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Code == "rate_limited" {
			limited = ae
			break
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if limited == nil {
		t.Fatal("6 rapid requests against burst 3 never hit the rate limit")
	}
	if limited.Status != http.StatusTooManyRequests || limited.RetryAfter < time.Second {
		t.Fatalf("rate-limited response: %+v", limited)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Run(ctx, client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Run(ctx, client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "nope"}); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`radiobcastd_requests_total{endpoint="run",code="200"} 3`,
		`radiobcastd_requests_total{endpoint="run",code="400"} 1`,
		`radiobcastd_session_cache_hits_total 2`,
		`radiobcastd_session_cache_misses_total 1`,
		`radiobcastd_session_cache_entries 1`,
		`radiobcastd_in_flight{endpoint="run"} 0`,
		`radiobcastd_sweep_slots 2`,
		`radiobcastd_draining 0`,
		`# TYPE radiobcastd_requests_total counter`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if !strings.Contains(text, `radiobcastd_request_seconds_count{endpoint="run"} 4`) {
		t.Errorf("latency summary missing or wrong count:\n%s", text)
	}
}

// TestConcurrentRuns drives /v1/run from many clients at once against a
// cache-warm Session — the steady serving state — and is the test the
// -race CI job leans on.
func TestConcurrentRuns(t *testing.T) {
	srv, _, c := newTestServer(t, httpd.Config{})
	ctx := context.Background()
	warm := client.RunRequest{Graph: client.GraphSpec{Family: "grid", N: 64}, Scheme: "b"}
	if _, err := c.Run(ctx, warm); err != nil {
		t.Fatal(err)
	}
	const clients, runs = 8, 5
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < runs; j++ {
				out, err := c.Run(ctx, warm)
				if err != nil {
					t.Errorf("concurrent run: %v", err)
					return
				}
				if !out.Verified {
					t.Errorf("concurrent run not verified: %+v", out)
					return
				}
			}
		}()
	}
	wg.Wait()
	if hits := srv.Session().CacheHits(); hits < clients*runs {
		t.Fatalf("cache hits = %d after %d cache-warm runs", hits, clients*runs)
	}
}
