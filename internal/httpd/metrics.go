package httpd

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the daemon's hand-rolled Prometheus registry: per-endpoint
// request/latency/in-flight counters plus whatever gauges the render
// callback adds (Session cache counters, drain state, sweep slots). No
// client library — the text exposition format is a dozen lines of
// fmt.Fprintf, and the daemon's dependency budget is zero.
type metrics struct {
	endpoints map[string]*endpointMetrics // fixed at construction; read-only after
}

// endpointMetrics counts one route. Requests are keyed by status code so
// dashboards can separate 200s from 429s and 503s.
type endpointMetrics struct {
	inFlight atomic.Int64
	seconds  atomicFloat // latency sum, seconds
	count    atomic.Uint64

	mu    sync.Mutex
	codes map[int]*atomic.Uint64
}

// atomicFloat accumulates float64 seconds with a CAS loop — latency sums
// need fractions, and the scrape path may race with request completions.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func newMetrics(endpoints []string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{codes: make(map[int]*atomic.Uint64)}
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics { return m.endpoints[name] }

// observe records one finished request.
func (e *endpointMetrics) observe(code int, d time.Duration) {
	e.seconds.add(d.Seconds())
	e.count.Add(1)
	e.mu.Lock()
	c, ok := e.codes[code]
	if !ok {
		c = new(atomic.Uint64)
		e.codes[code] = c
	}
	e.mu.Unlock()
	c.Add(1)
}

// gauge is one extra metric the server contributes at scrape time.
type gauge struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value float64
}

// render writes the Prometheus text exposition format: the per-endpoint
// families first, then the extra gauges, everything sorted so scrapes are
// diffable.
func (m *metrics) render(w *strings.Builder, extra []gauge) {
	names := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		names = append(names, ep)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP radiobcastd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE radiobcastd_requests_total counter\n")
	for _, ep := range names {
		e := m.endpoints[ep]
		e.mu.Lock()
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "radiobcastd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.codes[c].Load())
		}
		e.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP radiobcastd_in_flight Requests currently being served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE radiobcastd_in_flight gauge\n")
	for _, ep := range names {
		fmt.Fprintf(w, "radiobcastd_in_flight{endpoint=%q} %d\n", ep, m.endpoints[ep].inFlight.Load())
	}

	fmt.Fprintf(w, "# HELP radiobcastd_request_seconds Cumulative request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE radiobcastd_request_seconds summary\n")
	for _, ep := range names {
		e := m.endpoints[ep]
		fmt.Fprintf(w, "radiobcastd_request_seconds_sum{endpoint=%q} %g\n", ep, e.seconds.load())
		fmt.Fprintf(w, "radiobcastd_request_seconds_count{endpoint=%q} %d\n", ep, e.count.Load())
	}

	for _, g := range extra {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", g.name, g.typ)
		fmt.Fprintf(w, "%s %g\n", g.name, g.value)
	}
}
