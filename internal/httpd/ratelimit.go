package httpd

import (
	"math"
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each key (remote host) earns
// rate tokens per second up to burst, and every request spends one. It is
// deliberately hand-rolled — the daemon takes no dependencies — and sized
// for the daemon's threat model: keeping one hot client from starving the
// Session, not withstanding a distributed flood (that is the load
// balancer's job).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-client map: when an eviction sweep is due,
// every bucket that has refilled to burst (an idle client) is dropped.
// A client evicted this way re-enters with a full bucket, so eviction
// never penalizes anyone.
const maxBuckets = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token of key's bucket. When the bucket is empty it
// reports false and how long until a token accrues — the Retry-After
// value, rounded up to whole seconds by the caller.
func (rl *rateLimiter) allow(key string) (bool, time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= maxBuckets {
			rl.evictIdleLocked()
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+rl.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// evictIdleLocked drops every bucket that has refilled to burst. Called
// with rl.mu held, only on the (rare) insert path past maxBuckets.
func (rl *rateLimiter) evictIdleLocked() {
	now := rl.now()
	for k, b := range rl.buckets {
		if math.Min(rl.burst, b.tokens+rl.rate*now.Sub(b.last).Seconds()) >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}

// clientKey extracts the rate-limit key from a RemoteAddr: the host
// without the ephemeral port, so one client's connections share a bucket.
func clientKey(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}
