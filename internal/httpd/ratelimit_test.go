package httpd

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a rateLimiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rate float64, burst int) (*rateLimiter, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(rate, burst)
	rl.now = clock.now
	return rl, clock
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	rl, clock := newTestLimiter(2, 3) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, wait := rl.allow("a")
	if ok {
		t.Fatal("4th instantaneous request allowed past burst 3")
	}
	if want := 500 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v (one token at 2/s)", wait, want)
	}

	// Half a second accrues exactly the one token owed.
	clock.advance(500 * time.Millisecond)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("request refused after refill interval")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("second request allowed off a single refilled token")
	}

	// A long idle stretch caps at burst, not unbounded credit.
	clock.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("request %d refused after idle refill to burst", i)
		}
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("idle bucket accrued more than burst")
	}
}

func TestRateLimiterKeysIndependent(t *testing.T) {
	rl, _ := newTestLimiter(1, 1)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("first a refused")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("second a allowed past burst 1")
	}
	if ok, _ := rl.allow("b"); !ok {
		t.Fatal("b starved by a's bucket")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	rl, clock := newTestLimiter(10, 2)
	for i := 0; i < maxBuckets; i++ {
		rl.allow(fmt.Sprintf("client-%d", i))
	}
	if got := len(rl.buckets); got != maxBuckets {
		t.Fatalf("bucket count = %d, want %d", got, maxBuckets)
	}

	// Everyone has long since refilled to burst: the next new client's
	// insert sweeps the idle buckets out.
	clock.advance(time.Minute)
	if ok, _ := rl.allow("newcomer"); !ok {
		t.Fatal("newcomer refused")
	}
	if got := len(rl.buckets); got != 1 {
		t.Fatalf("bucket count after idle eviction = %d, want 1", got)
	}

	// An active (non-full) bucket survives the sweep.
	rl.allow("busy")
	rl.allow("busy") // bucket now below burst
	for i := 0; i < maxBuckets; i++ {
		rl.allow(fmt.Sprintf("wave2-%d", i))
	}
	clock.advance(50 * time.Millisecond) // busy refills 0.5 of 2 — still below burst
	rl.allow("trigger")
	if _, ok := rl.buckets["busy"]; !ok {
		t.Fatal("active bucket evicted by idle sweep")
	}
}

func TestClientKey(t *testing.T) {
	for in, want := range map[string]string{
		"10.0.0.7:51234":    "10.0.0.7",
		"[::1]:8080":        "::1",
		"no-port-proxy-key": "no-port-proxy-key",
	} {
		if got := clientKey(in); got != want {
			t.Errorf("clientKey(%q) = %q, want %q", in, got, want)
		}
	}
}
