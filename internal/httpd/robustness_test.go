// Robustness tests of the daemon: the panic-recovery middleware and the
// fault-model request schema.
package httpd_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"radiobcast"
	"radiobcast/client"
	"radiobcast/internal/httpd"
)

// TestPanicRecovery pins the middleware contract: a panicking handler
// answers 500 with the stable "internal" code, bumps
// radiobcastd_panics_total, and leaves the daemon serving.
func TestPanicRecovery(t *testing.T) {
	srv, ts, c := newTestServer(t, httpd.Config{})
	srv.RegisterTestRoute("GET /boom", "healthz", func(w http.ResponseWriter, r *http.Request) int {
		panic("handler exploded")
	})
	srv.RegisterTestRoute("GET /boom-late", "healthz", func(w http.ResponseWriter, r *http.Request) int {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "partial")
		panic("exploded after committing")
	})

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"internal"`) {
		t.Fatalf("panicking handler body = %q, want the canonical internal error", body)
	}

	// A panic after the response committed cannot rewrite the status, but
	// it must still be recovered and counted.
	resp, err = http.Get(ts.URL + "/boom-late")
	if err != nil {
		t.Fatalf("GET /boom-late: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("committed-then-panicked handler: status = %d, want the already-sent 200", resp.StatusCode)
	}

	if got := srv.PanicsTotal(); got != 2 {
		t.Fatalf("PanicsTotal = %d, want 2", got)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "radiobcastd_panics_total 2") {
		t.Fatalf("metrics missing panic counter:\n%s", text)
	}
	// The daemon keeps serving real work after both panics.
	out, err := c.Run(context.Background(), client.RunRequest{
		Graph: client.GraphSpec{Family: "grid", N: 16}, Scheme: "b",
	})
	if err != nil || !out.Verified {
		t.Fatalf("run after panics: out=%+v err=%v", out, err)
	}
}

// TestRunFaultSpec exercises the fault-model request schema end to end:
// valid specs run (unverified, with coverage and a degradation grade),
// invalid ones answer 400 bad_fault_spec, and the legacy fault_rate field
// cannot be combined with a spec.
func TestRunFaultSpec(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{})
	ctx := context.Background()
	grid := client.GraphSpec{Family: "grid", N: 25}

	out, err := c.Run(ctx, client.RunRequest{
		Graph: grid, Scheme: "b",
		Fault: &radiobcast.FaultSpec{Model: radiobcast.FaultModelJam, Greedy: true, Budget: 5, Seed: 3},
	})
	if err != nil {
		t.Fatalf("jam run: %v", err)
	}
	if out.Verified {
		t.Fatalf("faulted run claims verification: %+v", out)
	}
	if out.Coverage <= 0 || out.Coverage > 1 || out.Degraded == "" {
		t.Fatalf("jam run carries no degradation metrics: %+v", out)
	}

	// The boundary case rides the spec path: rate 1 jams every
	// transmission, so nobody beyond the source hears anything.
	out, err = c.Run(ctx, client.RunRequest{
		Graph: grid, Scheme: "b",
		Fault: &radiobcast.FaultSpec{Model: radiobcast.FaultModelRate, Rate: 1, Seed: 1},
	})
	if err != nil {
		t.Fatalf("rate-1 run: %v", err)
	}
	if out.AllInformed || out.Degraded != string(radiobcast.DegradedTotal) {
		t.Fatalf("rate-1 run should be total degradation: %+v", out)
	}

	for name, req := range map[string]client.RunRequest{
		"unknown model": {Graph: grid, Scheme: "b", Fault: &radiobcast.FaultSpec{Model: "nope"}},
		"bad duty":      {Graph: grid, Scheme: "b", Fault: &radiobcast.FaultSpec{Model: radiobcast.FaultModelDuty, Period: 0}},
	} {
		_, err := c.Run(ctx, req)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != "bad_fault_spec" || ae.Status != http.StatusBadRequest {
			t.Fatalf("%s: err = %v, want 400 bad_fault_spec", name, err)
		}
	}

	_, err = c.Run(ctx, client.RunRequest{
		Graph: grid, Scheme: "b", FaultRate: 0.2,
		Fault: &radiobcast.FaultSpec{Model: radiobcast.FaultModelRate, Rate: 0.2},
	})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "bad_request" {
		t.Fatalf("fault_rate+fault together: err = %v, want 400 bad_request", err)
	}
}

// TestSweepFaultsAxis streams a sweep whose grid includes the Faults
// axis and checks the cells carry their fault labels and degradation
// metrics.
func TestSweepFaultsAxis(t *testing.T) {
	_, _, c := newTestServer(t, httpd.Config{})
	byFault := map[string]int{}
	cells, err := c.Sweep(context.Background(), client.SweepRequest{
		Families:   []string{"grid"},
		Sizes:      []int{16},
		Schemes:    []string{"b"},
		FaultRates: []float64{0},
		Faults: []radiobcast.FaultSpec{
			{Model: radiobcast.FaultModelCrash, Rate: 0.1, Down: 2, Seed: 5},
			{Model: radiobcast.FaultModelDuty, Period: 4, On: 3, Seed: 2},
		},
	}, func(cell client.SweepCellResult) error {
		byFault[cell.Fault]++
		if cell.Fault == "" {
			if !cell.Verified {
				t.Errorf("clean cell not verified: %+v", cell)
			}
			return nil
		}
		if cell.Verified {
			t.Errorf("faulted cell %q claims verification: %+v", cell.Fault, cell)
		}
		if cell.Coverage <= 0 || cell.Degraded == "" {
			t.Errorf("faulted cell %q missing degradation metrics: %+v", cell.Fault, cell)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells != 3 {
		t.Fatalf("streamed %d cells, want 3 (clean + crash + duty)", cells)
	}
	if byFault[""] != 1 || byFault["crash"] != 1 || byFault["duty"] != 1 {
		t.Fatalf("fault labels off: %v", byFault)
	}

	// An invalid spec fails validation before the stream commits to 200.
	_, err = c.Sweep(context.Background(), client.SweepRequest{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"b"},
		Faults: []radiobcast.FaultSpec{{Model: "warp"}},
	}, nil)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "bad_fault_spec" || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad sweep fault spec: err = %v, want 400 bad_fault_spec", err)
	}
}
