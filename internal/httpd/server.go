// Package httpd is radiobcastd's serving layer: an HTTP/JSON daemon
// wrapping one shared radiobcast.Session — the paper's central monitor
// with a network face. Labelings travel in the binary wire format
// (radiobcast.LabelingContentType), outcomes as JSON, sweeps as an NDJSON
// stream off Session.Sweep's iterator; the request/response types live in
// the public radiobcast/client package, which is also the typed consumer.
//
// The cross-cutting machinery lives here rather than in handlers:
// per-client token-bucket rate limiting, a bounded semaphore on
// concurrent sweeps (saturation answers 429 + Retry-After instead of
// queueing unboundedly), request size and round limits, Prometheus-text
// metrics, and graceful drain — on shutdown readiness flips to 503,
// in-flight runs finish under a deadline through the facade's context
// plumbing, then the listener closes and the Session drains.
package httpd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"radiobcast"
)

// Config tunes a Server. The zero value serves with the documented
// defaults; set a field negative (where meaningful) to disable the
// corresponding guard.
type Config struct {
	// Addr is the listen address of ListenAndServe (default ":8080").
	Addr string
	// Session is the shared serving object; nil means "create one".
	Session *radiobcast.Session

	// MaxBodyBytes bounds every request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxGraphN bounds the node count of any requested or uploaded graph
	// (default 1 << 20).
	MaxGraphN int
	// MaxRounds bounds a request's max_rounds override (default 1 << 20).
	MaxRounds int
	// MaxSweepCells bounds a sweep request's grid size (default 65536).
	MaxSweepCells int

	// MaxConcurrentSweeps bounds the sweeps running at once; a saturated
	// pool answers 429 + Retry-After (default 2).
	MaxConcurrentSweeps int
	// SweepWorkers is the worker-pool size of each sweep (default 0 =
	// GOMAXPROCS). The client does not get a say: the server owns its CPU
	// budget.
	SweepWorkers int

	// RatePerSec and RateBurst shape the per-client token bucket over the
	// /v1/ endpoints (defaults 50 and 100; RatePerSec < 0 disables).
	RatePerSec float64
	RateBurst  int

	// RequestTimeout bounds each non-streaming /v1/ request (label, run,
	// run-labeled) through the request context; 0 means no limit. Sweeps
	// are exempt — they stream for as long as the grid takes, bounded by
	// MaxSweepCells and client disconnect.
	RequestTimeout time.Duration

	// DrainTimeout bounds the graceful-drain phase of Serve: how long
	// in-flight requests get to finish after shutdown begins before their
	// contexts are cancelled (default 10s).
	DrainTimeout time.Duration

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Addr == "" {
		d.Addr = ":8080"
	}
	if d.MaxBodyBytes == 0 {
		d.MaxBodyBytes = 8 << 20
	}
	if d.MaxGraphN == 0 {
		d.MaxGraphN = 1 << 20
	}
	if d.MaxRounds == 0 {
		d.MaxRounds = 1 << 20
	}
	if d.MaxSweepCells == 0 {
		d.MaxSweepCells = 65536
	}
	if d.MaxConcurrentSweeps == 0 {
		d.MaxConcurrentSweeps = 2
	}
	if d.RatePerSec == 0 {
		d.RatePerSec = 50
	}
	if d.RateBurst == 0 {
		d.RateBurst = 100
	}
	if d.DrainTimeout == 0 {
		d.DrainTimeout = 10 * time.Second
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
	return d
}

// Server is the daemon. Construct with New; Handler serves its routes
// (httptest-friendly), ListenAndServe runs the full lifecycle including
// graceful drain.
type Server struct {
	cfg      Config
	sess     *radiobcast.Session
	metrics  *metrics
	limiter  *rateLimiter // nil = unlimited
	sweepSem chan struct{}
	draining atomic.Bool
	panics   atomic.Uint64
	mux      *http.ServeMux
	handler  http.Handler
}

// New builds a Server from cfg (see Config for the defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sess:     cfg.Session,
		metrics:  newMetrics([]string{"label", "run", "run_labeled", "sweep", "healthz", "readyz", "metrics"}),
		sweepSem: make(chan struct{}, cfg.MaxConcurrentSweeps),
	}
	if s.sess == nil {
		s.sess = radiobcast.NewSession()
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.RateBurst)
	}
	mux := http.NewServeMux()
	s.mux = mux
	mux.Handle("POST /v1/label", s.v1(http.MethodPost, "label", s.handleLabel))
	mux.Handle("POST /v1/run", s.v1(http.MethodPost, "run", s.handleRun))
	mux.Handle("POST /v1/run-labeled", s.v1(http.MethodPost, "run_labeled", s.handleRunLabeled))
	mux.Handle("POST /v1/sweep", s.v1(http.MethodPost, "sweep", s.handleSweep))
	mux.Handle("GET /healthz", s.instrumented("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrumented("readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrumented("metrics", s.handleMetrics))
	s.handler = mux
	return s
}

// Session returns the shared serving Session (for tests and embedders).
func (s *Server) Session() *radiobcast.Session { return s.sess }

// Handler returns the daemon's routes as one http.Handler.
func (s *Server) Handler() http.Handler { return s.handler }

// StartDrain flips the daemon into draining mode: /readyz answers 503 so
// load balancers stop routing here, and new /v1/ requests are refused
// with code "draining" while in-flight ones continue. Serve calls it on
// ctx cancellation; tests call it directly.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ListenAndServe listens on cfg.Addr and serves until ctx is cancelled,
// then drains gracefully (see Serve).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the daemon on ln until ctx is cancelled, then executes the
// drain sequence: StartDrain (readiness off, new work refused) → wait up
// to DrainTimeout for in-flight requests → cancel surviving request
// contexts (the engine stops within one round; handlers flush partial
// NDJSON and return) → close the listener → drain the Session. A clean
// drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	hs := &http.Server{
		Handler:           s.handler,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	s.cfg.Logf("radiobcastd: serving on %s", ln.Addr())

	select {
	case err := <-serveErr:
		return err // listener died on its own — nothing to drain
	case <-ctx.Done():
	}

	s.StartDrain()
	s.cfg.Logf("radiobcastd: draining (deadline %s)", s.cfg.DrainTimeout)
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancelShutdown()
	err := hs.Shutdown(shutdownCtx)
	if err != nil {
		// The drain deadline passed with requests still running. Cancel
		// their contexts — the facade checks between engine rounds, so
		// every run stops promptly and its handler returns — then give
		// the flushes a moment before closing connections outright.
		s.cfg.Logf("radiobcastd: drain deadline exceeded, cancelling in-flight runs")
		baseCancel()
		hardCtx, cancelHard := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelHard()
		if err = hs.Shutdown(hardCtx); err != nil {
			err = hs.Close()
		}
	}
	<-serveErr // reap hs.Serve (returns http.ErrServerClosed)

	closeCtx, cancelClose := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancelClose()
	if cerr := s.sess.Close(closeCtx); cerr != nil && err == nil {
		err = fmt.Errorf("draining session: %w", cerr)
	}
	if err == nil {
		s.cfg.Logf("radiobcastd: drained cleanly")
	}
	return err
}

// handlerFunc is a route body: it returns the response status for the
// metrics layer (handlers that already wrote a status return it).
type handlerFunc func(w http.ResponseWriter, r *http.Request) int

// v1 wraps an API endpoint with the daemon's cross-cutting layers, outer
// to inner: drain refusal, per-client rate limit, request timeout, body
// size cap, metrics.
func (s *Server) v1(method, name string, h handlerFunc) http.Handler {
	return s.instrumented(name, func(w http.ResponseWriter, r *http.Request) int {
		if s.draining.Load() {
			w.Header().Set("Connection", "close")
			return writeError(w, http.StatusServiceUnavailable, "draining", "daemon is draining; retry against another replica")
		}
		if s.limiter != nil {
			if ok, wait := s.limiter.allow(clientKey(r.RemoteAddr)); !ok {
				w.Header().Set("Retry-After", retryAfterSeconds(wait))
				return writeError(w, http.StatusTooManyRequests, "rate_limited",
					fmt.Sprintf("per-client rate limit exceeded; retry in %s", wait.Round(time.Millisecond)))
			}
		}
		if s.cfg.RequestTimeout > 0 && name != "sweep" {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		return h(w, r)
	})
}

// instrumented is the metrics and panic-recovery layer every route (API
// or operational) passes through. A panicking handler must not take the
// daemon down or leave its request unanswered: the panic is logged and
// counted (radiobcastd_panics_total), and — unless the handler already
// committed a response — the client gets the canonical 500 body with
// code "internal". Serving continues.
func (s *Server) instrumented(name string, h handlerFunc) http.Handler {
	ep := s.metrics.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep.inFlight.Add(1)
		start := time.Now()
		tw := &trackingWriter{ResponseWriter: w}
		code := func() (code int) {
			defer func() {
				if p := recover(); p != nil {
					s.panics.Add(1)
					s.cfg.Logf("radiobcastd: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
					if !tw.wrote {
						writeError(tw, http.StatusInternalServerError, "internal", "internal error")
					}
					code = http.StatusInternalServerError
				}
			}()
			return h(tw, r)
		}()
		ep.inFlight.Add(-1)
		ep.observe(code, time.Since(start))
	})
}

// trackingWriter records whether a response has been committed, so the
// recovery layer knows whether a 500 can still be written. Unwrap keeps
// http.NewResponseController (the sweep stream's flusher) working through
// the wrapper.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
	return http.StatusOK
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) int {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return http.StatusServiceUnavailable
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
	return http.StatusOK
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	var b strings.Builder
	st := s.sess.Stats()
	boolGauge := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	s.metrics.render(&b, []gauge{
		{"radiobcastd_session_cache_hits_total", "Labeling-cache hits served by the Session.", "counter", float64(st.Hits)},
		{"radiobcastd_session_cache_misses_total", "Labelings computed and cached by the Session.", "counter", float64(st.Misses)},
		{"radiobcastd_session_cache_bypasses_total", "Labelings computed without consulting the cache.", "counter", float64(st.Bypasses)},
		{"radiobcastd_session_cache_evictions_total", "LRU entries discarded to make room.", "counter", float64(st.Evictions)},
		{"radiobcastd_session_cache_coalesced_total", "Requests deduplicated onto an in-flight labeling (single-flight).", "counter", float64(st.Coalesced)},
		{"radiobcastd_session_cache_entries", "Labelings currently cached.", "gauge", float64(st.Entries)},
		{"radiobcastd_session_store_hits_total", "Labelings served from the disk store (including warm-start preloads).", "counter", float64(st.StoreHits)},
		{"radiobcastd_session_store_misses_total", "LRU misses that also missed the disk store.", "counter", float64(st.StoreMisses)},
		{"radiobcastd_session_store_writes_total", "Labelings persisted to the disk store.", "counter", float64(st.StoreWrites)},
		{"radiobcastd_session_store_bytes", "Total size of stored labeling blobs.", "gauge", float64(st.StoreBytes)},
		{"radiobcastd_session_store_entries", "Labelings currently in the disk store.", "gauge", float64(st.StoreEntries)},
		{"radiobcastd_sweeps_in_flight", "Sweeps currently holding a pool slot.", "gauge", float64(len(s.sweepSem))},
		{"radiobcastd_sweep_slots", "Size of the sweep pool.", "gauge", float64(cap(s.sweepSem))},
		{"radiobcastd_draining", "1 once graceful drain has begun.", "gauge", boolGauge(s.draining.Load())},
		{"radiobcastd_panics_total", "Handler panics recovered by the serving layer.", "counter", float64(s.panics.Load())},
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
	return http.StatusOK
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up so "try again in 300ms" never reads as "now".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// mapError translates a facade error into (status, code): the typed
// sentinels via radiobcast.ErrorCode (all client mistakes → 400, except a
// closing session → 503), cancellation → 499-style 503, everything else
// → 500 without leaking internals.
func mapError(err error) (int, string) {
	if code, ok := radiobcast.ErrorCode(err); ok {
		switch code {
		case "session_closed":
			return http.StatusServiceUnavailable, code
		default:
			return http.StatusBadRequest, code
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable, "canceled"
	}
	return http.StatusInternalServerError, "internal"
}
