// Package nodeset provides a compact set of node identifiers in the range
// [0, n). It is the workhorse of the stage construction in package core:
// all five set sequences of the paper (INF, UNINF, FRONTIER, DOM, NEW) are
// represented as Sets. Iteration order is always ascending node index, which
// keeps every algorithm in this repository deterministic.
package nodeset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bitset over node identifiers 0..n-1.
// The zero value is not usable; construct with New.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("nodeset: negative universe size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Of returns a set over {0..n-1} containing the given elements.
func Of(n int, elems ...int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Full returns the set {0, ..., n-1}.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// Universe returns the universe size n.
func (s *Set) Universe() int { return s.n }

// Words exposes the set's backing bit words (64 nodes per word, node v at
// bit v%64 of word v/64). The slice is owned by the set: callers must
// treat it as read-only. It is the seam between Set-typed consumers and
// the word-parallel kernels in core/domset, which operate on raw []uint64.
func (s *Set) Words() []uint64 { return s.words }

// FromWords returns a set over {0..n-1} initialized from bit words (same
// layout as Words). The words are copied; missing trailing words read as
// zero, and bits at or above n are dropped.
func FromWords(n int, words []uint64) *Set {
	s := New(n)
	copy(s.words, words)
	s.trim()
	return s
}

// OfInt32 returns a set over {0..n-1} containing the given elements — the
// int32-list form used by the delta-compressed stage storage in core.
func OfInt32(n int, elems []int32) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(int(e))
	}
	return s
}

func (s *Set) check(v int) {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("nodeset: element %d out of universe [0,%d)", v, s.n))
	}
}

// trim clears bits above the universe so that Count and Equal stay exact.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(s.n%wordBits)) - 1
	}
}

// Add inserts v.
func (s *Set) Add(v int) {
	s.check(v)
	s.words[v/wordBits] |= 1 << uint(v%wordBits)
}

// Remove deletes v.
func (s *Set) Remove(v int) {
	s.check(v)
	s.words[v/wordBits] &^= 1 << uint(v%wordBits)
}

// Has reports whether v is in the set.
func (s *Set) Has(v int) bool {
	s.check(v)
	return s.words[v/wordBits]&(1<<uint(v%wordBits)) != 0
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("nodeset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every element of t to s and returns s.
func (s *Set) UnionWith(t *Set) *Set {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
	return s
}

// IntersectWith keeps only elements also in t and returns s.
func (s *Set) IntersectWith(t *Set) *Set {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
	return s
}

// SubtractWith removes every element of t from s and returns s.
func (s *Set) SubtractWith(t *Set) *Set {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
	return s
}

// Union returns a new set s ∪ t.
func Union(s, t *Set) *Set { return s.Clone().UnionWith(t) }

// Intersect returns a new set s ∩ t.
func Intersect(s, t *Set) *Set { return s.Clone().IntersectWith(t) }

// Subtract returns a new set s \ t.
func Subtract(s, t *Set) *Set { return s.Clone().SubtractWith(t) }

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t is empty.
func (s *Set) Disjoint(t *Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Elements returns the members in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(v int) { out = append(out, v) })
	return out
}

// ForEach calls f for each member in ascending order.
func (s *Set) ForEach(f func(v int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as {a, b, c}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
	})
	b.WriteByte('}')
	return b.String()
}
