package nodeset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Universe() != 100 {
		t.Fatalf("Universe = %d, want 100", s.Universe())
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("Min/Max of empty = %d/%d, want -1/-1", s.Min(), s.Max())
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New(130) // crosses a word boundary
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(v) {
			t.Fatalf("Has(%d) before Add", v)
		}
		s.Add(v)
		if !s.Has(v) {
			t.Fatalf("!Has(%d) after Add", v)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(5)
	s.Add(5)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestRemoveAbsent(t *testing.T) {
	s := New(10)
	s.Remove(3) // must not panic
	if !s.Empty() {
		t.Fatal("should still be empty")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range element")
		}
	}()
	New(10).Add(10)
}

func TestNegativeUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative universe")
		}
	}()
	New(-1)
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		f := Full(n)
		if f.Count() != n {
			t.Fatalf("Full(%d).Count = %d", n, f.Count())
		}
		if n > 0 && (f.Min() != 0 || f.Max() != n-1) {
			t.Fatalf("Full(%d) Min/Max = %d/%d", n, f.Min(), f.Max())
		}
	}
}

func TestOf(t *testing.T) {
	s := Of(20, 3, 1, 4, 1, 5)
	want := []int{1, 3, 4, 5}
	if got := s.Elements(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(10, 1, 2, 3, 4)
	b := Of(10, 3, 4, 5, 6)
	if got := Union(a, b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("Union = %v", got)
	}
	if got := Intersect(a, b).Elements(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := Subtract(a, b).Elements(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Subtract = %v", got)
	}
	// operands untouched
	if !reflect.DeepEqual(a.Elements(), []int{1, 2, 3, 4}) {
		t.Fatal("Union/Intersect/Subtract must not mutate operands")
	}
}

func TestSubsetDisjoint(t *testing.T) {
	a := Of(10, 1, 2)
	b := Of(10, 1, 2, 3)
	c := Of(10, 4, 5)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	if !a.Disjoint(c) {
		t.Fatal("a, c disjoint expected")
	}
	if a.Disjoint(b) {
		t.Fatal("a, b not disjoint expected")
	}
}

func TestEqual(t *testing.T) {
	a := Of(70, 0, 69)
	b := Of(70, 0, 69)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Add(33)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	if a.Equal(Of(71, 0, 69)) {
		t.Fatal("different universes must not be equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(5).UnionWith(New(6))
}

func TestMinMax(t *testing.T) {
	s := Of(200, 7, 64, 128, 199)
	if s.Min() != 7 {
		t.Fatalf("Min = %d", s.Min())
	}
	if s.Max() != 199 {
		t.Fatalf("Max = %d", s.Max())
	}
}

func TestString(t *testing.T) {
	if got := Of(10, 2, 5).String(); got != "{2, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestForEachAscending(t *testing.T) {
	s := Of(300, 250, 3, 170, 64)
	var got []int
	s.ForEach(func(v int) { got = append(got, v) })
	if !sort.IntsAreSorted(got) {
		t.Fatalf("ForEach order not ascending: %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("ForEach visited %d elements, want 4", len(got))
	}
}

// randomSet builds a set plus a reference map from a seed.
func randomSet(r *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	ref := make(map[int]bool)
	for i := 0; i < n/2; i++ {
		v := r.Intn(n)
		s.Add(v)
		ref[v] = true
	}
	return s, ref
}

func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(257)
		s, ref := randomSet(r, n)
		if s.Count() != len(ref) {
			return false
		}
		for v := 0; v < n; v++ {
			if s.Has(v) != ref[v] {
				return false
			}
		}
		// removal keeps the models in sync
		for v := range ref {
			s.Remove(v)
			delete(ref, v)
			break
		}
		return s.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		full := Full(n)
		// ¬(a ∪ b) == ¬a ∩ ¬b
		lhs := Subtract(full, Union(a, b))
		rhs := Intersect(Subtract(full, a), Subtract(full, b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutesIntersectDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		c, _ := randomSet(r, n)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		// a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
		return Intersect(a, Union(b, c)).Equal(Union(Intersect(a, b), Intersect(a, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		d := Subtract(a, b)
		return d.SubsetOf(a) && d.Disjoint(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(i % (1 << 16))
	}
}

func BenchmarkCount(b *testing.B) {
	s := Full(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Count() != 1<<16 {
			b.Fatal("bad count")
		}
	}
}
