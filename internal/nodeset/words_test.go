package nodeset

import "testing"

func TestWordsRoundTrip(t *testing.T) {
	s := Of(130, 0, 63, 64, 100, 129)
	got := FromWords(130, s.Words())
	if !got.Equal(s) {
		t.Fatalf("FromWords(Words()) = %v, want %v", got, s)
	}
}

func TestFromWordsDropsOutOfUniverseBits(t *testing.T) {
	// Bits at or above n must be trimmed, and missing words read as zero.
	got := FromWords(10, []uint64{^uint64(0)})
	if !got.Equal(Full(10)) {
		t.Fatalf("FromWords trim = %v, want %v", got, Full(10))
	}
	if !FromWords(100, []uint64{1}).Equal(Of(100, 0)) {
		t.Fatal("missing trailing words should read as zero")
	}
}

func TestOfInt32(t *testing.T) {
	got := OfInt32(70, []int32{3, 64, 69})
	if !got.Equal(Of(70, 3, 64, 69)) {
		t.Fatalf("OfInt32 = %v", got)
	}
	if !OfInt32(5, nil).Empty() {
		t.Fatal("OfInt32(nil) should be empty")
	}
}

func TestWordsLayout(t *testing.T) {
	s := Of(128, 65)
	w := s.Words()
	if len(w) != 2 || w[0] != 0 || w[1] != 2 {
		t.Fatalf("Words() = %v, want [0 2]", w)
	}
}
