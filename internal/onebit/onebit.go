// Package onebit implements the single-bit labeling schemes sketched in the
// paper's conclusion (§5). The paper states — without constructions — that
// broadcast with 1-bit labels is possible in graphs where every node is
// within distance 2 of the source, in series-parallel graphs, and in grid
// graphs. Its only hint (restricting the DOM recursion to DOM_{i−1}) stalls
// when taken literally (see core.BuildOptions.Restricted and the ONEBIT
// experiment), so this package provides *verified* reconstructions:
// constructive labelings for paths, cycles and grids under the delayed
// flooding protocol family, an exhaustive/greedy search for small general
// graphs, and per-instance verification by exact simulation. Every labeling
// returned by this package has been machine-checked to complete broadcast.
package onebit

import (
	"fmt"
	"math/rand"

	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
)

// Scheme is a verified one-bit labeling for a (graph, source) pair under a
// flooding delay family.
type Scheme struct {
	Labels []core.Label
	Delays baseline.FloodingDelays
	// CompletionRound is the verified completion round.
	CompletionRound int
}

// Verify runs the delayed-flooding protocol under the labels and reports
// whether broadcast completes, returning the completion round.
func Verify(g *graph.Graph, labels []core.Label, d baseline.FloodingDelays, source int) (int, bool) {
	out := baseline.RunFlooding(g, labels, d, source, "m")
	if out == nil || !out.AllInformed {
		return 0, false
	}
	return out.CompletionRound, true
}

// PathScheme labels a path (node ids in path order) with all-1 labels:
// the wave forwards hop by hop with no collisions. Works for any source.
func PathScheme(g *graph.Graph, source int) (*Scheme, error) {
	labels := uniform(g.N(), '1')
	return verified(g, labels, baseline.DefaultDelays, source, "path")
}

// CycleScheme labels a cycle (node ids in cycle order). For odd cycles
// all-1 labels work; for even cycles the two waves would collide forever at
// the antipode, so one of the antipode's neighbours is silenced with a 0.
func CycleScheme(g *graph.Graph, source int) (*Scheme, error) {
	n := g.N()
	labels := uniform(n, '1')
	if n%2 == 0 {
		// Silence the clockwise neighbour of the antipodal node.
		antipode := (source + n/2) % n
		labels[(antipode+1)%n] = core.Label("0")
	}
	return verified(g, labels, baseline.DefaultDelays, source, "cycle")
}

// GridScheme labels a rows×cols grid for a corner source (node 0, cell
// (0,0)). See GridSchemeAt for the construction.
func GridScheme(rows, cols int) (*Scheme, *graph.Graph, error) {
	return GridSchemeAt(rows, cols, 0, 0)
}

// GridSchemeAt labels a rows×cols grid for the source at cell (si, sj)
// with the column-backbone rule: bit(i,j) = 1 iff j = sj (forward after 1
// round), every other cell 0 (forward after 2 rounds). The source column
// carries a fast vertical wave, and each row then floods sideways at half
// speed; the resulting informed times are
//
//	t(i,j) = |i−si| + 2|j−sj| − 1   (j ≠ sj),   t(i,sj) = |i−si|,
//
// and no listener ever has two neighbours transmitting in the same round:
// along a row, consecutive transmissions are 2 apart, and vertical
// neighbours (i±1, j) transmit at t ± 1 + 2 ≠ t. The construction is
// verified by simulation before being returned.
func GridSchemeAt(rows, cols, si, sj int) (*Scheme, *graph.Graph, error) {
	g := graph.Grid(rows, cols)
	labels := make([]core.Label, g.N())
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			bit := byte('0')
			if j == sj {
				bit = '1'
			}
			labels[graph.GridIndex(rows, cols, i, j)] = core.Label([]byte{bit})
		}
	}
	source := graph.GridIndex(rows, cols, si, sj)
	s, err := verifiedAt(g, labels, baseline.GridDelays, source, fmt.Sprintf("grid %dx%d @(%d,%d)", rows, cols, si, sj))
	return s, g, err
}

// SearchExhaustive tries every 1-bit labeling (2^n of them) under the given
// delays and returns the first that completes, preferring lexicographically
// small labelings. Only feasible for small n (≤ ~20).
func SearchExhaustive(g *graph.Graph, d baseline.FloodingDelays, source int) (*Scheme, bool) {
	n := g.N()
	if n > 22 {
		panic(fmt.Sprintf("onebit: exhaustive search infeasible for n=%d", n))
	}
	labels := make([]core.Label, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				labels[v] = core.Label("1")
			} else {
				labels[v] = core.Label("0")
			}
		}
		if round, ok := Verify(g, labels, d, source); ok {
			return &Scheme{Labels: append([]core.Label(nil), labels...), Delays: d, CompletionRound: round}, true
		}
	}
	return nil, false
}

// SearchRandom hill-climbs over labelings: starting from all-1, it flips
// random bits, keeping flips that reduce the number of uninformed nodes.
// Deterministic in seed. Returns the best scheme found, if any completes.
func SearchRandom(g *graph.Graph, d baseline.FloodingDelays, source int, tries int, seed int64) (*Scheme, bool) {
	n := g.N()
	r := rand.New(rand.NewSource(seed))
	labels := uniform(n, '1')
	best := uninformedCount(g, labels, d, source)
	if best == 0 {
		round, _ := Verify(g, labels, d, source)
		return &Scheme{Labels: labels, Delays: d, CompletionRound: round}, true
	}
	for t := 0; t < tries; t++ {
		v := r.Intn(n)
		flipped := append([]core.Label(nil), labels...)
		if flipped[v] == core.Label("1") {
			flipped[v] = core.Label("0")
		} else {
			flipped[v] = core.Label("1")
		}
		score := uninformedCount(g, flipped, d, source)
		if score <= best { // accept sideways moves to escape plateaus
			labels, best = flipped, score
			if best == 0 {
				round, _ := Verify(g, labels, d, source)
				return &Scheme{Labels: labels, Delays: d, CompletionRound: round}, true
			}
		}
	}
	return nil, false
}

func uninformedCount(g *graph.Graph, labels []core.Label, d baseline.FloodingDelays, source int) int {
	out := baseline.RunFlooding(g, labels, d, source, "m")
	count := 0
	for v, r := range out.InformedRound {
		if v != source && r == 0 {
			count++
		}
	}
	return count
}

func uniform(n int, bit byte) []core.Label {
	labels := make([]core.Label, n)
	for v := range labels {
		labels[v] = core.Label([]byte{bit})
	}
	return labels
}

func verified(g *graph.Graph, labels []core.Label, d baseline.FloodingDelays, source int, what string) (*Scheme, error) {
	return verifiedAt(g, labels, d, source, what)
}

func verifiedAt(g *graph.Graph, labels []core.Label, d baseline.FloodingDelays, source int, what string) (*Scheme, error) {
	round, ok := Verify(g, labels, d, source)
	if !ok {
		return nil, fmt.Errorf("onebit: %s labeling failed verification", what)
	}
	return &Scheme{Labels: labels, Delays: d, CompletionRound: round}, nil
}
