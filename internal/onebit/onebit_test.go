package onebit

import (
	"testing"

	"radiobcast/internal/baseline"
	"radiobcast/internal/graph"
)

func TestPathSchemeAllSizes(t *testing.T) {
	for n := 2; n <= 40; n++ {
		g := graph.Path(n)
		s, err := PathScheme(g, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.CompletionRound != n-1 {
			t.Fatalf("n=%d: completion %d, want %d", n, s.CompletionRound, n-1)
		}
	}
}

func TestPathSchemeInteriorSource(t *testing.T) {
	g := graph.Path(11)
	for src := 0; src < 11; src++ {
		if _, err := PathScheme(g, src); err != nil {
			t.Fatalf("src=%d: %v", src, err)
		}
	}
}

func TestCycleSchemeAllSizesAllSources(t *testing.T) {
	for n := 3; n <= 24; n++ {
		g := graph.Cycle(n)
		for src := 0; src < n; src++ {
			if _, err := CycleScheme(g, src); err != nil {
				t.Fatalf("n=%d src=%d: %v", n, src, err)
			}
		}
	}
}

func TestGridSchemeSweep(t *testing.T) {
	for rows := 1; rows <= 12; rows++ {
		for cols := 1; cols <= 12; cols++ {
			if rows*cols < 2 {
				continue
			}
			if _, _, err := GridScheme(rows, cols); err != nil {
				t.Fatalf("%dx%d: %v", rows, cols, err)
			}
		}
	}
}

func TestGridSchemeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, size := range []int{20, 30, 40} {
		if _, _, err := GridScheme(size, size); err != nil {
			t.Fatalf("%dx%d: %v", size, size, err)
		}
	}
}

func TestGridSchemeInteriorSources(t *testing.T) {
	// The column-backbone rule works for any source cell, not just corners.
	for _, tc := range [][4]int{
		{5, 7, 2, 3}, {4, 4, 1, 1}, {6, 3, 5, 0}, {3, 6, 0, 5}, {7, 7, 3, 6},
	} {
		if _, _, err := GridSchemeAt(tc[0], tc[1], tc[2], tc[3]); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
	}
}

func TestGridSchemeInformedTimes(t *testing.T) {
	// Verify the closed-form informed times of the construction.
	rows, cols := 5, 6
	s, g, err := GridScheme(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	out := baseline.RunFlooding(g, s.Labels, s.Delays, 0, "m")
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i == 0 && j == 0 {
				continue // the source holds µ from the start
			}
			v := graph.GridIndex(rows, cols, i, j)
			want := i
			if j > 0 {
				want = i + 2*j - 1
			}
			if out.InformedRound[v] != want {
				t.Fatalf("t(%d,%d) = %d, want %d", i, j, out.InformedRound[v], want)
			}
		}
	}
}

func TestSearchExhaustiveFindsC4(t *testing.T) {
	// All-1 fails on C4 (collision at the antipode); the search must find a
	// working labeling.
	g := graph.Cycle(4)
	s, ok := SearchExhaustive(g, baseline.DefaultDelays, 0)
	if !ok {
		t.Fatal("no 1-bit scheme found for C4")
	}
	if round, ok := Verify(g, s.Labels, s.Delays, 0); !ok || round == 0 {
		t.Fatal("returned scheme does not verify")
	}
}

func TestSearchExhaustiveInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for large n")
		}
	}()
	SearchExhaustive(graph.Path(30), baseline.DefaultDelays, 0)
}

func TestSearchRandomRadius2(t *testing.T) {
	// Feasibility study on small radius-2 graphs: the hill-climb should
	// find schemes for a decent fraction; we require it to succeed on the
	// star (where all-1 already fails for ≥ 2 leaves beyond round 1... the
	// star is distance-1, all nodes hear the hub directly).
	g := graph.Star(8)
	s, ok := SearchRandom(g, baseline.DefaultDelays, 0, 500, 1)
	if !ok {
		t.Fatal("no scheme found for star")
	}
	if _, ok := Verify(g, s.Labels, s.Delays, 0); !ok {
		t.Fatal("scheme does not verify")
	}
}

func TestVerifyRejectsBadLabeling(t *testing.T) {
	g := graph.Path(3)
	labels := uniform(3, '0') // nobody forwards
	if _, ok := Verify(g, labels, baseline.DefaultDelays, 0); ok {
		t.Fatal("all-zero labeling should fail on P3")
	}
}
