package radio

import (
	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// BatchRun is one lane of a RunBatch: its protocol vector plus the
// engine options of a standalone Run. Lanes may differ in everything —
// sources, stop conditions, fault models, seeds — as long as they share
// the graph.
type BatchRun struct {
	Protos []Protocol
	Opt    Options
}

// RunBatch executes B same-graph runs in lockstep: every bitset-eligible
// lane advances one round before any lane starts the next, so a round's
// pass over the frozen CSR and its neighborhood slabs serves the whole
// batch while the graph is hot in cache — the label-once/run-many regime
// (sweep repeats, source sweeps, fault-seed sweeps) executed as one
// interleaved walk instead of B cold ones. Each lane runs on its own Sim
// (opt.Sim if set, else pooled), observes its own stop conditions, and
// yields a Result bit-identical to a standalone Run with the same
// options.
//
// Lanes that cannot run on the bitset core — tracing, dense or parallel
// engine modes, DisableBitset, or a topology-churning fault model —
// fall back to a standalone Run, so RunBatch accepts any mix.
func RunBatch(g *graph.Graph, runs []BatchRun) []*Result {
	results := make([]*Result, len(runs))
	type slot struct {
		lane   bitLane
		idx    int
		pooled bool
	}
	var lanes []*slot
	for i := range runs {
		opt := runs[i].Opt
		if !batchEligible(opt) {
			results[i] = Run(g, runs[i].Protos, opt)
			continue
		}
		s := opt.Sim
		pooled := false
		if s == nil {
			s = simPool.Get().(*Sim)
			pooled = true
		}
		n, _, csr := s.prepareRun(g, runs[i].Protos, opt)
		_, fst := s.setupFaults(opt.Faults, n)
		sl := &slot{idx: i, pooled: pooled}
		sl.lane.init(s, csr, opt, opt.Faults, fst)
		lanes = append(lanes, sl)
	}
	live := len(lanes)
	for round := 1; live > 0; round++ {
		for _, sl := range lanes {
			if sl.lane.done {
				continue
			}
			sl.lane.runRound(round)
			if sl.lane.done {
				results[sl.idx] = sl.lane.finish()
				if sl.pooled {
					simPool.Put(sl.lane.s)
				}
				live--
			}
		}
	}
	return results
}

// batchEligible reports whether a lane with these options runs on the
// bitset core (the lockstep path); ineligible lanes run standalone.
func batchEligible(opt Options) bool {
	if opt.Trace != nil || opt.DisableSparse || opt.DisableBitset {
		return false
	}
	if opt.Workers < 0 || opt.Workers > 1 {
		return false
	}
	if opt.Faults != nil {
		if _, topo := opt.Faults.(faults.TopologyModel); topo {
			return false
		}
	}
	return true
}
