package radio

import (
	"testing"

	"radiobcast/internal/faults"
)

// TestRunBatchMatchesRun pins the lockstep batch driver: every lane of a
// mixed batch — different protocol populations, round bounds, stop
// conditions, fault models, and option combinations that fall back to a
// standalone run — yields a Result bit-identical to a standalone Run
// with the same inputs.
func TestRunBatchMatchesRun(t *testing.T) {
	drop := func(node, round int) bool { return (node+round)%5 == 0 }
	for name, g := range testGraphs(t) {
		n := g.N()
		mk := func() []BatchRun {
			return []BatchRun{
				{Protos: randomProtocols(n, 1), Opt: Options{MaxRounds: 60}},
				{Protos: randomProtocols(n, 2), Opt: Options{MaxRounds: 25}},
				{Protos: randomProtocols(n, 3), Opt: Options{MaxRounds: 60, Faults: faults.DropFunc(drop)}},
				{Protos: randomProtocols(n, 4), Opt: Options{MaxRounds: 60, StopAfterSilent: 3}},
				{Protos: randomProtocols(n, 5), Opt: Options{MaxRounds: 60, Sim: NewSim()}},
				{Protos: randomProtocols(n, 6), Opt: Options{MaxRounds: 60, Workers: 4}},          // ineligible: parallel
				{Protos: randomProtocols(n, 7), Opt: Options{MaxRounds: 60, DisableSparse: true}}, // ineligible: dense
				{Protos: randomProtocols(n, 8), Opt: Options{MaxRounds: 60, DisableBitset: true}}, // ineligible: scalar
			}
		}
		batch := RunBatch(g, mk())
		for i, solo := range mk() {
			want := Run(g, solo.Protos, solo.Opt)
			if !resultsEqual(want, batch[i]) {
				t.Fatalf("%s: lane %d diverged from standalone Run", name, i)
			}
		}
	}
}

// TestRunBatchEmpty: a zero-lane batch is a no-op, not a panic.
func TestRunBatchEmpty(t *testing.T) {
	if got := RunBatch(testGraphs(t)["path"], nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// BenchmarkRunBatch measures the lockstep win: 8 same-graph runs as one
// batch versus 8 standalone runs (the label-once/run-many regime the
// sweep folds into batches).
func BenchmarkRunBatch(b *testing.B) {
	const lanes = 8
	g := testGraphs(b)["grid"]
	n := g.N()
	mk := func() []BatchRun {
		runs := make([]BatchRun, lanes)
		for i := range runs {
			runs[i] = BatchRun{Protos: randomProtocols(n, int64(i+1)), Opt: Options{MaxRounds: 60}}
		}
		return runs
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunBatch(g, mk())
		}
	})
	b.Run("solo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range mk() {
				Run(g, r.Protos, r.Opt)
			}
		}
	})
}
