package radio

import (
	"math/bits"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// This file is the bitset engine core: the sequential sparse engine
// re-expressed over []uint64 bitsets so that both halves of a round —
// picking the nodes to step and resolving the radio channel — cost word
// operations instead of per-node work.
//
// Stepping: the round's step set is assembled as
//
//	active = eager | received | (busy & noise)
//
// in ⌈n/64⌉ ORs, where eager holds the nodes whose next wake is now or
// every round (non-Wakers, and Wakers whose NextWake is ≤ round+1), and
// a ring-bucket wake calendar re-activates Wakers whose NextWake lands
// on this round. This makes a quiet round cost O(n/64 + active) — the
// scalar engine's decide loop is O(n) per round even when nothing
// happens, which is what capped the path family (BENCH_7: 6.5 ms for
// n=1024, ~2n rounds of mostly-idle scanning).
//
// Resolution: each transmitter ORs its neighborhood slabs (graph.BitCSR)
// into two carry-save accumulators — busy1 collects "covered by ≥ 1
// transmitter", busy2 "covered by ≥ 2" — and each touched word is then
// classified once: silence (no bit), single transmitter (busy1 &^ busy2
// → delivery), collision (busy2 → counter), with transmitters and
// radio-off nodes masked out. Only single-reception listeners cost
// per-node work (a slab scan finds their unique sender).
//
// The bitset engine produces Results bit-identical to the scalar engine
// on every scheme × family × fault-model cell (pinned by the facade's
// engine-mode matrix tests): the step set provably equals the scalar
// engine's, and within a round the Result is order-independent (each
// node transmits and receives at most once per round, collisions are
// per-round counters).

// ringSize is the wake-calendar horizon (power of two). Wakes further
// out than the horizon park in the bucket of their round modulo the
// horizon and are re-bucketed on drain — one touch per horizon lap, so
// far sleeps cost O(sleep/ringSize) amortized.
const ringSize = 256

// bitState is the word-packed per-run state of the bitset core, owned by
// a Sim and resized-not-reallocated between runs like every other engine
// buffer.
type bitState struct {
	w int // ⌈n/64⌉ words

	// Double-buffered channel state, the word-packed twin of Sim's
	// sets/busys bool arrays, cleared via per-half dirty word lists.
	setsW [2][]uint64
	busyW [2][]uint64
	dirty [2][]int32

	// Stepping state.
	eager    []uint64 // nodes stepped every round until they sleep
	active   []uint64 // this round's step set (scratch)
	noiseW   []uint64 // nodes with a NoiseProtocol
	lastStep []int32  // round of each node's last Step, for Waker.Skip
	ring     [][]int32

	// Resolution scratch.
	txW          []uint64 // this round's transmitters
	busy1, busy2 []uint64 // carry-save coverage accumulators
	candSeen     []uint64 // bitset over word indices touched this round
	candList     []int32

	// Fault-effect words (faulted runs only) and the Words view handed
	// to WordModel implementations.
	jamW, downW, wipeW []uint64
	words              faults.Words
}

func (bs *bitState) reset(s *Sim) {
	n := s.n
	w := (n + 63) / 64
	bs.w = w
	for i := 0; i < 2; i++ {
		bs.setsW[i] = grow(bs.setsW[i], w)
		bs.busyW[i] = grow(bs.busyW[i], w)
		bs.dirty[i] = bs.dirty[i][:0]
	}
	bs.eager = grow(bs.eager, w)
	for i := range bs.eager {
		bs.eager[i] = ^uint64(0) // reset sets nextWake=1: everyone steps in round 1
	}
	if n%64 != 0 && w > 0 {
		bs.eager[w-1] = 1<<(uint(n)&63) - 1 // no phantom nodes past n
	}
	bs.active = grow(bs.active, w)
	bs.noiseW = grow(bs.noiseW, w)
	for v := 0; v < n; v++ {
		if s.noise[v] != nil {
			bs.noiseW[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	bs.lastStep = grow(bs.lastStep, n)
	if bs.ring == nil {
		bs.ring = make([][]int32, ringSize)
	}
	for i := range bs.ring {
		bs.ring[i] = bs.ring[i][:0]
	}
	bs.txW = grow(bs.txW, w)
	bs.busy1 = grow(bs.busy1, w)
	bs.busy2 = grow(bs.busy2, w)
	bs.candSeen = grow(bs.candSeen, (w+63)/64)
	bs.candList = bs.candList[:0]
	if s.faulted {
		bs.jamW = grow(bs.jamW, w)
		bs.downW = grow(bs.downW, w)
		bs.wipeW = grow(bs.wipeW, w)
		bs.words = faults.Words{Jam: bs.jamW, Down: bs.downW, Wipe: bs.wipeW}
	}
}

// bitLane is one run driven through the bitset core: a Sim plus the
// round-loop bookkeeping the scalar loop keeps in locals. Sim.Run drives
// a single lane; RunBatch drives several in lockstep over one graph, one
// round across all lanes before the next (see batch.go).
type bitLane struct {
	s    *Sim
	csr  *graph.CSR
	bcsr *graph.BitCSR
	opt  Options
	fm   faults.Model
	wm   faults.WordModel
	fst  *faults.State

	rounds, total, silent      int
	silentStopped, interrupted bool
	done                       bool
}

// init prepares the lane over an already-reset Sim (reset and fault
// setup happen in the caller, shared with the scalar path).
func (l *bitLane) init(s *Sim, csr *graph.CSR, opt Options, fm faults.Model, fst *faults.State) {
	if s.bits == nil {
		s.bits = &bitState{}
	}
	s.bits.reset(s)
	l.s = s
	l.csr = csr
	l.bcsr = csr.Bits()
	l.opt = opt
	l.fm = fm
	l.fst = fst
	if fm != nil {
		l.wm, _ = fm.(faults.WordModel)
	}
}

// finish materializes the lane's Result exactly as the scalar loop does.
func (l *bitLane) finish() *Result {
	res := l.s.materialize(l.rounds, l.total, l.silentStopped)
	res.Interrupted = l.interrupted
	l.s.release()
	return res
}

// runRound executes one engine round; on the round that ends the run it
// sets l.done (and materializes nothing — callers finish() after).
func (l *bitLane) runRound(round int) {
	s := l.s
	bs := s.bits
	if l.opt.Ctx != nil && l.opt.Ctx.Err() != nil {
		l.interrupted = true
		l.done = true
		return
	}
	cur, nx := s.cur, 1-s.cur
	rxMark := len(s.rxNodes)

	if s.faulted {
		// Pre-step fault phase (Down/Wipe land before any protocol
		// observes its pending reception). Effect words carry over
		// between the two phases of a round, mirroring the effects
		// slice contract, and are cleared here at the round boundary.
		clear(bs.jamW)
		clear(bs.downW)
		clear(bs.wipeW)
		*l.fst = faults.State{Round: round, CSR: l.csr, Heard: s.heard}
		if l.wm != nil {
			l.wm.ApplyWords(l.fst, &bs.words)
		} else {
			clear(s.effects)
			l.fm.Apply(l.fst, s.effects)
			bs.packEffects(s.effects)
		}
		for i, wp := range bs.wipeW {
			if wp != 0 {
				bs.setsW[cur][i] &^= wp
				bs.busyW[cur][i] &^= wp
			}
		}
	}

	// Phase 1: assemble the step set and step it in ascending node
	// order (the fault models' transmitter lists are order-sensitive).
	active := bs.active
	sw, bw := bs.setsW[cur], bs.busyW[cur]
	for i := range active {
		active[i] = bs.eager[i] | sw[i] | (bw[i] & bs.noiseW[i])
	}
	l.drainRing(round)
	s.txList = s.txList[:0]
	for wi := 0; wi < bs.w; wi++ {
		for word := active[wi]; word != 0; word &= word - 1 {
			l.stepActive(wi<<6|bits.TrailingZeros64(word), round)
		}
	}

	if s.faulted {
		// Post-decision fault phase: transmission-level effects (Jam).
		l.fst.Transmitters = s.txList
		if l.wm != nil {
			l.wm.ApplyWords(l.fst, &bs.words)
		} else {
			l.fm.Apply(l.fst, s.effects)
			bs.packEffects(s.effects)
		}
	}

	transmitted := l.resolve(round, nx)

	if s.faulted {
		for _, w := range s.rxNodes[rxMark:] {
			s.heard[w] = true
		}
		for _, t := range s.txList {
			s.heard[t] = true
		}
	}
	l.total += transmitted
	s.cur = nx
	l.rounds = round
	if transmitted == 0 {
		l.silent++
	} else {
		l.silent = 0
	}
	switch {
	case round >= l.opt.MaxRounds:
		l.done = true
	case l.opt.Stop != nil && l.opt.Stop(round):
		l.done = true
	case l.opt.StopAfterSilent > 0 && l.silent >= l.opt.StopAfterSilent:
		l.silentStopped = true
		l.done = true
	}
}

// drainRing re-activates the Wakers whose scheduled wake is this round.
// Entries are validated against the node's current nextWake, so stale
// entries (the node was re-stepped and re-scheduled since parking) are
// dropped, and wakes a full horizon lap away stay parked.
func (l *bitLane) drainRing(round int) {
	bs := l.s.bits
	slot := round & (ringSize - 1)
	bucket := bs.ring[slot]
	if len(bucket) == 0 {
		return
	}
	keep := bucket[:0]
	for _, v32 := range bucket {
		v := int(v32)
		switch nw := l.s.nextWake[v]; {
		case nw == round:
			bs.active[v>>6] |= 1 << (uint(v) & 63)
		case nw > round && nw&(ringSize-1) == slot:
			keep = append(keep, v32)
		}
	}
	bs.ring[slot] = keep
}

// stepActive steps node v in the given round: Waker bookkeeping (lazy
// Skip, rescheduling into eager or the wake calendar), the protocol
// step, Down suppression, and transmitter collection — the bitset twin
// of the scalar decide loop body.
func (l *bitLane) stepActive(v, round int) {
	s := l.s
	bs := s.bits
	wi, mask := v>>6, uint64(1)<<(uint(v)&63)
	var a Action
	if wk := s.wakers[v]; wk != nil {
		if sk := round - 1 - int(bs.lastStep[v]); sk > 0 {
			wk.Skip(sk)
		}
		a = s.stepNodeBit(v)
		bs.lastStep[v] = int32(round)
		nw := wk.NextWake()
		s.nextWake[v] = nw
		if nw != NeverWake && nw <= round+1 {
			bs.eager[wi] |= mask // wakes now: step every round until it sleeps
		} else {
			bs.eager[wi] &^= mask
			if nw != NeverWake {
				bs.ring[nw&(ringSize-1)] = append(bs.ring[nw&(ringSize-1)], int32(v))
			}
		}
	} else {
		a = s.stepNodeBit(v) // non-Wakers stay eager for the whole run
		bs.lastStep[v] = int32(round)
	}
	if s.faulted && a.Transmit && bs.downW[wi]&mask != 0 {
		// Radio off: the protocol stepped (its clock runs) and believes
		// it transmitted, but nothing reaches the channel.
		a = Listen
	}
	s.actions[v] = a
	if a.Transmit {
		s.txList = append(s.txList, int32(v))
		bs.txW[wi] |= mask
	}
}

// stepNodeBit is stepNode reading the word-packed channel state.
func (s *Sim) stepNodeBit(v int) Action {
	bs := s.bits
	wi, mask := v>>6, uint64(1)<<(uint(v)&63)
	var rcv *Message
	if bs.setsW[s.cur][wi]&mask != 0 {
		rcv = &s.msgs[s.cur][v]
	}
	if np := s.noise[v]; np != nil {
		return np.StepNoise(rcv, bs.busyW[s.cur][wi]&mask != 0)
	}
	return s.protos[v].Step(rcv)
}

// resolve is the word-parallel channel resolution (see the file comment)
// writing deliveries into the nx half; it returns the transmission count.
func (l *bitLane) resolve(round, nx int) int {
	s := l.s
	bs := s.bits
	for _, wi := range bs.dirty[nx] {
		bs.setsW[nx][wi] = 0
		bs.busyW[nx][wi] = 0
	}
	bs.dirty[nx] = bs.dirty[nx][:0]

	// Scatter: OR each effective transmitter's slabs into the carry-save
	// accumulators, collecting the touched words once each.
	for _, t32 := range s.txList {
		t := int(t32)
		s.logTransmit(t32, round)
		if s.faulted && bs.jamW[t>>6]&(1<<(uint(t)&63)) != 0 {
			continue // jammed: t believes it transmitted, nobody hears it
		}
		words, masks := l.bcsr.Slabs(t)
		for k, wi := range words {
			if bs.candSeen[wi>>6]&(1<<(uint(wi)&63)) == 0 {
				bs.candSeen[wi>>6] |= 1 << (uint(wi) & 63)
				bs.candList = append(bs.candList, wi)
			}
			bs.busy2[wi] |= bs.busy1[wi] & masks[k]
			bs.busy1[wi] |= masks[k]
		}
	}

	// Classify each covered word: transmitters hear nothing (jammed ones
	// included — they believe they transmitted), radio-off nodes hear
	// nothing, the rest split into single-sender deliveries and
	// collisions. Scratch words are re-zeroed as they are consumed.
	for _, wi := range bs.candList {
		excl := bs.txW[wi]
		if s.faulted {
			excl |= bs.downW[wi]
		}
		b1 := bs.busy1[wi] &^ excl
		b2 := bs.busy2[wi] &^ excl
		bs.busy1[wi] = 0
		bs.busy2[wi] = 0
		bs.candSeen[wi>>6] &^= 1 << (uint(wi) & 63)
		if b1 == 0 {
			continue
		}
		bs.busyW[nx][wi] |= b1
		bs.dirty[nx] = append(bs.dirty[nx], wi)
		singles := b1 &^ b2
		bs.setsW[nx][wi] |= singles
		for x := singles; x != 0; x &= x - 1 {
			v := int(wi)<<6 | bits.TrailingZeros64(x)
			msg := s.actions[l.findSender(v)].Msg
			s.msgs[nx][v] = msg
			s.rxNodes = append(s.rxNodes, int32(v))
			s.rxRecs = append(s.rxRecs, Reception{Round: round, Msg: msg})
		}
		for x := b2; x != 0; x &= x - 1 {
			s.collisions[int(wi)<<6|bits.TrailingZeros64(x)]++
		}
	}
	bs.candList = bs.candList[:0]
	for _, t := range s.txList {
		bs.txW[t>>6] = 0
	}
	return len(s.txList)
}

// findSender returns the unique effective transmitter adjacent to v —
// only single-reception listeners pay this slab scan.
func (l *bitLane) findSender(v int) int {
	bs := l.s.bits
	words, masks := l.bcsr.Slabs(v)
	for k, wi := range words {
		x := bs.txW[wi] & masks[k]
		if l.s.faulted {
			x &^= bs.jamW[wi]
		}
		if x != 0 {
			return int(wi)<<6 | bits.TrailingZeros64(x)
		}
	}
	panic("radio: single-transmitter word with no sender")
}

// packEffects folds a scalar effects vector into the effect words — the
// fallback for fault models without the WordModel fast path.
func (bs *bitState) packEffects(effects []faults.Effect) {
	for v, e := range effects {
		if e == 0 {
			continue
		}
		wi, mask := v>>6, uint64(1)<<(uint(v)&63)
		if e&faults.Jam != 0 {
			bs.jamW[wi] |= mask
		}
		if e&faults.Down != 0 {
			bs.downW[wi] |= mask
		}
		if e&faults.Wipe != 0 {
			bs.wipeW[wi] |= mask
		}
	}
}
