package radio

import (
	"context"
	"testing"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// chatter transmits every round forever — the pathological hung protocol
// cancellation exists for.
type chatter struct{}

func (chatter) Step(*Message) Action { return Send(Message{Kind: KindData, Payload: "x"}) }

func chatterProtos(n int) []Protocol {
	ps := make([]Protocol, n)
	for i := range ps {
		ps[i] = chatter{}
	}
	return ps
}

// TestRunCtxStopsWithinOneRound pins the engine's cancellation contract:
// a context cancelled during round r stops the run before round r+1, and
// the Result carries the executed prefix with Interrupted set.
func TestRunCtxStopsWithinOneRound(t *testing.T) {
	g := graph.Path(4)
	ctx, cancel := context.WithCancel(context.Background())
	const cancelRound = 5
	res := Run(g, chatterProtos(4), Options{
		MaxRounds: 1 << 20,
		Ctx:       ctx,
		Faults: faults.DropFunc(func(node, round int) bool {
			if round >= cancelRound {
				cancel()
			}
			return false
		}),
	})
	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if res.Rounds != cancelRound {
		t.Fatalf("run stopped after round %d, want exactly the cancellation round %d", res.Rounds, cancelRound)
	}
	if res.TotalTransmissions != 4*cancelRound {
		t.Fatalf("prefix records %d transmissions, want %d", res.TotalTransmissions, 4*cancelRound)
	}
}

// TestRunCtxAlreadyCancelled: a done context yields an empty (0-round)
// interrupted result rather than running at all.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(graph.Path(3), chatterProtos(3), Options{MaxRounds: 100, Ctx: ctx})
	if !res.Interrupted || res.Rounds != 0 || res.TotalTransmissions != 0 {
		t.Fatalf("pre-cancelled run executed: rounds=%d tx=%d interrupted=%v",
			res.Rounds, res.TotalTransmissions, res.Interrupted)
	}
}

// TestRunNilCtxUnchanged: the default (nil) context is never consulted
// and the run completes to its bound.
func TestRunNilCtxUnchanged(t *testing.T) {
	res := Run(graph.Path(3), chatterProtos(3), Options{MaxRounds: 17})
	if res.Interrupted {
		t.Fatal("uncancellable run marked Interrupted")
	}
	if res.Rounds != 17 {
		t.Fatalf("ran %d rounds, want the full 17", res.Rounds)
	}
}
