package radio

import (
	"fmt"
	"runtime"
	"sync"

	"radiobcast/internal/graph"
)

// Options configures an engine run.
type Options struct {
	// MaxRounds bounds the execution; the run stops after this many rounds
	// even if traffic continues. Required (> 0).
	MaxRounds int

	// StopAfterSilent, when > 0, stops the run once this many consecutive
	// rounds had no transmissions. Algorithms whose every transmission is
	// triggered by a reception at most two rounds earlier (B, Back) are
	// permanently silent after 3 quiet rounds; Barb's source waits T rounds
	// mid-run, so Barb runs must disable this or use a large value.
	StopAfterSilent int

	// Stop, when non-nil, is evaluated after each round; returning true
	// ends the run. Use it to stop once an externally observable condition
	// holds (e.g. the source's ack was delivered).
	Stop func(round int) bool

	// Workers selects the engine: ≤ 1 runs the sequential engine, > 1 runs
	// the node-partitioned parallel engine with that many goroutines, and
	// < 0 uses GOMAXPROCS workers. Results are identical in all modes.
	Workers int

	// Trace, when non-nil, records every round's transmissions and
	// deliveries (used for Figure 1 rendering and debugging).
	Trace *Trace

	// Drop, when non-nil, injects transmission faults: if Drop(v, round)
	// returns true, node v's transmission in that round is jammed — no
	// neighbour hears it (nor counts it towards a collision), while v
	// itself believes it transmitted. Used by the FAULT experiment to
	// measure how much the paper's schedule relies on lossless delivery.
	Drop func(node, round int) bool
}

// Reception records one successful message delivery.
type Reception struct {
	Round int
	Msg   Message
}

// Result aggregates everything observable about a run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmits[v] lists the rounds in which node v transmitted.
	Transmits [][]int
	// Receives[v] lists node v's successful receptions in round order.
	Receives [][]Reception
	// Collisions[v] counts rounds in which v listened while ≥ 2 neighbours
	// transmitted.
	Collisions []int
	// TotalTransmissions counts all transmissions across nodes and rounds.
	TotalTransmissions int
	// MaxMessageBits is the largest BitLen over all transmitted messages.
	MaxMessageBits int
	// SilentStopped reports whether the run ended via StopAfterSilent.
	SilentStopped bool
}

// FirstReception returns the round in which node v first successfully
// received a message of the given kind, or 0 if it never did.
func (r *Result) FirstReception(v int, kind Kind) int {
	for _, rec := range r.Receives[v] {
		if rec.Msg.Kind == kind {
			return rec.Round
		}
	}
	return 0
}

// TransmissionsPerNode returns the per-node transmission counts.
func (r *Result) TransmissionsPerNode() []int {
	out := make([]int, len(r.Transmits))
	for v, ts := range r.Transmits {
		out[v] = len(ts)
	}
	return out
}

// MaxTransmissionsPerNode returns the largest per-node transmission count
// (an energy metric).
func (r *Result) MaxTransmissionsPerNode() int {
	m := 0
	for _, ts := range r.Transmits {
		if len(ts) > m {
			m = len(ts)
		}
	}
	return m
}

// Run executes the protocols on g under the radio model and returns the
// observed result. protos[v] is node v's state machine; len(protos) must
// equal g.N(). Each Protocol must be a fresh instance: Run drives it from
// round 1.
func Run(g *graph.Graph, protos []Protocol, opt Options) *Result {
	n := g.N()
	if len(protos) != n {
		panic(fmt.Sprintf("radio: %d protocols for %d nodes", len(protos), n))
	}
	if opt.MaxRounds <= 0 {
		panic("radio: Options.MaxRounds must be positive")
	}
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	res := &Result{
		Transmits:  make([][]int, n),
		Receives:   make([][]Reception, n),
		Collisions: make([]int, n),
	}
	heard := make([]*Message, n) // message heard in the previous round
	busy := make([]bool, n)      // ≥1 neighbour transmitted (collision detection)
	actions := make([]Action, n) // this round's decisions
	dropped := make([]bool, n)   // fault-injected transmissions this round
	nextHeard := make([]*Message, n)
	nextBusy := make([]bool, n)

	// Collision-detection protocols get the busy flag via StepNoise.
	noise := make([]NoiseProtocol, n)
	for v, p := range protos {
		if np, ok := p.(NoiseProtocol); ok {
			noise[v] = np
		}
	}
	step := func(v int) Action {
		if noise[v] != nil {
			return noise[v].StepNoise(heard[v], busy[v])
		}
		return protos[v].Step(heard[v])
	}

	silent := 0
	for round := 1; round <= opt.MaxRounds; round++ {
		// Phase 1: every node decides based on history through round-1.
		if workers > 1 {
			parallelRange(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					actions[v] = step(v)
				}
			})
		} else {
			for v := 0; v < n; v++ {
				actions[v] = step(v)
			}
		}

		// Phase 2: resolve the channel at each listener.
		// Apply fault injection before resolving the channel.
		if opt.Drop != nil {
			for v := 0; v < n; v++ {
				dropped[v] = actions[v].Transmit && opt.Drop(v, round)
			}
		}
		transmitted := 0
		if workers > 1 {
			counts := make([]int, workers)
			parallelRangeIdx(n, workers, func(w, lo, hi int) {
				for v := lo; v < hi; v++ {
					counts[w] += resolve(g, v, actions, dropped, nextHeard, nextBusy, res)
				}
			})
			for _, c := range counts {
				transmitted += c
			}
		} else {
			for v := 0; v < n; v++ {
				transmitted += resolve(g, v, actions, dropped, nextHeard, nextBusy, res)
			}
		}

		// Phase 3: sequential bookkeeping (kept out of the parallel section
		// so results are bit-identical across engine modes).
		for v := 0; v < n; v++ {
			if actions[v].Transmit {
				res.Transmits[v] = append(res.Transmits[v], round)
				if b := actions[v].Msg.BitLen(); b > res.MaxMessageBits {
					res.MaxMessageBits = b
				}
			}
			if nextHeard[v] != nil {
				res.Receives[v] = append(res.Receives[v], Reception{Round: round, Msg: *nextHeard[v]})
			}
		}
		res.TotalTransmissions += transmitted
		if opt.Trace != nil {
			opt.Trace.record(round, actions, nextHeard)
		}

		heard, nextHeard = nextHeard, heard
		busy, nextBusy = nextBusy, busy
		for v := range nextHeard {
			nextHeard[v] = nil
			nextBusy[v] = false
		}
		res.Rounds = round

		if transmitted == 0 {
			silent++
		} else {
			silent = 0
		}
		if opt.Stop != nil && opt.Stop(round) {
			break
		}
		if opt.StopAfterSilent > 0 && silent >= opt.StopAfterSilent {
			res.SilentStopped = true
			break
		}
	}
	return res
}

// resolve computes what node v hears in this round and returns 1 if v
// transmitted (for the transmission count).
func resolve(g *graph.Graph, v int, actions []Action, dropped []bool, nextHeard []*Message, nextBusy []bool, res *Result) int {
	if actions[v].Transmit {
		// A transmitting node hears nothing this round (and detects no
		// noise even in the collision-detection variant).
		nextHeard[v] = nil
		nextBusy[v] = false
		return 1
	}
	var heardMsg *Message
	count := 0
	for _, w := range g.Neighbors(v) {
		if actions[w].Transmit && !dropped[w] {
			count++
			if count > 1 {
				break
			}
			heardMsg = &actions[w].Msg
		}
	}
	nextBusy[v] = count >= 1
	switch {
	case count == 1:
		m := *heardMsg // copy: the action buffer is reused next round
		nextHeard[v] = &m
	case count > 1:
		res.Collisions[v]++ // safe in parallel mode: each v is resolved by one worker
		nextHeard[v] = nil
	default:
		nextHeard[v] = nil
	}
	return 0
}

// parallelRange splits [0, n) into contiguous chunks and runs f on each.
func parallelRange(n, workers int, f func(lo, hi int)) {
	parallelRangeIdx(n, workers, func(_, lo, hi int) { f(lo, hi) })
}

func parallelRangeIdx(n, workers int, f func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
