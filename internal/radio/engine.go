package radio

import (
	"context"
	"sync"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// Options configures an engine run.
type Options struct {
	// MaxRounds bounds the execution; the run stops after this many rounds
	// even if traffic continues. Required (> 0).
	MaxRounds int

	// Ctx, when non-nil, makes the run cancellable: it is checked between
	// rounds, and once the context is done the run stops before starting
	// the next round. The Result then carries everything observed so far
	// with Interrupted set — cancellation yields partial data, never a
	// corrupt engine. A nil Ctx (the default) is never checked, so
	// non-cancellable runs pay nothing.
	Ctx context.Context

	// StopAfterSilent, when > 0, stops the run once this many consecutive
	// rounds had no transmissions. Algorithms whose every transmission is
	// triggered by a reception at most two rounds earlier (B, Back) are
	// permanently silent after 3 quiet rounds; Barb's source waits T rounds
	// mid-run, so Barb runs must disable this or use a large value.
	StopAfterSilent int

	// Stop, when non-nil, is evaluated after each round; returning true
	// ends the run. Use it to stop once an externally observable condition
	// holds (e.g. the source's ack was delivered).
	Stop func(round int) bool

	// Workers selects the engine: ≤ 1 runs the sequential engine, > 1 runs
	// the node-partitioned parallel engine with that many goroutines, and
	// < 0 uses GOMAXPROCS workers. Results are identical in all modes.
	Workers int

	// Trace, when non-nil, records every round's transmissions and
	// deliveries (used for Figure 1 rendering and debugging).
	Trace *Trace

	// Faults, when non-nil, injects faults through the composable model
	// interface of internal/faults: jamming, crash–recovery, topology
	// churn, duty-cycling, or any composition. The model is Reset at the
	// start of the run and consulted twice per round (see faults.Model).
	// Models are stateful: a model value must not be shared by runs that
	// may execute concurrently. The historical Drop-hook API is available
	// as faults.DropFunc.
	Faults faults.Model

	// Sim, when non-nil, is the reusable engine to run on: callers in a
	// label-once/run-many loop pass the same Sim every time and amortise
	// all per-run buffers. When nil, Run borrows a Sim from an internal
	// pool. See Sim.
	Sim *Sim

	// DisableSparse forces the dense reference engine: every node is
	// stepped every round and the channel is resolved listener by
	// listener, ignoring any Waker implementations. Results are
	// bit-identical either way; this knob exists for differential tests
	// and benchmarking the sparse-wakeup fast path.
	DisableSparse bool

	// DisableBitset forces the scalar sequential engine where the bitset
	// engine would otherwise run (sequential sparse runs without a
	// Trace). Results are bit-identical either way; the knob exists for
	// differential tests and for measuring what the bitset core buys.
	DisableBitset bool
}

// Reception records one successful message delivery.
type Reception struct {
	Round int
	Msg   Message
}

// Result aggregates everything observable about a run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmits[v] lists the rounds in which node v transmitted.
	Transmits [][]int
	// Receives[v] lists node v's successful receptions in round order.
	Receives [][]Reception
	// Collisions[v] counts rounds in which v listened while ≥ 2 neighbours
	// transmitted.
	Collisions []int
	// TotalTransmissions counts all transmissions across nodes and rounds.
	TotalTransmissions int
	// MaxMessageBits is the largest BitLen over all transmitted messages.
	MaxMessageBits int
	// SilentStopped reports whether the run ended via StopAfterSilent.
	SilentStopped bool
	// Interrupted reports that the run was cut short by Options.Ctx: the
	// result is a valid prefix of the full execution, not its entirety.
	Interrupted bool
}

// NoReception is the sentinel returned by FirstReception for a node that
// never received a matching message. Engine rounds are 1-based — every
// real reception happens in a round ≥ 1 — so the zero value is
// unambiguous.
const NoReception = 0

// FirstReception returns the 1-based round in which node v first
// successfully received a message of the given kind, or NoReception if it
// never did.
func (r *Result) FirstReception(v int, kind Kind) int {
	for _, rec := range r.Receives[v] {
		if rec.Msg.Kind == kind {
			return rec.Round
		}
	}
	return NoReception
}

// TransmissionsPerNode returns the per-node transmission counts.
func (r *Result) TransmissionsPerNode() []int {
	out := make([]int, len(r.Transmits))
	for v, ts := range r.Transmits {
		out[v] = len(ts)
	}
	return out
}

// MaxTransmissionsPerNode returns the largest per-node transmission count
// (an energy metric).
func (r *Result) MaxTransmissionsPerNode() int {
	m := 0
	for _, ts := range r.Transmits {
		if len(ts) > m {
			m = len(ts)
		}
	}
	return m
}

var simPool = sync.Pool{New: func() any { return new(Sim) }}

// Run executes the protocols on g under the radio model and returns the
// observed result. protos[v] is node v's state machine; len(protos) must
// equal g.N(). Each Protocol must be a fresh instance: Run drives it from
// round 1.
//
// Run borrows a reusable Sim from an internal pool unless opt.Sim is set;
// the returned Result is always detached and stays valid indefinitely.
func Run(g *graph.Graph, protos []Protocol, opt Options) *Result {
	if opt.Sim != nil {
		return opt.Sim.Run(g, protos, opt)
	}
	s := simPool.Get().(*Sim)
	defer simPool.Put(s)
	return s.Run(g, protos, opt)
}

// parallelRange splits [0, n) into contiguous chunks and runs f on each.
func parallelRange(n, workers int, f func(lo, hi int)) {
	parallelRangeIdx(n, workers, func(_, lo, hi int) { f(lo, hi) })
}

func parallelRangeIdx(n, workers int, f func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
