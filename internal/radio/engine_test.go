package radio

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"radiobcast/internal/graph"
)

func dataMsg(payload string) Message {
	return Message{Kind: KindData, Payload: payload}
}

// listenAll returns n protocols that never transmit.
func listenAll(n int) []Protocol {
	ps := make([]Protocol, n)
	for i := range ps {
		ps[i] = &Scripted{}
	}
	return ps
}

func TestSingleTransmitterDelivers(t *testing.T) {
	// Path 0-1-2. Node 0 transmits in round 1; node 1 must hear it, node 2
	// must not (not adjacent).
	g := graph.Path(3)
	ps := listenAll(3)
	ps[0] = NewScripted(dataMsg("mu"), 1)
	res := Run(g, ps, Options{MaxRounds: 3})
	if got := res.FirstReception(1, KindData); got != 1 {
		t.Fatalf("node 1 first reception = %d, want 1", got)
	}
	if got := res.FirstReception(2, KindData); got != 0 {
		t.Fatalf("node 2 first reception = %d, want none", got)
	}
	if len(res.Receives[1]) != 1 || res.Receives[1][0].Msg.Payload != "mu" {
		t.Fatalf("node 1 receptions = %+v", res.Receives[1])
	}
	if res.TotalTransmissions != 1 {
		t.Fatalf("TotalTransmissions = %d, want 1", res.TotalTransmissions)
	}
}

func TestCollisionSilencesListener(t *testing.T) {
	// Star with centre 0 and leaves 1,2. Both leaves transmit in round 1:
	// the centre hears nothing and records a collision.
	g := graph.Star(3)
	ps := listenAll(3)
	ps[1] = NewScripted(dataMsg("a"), 1)
	ps[2] = NewScripted(dataMsg("b"), 1)
	res := Run(g, ps, Options{MaxRounds: 2})
	if len(res.Receives[0]) != 0 {
		t.Fatalf("centre heard %v despite collision", res.Receives[0])
	}
	if res.Collisions[0] != 1 {
		t.Fatalf("Collisions[0] = %d, want 1", res.Collisions[0])
	}
}

func TestTransmitterHearsNothing(t *testing.T) {
	// Two adjacent nodes transmit simultaneously; neither hears the other.
	g := graph.Path(2)
	ps := []Protocol{
		NewScripted(dataMsg("x"), 1),
		NewScripted(dataMsg("y"), 1),
	}
	res := Run(g, ps, Options{MaxRounds: 2})
	if len(res.Receives[0]) != 0 || len(res.Receives[1]) != 0 {
		t.Fatal("transmitting node heard a message")
	}
	// and no collision is charged to a transmitter
	if res.Collisions[0] != 0 || res.Collisions[1] != 0 {
		t.Fatal("collision charged to transmitter")
	}
}

func TestReceivedMessageVisibleNextStep(t *testing.T) {
	// An echo protocol: retransmit whatever was heard, one round later.
	g := graph.Path(3)
	echo := &echoProtocol{}
	ps := []Protocol{NewScripted(dataMsg("mu"), 1), echo, &Scripted{}}
	res := Run(g, ps, Options{MaxRounds: 4})
	// Node 1 hears in round 1, echoes in round 2, node 2 hears in round 2.
	if got := res.FirstReception(2, KindData); got != 2 {
		t.Fatalf("node 2 first reception = %d, want 2", got)
	}
	if !reflect.DeepEqual(res.Transmits[1], []int{2}) {
		t.Fatalf("echo transmit rounds = %v, want [2]", res.Transmits[1])
	}
}

type echoProtocol struct{}

// Step retransmits in round r whatever was heard in round r−1 (the heard
// message is handed to the *next* Step call, so echoing it immediately
// means transmitting exactly one round after reception).
func (e *echoProtocol) Step(rcv *Message) Action {
	if rcv != nil {
		return Send(*rcv)
	}
	return Listen
}

func TestStopAfterSilent(t *testing.T) {
	g := graph.Path(2)
	ps := []Protocol{NewScripted(dataMsg("x"), 1), &Scripted{}}
	res := Run(g, ps, Options{MaxRounds: 100, StopAfterSilent: 3})
	if !res.SilentStopped {
		t.Fatal("run did not silent-stop")
	}
	if res.Rounds != 4 { // round 1 active, rounds 2-4 silent
		t.Fatalf("Rounds = %d, want 4", res.Rounds)
	}
}

func TestStopCallback(t *testing.T) {
	g := graph.Path(2)
	ps := []Protocol{NewScripted(dataMsg("x"), 1, 5, 9), &Scripted{}}
	res := Run(g, ps, Options{
		MaxRounds: 100,
		Stop:      func(round int) bool { return round == 6 },
	})
	if res.Rounds != 6 {
		t.Fatalf("Rounds = %d, want 6", res.Rounds)
	}
}

func TestMaxRoundsRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MaxRounds = 0")
		}
	}()
	Run(graph.Path(2), listenAll(2), Options{})
}

func TestProtocolCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for protocol count mismatch")
		}
	}()
	Run(graph.Path(3), listenAll(2), Options{MaxRounds: 1})
}

func TestMessageCopiedNotAliased(t *testing.T) {
	// The engine must copy delivered messages: the action buffer is reused.
	g := graph.Path(2)
	keep := &keepProtocol{}
	ps := []Protocol{NewScripted(dataMsg("first"), 1), keep}
	ps[0].(*Scripted).Schedule[2] = dataMsg("second")
	Run(g, ps, Options{MaxRounds: 3})
	if len(keep.got) != 2 || keep.got[0].Payload != "first" || keep.got[1].Payload != "second" {
		t.Fatalf("deliveries corrupted: %+v", keep.got)
	}
}

type keepProtocol struct{ got []Message }

func (k *keepProtocol) Step(rcv *Message) Action {
	if rcv != nil {
		k.got = append(k.got, *rcv)
	}
	return Listen
}

func TestMetrics(t *testing.T) {
	g := graph.Star(4)
	ps := listenAll(4)
	ps[0] = NewScripted(Message{Kind: KindData, Payload: "abc", TS: 9}, 1, 2)
	res := Run(g, ps, Options{MaxRounds: 2})
	if res.TotalTransmissions != 2 {
		t.Fatalf("TotalTransmissions = %d", res.TotalTransmissions)
	}
	if res.MaxTransmissionsPerNode() != 2 {
		t.Fatalf("MaxTransmissionsPerNode = %d", res.MaxTransmissionsPerNode())
	}
	wantBits := 3 + 8*3 + 4 // kind + payload + TS(9 → 4 bits)
	if res.MaxMessageBits != wantBits {
		t.Fatalf("MaxMessageBits = %d, want %d", res.MaxMessageBits, wantBits)
	}
	if got := res.TransmissionsPerNode(); !reflect.DeepEqual(got, []int{2, 0, 0, 0}) {
		t.Fatalf("TransmissionsPerNode = %v", got)
	}
}

func TestTraceCapture(t *testing.T) {
	g := graph.Path(2)
	tr := &Trace{}
	ps := []Protocol{NewScripted(dataMsg("mu"), 1), &Scripted{}}
	Run(g, ps, Options{MaxRounds: 2, Trace: tr})
	if len(tr.Rounds) != 1 {
		t.Fatalf("trace rounds = %d, want 1 (silent rounds omitted)", len(tr.Rounds))
	}
	r := tr.Rounds[0]
	if len(r.Transmitters) != 1 || r.Transmitters[0].Node != 0 {
		t.Fatalf("trace transmitters = %+v", r.Transmitters)
	}
	if len(r.Deliveries) != 1 || r.Deliveries[0].Node != 1 {
		t.Fatalf("trace deliveries = %+v", r.Deliveries)
	}
	if tr.String() == "" {
		t.Fatal("empty trace rendering")
	}
}

// randomScripted builds random fixed schedules so the parallel/sequential
// equivalence test exercises dense collision patterns.
func randomScripted(r *rand.Rand, n, horizon int) []Protocol {
	ps := make([]Protocol, n)
	for v := 0; v < n; v++ {
		s := &Scripted{Schedule: map[int]Message{}}
		for round := 1; round <= horizon; round++ {
			if r.Intn(3) == 0 {
				s.Schedule[round] = Message{Kind: KindData, Payload: "p", TS: round}
			}
		}
		ps[v] = s
	}
	return ps
}

func resultsEqual(a, b *Result) bool {
	return a.Rounds == b.Rounds &&
		a.TotalTransmissions == b.TotalTransmissions &&
		a.MaxMessageBits == b.MaxMessageBits &&
		a.SilentStopped == b.SilentStopped &&
		reflect.DeepEqual(a.Transmits, b.Transmits) &&
		reflect.DeepEqual(a.Receives, b.Receives) &&
		reflect.DeepEqual(a.Collisions, b.Collisions)
}

func TestParallelEquivalentToSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		g := graph.GNPConnected(n, 0.2, seed)
		horizon := 1 + r.Intn(20)
		seqP := randomScripted(rand.New(rand.NewSource(seed+1)), n, horizon)
		parP := randomScripted(rand.New(rand.NewSource(seed+1)), n, horizon)
		seq := Run(g, seqP, Options{MaxRounds: horizon})
		par := Run(g, parP, Options{MaxRounds: horizon, Workers: 1 + r.Intn(8)})
		return resultsEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExactlyOneNeighbourRule(t *testing.T) {
	// Cross-check the engine against a brute-force evaluation of the model:
	// v hears in round r iff v listens and exactly one neighbour transmits.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := graph.GNPConnected(n, 0.3, seed)
		horizon := 1 + r.Intn(10)
		ps := randomScripted(rand.New(rand.NewSource(seed+1)), n, horizon)
		// Extract the schedules before running (Run mutates round counters).
		sched := make([]map[int]Message, n)
		for v, p := range ps {
			sched[v] = p.(*Scripted).Schedule
		}
		res := Run(g, ps, Options{MaxRounds: horizon})
		for v := 0; v < n; v++ {
			gotRounds := map[int]bool{}
			for _, rec := range res.Receives[v] {
				gotRounds[rec.Round] = true
			}
			for round := 1; round <= horizon; round++ {
				_, vTransmits := sched[v][round]
				count := 0
				for _, w := range g.Neighbors(v) {
					if _, ok := sched[w][round]; ok {
						count++
					}
				}
				wantHear := !vTransmits && count == 1
				if gotRounds[round] != wantHear {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageBitLen(t *testing.T) {
	cases := []struct {
		msg  Message
		want int
	}{
		{Message{Kind: KindStay}, 3},
		{Message{Kind: KindData, Payload: "ab"}, 3 + 16},
		{Message{Kind: KindAck, TS: 1}, 3 + 1},
		{Message{Kind: KindAck, TS: 255}, 3 + 8},
		{Message{Kind: KindReady, Aux: 7, Phase: 2}, 3 + 3 + 2},
	}
	for _, c := range cases {
		if got := c.msg.BitLen(); got != c.want {
			t.Errorf("BitLen(%v) = %d, want %d", c.msg, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindData: "data", KindStay: "stay", KindAck: "ack",
		KindInit: "initialize", KindReady: "ready",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAnnotationsFormat(t *testing.T) {
	g := graph.Path(2)
	ps := []Protocol{NewScripted(dataMsg("mu"), 1), &Scripted{}}
	res := Run(g, ps, Options{MaxRounds: 1})
	out := Annotations(res, []string{"10", "00"})
	if out == "" {
		t.Fatal("empty annotations")
	}
}
