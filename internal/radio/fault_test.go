package radio

import (
	"testing"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

func TestDropSuppressesDelivery(t *testing.T) {
	g := graph.Path(2)
	ps := []Protocol{NewScripted(Message{Kind: KindData, Payload: "x"}, 1, 3), &Scripted{}}
	res := Run(g, ps, Options{
		MaxRounds: 4,
		Faults:    faults.DropFunc(func(node, round int) bool { return node == 0 && round == 1 }),
	})
	// Round 1 jammed; round 3 delivered.
	if got := res.FirstReception(1, KindData); got != 3 {
		t.Fatalf("first reception = %d, want 3", got)
	}
	// The transmitter still counts both transmissions (its radio fired).
	if len(res.Transmits[0]) != 2 {
		t.Fatalf("transmit count = %d, want 2", len(res.Transmits[0]))
	}
}

func TestDropResolvesCollisions(t *testing.T) {
	// Two leaves transmit; jamming one of them turns the collision into a
	// clean delivery of the other.
	g := graph.Star(3)
	ps := []Protocol{
		&Scripted{},
		NewScripted(Message{Kind: KindData, Payload: "a"}, 1),
		NewScripted(Message{Kind: KindData, Payload: "b"}, 1),
	}
	res := Run(g, ps, Options{
		MaxRounds: 2,
		Faults:    faults.DropFunc(func(node, round int) bool { return node == 2 }),
	})
	if len(res.Receives[0]) != 1 || res.Receives[0][0].Msg.Payload != "a" {
		t.Fatalf("centre receptions = %+v", res.Receives[0])
	}
	if res.Collisions[0] != 0 {
		t.Fatal("jammed transmitter still caused a collision")
	}
}

func TestDropAffectsNoiseFlag(t *testing.T) {
	g := graph.Path(2)
	rec := &noiseRecorder{}
	ps := []Protocol{NewScripted(Message{Kind: KindData}, 1), rec}
	Run(g, ps, Options{
		MaxRounds: 2,
		Faults:    faults.DropFunc(func(node, round int) bool { return true }),
	})
	if rec.busy[1] {
		t.Fatal("jammed transmission must not register as noise")
	}
}
