// Package radio implements the communication model of the paper (§1.1):
// synchronous rounds over an undirected graph, where a listening node hears
// a message if and only if exactly one of its neighbours transmits in that
// round. There is no collision detection: silence and collision are
// indistinguishable to the listener. The package provides the message
// format with bit-size accounting, the deterministic per-node Protocol
// interface, a sequential engine and an equivalent parallel engine, and
// trace capture used to reproduce the paper's Figure 1.
package radio

import (
	"fmt"
	"math/bits"
)

// Kind identifies the role of a message. The paper's algorithms use the
// source message µ ("data"), a constant-size "stay" message (§2), an "ack"
// message (§3), and the "initialize"/"ready" coordination messages of the
// arbitrary-source algorithm (§4).
type Kind uint8

const (
	KindData Kind = iota
	KindStay
	KindAck
	KindInit
	KindReady
	numKinds
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindStay:
		return "stay"
	case KindAck:
		return "ack"
	case KindInit:
		return "initialize"
	case KindReady:
		return "ready"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is a transmitted frame. Payload carries the source message µ
// where applicable. TS is the round-number timestamp appended by the
// acknowledged algorithms (Lemma 3.5); Aux carries the T value of the
// arbitrary-source algorithm; Phase tags Barb's three phases. Unused fields
// are zero and contribute nothing to BitLen.
type Message struct {
	Kind    Kind
	Payload string
	TS      int
	Aux     int
	Phase   uint8
}

// BitLen returns the size of the message in bits, charging 3 bits for the
// kind, 8 bits per payload byte, the binary length of each non-zero
// integer field, and 2 bits for a non-zero phase tag. This implements the
// paper's message-size accounting: algorithm B transmits O(1)+|µ| bits,
// while Back adds an O(log n) timestamp.
func (m *Message) BitLen() int {
	n := 3 + 8*len(m.Payload)
	if m.TS > 0 {
		n += bits.Len(uint(m.TS))
	}
	if m.Aux > 0 {
		n += bits.Len(uint(m.Aux))
	}
	if m.Phase > 0 {
		n += 2
	}
	return n
}

// String renders the message in the paper's notation, e.g. (µ, 5).
func (m *Message) String() string {
	body := m.Kind.String()
	if m.Kind == KindData && m.Payload != "" {
		body = fmt.Sprintf("%q", m.Payload)
	}
	if m.TS > 0 {
		return fmt.Sprintf("(%s, %d)", body, m.TS)
	}
	return fmt.Sprintf("(%s)", body)
}

// Action is a node's decision for one round: transmit Msg, or listen.
type Action struct {
	Transmit bool
	Msg      Message
}

// Listen is the no-transmission action.
var Listen = Action{}

// Send returns a transmit action for msg.
func Send(msg Message) Action { return Action{Transmit: true, Msg: msg} }

// Protocol is the deterministic state machine run at each node. Step is
// called once per round r = 1, 2, ...; received is the message the node
// heard in round r−1, or nil for round 1, for silence, for collision, or
// if the node itself transmitted in round r−1 (all indistinguishable in
// the model). The returned action applies to round r. Implementations must
// base decisions only on their label and message history — never on the
// topology — to qualify as universal algorithms in the paper's sense.
//
// received points into an engine-owned buffer: it is valid only for the
// duration of the Step call, so implementations copy out what they keep
// (copying the Message value is enough). Protocols may additionally
// implement Waker, in which case the engine may replace runs of
// guaranteed-silent Step calls with one Skip call (see Waker).
type Protocol interface {
	Step(received *Message) Action
}

// NoiseProtocol is the collision-detection variant of the model (§1.1 of
// the paper: "If collision detection is available, broadcast is trivially
// feasible, even in anonymous networks"). A protocol implementing this
// interface receives, in addition to the delivered message (nil on silence
// or collision, as usual), a busy flag that is true iff at least one
// neighbour transmitted in the previous round — i.e. the node can
// distinguish silence from noise. The engine uses StepNoise instead of
// Step for such protocols.
type NoiseProtocol interface {
	StepNoise(received *Message, busy bool) Action
}
