// Million-node *labeling* smoke tests — the preprocessing-side companion
// of TestMillionNodeSmoke. This file is an external test package so it
// can drive the public facade (Session, RunLabeled) over the same graphs
// the engine scale tests use without an import cycle.
package radio_test

import (
	"context"
	"runtime"
	"testing"

	"radiobcast"
)

// labelingHeapCeiling bounds the heap growth one million-node labeling is
// allowed to retain. The word-parallel builder stores only the DOM/NEW
// deltas — Θ(n + Σ|DOM_i|+|NEW_i|) — plus the labels themselves; 512 MiB
// is an order of magnitude of slack on top of that, while the former
// five-full-sets-per-stage snapshots would have needed Θ(n·ℓ) bits
// (≈ 78 TiB for the 10⁶-node path) and could not fit at any ceiling.
const labelingHeapCeiling = 512 << 20

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// labelUnderCeiling labels net with scheme b and fails the test if the
// retained heap delta exceeds the ceiling.
func labelUnderCeiling(t *testing.T, net *radiobcast.Network, tag string) *radiobcast.Labeling {
	t.Helper()
	before := heapInUse()
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatalf("%s: label: %v", tag, err)
	}
	after := heapInUse()
	if after > before && after-before > labelingHeapCeiling {
		t.Fatalf("%s: labeling retained %d MiB, ceiling %d MiB",
			tag, (after-before)>>20, labelingHeapCeiling>>20)
	}
	return l
}

// TestMillionNodeLabelingSmoke labels a streamed million-node G(n,p)
// graph end-to-end under an explicit memory ceiling, then RunLabels it
// through a Session and requires full broadcast coverage. Before the
// delta-compressed stage storage and the word-parallel builder this was
// infeasible: the scalar pipeline's Θ(n²) set snapshots and node-at-a-
// time pruning could not label graphs the PR 8 engine could already run.
func TestMillionNodeLabelingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node labeling smoke is a scale test")
	}
	const n = 1_000_000
	net, err := radiobcast.Family("gnp-sparse", n)
	if err != nil {
		t.Fatal(err)
	}
	l := labelUnderCeiling(t, net, "gnp-sparse")
	if l.Stages == nil || l.Stages.L < 2 {
		t.Fatalf("implausible stage count ℓ = %v", l.Stages)
	}

	sess := radiobcast.NewSession()
	defer sess.Close(nil)
	out, err := sess.RunLabeled(context.Background(), l)
	if err != nil {
		t.Fatalf("run labeled: %v", err)
	}
	if !out.AllInformed {
		t.Fatalf("broadcast with λ labels reached coverage %.4f, want 1", out.Coverage)
	}
	if err := radiobcast.Verify(out); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMillionNodePathLabeling labels the deep extreme: a million-node
// path, where ℓ = n and the old per-stage snapshots were Θ(n²) bits.
// With delta storage the whole structure is Θ(n), so this completes
// under the same ceiling as the shallow G(n,p) case.
func TestMillionNodePathLabeling(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node labeling smoke is a scale test")
	}
	const n = 1_000_000
	net, err := radiobcast.Family("path", n)
	if err != nil {
		t.Fatal(err)
	}
	l := labelUnderCeiling(t, net, "path")
	if l.Stages.L != n {
		t.Fatalf("path ℓ = %d, want %d", l.Stages.L, n)
	}
}
