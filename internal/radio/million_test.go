package radio

import (
	"testing"

	"radiobcast/internal/graph"
)

// floodOnce is a minimal epidemic protocol for scale tests: on first
// reception it schedules one retransmission a hash-staggered few rounds
// later, then goes permanently passive. The stagger spreads transmitters
// across rounds so some singles survive the collisions, and the Waker
// contract keeps the active set sparse — which is exactly the regime the
// bitset core's wake calendar and slab resolution are built for.
type floodOnce struct {
	v      int
	round  int
	sendAt int
	msg    Message
}

func (f *floodOnce) Step(rcv *Message) Action {
	f.round++
	if rcv != nil && f.sendAt == 0 {
		f.msg = *rcv
		f.sendAt = f.round + 1 + int(uint32(f.v)*2654435761%13)
	}
	if f.sendAt == f.round {
		return Send(f.msg)
	}
	return Listen
}

func (f *floodOnce) NextWake() int {
	if f.sendAt > f.round {
		return f.sendAt
	}
	return NeverWake
}

func (f *floodOnce) Skip(rounds int) { f.round += rounds }

func floodProtocols(n int) []Protocol {
	ps := make([]Protocol, n)
	for v := 1; v < n; v++ {
		ps[v] = &floodOnce{v: v}
	}
	ps[0] = NewScripted(Message{Kind: KindData, Payload: "m"}, 1)
	return ps
}

// TestMillionNodeSmoke drives the bitset engine over a streamed-CSR
// million-node sparse G(n,p) graph: generation must stay within the
// streaming generator's budget and the run must complete. The assertion
// is coverage-only — epidemic flooding under collisions informs a
// sizeable fraction of the giant component, but which fraction is
// protocol detail, not an engine property.
func TestMillionNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke is a scale test")
	}
	const n = 1_000_000
	g := graph.Families["gnp-sparse"](n)
	if g.N() != n {
		t.Fatalf("generator produced %d nodes", g.N())
	}
	res := Run(g, floodProtocols(n), Options{MaxRounds: 200, StopAfterSilent: 3})
	informed := 1 // the source
	for v := 1; v < n; v++ {
		if len(res.Receives[v]) > 0 {
			informed++
		}
	}
	// The giant component of G(n, 2/n) holds ~80% of the nodes; the
	// staggered flood reaches most of it. Anything above half the graph
	// proves the engine actually propagated at scale.
	if informed < n/2 {
		t.Fatalf("flood informed %d of %d nodes", informed, n)
	}
	if res.TotalTransmissions > n {
		t.Fatalf("flood-once transmitted %d times on %d nodes", res.TotalTransmissions, n)
	}
}

// BenchmarkMillionNode is the scale benchmark behind docs/BENCHMARKS.md:
// one full million-node epidemic flood per iteration, streaming CSR
// generation excluded.
func BenchmarkMillionNode(b *testing.B) {
	const n = 1_000_000
	g := graph.Families["gnp-sparse"](n)
	g.Freeze().Bits() // pre-warm: measure the engine, not the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, floodProtocols(n), Options{MaxRounds: 200, StopAfterSilent: 3})
	}
}
