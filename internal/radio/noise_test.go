package radio

import (
	"testing"

	"radiobcast/internal/graph"
)

// noiseRecorder records the busy flag it saw at each Step.
type noiseRecorder struct {
	busy     []bool
	schedule map[int]Message
	round    int
}

func (n *noiseRecorder) Step(*Message) Action {
	panic("engine must use StepNoise for NoiseProtocol implementations")
}

func (n *noiseRecorder) StepNoise(_ *Message, busy bool) Action {
	n.round++
	n.busy = append(n.busy, busy)
	if msg, ok := n.schedule[n.round]; ok {
		return Send(msg)
	}
	return Listen
}

func TestNoiseFlagOnCollision(t *testing.T) {
	// Star centre listens while both leaves transmit: no message delivered
	// (collision) but busy must be true — the collision-detection model.
	g := graph.Star(3)
	centre := &noiseRecorder{}
	ps := []Protocol{
		centre,
		NewScripted(Message{Kind: KindData}, 1),
		NewScripted(Message{Kind: KindData}, 1),
	}
	res := Run(g, ps, Options{MaxRounds: 3})
	if len(res.Receives[0]) != 0 {
		t.Fatal("collision should deliver nothing")
	}
	// busy[0] is the flag for round 0 (before any round: false);
	// Step for round 2 sees round 1's noise.
	if centre.busy[0] {
		t.Fatal("busy before round 1")
	}
	if !centre.busy[1] {
		t.Fatal("collision not reported as noise")
	}
	if centre.busy[2] {
		t.Fatal("noise reported on a silent round")
	}
}

func TestNoiseFlagSingleTransmitter(t *testing.T) {
	// Exactly one transmitting neighbour: both the message AND busy=true.
	g := graph.Path(2)
	rec := &noiseRecorder{}
	ps := []Protocol{NewScripted(Message{Kind: KindData, Payload: "x"}, 1), rec}
	res := Run(g, ps, Options{MaxRounds: 2})
	if res.FirstReception(1, KindData) != 1 {
		t.Fatal("message not delivered")
	}
	if !rec.busy[1] {
		t.Fatal("busy flag missing alongside delivery")
	}
}

func TestNoiseFlagTransmitterHearsNothing(t *testing.T) {
	// A transmitting node detects no noise, even if its neighbour also
	// transmits in the same round.
	g := graph.Path(2)
	rec := &noiseRecorder{schedule: map[int]Message{1: {Kind: KindData}}}
	ps := []Protocol{NewScripted(Message{Kind: KindData}, 1), rec}
	Run(g, ps, Options{MaxRounds: 2})
	if rec.busy[1] {
		t.Fatal("transmitter must not sense the channel")
	}
}

func TestMixedProtocolTypes(t *testing.T) {
	// Plain Step protocols and NoiseProtocols coexist in one run.
	g := graph.Path(3)
	rec := &noiseRecorder{}
	ps := []Protocol{NewScripted(Message{Kind: KindData}, 1), &Scripted{}, rec}
	res := Run(g, ps, Options{MaxRounds: 2})
	if res.FirstReception(1, KindData) != 1 {
		t.Fatal("plain protocol missed delivery")
	}
	if rec.busy[1] {
		t.Fatal("node 2 is not adjacent to the transmitter")
	}
}
