package radio

import "sort"

// Scripted is a Protocol that transmits fixed messages at a fixed set of
// rounds, regardless of what it hears. It backs the centralized-schedule
// baseline (where a controller with full topology knowledge precomputes
// collision-free schedules) and the engine tests.
//
// A Scripted can be populated two ways: through the public Schedule map
// (which may be filled or modified any time before the first Step), or by
// CompiledScript with pre-sorted parallel round/message slices — the
// allocation-free path the centralized baseline uses to script thousands
// of nodes. On the first Step the map, if any, is compiled into the
// sorted form; mutating Schedule after that has no effect.
type Scripted struct {
	// Schedule maps round numbers to the message transmitted in that round.
	Schedule map[int]Message

	rounds   []int // ascending transmission rounds
	msgs     []Message
	compiled bool
	round    int
	idx      int // first entry with rounds[idx] >= the next round
}

// NewScripted returns a protocol transmitting msg at each of the given rounds.
func NewScripted(msg Message, rounds ...int) *Scripted {
	s := &Scripted{Schedule: make(map[int]Message, len(rounds))}
	for _, r := range rounds {
		s.Schedule[r] = msg
	}
	return s
}

// CompiledScript returns a protocol value transmitting msgs[i] in round
// rounds[i]. rounds must be ascending; both slices are retained, not
// copied. The value form lets callers bulk-allocate one []Scripted for a
// whole network.
func CompiledScript(rounds []int, msgs []Message) Scripted {
	return Scripted{rounds: rounds, msgs: msgs, compiled: true}
}

func (s *Scripted) compile() {
	s.compiled = true
	if len(s.Schedule) == 0 {
		return
	}
	s.rounds = make([]int, 0, len(s.Schedule))
	for r := range s.Schedule {
		s.rounds = append(s.rounds, r)
	}
	sort.Ints(s.rounds)
	s.msgs = make([]Message, len(s.rounds))
	for i, r := range s.rounds {
		s.msgs[i] = s.Schedule[r]
	}
}

// Step implements Protocol.
func (s *Scripted) Step(*Message) Action {
	if !s.compiled {
		s.compile()
	}
	s.round++
	for s.idx < len(s.rounds) && s.rounds[s.idx] < s.round {
		s.idx++
	}
	if s.idx < len(s.rounds) && s.rounds[s.idx] == s.round {
		msg := s.msgs[s.idx]
		s.idx++
		return Send(msg)
	}
	return Listen
}

// NextWake implements Waker: the next scheduled transmission round.
func (s *Scripted) NextWake() int {
	if !s.compiled {
		s.compile()
	}
	for s.idx < len(s.rounds) && s.rounds[s.idx] <= s.round {
		s.idx++
	}
	if s.idx < len(s.rounds) {
		return s.rounds[s.idx]
	}
	return NeverWake
}

// Skip implements Waker.
func (s *Scripted) Skip(rounds int) { s.round += rounds }
