package radio

// Scripted is a Protocol that transmits a fixed message at a fixed set of
// rounds, regardless of what it hears. It backs the centralized-schedule
// baseline (where a controller with full topology knowledge precomputes
// collision-free schedules) and the engine tests.
type Scripted struct {
	// Schedule maps round numbers to the message transmitted in that round.
	Schedule map[int]Message

	round int
}

// NewScripted returns a protocol transmitting msg at each of the given rounds.
func NewScripted(msg Message, rounds ...int) *Scripted {
	s := &Scripted{Schedule: make(map[int]Message, len(rounds))}
	for _, r := range rounds {
		s.Schedule[r] = msg
	}
	return s
}

// Step implements Protocol.
func (s *Scripted) Step(*Message) Action {
	s.round++
	if msg, ok := s.Schedule[s.round]; ok {
		return Send(msg)
	}
	return Listen
}
