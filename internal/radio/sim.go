package radio

import (
	"fmt"
	"runtime"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// Waker is an optional Protocol extension for schedule-driven protocols
// (B, Back, the slotted baselines, scripted schedules): it lets the engine
// skip the Step call for nodes that provably cannot act in a round.
//
// The engine guarantees a Step call in every round r in which the node
// heard a message in round r−1 (or, for a NoiseProtocol, detected noise),
// and in every round ≥ the round most recently returned by NextWake. It
// may skip Step in any other round; before the next real Step it reports
// the number of skipped rounds through Skip, so the protocol's internal
// round counter stays in sync. A skipped round is externally identical to
// a Step that returned Listen — the sparse and dense engines produce
// bit-identical Results (pinned by TestSparseMatchesDense and the facade
// matrix tests).
type Waker interface {
	// NextWake returns the absolute 1-based round number of the next round
	// in which the protocol might return a non-Listen action — or otherwise
	// needs to observe the passage of time — assuming it hears neither a
	// message nor noise in any intervening round. Returning NeverWake means
	// the protocol stays passive until its next reception. Returning a
	// round in 1..current is safe and simply disables skipping — but 0
	// is NeverWake, which suspends the node until its next reception;
	// implementations whose arithmetic can yield 0 must special-case it.
	NextWake() int
	// Skip informs the protocol that `rounds` rounds elapsed in which it
	// was not stepped. Implementations advance their internal round counter
	// by that amount, exactly as if Step had been called with nil and had
	// returned Listen each time.
	Skip(rounds int)
}

// NeverWake is returned by NextWake when the protocol has no scheduled
// future action: it will stay silent until it next hears something.
const NeverWake = 0

// Sim is a reusable simulation engine. It owns every per-run buffer —
// heard/busy channel state, the per-round action and fault vectors, and
// the flat transmit/receive accumulators — and resizes rather than
// reallocates them between runs, so driving many runs through one Sim
// (the label-once/run-many regime of the paper and the Sweep workloads)
// does only a constant number of small allocations per run regardless of
// graph size.
//
// A Sim may be used for any sequence of runs over graphs of any sizes,
// but a single Sim must not run concurrently with itself. The zero value
// is ready to use. Run detaches the returned Result from the Sim's
// buffers: Results remain valid after later runs.
type Sim struct {
	n   int
	cur int // index of the "current" half of the double buffers

	protos []Protocol
	noise  []NoiseProtocol
	wakers []Waker

	actions []Action
	dropped []bool

	// Double-buffered channel state: what each node heard in the previous
	// round (msgs entry valid iff sets entry) and whether ≥ 1 neighbour
	// transmitted (busys, for collision-detection protocols).
	msgs    [2][]Message
	sets    [2][]bool
	busys   [2][]bool
	touched [2][]int32 // entries dirtied in each half, for sparse clearing

	// Sparse-wakeup state.
	nextWake []int
	skipped  []int
	txList   []int32

	// Push-resolution scratch.
	deliverCnt []int32 // zeroed outside resolvePush/materialize
	scatter    []int32

	collisions []int
	counts     []int // per-worker transmission tallies (parallel engine)

	// Fault-injection state, live only when Options.Faults is set: the
	// per-round effect vector written by the model and the monotone
	// informed-set view it may consult (Heard in faults.State). The clean
	// path never touches these beyond the s.faulted flag checks.
	faulted bool
	effects []faults.Effect
	heard   []bool

	// Flat event logs, materialized into Result at the end of a run.
	txNodes  []int32
	txRounds []int32
	rxNodes  []int32
	rxRecs   []Reception

	maxBits int

	// bits holds the word-packed state of the bitset engine core, built
	// lazily on the first bitset-eligible run and reused like every other
	// buffer (see bitsim.go). Scalar and parallel runs never touch it.
	bits *bitState
}

// NewSim returns an empty Sim ready for its first Run.
func NewSim() *Sim { return &Sim{} }

// grow returns buf with length n, reusing its backing array when large
// enough; the returned slice is zeroed either way.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func (s *Sim) reset(n, workers int, protos []Protocol) {
	s.n = n
	s.cur = 0
	s.protos = protos
	s.noise = grow(s.noise, n)
	s.wakers = grow(s.wakers, n)
	for v, p := range protos {
		if np, ok := p.(NoiseProtocol); ok {
			s.noise[v] = np
		}
		if w, ok := p.(Waker); ok {
			s.wakers[v] = w
		}
	}
	s.actions = grow(s.actions, n)
	s.dropped = grow(s.dropped, n)
	for i := 0; i < 2; i++ {
		s.msgs[i] = grow(s.msgs[i], n)
		s.sets[i] = grow(s.sets[i], n)
		s.busys[i] = grow(s.busys[i], n)
		s.touched[i] = s.touched[i][:0]
	}
	s.nextWake = grow(s.nextWake, n)
	for v := range s.nextWake {
		s.nextWake[v] = 1 // every node is stepped in round 1
	}
	s.skipped = grow(s.skipped, n)
	s.txList = s.txList[:0]
	s.deliverCnt = grow(s.deliverCnt, n)
	s.scatter = s.scatter[:0]
	s.collisions = grow(s.collisions, n)
	if workers < 1 {
		workers = 1
	}
	s.counts = grow(s.counts, workers)
	s.txNodes = s.txNodes[:0]
	s.txRounds = s.txRounds[:0]
	s.rxNodes = s.rxNodes[:0]
	s.rxRecs = s.rxRecs[:0]
	s.maxBits = 0
}

// Run executes the protocols on g under the radio model (see Run at
// package level for the semantics; this is the same engine with explicit
// buffer ownership).
func (s *Sim) Run(g *graph.Graph, protos []Protocol, opt Options) *Result {
	n, workers, csr := s.prepareRun(g, protos, opt)

	fm := opt.Faults
	topo, fst := s.setupFaults(fm, n)

	sparse := !opt.DisableSparse
	push := sparse && workers <= 1 // push-based channel resolution

	// Sequential sparse runs without a Trace go through the bitset core
	// (bit-identical, word-parallel; see bitsim.go). Tracing needs the
	// per-round action vector the bitset core does not maintain for
	// skipped nodes, and mid-run topology swaps would invalidate the slab
	// cache, so both fall back to the scalar loop below.
	if push && opt.Trace == nil && !opt.DisableBitset && topo == nil {
		var lane bitLane
		lane.init(s, csr, opt, fm, fst)
		for !lane.done {
			lane.runRound(lane.rounds + 1)
		}
		return lane.finish()
	}

	silent := 0
	rounds := 0
	total := 0
	silentStopped := false
	interrupted := false
	for round := 1; round <= opt.MaxRounds; round++ {
		// Cancellation is checked between rounds: a cancelled run stops
		// before the next round and materializes the prefix executed so
		// far, so callers get partial results promptly (bounded by one
		// round) instead of waiting out MaxRounds.
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			interrupted = true
			break
		}
		nx := 1 - s.cur

		rxMark := len(s.rxNodes)
		if s.faulted {
			// Pre-step fault phase: swap in a churned topology, then let the
			// model set this round's Down/Wipe bits before any protocol
			// observes its pending reception.
			if topo != nil {
				if t := topo.Topology(round); t != nil {
					csr = t
				}
			}
			clear(s.effects)
			*fst = faults.State{Round: round, CSR: csr, Heard: s.heard}
			fm.Apply(fst, s.effects)
			for v := 0; v < n; v++ {
				if s.effects[v]&faults.Wipe != 0 {
					s.sets[s.cur][v] = false
					s.busys[s.cur][v] = false
				}
			}
		}

		// Phase 1: every node decides based on history through round−1.
		if push {
			s.txList = s.txList[:0]
		}
		if workers > 1 {
			parallelRange(n, workers, func(lo, hi int) {
				s.decide(round, sparse, push, lo, hi)
			})
		} else {
			s.decide(round, sparse, push, 0, n)
		}

		if s.faulted {
			// Post-decision fault phase: hand the model the round's
			// transmitter list so transmission-level effects (Jam) can
			// target it. Outside push mode the list is collected here —
			// sequentially, in node order, matching push mode's ordering.
			if !push {
				s.txList = s.txList[:0]
				for v := 0; v < n; v++ {
					if s.actions[v].Transmit {
						s.txList = append(s.txList, int32(v))
					}
				}
			}
			fst.Transmitters = s.txList
			fm.Apply(fst, s.effects)
		}

		// Phase 2+3: resolve the channel at each listener and log events.
		var transmitted int
		if push {
			transmitted = s.resolvePush(csr, round)
		} else {
			if s.faulted {
				for v := 0; v < n; v++ {
					s.dropped[v] = s.actions[v].Transmit && s.effects[v]&faults.Jam != 0
				}
			}
			if workers > 1 {
				// Capture a per-round copy: csr itself is reassigned by the
				// churn swap, and a closure over a reassigned variable would
				// force it into a heap cell on every run, clean or faulted.
				rcsr := csr
				parallelRangeIdx(n, workers, func(w, lo, hi int) {
					c := 0
					for v := lo; v < hi; v++ {
						c += s.resolvePull(rcsr, v)
					}
					s.counts[w] = c
				})
				for w := 0; w < workers; w++ {
					transmitted += s.counts[w]
				}
			} else {
				for v := 0; v < n; v++ {
					transmitted += s.resolvePull(csr, v)
				}
			}
			// Bookkeeping is kept out of the parallel section so results
			// are bit-identical across engine modes.
			for v := 0; v < n; v++ {
				if s.actions[v].Transmit {
					s.logTransmit(int32(v), round)
				}
				if s.sets[nx][v] {
					s.rxNodes = append(s.rxNodes, int32(v))
					s.rxRecs = append(s.rxRecs, Reception{Round: round, Msg: s.msgs[nx][v]})
				}
			}
		}
		if s.faulted {
			// Fold the round's deliveries and transmissions into the
			// informed-set view the models consult next round. (A node that
			// transmitted is informed even if it never received — the
			// source.)
			for _, w := range s.rxNodes[rxMark:] {
				s.heard[w] = true
			}
			for _, t := range s.txList {
				s.heard[t] = true
			}
		}
		total += transmitted
		if opt.Trace != nil {
			opt.Trace.record(round, s.actions, s.msgs[nx], s.sets[nx])
		}

		s.cur = nx
		rounds = round
		if transmitted == 0 {
			silent++
		} else {
			silent = 0
		}
		if opt.Stop != nil && opt.Stop(round) {
			break
		}
		if opt.StopAfterSilent > 0 && silent >= opt.StopAfterSilent {
			silentStopped = true
			break
		}
	}
	res := s.materialize(rounds, total, silentStopped)
	res.Interrupted = interrupted
	s.release()
	return res
}

// prepareRun validates a (graph, protocols, options) triple, sizes the
// engine buffers, and freezes the graph — the shared prologue of Run and
// of each lockstep lane set up by RunBatch.
func (s *Sim) prepareRun(g *graph.Graph, protos []Protocol, opt Options) (n, workers int, csr *graph.CSR) {
	n = g.N()
	if len(protos) != n {
		panic(fmt.Sprintf("radio: %d protocols for %d nodes", len(protos), n))
	}
	if opt.MaxRounds <= 0 {
		panic("radio: Options.MaxRounds must be positive")
	}
	workers = opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	csr = g.Freeze()
	s.reset(n, workers, protos)
	return n, workers, csr
}

// setupFaults primes the per-run fault-injection state and returns the
// model's optional topology extension plus the reusable State snapshot
// (nil, nil on clean runs — fst escapes through the Apply interface
// calls, so it is allocated only when a model is installed and the clean
// path stays allocation-free).
func (s *Sim) setupFaults(fm faults.Model, n int) (faults.TopologyModel, *faults.State) {
	s.faulted = fm != nil
	if !s.faulted {
		return nil, nil
	}
	s.effects = grow(s.effects, n)
	s.heard = grow(s.heard, n)
	if s.txList == nil {
		s.txList = []int32{} // keep non-nil: nil signals the pre-step phase
	}
	fm.Reset(n)
	topo, _ := fm.(faults.TopologyModel)
	return topo, &faults.State{}
}

// release drops every reference the buffers hold into caller objects
// (protocols, message payloads) once the run is over, so an idle Sim —
// pooled or caller-owned — does not keep the last network's protocol
// state and payload strings live. The int/bool buffers are kept as is;
// reset re-clears everything on the next run.
func (s *Sim) release() {
	s.protos = nil
	clear(s.noise)
	clear(s.wakers)
	clear(s.actions)
	for i := 0; i < 2; i++ {
		clear(s.msgs[i])
	}
	clear(s.rxRecs)
}

// decide runs Phase 1 for nodes [lo, hi): skip provably idle Waker nodes
// (sparse mode), step everyone else. collectTx additionally gathers the
// round's transmitters for push-based resolution.
func (s *Sim) decide(round int, sparse, collectTx bool, lo, hi int) {
	for v := lo; v < hi; v++ {
		if w := s.wakers[v]; sparse && w != nil {
			heardSomething := s.sets[s.cur][v] || (s.noise[v] != nil && s.busys[s.cur][v])
			if !heardSomething && (s.nextWake[v] == NeverWake || round < s.nextWake[v]) {
				if s.actions[v].Transmit {
					s.actions[v] = Listen
				}
				s.skipped[v]++
				continue
			}
			if s.skipped[v] > 0 {
				w.Skip(s.skipped[v])
				s.skipped[v] = 0
			}
			s.actions[v] = s.stepNode(v)
			s.nextWake[v] = w.NextWake()
		} else {
			s.actions[v] = s.stepNode(v)
		}
		if s.faulted && s.effects[v]&faults.Down != 0 && s.actions[v].Transmit {
			// Radio off: the protocol stepped (its clock runs) and believes
			// it transmitted, but nothing reaches the channel.
			s.actions[v] = Listen
		}
		if collectTx && s.actions[v].Transmit {
			s.txList = append(s.txList, int32(v))
		}
	}
}

// stepNode invokes one protocol step. The received-message pointer aliases
// the Sim's buffer; Protocol implementations must not retain it beyond the
// call (see Protocol).
func (s *Sim) stepNode(v int) Action {
	var rcv *Message
	if s.sets[s.cur][v] {
		rcv = &s.msgs[s.cur][v]
	}
	if np := s.noise[v]; np != nil {
		return np.StepNoise(rcv, s.busys[s.cur][v])
	}
	return s.protos[v].Step(rcv)
}

func (s *Sim) logTransmit(v int32, round int) {
	s.txNodes = append(s.txNodes, v)
	s.txRounds = append(s.txRounds, int32(round))
	if b := s.actions[v].Msg.BitLen(); b > s.maxBits {
		s.maxBits = b
	}
}

// resolvePush computes deliveries by scattering from this round's
// transmitters to their neighbourhoods: O(Σ deg(transmitter)) instead of
// O(Σ deg(listener)) per round, the complement of the sparse-wakeup
// stepping skip. Semantics are identical to resolvePull.
func (s *Sim) resolvePush(csr *graph.CSR, round int) int {
	nx := 1 - s.cur
	// Clear only the entries dirtied when this buffer half was last written.
	for _, w := range s.touched[nx] {
		s.msgs[nx][w] = Message{}
		s.sets[nx][w] = false
		s.busys[nx][w] = false
	}
	s.touched[nx] = s.touched[nx][:0]

	for _, t32 := range s.txList {
		t := int(t32)
		s.logTransmit(t32, round)
		if s.faulted && s.effects[t]&faults.Jam != 0 {
			continue // jammed: v believes it transmitted, nobody hears it
		}
		for _, w := range csr.Neighbors(t) {
			if s.deliverCnt[w] == 0 {
				s.scatter = append(s.scatter, w)
				s.msgs[nx][w] = s.actions[t].Msg
			}
			s.deliverCnt[w]++
		}
	}
	for _, w32 := range s.scatter {
		w := int(w32)
		cnt := s.deliverCnt[w]
		s.deliverCnt[w] = 0
		s.touched[nx] = append(s.touched[nx], w32)
		if s.actions[w].Transmit {
			continue // a transmitter hears nothing and detects no noise
		}
		if s.faulted && s.effects[w]&faults.Down != 0 {
			continue // radio off: hears neither the message nor the noise
		}
		s.busys[nx][w] = true
		if cnt == 1 {
			s.sets[nx][w] = true
			s.rxNodes = append(s.rxNodes, w32)
			s.rxRecs = append(s.rxRecs, Reception{Round: round, Msg: s.msgs[nx][w]})
		} else {
			s.collisions[w]++
		}
	}
	s.scatter = s.scatter[:0]
	return len(s.txList)
}

// resolvePull computes what node v hears this round by scanning v's
// neighbourhood, and returns 1 if v transmitted (for the transmission
// count). Used by the parallel engine (listener-partitioned) and the
// dense reference mode.
func (s *Sim) resolvePull(csr *graph.CSR, v int) int {
	nx := 1 - s.cur
	if s.actions[v].Transmit {
		s.sets[nx][v] = false
		s.busys[nx][v] = false
		return 1
	}
	if s.faulted && s.effects[v]&faults.Down != 0 {
		s.sets[nx][v] = false
		s.busys[nx][v] = false
		return 0
	}
	count := 0
	var sender int32 = -1
	for _, w := range csr.Neighbors(v) {
		if s.actions[w].Transmit && !s.dropped[w] {
			count++
			if count > 1 {
				break
			}
			sender = w
		}
	}
	s.busys[nx][v] = count >= 1
	switch {
	case count == 1:
		s.msgs[nx][v] = s.actions[sender].Msg
		s.sets[nx][v] = true
	case count > 1:
		s.collisions[v]++ // safe in parallel mode: each v has one resolver
		s.sets[nx][v] = false
	default:
		s.sets[nx][v] = false
	}
	return 0
}

// materialize builds the caller-owned Result from the flat event logs:
// a constant number of allocations regardless of traffic, with per-node
// views carved out of two exactly-sized backing arrays.
func (s *Sim) materialize(rounds, total int, silentStopped bool) *Result {
	n := s.n
	res := &Result{
		Rounds:             rounds,
		TotalTransmissions: total,
		MaxMessageBits:     s.maxBits,
		SilentStopped:      silentStopped,
		Collisions:         make([]int, n),
		Transmits:          make([][]int, n),
		Receives:           make([][]Reception, n),
	}
	copy(res.Collisions, s.collisions)

	cnt := s.deliverCnt // zeroed scratch between rounds, reused here
	for _, v := range s.txNodes {
		cnt[v]++
	}
	txBacking := make([]int, len(s.txNodes))
	off := 0
	for v := 0; v < n; v++ {
		if c := int(cnt[v]); c > 0 {
			res.Transmits[v] = txBacking[off : off : off+c]
			off += c
		}
	}
	for i, v := range s.txNodes {
		res.Transmits[v] = append(res.Transmits[v], int(s.txRounds[i]))
	}
	for _, v := range s.txNodes {
		cnt[v] = 0
	}

	for _, v := range s.rxNodes {
		cnt[v]++
	}
	rxBacking := make([]Reception, len(s.rxNodes))
	off = 0
	for v := 0; v < n; v++ {
		if c := int(cnt[v]); c > 0 {
			res.Receives[v] = rxBacking[off : off : off+c]
			off += c
		}
	}
	for i, v := range s.rxNodes {
		res.Receives[v] = append(res.Receives[v], s.rxRecs[i])
	}
	for _, v := range s.rxNodes {
		cnt[v] = 0
	}
	return res
}
