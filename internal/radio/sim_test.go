package radio

import (
	"fmt"
	"math/rand"
	"testing"

	"radiobcast/internal/faults"
	"radiobcast/internal/graph"
)

// echo is a reactive test protocol: it retransmits whatever it hears,
// delay rounds after hearing it. It does not implement Waker, so sparse
// runs must still step it whenever it can act.
type echo struct {
	round   int
	sendAt  int
	pending Message
}

func (e *echo) Step(rcv *Message) Action {
	e.round++
	if rcv != nil {
		e.pending = *rcv
		e.sendAt = e.round + e.delayOf(rcv)
	}
	if e.sendAt == e.round {
		return Send(e.pending)
	}
	return Listen
}

func (e *echo) delayOf(m *Message) int { return 1 + len(m.Payload)%3 }

// wakingEcho is echo with the sparse-wakeup contract.
type wakingEcho struct{ echo }

func (e *wakingEcho) NextWake() int {
	if e.sendAt > e.round {
		return e.sendAt
	}
	return NeverWake
}

func (e *wakingEcho) Skip(rounds int) { e.round += rounds }

// randomProtocols builds a mixed population over n nodes: scripted
// transmitters (Waker), waking echoes (Waker) and plain echoes (stepped
// densely even in sparse mode), deterministically from seed.
func randomProtocols(n int, seed int64) []Protocol {
	r := rand.New(rand.NewSource(seed))
	ps := make([]Protocol, n)
	for v := range ps {
		switch r.Intn(3) {
		case 0:
			sched := map[int]Message{}
			for k := r.Intn(4); k > 0; k-- {
				sched[1+r.Intn(30)] = Message{Kind: KindData, Payload: fmt.Sprintf("p%d", r.Intn(8))}
			}
			ps[v] = &Scripted{Schedule: sched}
		case 1:
			ps[v] = &wakingEcho{}
		default:
			ps[v] = &echo{}
		}
	}
	return ps
}

func testGraphs(t testing.TB) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":   graph.Path(17),
		"star":   graph.Star(12),
		"grid":   graph.Grid(5, 5),
		"gnp":    graph.GNPConnected(40, 0.12, 7),
		"figure": graph.Figure1(),
	}
}

// TestSparseMatchesDense pins the sparse-wakeup contract: every engine
// mode (sparse push, sparse parallel pull, dense sequential, dense
// parallel) produces bit-identical Results on mixed Waker/non-Waker
// protocol populations.
func TestSparseMatchesDense(t *testing.T) {
	for name, g := range testGraphs(t) {
		for seed := int64(1); seed <= 4; seed++ {
			opt := Options{MaxRounds: 60}
			ref := Run(g, randomProtocols(g.N(), seed), Options{MaxRounds: 60, DisableSparse: true})
			modes := []struct {
				mode string
				opt  Options
			}{
				{"sparse-seq", opt},
				{"sparse-par", Options{MaxRounds: 60, Workers: 4}},
				{"dense-par", Options{MaxRounds: 60, Workers: 4, DisableSparse: true}},
			}
			for _, m := range modes {
				got := Run(g, randomProtocols(g.N(), seed), m.opt)
				if !resultsEqual(ref, got) {
					t.Fatalf("%s seed=%d: %s diverged from dense reference", name, seed, m.mode)
				}
			}
		}
	}
}

// TestSparseMatchesDenseWithFaults repeats the differential under fault
// injection, which exercises the dropped-transmission paths of both
// channel resolvers.
func TestSparseMatchesDenseWithFaults(t *testing.T) {
	drop := func(node, round int) bool { return (node+round)%5 == 0 }
	for name, g := range testGraphs(t) {
		ref := Run(g, randomProtocols(g.N(), 3), Options{MaxRounds: 60, Faults: faults.DropFunc(drop), DisableSparse: true})
		got := Run(g, randomProtocols(g.N(), 3), Options{MaxRounds: 60, Faults: faults.DropFunc(drop)})
		if !resultsEqual(ref, got) {
			t.Fatalf("%s: sparse diverged from dense under faults", name)
		}
	}
}

// TestSimReuse drives one Sim across runs of different sizes and checks
// that reuse changes nothing and that earlier Results stay intact
// (materialize must detach them from the Sim's buffers).
func TestSimReuse(t *testing.T) {
	sim := NewSim()
	type run struct {
		g    *graph.Graph
		seed int64
	}
	runs := []run{
		{graph.Grid(5, 5), 1},
		{graph.Path(40), 2},
		{graph.Star(6), 3},
		{graph.Grid(5, 5), 1}, // repeat of the first
	}
	var kept []*Result
	var fresh []*Result
	for _, r := range runs {
		kept = append(kept, sim.Run(r.g, randomProtocols(r.g.N(), r.seed), Options{MaxRounds: 50}))
		fresh = append(fresh, Run(r.g, randomProtocols(r.g.N(), r.seed), Options{MaxRounds: 50, DisableSparse: true}))
	}
	for i := range runs {
		if !resultsEqual(kept[i], fresh[i]) {
			t.Fatalf("run %d: reused Sim diverged from fresh dense run", i)
		}
	}
	if !resultsEqual(kept[0], kept[3]) {
		t.Fatalf("identical runs through one Sim differ")
	}
}

// TestWakerSkipAccounting checks that a protocol skipped by the sparse
// engine observes exactly the same local round numbering as under the
// dense engine: Scripted's own transmissions land in the scheduled rounds.
func TestWakerSkipAccounting(t *testing.T) {
	g := graph.Path(3)
	mk := func() []Protocol {
		return []Protocol{
			NewScripted(Message{Kind: KindData, Payload: "a"}, 5, 9, 23),
			&Scripted{}, // silent
			NewScripted(Message{Kind: KindData, Payload: "b"}, 14),
		}
	}
	res := Run(g, mk(), Options{MaxRounds: 30})
	if got, want := fmt.Sprint(res.Transmits[0]), "[5 9 23]"; got != want {
		t.Fatalf("node 0 transmitted in %v, want %s", got, want)
	}
	if got, want := fmt.Sprint(res.Transmits[2]), "[14]"; got != want {
		t.Fatalf("node 2 transmitted in %v, want %s", got, want)
	}
	// Node 1 hears each uncontended transmission.
	if len(res.Receives[1]) != 4 {
		t.Fatalf("node 1 received %d messages, want 4", len(res.Receives[1]))
	}
}

// TestCompiledScriptMatchesMap pins the two Scripted population styles to
// identical behaviour.
func TestCompiledScriptMatchesMap(t *testing.T) {
	msg := Message{Kind: KindData, Payload: "x"}
	g := graph.Path(2)
	a := Run(g, []Protocol{NewScripted(msg, 2, 7, 7, 11), &Scripted{}}, Options{MaxRounds: 15})
	compiled := CompiledScript([]int{2, 7, 11}, []Message{msg, msg, msg})
	b := Run(g, []Protocol{&compiled, &Scripted{}}, Options{MaxRounds: 15})
	if !resultsEqual(a, b) {
		t.Fatalf("compiled script diverged from map-driven script")
	}
}

// TestNoReceptionSentinel pins the documented sentinel value and the
// 1-based round convention.
func TestNoReceptionSentinel(t *testing.T) {
	g := graph.Path(3)
	res := Run(g, []Protocol{
		NewScripted(Message{Kind: KindData, Payload: "x"}, 1),
		&Scripted{}, &Scripted{},
	}, Options{MaxRounds: 3})
	if r := res.FirstReception(1, KindData); r != 1 {
		t.Fatalf("adjacent node first reception in round %d, want 1 (rounds are 1-based)", r)
	}
	if r := res.FirstReception(2, KindData); r != NoReception {
		t.Fatalf("unreached node first reception %d, want NoReception", r)
	}
	if NoReception != 0 {
		t.Fatalf("NoReception must be 0 for backward compatibility, got %d", NoReception)
	}
}

// TestSimZeroSteadyStateAllocs pins the engine-side allocation behaviour:
// after warm-up, repeated runs through one Sim allocate only the detached
// Result (a constant handful of allocations, independent of traffic).
func TestSimZeroSteadyStateAllocs(t *testing.T) {
	g := graph.Grid(8, 8)
	g.Freeze()
	sim := NewSim()
	protos := make([]Protocol, g.N())
	scripts := make([]Scripted, g.N())
	msg := Message{Kind: KindData, Payload: "m"}
	rounds := make([]int, g.N())
	msgs := make([]Message, g.N())
	for v := range rounds {
		rounds[v] = 1 + v%16
		msgs[v] = msg
	}
	reset := func() {
		for v := range protos {
			scripts[v] = CompiledScript(rounds[v:v+1], msgs[v:v+1])
			protos[v] = &scripts[v]
		}
	}
	reset()
	sim.Run(g, protos, Options{MaxRounds: 20}) // warm-up sizes every buffer
	allocs := testing.AllocsPerRun(20, func() {
		reset()
		sim.Run(g, protos, Options{MaxRounds: 20})
	})
	// materialize detaches the Result: 1 struct + 3 per-node views + 2
	// backing arrays; everything else must be reused.
	if allocs > 8 {
		t.Fatalf("steady-state Sim.Run does %.0f allocs/run, want ≤ 8", allocs)
	}
}
