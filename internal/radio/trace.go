package radio

import (
	"fmt"
	"sort"
	"strings"
)

// Trace records per-round channel activity. It exists to reproduce the
// paper's Figure 1 annotations and to debug protocol implementations.
type Trace struct {
	Rounds []TraceRound
}

// TraceRound is the activity of one round.
type TraceRound struct {
	Round        int
	Transmitters []TraceTx
	Deliveries   []TraceRx
}

// TraceTx is one transmission.
type TraceTx struct {
	Node int
	Msg  Message
}

// TraceRx is one successful delivery.
type TraceRx struct {
	Node int
	Msg  Message
}

func (t *Trace) record(round int, actions []Action, heardMsg []Message, heardSet []bool) {
	tr := TraceRound{Round: round}
	for v, a := range actions {
		if a.Transmit {
			tr.Transmitters = append(tr.Transmitters, TraceTx{Node: v, Msg: a.Msg})
		}
	}
	for v, ok := range heardSet {
		if ok {
			tr.Deliveries = append(tr.Deliveries, TraceRx{Node: v, Msg: heardMsg[v]})
		}
	}
	if len(tr.Transmitters) > 0 || len(tr.Deliveries) > 0 {
		t.Rounds = append(t.Rounds, tr)
	}
}

// String renders the trace round by round.
func (t *Trace) String() string {
	var b strings.Builder
	for _, r := range t.Rounds {
		fmt.Fprintf(&b, "round %d:\n", r.Round)
		for _, tx := range r.Transmitters {
			fmt.Fprintf(&b, "  node %d transmits %s\n", tx.Node, tx.Msg.String())
		}
		for _, rx := range r.Deliveries {
			fmt.Fprintf(&b, "  node %d hears %s\n", rx.Node, rx.Msg.String())
		}
	}
	return b.String()
}

// Annotations renders per-node annotations in the style of the paper's
// Figure 1: for each node, the set of rounds in which it transmits in curly
// brackets and the rounds in which it hears a message in parentheses.
func Annotations(res *Result, labels []string) string {
	var b strings.Builder
	for v := range res.Transmits {
		label := ""
		if labels != nil {
			label = labels[v]
		}
		fmt.Fprintf(&b, "node %2d  %-4s  %-12s %s\n",
			v, label, braced(res.Transmits[v]), parens(receiveRounds(res, v)))
	}
	return b.String()
}

func receiveRounds(res *Result, v int) []int {
	out := make([]int, 0, len(res.Receives[v]))
	for _, rec := range res.Receives[v] {
		out = append(out, rec.Round)
	}
	return out
}

func braced(xs []int) string {
	return "{" + joinInts(xs) + "}"
}

func parens(xs []int) string {
	return "(" + joinInts(xs) + ")"
}

func joinInts(xs []int) string {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, x := range sorted {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}
