package radio

import (
	"context"

	"radiobcast/internal/faults"
)

// Tuning carries the caller-adjustable engine knobs that are orthogonal to
// a runner's scheme-specific Options (round bounds, stop predicates). The
// public facade builds one Tuning from its functional options and every
// runner layers it onto its base Options with Options.With, so workers,
// tracing and fault injection reach all schemes through one path.
type Tuning struct {
	// Ctx, when non-nil, makes the run cancellable between rounds (see
	// Options.Ctx).
	Ctx context.Context
	// Workers overrides Options.Workers when non-zero (see Options.Workers:
	// < 0 means GOMAXPROCS).
	Workers int
	// MaxRounds overrides the runner's default round bound when > 0.
	MaxRounds int
	// Trace, when non-nil, records the run round by round.
	Trace *Trace
	// Faults, when non-nil, injects faults through a model (see
	// Options.Faults).
	Faults faults.Model
	// Sim, when non-nil, is the reusable engine buffers to run on (see
	// Options.Sim).
	Sim *Sim
	// DisableSparse forces the dense reference engine (see
	// Options.DisableSparse).
	DisableSparse bool
	// DisableBitset forces the scalar sequential engine (see
	// Options.DisableBitset).
	DisableBitset bool
}

// With returns o with the non-zero fields of t layered on top. A nil t
// returns o unchanged, so runners can pass their tuning through untouched.
func (o Options) With(t *Tuning) Options {
	if t == nil {
		return o
	}
	if t.Ctx != nil {
		o.Ctx = t.Ctx
	}
	if t.Workers != 0 {
		o.Workers = t.Workers
	}
	if t.MaxRounds > 0 {
		o.MaxRounds = t.MaxRounds
	}
	if t.Trace != nil {
		o.Trace = t.Trace
	}
	if t.Faults != nil {
		o.Faults = t.Faults
	}
	if t.Sim != nil {
		o.Sim = t.Sim
	}
	if t.DisableSparse {
		o.DisableSparse = true
	}
	if t.DisableBitset {
		o.DisableBitset = true
	}
	return o
}
