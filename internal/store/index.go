// Package store implements a disk-backed, content-addressed labeling
// store: the L2 tier behind the Session's in-memory LRU. Values are
// opaque blobs (the facade stores the versioned CRC-checksummed wire
// format) filed under the SHA-256 of their content; keys mirror the
// Session's labeling cache key (graph fingerprint + n + m + scheme +
// source + coordinator) and map to content hashes through an append-only
// index file.
//
// Layout under the root directory:
//
//	index.log                 append-only key → hash records (see below)
//	objects/<hh>/<hash[2:]>   content-addressed blobs, written via
//	                          tmp file + fsync + atomic rename
//	quarantine/<hash>         blobs that failed their content hash
//
// The store never returns corruption as an error: a blob whose bytes no
// longer hash to its name is moved to quarantine/ and the lookup demotes
// to a miss, so the caller simply recomputes (and rewrites) the entry.
package store

import (
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Key identifies one stored labeling. It mirrors the Session's LRU key:
// the fingerprint is a 64-bit structural graph hash, with n and m riding
// along so a hash collision between different-sized graphs cannot alias;
// Coordinator participates because "barb" labelings depend on it.
type Key struct {
	Fingerprint uint64
	N, M        int
	Scheme      string
	Source      int
	Coordinator int
}

// record is one parsed index line: a put (key → hash, with the blob size)
// or a delete (key dropped by eviction or quarantine).
type record struct {
	del  bool
	key  Key
	hash string // hex SHA-256 of the blob content (puts only)
	size int64  // blob size in bytes (puts only)
}

// Index records are single ASCII lines, one per mutation:
//
//	P <fp> <n> <m> <scheme-hex> <source> <coordinator> <hash> <size> <crc>
//	D <fp> <n> <m> <scheme-hex> <source> <coordinator> <crc>
//
// The scheme name travels hex-encoded so the line stays whitespace-safe
// for any registered name. The trailing field is the IEEE CRC32 of the
// line's preceding bytes (everything before the final space), so a torn
// or bit-flipped record fails closed: replay skips it and the affected
// key demotes to a miss. The format is append-only and self-delimiting —
// replay never needs to trust anything beyond the current line.

// formatRecord renders a record as an index line (with trailing newline).
func formatRecord(r record) string {
	var b strings.Builder
	if r.del {
		fmt.Fprintf(&b, "D %016x %d %d %s %d %d",
			r.key.Fingerprint, r.key.N, r.key.M, encodeScheme(r.key.Scheme),
			r.key.Source, r.key.Coordinator)
	} else {
		fmt.Fprintf(&b, "P %016x %d %d %s %d %d %s %d",
			r.key.Fingerprint, r.key.N, r.key.M, encodeScheme(r.key.Scheme),
			r.key.Source, r.key.Coordinator, r.hash, r.size)
	}
	body := b.String()
	return fmt.Sprintf("%s %08x\n", body, crc32.ChecksumIEEE([]byte(body)))
}

// parseRecord parses one index line (without its trailing newline). It
// must never panic on arbitrary input — the index is replayed from disk
// and fuzzed — and rejects anything that does not round-trip exactly:
// wrong field counts, malformed numbers, bad hex, or a CRC mismatch.
func parseRecord(line string) (record, error) {
	var r record
	body, crcField, ok := splitLast(line)
	if !ok {
		return r, fmt.Errorf("store: index record has no checksum field")
	}
	crc, err := strconv.ParseUint(crcField, 16, 32)
	if err != nil || len(crcField) != 8 {
		return r, fmt.Errorf("store: bad index record checksum %q", crcField)
	}
	if uint32(crc) != crc32.ChecksumIEEE([]byte(body)) {
		return r, fmt.Errorf("store: index record checksum mismatch")
	}
	fields := strings.Split(body, " ")
	switch {
	case len(fields) == 9 && fields[0] == "P":
		r.del = false
	case len(fields) == 7 && fields[0] == "D":
		r.del = true
	default:
		return r, fmt.Errorf("store: malformed index record")
	}
	if r.key.Fingerprint, err = strconv.ParseUint(fields[1], 16, 64); err != nil || len(fields[1]) != 16 {
		return r, fmt.Errorf("store: bad fingerprint field")
	}
	if r.key.N, err = strconv.Atoi(fields[2]); err != nil {
		return r, fmt.Errorf("store: bad n field")
	}
	if r.key.M, err = strconv.Atoi(fields[3]); err != nil {
		return r, fmt.Errorf("store: bad m field")
	}
	if r.key.Scheme, err = decodeScheme(fields[4]); err != nil {
		return r, err
	}
	if r.key.Source, err = strconv.Atoi(fields[5]); err != nil {
		return r, fmt.Errorf("store: bad source field")
	}
	if r.key.Coordinator, err = strconv.Atoi(fields[6]); err != nil {
		return r, fmt.Errorf("store: bad coordinator field")
	}
	if !r.del {
		r.hash = fields[7]
		if len(r.hash) != 64 {
			return r, fmt.Errorf("store: bad hash field")
		}
		if _, err := hex.DecodeString(r.hash); err != nil {
			return r, fmt.Errorf("store: bad hash field")
		}
		if r.size, err = strconv.ParseInt(fields[8], 10, 64); err != nil || r.size < 0 {
			return r, fmt.Errorf("store: bad size field")
		}
	}
	return r, nil
}

// splitLast splits a line at its final space.
func splitLast(line string) (body, last string, ok bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i+1:], true
}

// encodeScheme hex-encodes a scheme name for the index line ("-" for the
// empty name, which no registered scheme uses but the format tolerates).
func encodeScheme(name string) string {
	if name == "" {
		return "-"
	}
	return hex.EncodeToString([]byte(name))
}

func decodeScheme(field string) (string, error) {
	if field == "-" {
		return "", nil
	}
	b, err := hex.DecodeString(field)
	if err != nil || len(field) == 0 {
		return "", fmt.Errorf("store: bad scheme field")
	}
	return string(b), nil
}
