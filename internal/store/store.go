package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of stored blobs; 0 (or negative) means
	// unbounded. When a put pushes the store over the cap, the blobs with
	// the oldest access time are evicted (the just-written blob is exempt,
	// so a single oversized entry still round-trips).
	MaxBytes int64
}

// Store is a disk-backed content-addressed key/value store for labeling
// blobs. It is safe for concurrent use within a process, and the on-disk
// format is safe for concurrent use across processes: blobs land via
// atomic rename, index records are appended with O_APPEND, and lookups
// that miss in memory re-read the index tail, so a store opened by one
// process observes another's puts.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	closed  bool
	index   map[Key]*entry
	blobs   map[string]*blob
	idxFile *os.File
	readOff int64 // index bytes replayed so far (always at a record boundary)
	tail    []byte
	seq     int64
	total   int64 // sum of live blob sizes

	corrupt     uint64 // index records skipped (malformed or CRC mismatch)
	quarantined uint64 // blobs moved to quarantine/ after a content-hash mismatch
	evictions   uint64 // blobs evicted by the byte cap
}

type entry struct {
	hash string
	seq  int64 // monotone put order; higher = more recent
}

type blob struct {
	size  int64
	atime time.Time
	keys  map[Key]struct{}
}

// Open opens (creating if needed) a store rooted at dir and replays its
// index. Blobs referenced by the index but missing or unreadable on disk
// are tolerated: they surface as misses on Get.
func Open(dir string, opt Options) (*Store, error) {
	for _, sub := range []string{"", "objects", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, "index.log"), os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opt.MaxBytes,
		index:    map[Key]*entry{},
		blobs:    map[string]*blob{},
		idxFile:  f,
	}
	s.mu.Lock()
	s.refreshLocked()
	s.mu.Unlock()
	return s, nil
}

// Get returns the blob stored under k, or (nil, false) on a miss. A blob
// whose content no longer matches its hash — corruption, truncation, a
// torn write — is quarantined and reported as a miss, never an error.
// A hit refreshes the blob's access time (the eviction clock).
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	e, ok := s.index[k]
	if !ok {
		// Another process may have appended since we last read the index.
		s.refreshLocked()
		if e, ok = s.index[k]; !ok {
			return nil, false
		}
	}
	path := s.blobPath(e.hash)
	data, err := os.ReadFile(path)
	if err != nil {
		s.dropBlobLocked(e.hash, false)
		return nil, false
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != e.hash {
		s.dropBlobLocked(e.hash, true)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	if b := s.blobs[e.hash]; b != nil {
		b.atime = now
	}
	return data, true
}

// Put stores data under k. The blob is content-addressed, so putting the
// same bytes under many keys stores them once; putting the same key and
// bytes twice is a no-op. Put may evict older blobs to honor MaxBytes.
func (s *Store) Put(k Key, data []byte) error {
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.refreshLocked()
	if e, ok := s.index[k]; ok && e.hash == h {
		return nil
	}
	if _, ok := s.blobs[h]; !ok {
		if err := s.writeBlob(h, data); err != nil {
			return err
		}
	}
	rec := record{key: k, hash: h, size: int64(len(data))}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	s.applyLocked(rec, time.Now())
	s.evictLocked(h)
	return nil
}

// Drop removes k's blob from the store (quarantining the file), together
// with every other key that shares it. Callers use it when a blob passed
// the content hash but failed a higher-level decode — a state corruption
// alone cannot produce, but which must still demote to a miss.
func (s *Store) Drop(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[k]; ok {
		s.dropBlobLocked(e.hash, true)
	}
}

// RecentKeys returns up to n keys in most-recently-put order, the order a
// warm start should preload them in.
func (s *Store) RecentKeys(n int) []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	type kv struct {
		k Key
		s int64
	}
	all := make([]kv, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, kv{k, e.seq})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	if n > len(all) || n < 0 {
		n = len(all)
	}
	out := make([]Key, n)
	for i := range out {
		out[i] = all[i].k
	}
	return out
}

// Entries returns the number of live keys.
func (s *Store) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total size of live blobs.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Corrupt returns the count of index records skipped during replay.
func (s *Store) Corrupt() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Quarantined returns the count of blobs demoted to quarantine/.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Evictions returns the count of blobs evicted by the byte cap.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Close fsyncs and closes the index. Further Gets miss and Puts fail;
// Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.idxFile.Sync(); err != nil {
		s.idxFile.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.idxFile.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (s *Store) blobPath(h string) string {
	return filepath.Join(s.dir, "objects", h[:2], h[2:])
}

// writeBlob lands a blob at its content address via tmp file + fsync +
// atomic rename, so a crash mid-write never leaves a partial blob at a
// live path.
func (s *Store) writeBlob(h string, data []byte) error {
	dir := filepath.Join(s.dir, "objects", h[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.blobPath(h)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// appendLocked writes one index record. The file is opened O_APPEND, so
// concurrent appenders (including other processes) interleave at record
// granularity.
func (s *Store) appendLocked(r record) error {
	if _, err := s.idxFile.WriteString(formatRecord(r)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// refreshLocked replays index records appended since the last replay —
// our own and other processes'. Malformed or checksum-failed records are
// counted and skipped; an incomplete trailing line (a torn write in
// progress) is buffered until its newline arrives.
func (s *Store) refreshLocked() {
	sr := io.NewSectionReader(s.idxFile, s.readOff, 1<<62)
	data, err := io.ReadAll(sr)
	if err != nil && len(data) == 0 {
		return
	}
	s.readOff += int64(len(data))
	buf := append(s.tail, data...)
	for {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break
		}
		line := string(buf[:nl])
		buf = buf[nl+1:]
		rec, err := parseRecord(line)
		if err != nil {
			s.corrupt++
			continue
		}
		s.applyLocked(rec, time.Time{})
	}
	s.tail = append([]byte(nil), buf...)
}

// applyLocked folds one record into the in-memory maps. atime is the
// access time to credit a put's blob with; the zero value means "stat the
// file" (replay of records written by an earlier process).
func (s *Store) applyLocked(rec record, atime time.Time) {
	if rec.del {
		s.unlinkKeyLocked(rec.key)
		return
	}
	if e, ok := s.index[rec.key]; ok {
		if e.hash == rec.hash {
			e.seq = s.nextSeq()
			return
		}
		s.unlinkKeyLocked(rec.key)
	}
	b, ok := s.blobs[rec.hash]
	if !ok {
		if atime.IsZero() {
			atime = time.Now()
			if fi, err := os.Stat(s.blobPath(rec.hash)); err == nil {
				atime = fi.ModTime()
			}
		}
		b = &blob{size: rec.size, atime: atime, keys: map[Key]struct{}{}}
		s.blobs[rec.hash] = b
		s.total += rec.size
	}
	b.keys[rec.key] = struct{}{}
	s.index[rec.key] = &entry{hash: rec.hash, seq: s.nextSeq()}
}

func (s *Store) nextSeq() int64 {
	s.seq++
	return s.seq
}

// unlinkKeyLocked removes one key, releasing its blob when the last
// reference goes (the file of an orphaned blob is deleted — it can always
// be recomputed).
func (s *Store) unlinkKeyLocked(k Key) {
	e, ok := s.index[k]
	if !ok {
		return
	}
	delete(s.index, k)
	b := s.blobs[e.hash]
	if b == nil {
		return
	}
	delete(b.keys, k)
	if len(b.keys) == 0 {
		delete(s.blobs, e.hash)
		s.total -= b.size
		os.Remove(s.blobPath(e.hash))
	}
}

// dropBlobLocked removes a blob and every key referencing it, appending
// delete records so other processes (and our own next replay) agree. With
// quarantine, the file is moved aside for post-mortem instead of deleted.
func (s *Store) dropBlobLocked(h string, quarantine bool) {
	b := s.blobs[h]
	if b == nil {
		return
	}
	if quarantine {
		if err := os.Rename(s.blobPath(h), filepath.Join(s.dir, "quarantine", h)); err != nil {
			os.Remove(s.blobPath(h))
		}
		s.quarantined++
	} else {
		os.Remove(s.blobPath(h))
	}
	for k := range b.keys {
		if !s.closed {
			_ = s.appendLocked(record{del: true, key: k})
		}
		delete(s.index, k)
	}
	delete(s.blobs, h)
	s.total -= b.size
}

// evictLocked enforces MaxBytes by dropping oldest-access-time blobs,
// never the just-written one.
func (s *Store) evictLocked(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes {
		victim := ""
		var oldest time.Time
		for h, b := range s.blobs {
			if h == keep {
				continue
			}
			if victim == "" || b.atime.Before(oldest) {
				victim, oldest = h, b.atime
			}
		}
		if victim == "" {
			return
		}
		s.dropBlobLocked(victim, false)
		s.evictions++
	}
}
