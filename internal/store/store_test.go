package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testKey(i int) Key {
	return Key{Fingerprint: 0xabc0 + uint64(i), N: 8 + i, M: 7 + i, Scheme: "b", Source: 0, Coordinator: 0}
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	k := testKey(0)
	blob := []byte("hello labeling")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Entries() != 1 || s.Bytes() != int64(len(blob)) {
		t.Fatalf("Entries=%d Bytes=%d", s.Entries(), s.Bytes())
	}
	// Same key, same bytes: a no-op.
	if err := s.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	if s.Entries() != 1 || s.Bytes() != int64(len(blob)) {
		t.Fatalf("after duplicate put: Entries=%d Bytes=%d", s.Entries(), s.Bytes())
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Entries() != 5 {
		t.Fatalf("reopened store has %d entries, want 5", s2.Entries())
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || string(got) != fmt.Sprintf("blob-%d", i) {
			t.Fatalf("key %d: Get = %q, %v", i, got, ok)
		}
	}
}

func TestContentAddressingDedups(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	blob := []byte("shared bytes")
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), blob); err != nil {
			t.Fatal(err)
		}
	}
	if s.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", s.Entries())
	}
	if s.Bytes() != int64(len(blob)) {
		t.Fatalf("Bytes = %d, want one copy (%d)", s.Bytes(), len(blob))
	}
}

func TestCorruptBlobQuarantinesToMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	k := testKey(0)
	blob := []byte("precious bits")
	if err := s.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	h := hex.EncodeToString(sum[:])
	path := filepath.Join(dir, "objects", h[:2], h[2:])
	bad := append([]byte(nil), blob...)
	bad[3] ^= 0x5a
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", h)); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// The key is gone for good, including after a reopen (delete records
	// were appended).
	if _, ok := s.Get(k); ok {
		t.Fatal("dropped key resurrected")
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get(k); ok {
		t.Fatal("dropped key resurrected after reopen")
	}
}

func TestTruncatedBlobDemotesToMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	k := testKey(0)
	blob := []byte("0123456789abcdef")
	if err := s.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	h := hex.EncodeToString(sum[:])
	path := filepath.Join(dir, "objects", h[:2], h[2:])
	if err := os.WriteFile(path, blob[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated blob served as a hit")
	}
}

func TestCorruptIndexRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(testKey(0), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	idx := filepath.Join(dir, "index.log")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Corrupt the first record and append garbage plus a torn tail.
	lines[0] = strings.Replace(lines[0], "P ", "X ", 1)
	mangled := strings.Join(lines, "") + "not a record at all\n" + "P 0123 torn"
	if err := os.WriteFile(idx, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get(testKey(0)); ok {
		t.Fatal("record with corrupt line served as a hit")
	}
	if got, ok := s2.Get(testKey(1)); !ok || string(got) != "two" {
		t.Fatalf("intact record lost: %q %v", got, ok)
	}
	if s2.Corrupt() < 2 {
		t.Fatalf("Corrupt = %d, want >= 2", s2.Corrupt())
	}
}

func TestEvictionByAtime(t *testing.T) {
	dir := t.TempDir()
	blob := func(i int) []byte { return []byte(fmt.Sprintf("blob-%04d-padding-padding", i)) }
	size := int64(len(blob(0)))
	s := mustOpen(t, dir, Options{MaxBytes: 3 * size})
	defer s.Close()

	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), blob(i)); err != nil {
			t.Fatal(err)
		}
		// Backdate atimes: key 0 oldest.
		sum := sha256.Sum256(blob(i))
		h := hex.EncodeToString(sum[:])
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, "objects", h[:2], h[2:]), at, at); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		s.blobs[h].atime = at
		s.mu.Unlock()
	}

	// A Get refreshes key 0's atime, so key 1 becomes the eviction victim.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("miss on live key")
	}
	if err := s.Put(testKey(3), blob(3)); err != nil {
		t.Fatal(err)
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("LRU victim still present")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("key %d evicted, want key 1", i)
		}
	}
}

func TestRecentKeysOrder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.RecentKeys(2)
	if len(got) != 2 || got[0] != testKey(3) || got[1] != testKey(2) {
		t.Fatalf("RecentKeys(2) = %+v", got)
	}
	if all := s.RecentKeys(-1); len(all) != 4 {
		t.Fatalf("RecentKeys(-1) = %d keys", len(all))
	}
}

// TestCrossInstanceVisibility pins the "shared directory" contract: a Get
// that misses in memory re-reads the index tail, so puts from another
// Store handle (another process, in production) are visible without
// reopening.
func TestCrossInstanceVisibility(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	defer a.Close()
	b := mustOpen(t, dir, Options{})
	defer b.Close()

	if err := a.Put(testKey(7), []byte("from a")); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(testKey(7))
	if !ok || string(got) != "from a" {
		t.Fatalf("b.Get = %q, %v", got, ok)
	}
}

func TestConcurrentSameKeyWriters(t *testing.T) {
	dir := t.TempDir()
	stores := make([]*Store, 4)
	for i := range stores {
		stores[i] = mustOpen(t, dir, Options{})
		defer stores[i].Close()
	}
	k := testKey(0)
	blob := []byte("the one true labeling")
	var wg sync.WaitGroup
	for _, s := range stores {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s *Store) {
				defer wg.Done()
				if err := s.Put(k, blob); err != nil {
					t.Error(err)
				}
				if got, ok := s.Get(k); ok && string(got) != string(blob) {
					t.Errorf("Get = %q", got)
				}
			}(s)
		}
	}
	wg.Wait()
	for i, s := range stores {
		got, ok := s.Get(k)
		if !ok || string(got) != string(blob) {
			t.Fatalf("store %d: Get = %q, %v", i, got, ok)
		}
		if s.Bytes() != int64(len(blob)) {
			t.Fatalf("store %d: Bytes = %d, want one copy", i, s.Bytes())
		}
	}
	// Exactly one blob file exists.
	files := 0
	filepath.Walk(filepath.Join(dir, "objects"), func(_ string, info os.FileInfo, _ error) error {
		if info != nil && !info.IsDir() {
			files++
		}
		return nil
	})
	if files != 1 {
		t.Fatalf("%d blob files, want 1", files)
	}
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(testKey(0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("closed store served a hit")
	}
	if err := s.Put(testKey(1), []byte("y")); err == nil {
		t.Fatal("closed store accepted a put")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{key: Key{Fingerprint: 0xdeadbeef, N: 64, M: 112, Scheme: "gjp", Source: 3, Coordinator: -1}, hash: strings.Repeat("ab", 32), size: 12345},
		{del: true, key: Key{Fingerprint: 1, N: 2, M: 1, Scheme: "b", Source: -1, Coordinator: 0}},
		{key: Key{Scheme: ""}, hash: strings.Repeat("00", 32), size: 0},
	}
	for _, want := range recs {
		line := formatRecord(want)
		if !strings.HasSuffix(line, "\n") {
			t.Fatalf("record %q not newline-terminated", line)
		}
		got, err := parseRecord(strings.TrimSuffix(line, "\n"))
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

// FuzzIndexParse feeds arbitrary lines to the index parser: it must never
// panic, and every record it accepts must re-format to a line that parses
// back to the same record (the parse is a fixed point).
func FuzzIndexParse(f *testing.F) {
	f.Add(strings.TrimSuffix(formatRecord(record{key: testKey(1), hash: strings.Repeat("2f", 32), size: 99}), "\n"))
	f.Add(strings.TrimSuffix(formatRecord(record{del: true, key: testKey(2)}), "\n"))
	f.Add("P 0016 not a record")
	f.Add("")
	f.Add("D \x00\xff 1 2 62 0 0 deadbeef")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := parseRecord(line)
		if err != nil {
			return
		}
		line2 := formatRecord(rec)
		rec2, err := parseRecord(strings.TrimSuffix(line2, "\n"))
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", line2, err)
		}
		if rec2 != rec {
			t.Fatalf("fixed point violated: %+v vs %+v", rec, rec2)
		}
	})
}
