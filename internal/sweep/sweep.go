// Package sweep provides the parallel fan-out machinery for the experiment
// harness: deterministic worker-pool maps over parameter grids. Results are
// returned in input order regardless of scheduling, so experiment tables
// are reproducible run to run.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Map applies f to every item using the given number of workers
// (0 or negative → GOMAXPROCS) and returns results in input order.
func Map[T, R any](items []T, workers int, f func(T) R) []R {
	return MapIdx(items, workers, func(_ int, t T) R { return f(t) })
}

// MapIdx is Map with worker identity: f receives the index of the worker
// goroutine running it (0 ≤ w < Workers(len(items), workers)), so callers
// can give each worker exclusive scratch state — the Sweep runner hands
// every worker its own reusable radio.Sim this way. All calls with the
// same worker index are sequential.
func MapIdx[T, R any](items []T, workers int, f func(worker int, item T) R) []R {
	n := len(items)
	out := make([]R, n)
	if n == 0 {
		return out
	}
	workers = Workers(n, workers)
	if workers == 1 {
		for i, it := range items {
			out[i] = f(0, it)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				out[i] = f(w, items[i])
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// streamBuffer bounds StreamIdx's channel buffer: enough slack that a
// briefly descheduled consumer does not stall the pool, without paying
// O(grid) memory up front on million-item sweeps.
const streamBuffer = 256

// StreamIdx runs f(worker, i) for every i in [0, n) on a pool of workers
// and delivers the results, in completion order, on the returned channel,
// which is closed once every dispatched item has been delivered. The
// second return value abandons the stream: a consumer that stops reading
// early MUST call it (idempotent, safe after close) so the workers drop
// their undeliverable results and exit instead of blocking forever.
//
// Cancellation is checked between items: once ctx is done no further
// index is dispatched and each worker finishes at most the item it is
// currently running. Cancellation alone never discards a finished
// result — the consumer is expected to keep draining until the channel
// closes, so results computed before the cut-off are never lost; only
// abandoning the stream discards them.
func StreamIdx[R any](ctx context.Context, n, workers int, f func(worker, i int) R) (<-chan R, func()) {
	out := make(chan R, min(n, streamBuffer))
	abandoned := make(chan struct{})
	var once sync.Once
	abandon := func() { once.Do(func() { close(abandoned) }) }
	if n == 0 {
		close(out)
		return out, abandon
	}
	workers = Workers(n, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				select {
				case out <- f(w, i):
				case <-abandoned:
					return
				}
			}
		}(w)
	}
	go func() {
	dispatch:
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			select {
			case idx <- i:
			case <-ctx.Done():
			case <-abandoned:
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
		close(out)
	}()
	return out, abandon
}

// MapIdxCtx is MapIdx with cancellation: once ctx is done, no further
// items are dispatched and the call returns ctx.Err() together with the
// partial results (unprocessed slots hold zero values, in input order).
func MapIdxCtx[T, R any](ctx context.Context, items []T, workers int, f func(worker int, item T) R) ([]R, error) {
	type indexed struct {
		i int
		r R
	}
	out := make([]R, len(items))
	stream, _ := StreamIdx(ctx, len(items), workers, func(w, i int) indexed {
		return indexed{i, f(w, items[i])}
	})
	for p := range stream {
		out[p.i] = p.r
	}
	return out, ctx.Err()
}

// Workers resolves a worker-count request against n items: ≤ 0 means
// GOMAXPROCS, and the result never exceeds n (or falls below 1).
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MapErr is Map for fallible work: it returns the first error by input
// order (all items are still processed).
func MapErr[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	type res struct {
		r   R
		err error
	}
	rs := Map(items, workers, func(t T) res {
		r, err := f(t)
		return res{r, err}
	})
	out := make([]R, len(items))
	var firstErr error
	for i, r := range rs {
		out[i] = r.r
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return out, firstErr
}

// Grid returns the cross product of two parameter slices as pairs.
func Grid[A, B any](as []A, bs []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair[A, B]{a, b})
		}
	}
	return out
}

// Pair is a two-element tuple for Grid.
type Pair[A, B any] struct {
	First  A
	Second B
}
