package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Map(items, 8, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(nil, 4, func(x int) int { return x })
	if len(got) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestMapSingleWorkerSequential(t *testing.T) {
	var order []int
	Map([]int{1, 2, 3}, 1, func(x int) int {
		order = append(order, x)
		return x
	})
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestMapAllItemsProcessedOnce(t *testing.T) {
	var count int64
	n := 1000
	items := make([]int, n)
	Map(items, 16, func(int) int {
		atomic.AddInt64(&count, 1)
		return 0
	})
	if count != int64(n) {
		t.Fatalf("processed %d items, want %d", count, n)
	}
}

func TestMapErrFirstByInputOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr([]int{0, 1, 2, 3}, 4, func(x int) (int, error) {
		switch x {
		case 1:
			return 0, errA
		case 3:
			return 0, errB
		}
		return x, nil
	})
	if err != errA {
		t.Fatalf("err = %v, want first-by-order %v", err, errA)
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr([]int{1, 2}, 2, func(x int) (int, error) { return x + 1, nil })
	if err != nil || out[0] != 2 || out[1] != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestGrid(t *testing.T) {
	g := Grid([]string{"a", "b"}, []int{1, 2, 3})
	if len(g) != 6 {
		t.Fatalf("len = %d, want 6", len(g))
	}
	if g[0].First != "a" || g[0].Second != 1 || g[5].First != "b" || g[5].Second != 3 {
		t.Fatalf("grid = %v", g)
	}
}

func TestQuickMapMatchesSequential(t *testing.T) {
	f := func(xs []int, workers uint8) bool {
		w := int(workers%8) + 1
		par := Map(xs, w, func(x int) int { return x*3 + 1 })
		seq := Map(xs, 1, func(x int) int { return x*3 + 1 })
		if len(par) != len(seq) {
			return false
		}
		for i := range par {
			if par[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
