package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Map(items, 8, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(nil, 4, func(x int) int { return x })
	if len(got) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestMapSingleWorkerSequential(t *testing.T) {
	var order []int
	Map([]int{1, 2, 3}, 1, func(x int) int {
		order = append(order, x)
		return x
	})
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestMapAllItemsProcessedOnce(t *testing.T) {
	var count int64
	n := 1000
	items := make([]int, n)
	Map(items, 16, func(int) int {
		atomic.AddInt64(&count, 1)
		return 0
	})
	if count != int64(n) {
		t.Fatalf("processed %d items, want %d", count, n)
	}
}

func TestMapErrFirstByInputOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr([]int{0, 1, 2, 3}, 4, func(x int) (int, error) {
		switch x {
		case 1:
			return 0, errA
		case 3:
			return 0, errB
		}
		return x, nil
	})
	if err != errA {
		t.Fatalf("err = %v, want first-by-order %v", err, errA)
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr([]int{1, 2}, 2, func(x int) (int, error) { return x + 1, nil })
	if err != nil || out[0] != 2 || out[1] != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestGrid(t *testing.T) {
	g := Grid([]string{"a", "b"}, []int{1, 2, 3})
	if len(g) != 6 {
		t.Fatalf("len = %d, want 6", len(g))
	}
	if g[0].First != "a" || g[0].Second != 1 || g[5].First != "b" || g[5].Second != 3 {
		t.Fatalf("grid = %v", g)
	}
}

func TestMapIdxCtxCompletesInOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	out, err := MapIdxCtx(context.Background(), items, 8, func(_, x int) int { return x * 2 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

// TestMapIdxCtxCancelStopsDispatch pins the between-items cancellation
// contract: once the context is done, no further items are dispatched —
// each worker finishes at most the item it is running — and the call
// returns the partial results together with ctx.Err().
func TestMapIdxCtxCancelStopsDispatch(t *testing.T) {
	const n, workers, cancelAt = 500, 4, 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := make([]int, n)
	var processed atomic.Int64
	out, err := MapIdxCtx(ctx, items, workers, func(_, _ int) int {
		if processed.Add(1) == cancelAt {
			cancel()
		}
		return 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := 0
	for _, v := range out {
		done += v
	}
	// At most the in-flight item per worker may complete after the cancel.
	if done < cancelAt || done > cancelAt+workers {
		t.Fatalf("%d items completed, want within [%d, %d]", done, cancelAt, cancelAt+workers)
	}
	if done == n {
		t.Fatal("cancellation did not stop the grid")
	}
}

// TestStreamIdxDeliversEverythingOnce checks the stream contract: a
// consumer that drains the channel receives every result exactly once,
// even when the grid far exceeds the bounded buffer.
func TestStreamIdxDeliversEverythingOnce(t *testing.T) {
	const n = 2000 // > streamBuffer, so workers must block and resume
	ch, _ := StreamIdx(context.Background(), n, 8, func(_, i int) int { return i })
	seen := make([]bool, n)
	count := 0
	for v := range ch {
		if seen[v] {
			t.Fatalf("result %d delivered twice", v)
		}
		seen[v] = true
		count++
	}
	if count != n {
		t.Fatalf("received %d results, want %d", count, n)
	}
}

// TestStreamIdxAbandonUnblocksWorkers: a consumer that stops reading and
// abandons the stream must not strand workers blocked on a full buffer.
func TestStreamIdxAbandonUnblocksWorkers(t *testing.T) {
	const n = 5000
	var started atomic.Int64
	ch, abandon := StreamIdx(context.Background(), n, 4, func(_, i int) int {
		started.Add(1)
		return i
	})
	<-ch // read one result, then walk away
	abandon()
	// The dispatcher stops and workers exit; the channel must close even
	// though nobody drains the rest.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if started.Load() == n {
					t.Fatal("abandon did not stop dispatch")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream never closed after abandon")
		}
	}
}

func TestStreamIdxEmpty(t *testing.T) {
	ch, _ := StreamIdx(context.Background(), 0, 4, func(_, i int) int { return i })
	if _, ok := <-ch; ok {
		t.Fatal("empty stream delivered a result")
	}
}

func TestQuickMapMatchesSequential(t *testing.T) {
	f := func(xs []int, workers uint8) bool {
		w := int(workers%8) + 1
		par := Map(xs, w, func(x int) int { return x*3 + 1 })
		seq := Map(xs, 1, func(x int) int { return x*3 + 1 })
		if len(par) != len(seq) {
			return false
		}
		for i := range par {
			if par[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
