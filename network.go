package radiobcast

import (
	"fmt"
	"io"
	"os"
	"sort"

	"radiobcast/internal/graph"
)

// Network bundles a topology with the designated roles a run needs: the
// broadcast source and (for scheme "barb") the coordinator. Builders
// return *Network so call sites chain naturally:
//
//	net, err := radiobcast.Family("grid", 64)
//	out, err := radiobcast.Run(net.At(3), "back")
type Network struct {
	// Graph is the topology.
	Graph *Graph
	// Source is the broadcast source (default 0).
	Source int
	// Coordinator is the coordinator r for scheme "barb" (default 0).
	Coordinator int
	// Name describes where the network came from (family name, file, …).
	Name string
}

// NewNetwork wraps an explicit graph.
func NewNetwork(g *Graph) *Network {
	return &Network{Graph: g, Name: "custom"}
}

// Family builds the n-node member of a named graph family ("path",
// "grid", "gnp-sparse", …; see FamilyNames). Generators may round n (grids
// use the nearest square); read the actual size from Graph.N(). The name
// "figure1" yields the paper's 13-node example with its source preset.
func Family(name string, n int) (*Network, error) {
	if name == "figure1" {
		return Figure1(), nil
	}
	build, ok := graph.Families[name]
	if !ok {
		return nil, fmt.Errorf("radiobcast: unknown graph family %q (known: %v)", name, FamilyNames())
	}
	return &Network{Graph: build(n), Name: name}, nil
}

// Figure1 returns the paper's 13-node Figure 1 network with its source.
func Figure1() *Network {
	return &Network{Graph: graph.Figure1(), Source: graph.Figure1Source, Name: "figure1"}
}

// ReadNetwork reads an edge-list ("u v" per line) network from r and
// requires it to be connected.
func ReadNetwork(r io.Reader) (*Network, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("radiobcast: network is not connected")
	}
	return &Network{Graph: g, Name: "edge-list"}, nil
}

// LoadNetwork reads an edge-list network from a file.
func LoadNetwork(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := ReadNetwork(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	net.Name = path
	return net, nil
}

// FamilyOrFile builds a network from an edge-list file when path is
// non-empty, and from the named family otherwise — the selection shape
// shared by the CLIs.
func FamilyOrFile(family string, n int, path string) (*Network, error) {
	if path != "" {
		return LoadNetwork(path)
	}
	return Family(family, n)
}

// At sets the broadcast source and returns the network.
func (net *Network) At(source int) *Network {
	net.Source = source
	return net
}

// Coordinated sets the coordinator r used by scheme "barb" and returns
// the network.
func (net *Network) Coordinated(r int) *Network {
	net.Coordinator = r
	return net
}

// String implements fmt.Stringer.
func (net *Network) String() string {
	return fmt.Sprintf("%s %v", net.Name, net.Graph)
}

// FamilyNames lists the graph families Family accepts, sorted.
func FamilyNames() []string {
	names := append(graph.FamilyNames(), "figure1")
	sort.Strings(names)
	return names
}
