package radiobcast

import (
	"context"

	"radiobcast/internal/core"
	"radiobcast/internal/faults"
	"radiobcast/internal/radio"
)

// Config collects every knob a run can take. It is built from functional
// Options by Run, Label and RunLabeled; schemes receive the resolved
// Config and pick out what they understand.
type Config struct {
	// Mu is the source message µ (default "µ").
	Mu string
	// Workers selects the engine: 0 = scheme default (sequential), > 1 =
	// node-partitioned parallel engine with that many goroutines, < 0 =
	// GOMAXPROCS workers. Results are bit-identical in all modes.
	Workers int
	// MaxRounds overrides the scheme's default round bound when > 0.
	MaxRounds int
	// Trace, when non-nil, records every round (transmissions and
	// deliveries) for rendering or debugging.
	Trace *Trace
	// Drop, when non-nil, injects transmission faults through the
	// historical hook: a transmission by node v in round r is jammed when
	// Drop(v, r) is true. Set by WithFaults; richer adversaries use Fault.
	Drop func(node, round int) bool
	// Fault, when non-nil, injects faults through a declarative model
	// description (jamming, crash–recovery, churn, duty-cycling, or a
	// composition). Set by WithFaultSpec / FaultRate; validated and
	// materialized when the run is prepared. Drop and Fault compose.
	Fault *FaultSpec
	// Quick reduces search effort for schemes that search for labelings
	// (currently the one-bit scheme).
	Quick bool
	// Coordinator is the coordinator node r of λarb (scheme "barb").
	// Unless WithCoordinator was given, Run substitutes the Network's
	// coordinator.
	Coordinator int
	// Seed drives any randomized search a scheme performs (deterministic
	// per seed; currently the one-bit hill-climb).
	Seed int64
	// Build tunes the §2.1 stage construction underlying the λ-family
	// schemes (prune order, deliberately broken ablation modes).
	Build core.BuildOptions
	// Sim, when non-nil, is the reusable engine the run executes on:
	// passing the same Sim to every run of a label-once/run-many loop
	// amortises all per-run engine buffers (see NewSim).
	Sim *Sim
	// DenseEngine forces the dense reference engine: every node stepped
	// every round, ignoring sparse-wakeup hints. Results are bit-identical
	// either way; the knob exists for differential tests and benchmarks.
	DenseEngine bool
	// ScalarEngine forces the scalar sequential engine where the
	// word-parallel bitset core would otherwise run. Results are
	// bit-identical either way; the knob exists for differential tests
	// and benchmarks.
	ScalarEngine bool

	// ctx is the run's context, set by the *Ctx entry points and checked
	// by the engine between rounds; nil means "never cancelled".
	ctx context.Context
	// source is the WithSource override; -1 means "use the Network's /
	// Labeling's source".
	source int
	// coordinatorSet records that WithCoordinator was given explicitly
	// (node 0 is a valid coordinator, so the value alone cannot tell).
	coordinatorSet bool
	// faultModel is Fault materialized against the run's graph (set during
	// preparation, consumed by tuning).
	faultModel faults.Model
}

// Option is a functional option for Run, Label and RunLabeled.
type Option func(*Config)

// WithMessage sets the source message µ.
func WithMessage(mu string) Option { return func(c *Config) { c.Mu = mu } }

// WithWorkers selects engine parallelism: n > 1 uses n goroutines, n < 0
// uses GOMAXPROCS. The engine guarantees results identical to the
// sequential mode.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithMaxRounds overrides the scheme's default round bound.
func WithMaxRounds(n int) Option { return func(c *Config) { c.MaxRounds = n } }

// WithTrace records the run round by round into tr.
func WithTrace(tr *Trace) Option { return func(c *Config) { c.Trace = tr } }

// WithFaults injects transmission faults through the historical hook:
// node v's transmission in round r is jammed (heard by nobody) whenever
// drop(v, r) returns true. It survives as a compatibility adapter over
// the fault-model subsystem; declarative models (WithFaultSpec) are the
// richer interface and the only one the sweep and the daemon speak.
func WithFaults(drop func(node, round int) bool) Option {
	return func(c *Config) { c.Drop = drop }
}

// WithQuick reduces search effort for labeling schemes that search
// (trading completeness for speed).
func WithQuick() Option { return func(c *Config) { c.Quick = true } }

// WithSource overrides the source node for this run (useful with
// RunLabeled: λarb labelings are source-independent).
func WithSource(v int) Option { return func(c *Config) { c.source = v } }

// WithCoordinator sets the coordinator node r used by scheme "barb".
func WithCoordinator(r int) Option {
	return func(c *Config) {
		c.Coordinator = r
		c.coordinatorSet = true
	}
}

// WithSeed sets the seed of any randomized labeling search.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithSim runs on a caller-owned reusable engine. In a label-once/run-many
// loop, passing the same Sim to every RunLabeled amortises all per-run
// engine buffers, so steady-state runs allocate only the protocols and the
// Result:
//
//	sim := radiobcast.NewSim()
//	for i := 0; i < runs; i++ {
//		out, err := radiobcast.RunLabeled(l, radiobcast.WithSim(sim))
//		...
//	}
//
// A Sim must not be used by two runs concurrently.
func WithSim(s *Sim) Option { return func(c *Config) { c.Sim = s } }

// WithDenseEngine disables the sparse-wakeup fast path, forcing the dense
// reference engine that steps every node every round. Outcomes are
// bit-identical with or without it; it exists for differential testing and
// for measuring what the fast path buys.
func WithDenseEngine() Option { return func(c *Config) { c.DenseEngine = true } }

// WithScalarEngine disables the word-parallel bitset core, forcing the
// scalar sequential engine on runs that would otherwise use it. Outcomes
// are bit-identical with or without it; it exists for differential
// testing and for measuring what the bitset core buys.
func WithScalarEngine() Option { return func(c *Config) { c.ScalarEngine = true } }

// WithBuild sets the options of the §2.1 stage construction (λ-family
// schemes); mainly for ablations.
func WithBuild(b core.BuildOptions) Option { return func(c *Config) { c.Build = b } }

func newConfig(opts []Option) *Config {
	c := &Config{Mu: "µ", Seed: 1, source: -1}
	for _, o := range opts {
		o(c)
	}
	return c
}

// tuning converts the engine-level knobs into the overlay every internal
// runner accepts.
// tuning stays a single composite literal so it inlines and the Tuning
// can live on the caller's stack (the runners do not retain it).
func (c *Config) tuning() *radio.Tuning {
	return &radio.Tuning{
		Ctx:           c.ctx,
		Workers:       c.Workers,
		MaxRounds:     c.MaxRounds,
		Trace:         c.Trace,
		Faults:        c.faultModel,
		Sim:           c.Sim,
		DisableSparse: c.DenseEngine,
		DisableBitset: c.ScalarEngine,
	}
}
