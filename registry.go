package radiobcast

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]Scheme{}
)

// Register adds a scheme to the global registry under s.Name(). It panics
// on an empty or duplicate name: registration is an init-time act and a
// clash is a programming error.
func Register(s Scheme) {
	name := s.Name()
	if name == "" {
		panic("radiobcast: Register with empty scheme name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("radiobcast: scheme %q registered twice", name))
	}
	registry[name] = s
}

// Lookup returns the registered scheme with the given name.
func Lookup(name string) (Scheme, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Schemes returns all registered schemes sorted by name.
func Schemes() []Scheme {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scheme, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// DescribeSchemes renders the registry as an aligned name/description
// listing (one scheme per line), as printed by the CLIs' -schemes flag.
func DescribeSchemes() string {
	var b strings.Builder
	for _, s := range Schemes() {
		fmt.Fprintf(&b, "%-12s %s\n", s.Name(), s.Describe())
	}
	return b.String()
}

// SchemeNames returns the sorted names of all registered schemes.
func SchemeNames() []string {
	ss := Schemes()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}
