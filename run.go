package radiobcast

import (
	"fmt"

	"radiobcast/internal/radio"
)

// LabelNetwork computes the named scheme's labeling of the network — the
// paper's one-time "central monitor" step. The labeling can then serve any
// number of RunLabeled broadcasts.
func LabelNetwork(net *Network, scheme string, opts ...Option) (*Labeling, error) {
	s, cfg, err := resolve(net, scheme, opts)
	if err != nil {
		return nil, err
	}
	return s.Label(net.Graph, cfg.sourceOr(net.Source), cfg)
}

// Run labels the network with the named scheme and executes one broadcast:
//
//	out, err := radiobcast.Run(net, "barb", radiobcast.WithWorkers(-1))
//
// A run whose broadcast does not complete is NOT an error — inspect
// out.AllInformed or call Verify(out), which checks the scheme's full
// guarantees. Errors mean the setup was impossible (unknown scheme, no
// labeling exists, …).
func Run(net *Network, scheme string, opts ...Option) (*Outcome, error) {
	s, cfg, err := resolve(net, scheme, opts)
	if err != nil {
		return nil, err
	}
	source := cfg.sourceOr(net.Source)
	l, err := s.Label(net.Graph, source, cfg)
	if err != nil {
		return nil, err
	}
	return finish(s, l, source, cfg)
}

// RunLabeled executes one broadcast over a previously computed labeling.
// The source defaults to the labeling's source; schemes whose labels are
// source-independent ("barb") accept any WithSource override.
func RunLabeled(l *Labeling, opts ...Option) (*Outcome, error) {
	s, ok := Lookup(l.Scheme)
	if !ok {
		return nil, fmt.Errorf("radiobcast: labeling names unregistered scheme %q", l.Scheme)
	}
	cfg := newConfig(opts)
	source := cfg.sourceOr(l.Source)
	if err := checkNode(l.Graph, source, "source"); err != nil {
		return nil, err
	}
	return finish(s, l, source, cfg)
}

// Verify checks an outcome against the guarantees of the scheme that
// produced it (the paper's theorems for the λ family, collision-freeness
// for the slotted baselines, completion for the flooding family).
func Verify(out *Outcome) error {
	s, ok := Lookup(out.Scheme)
	if !ok {
		return fmt.Errorf("radiobcast: outcome names unregistered scheme %q", out.Scheme)
	}
	return s.Verify(out)
}

// Annotate renders the outcome's per-node transmit/receive history in the
// paper's Figure 1 annotation format (label, {transmit rounds}, (receive
// rounds)).
func Annotate(out *Outcome) string {
	var labels []string
	if out.Labeling != nil && out.Labeling.Labels != nil {
		labels = out.Labeling.Strings()
	} else {
		labels = make([]string, out.Graph.N())
	}
	return radio.Annotations(out.Result, labels)
}

func resolve(net *Network, scheme string, opts []Option) (Scheme, *Config, error) {
	if net == nil || net.Graph == nil {
		return nil, nil, fmt.Errorf("radiobcast: nil network")
	}
	s, ok := Lookup(scheme)
	if !ok {
		return nil, nil, fmt.Errorf("radiobcast: unknown scheme %q (registered: %v)", scheme, SchemeNames())
	}
	cfg := newConfig(opts)
	if !cfg.coordinatorSet {
		cfg.Coordinator = net.Coordinator
	}
	if err := checkNode(net.Graph, cfg.sourceOr(net.Source), "source"); err != nil {
		return nil, nil, err
	}
	if err := checkNode(net.Graph, cfg.Coordinator, "coordinator"); err != nil {
		return nil, nil, err
	}
	return s, cfg, nil
}

func checkNode(g *Graph, v int, role string) error {
	if v < 0 || v >= g.N() {
		return fmt.Errorf("radiobcast: %s %d out of range [0,%d)", role, v, g.N())
	}
	return nil
}

func (c *Config) sourceOr(fallback int) int {
	if c.source >= 0 {
		return c.source
	}
	return fallback
}

// finish runs the scheme and fills the outcome fields common to all
// schemes, so adapters only populate what is specific to them.
func finish(s Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	out, err := s.Run(l, source, cfg)
	if err != nil {
		return nil, err
	}
	out.Scheme = s.Name()
	out.Graph = l.Graph
	out.Source = source
	out.Mu = cfg.Mu
	if out.Labeling == nil {
		// Schemes may install their own labeling (centralized recomputes
		// its schedule for an overridden source); keep it.
		out.Labeling = l
	}
	return out, nil
}
