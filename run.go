package radiobcast

import (
	"context"

	"radiobcast/internal/faults"
	"radiobcast/internal/radio"
)

// LabelNetwork computes the named scheme's labeling of the network — the
// paper's one-time "central monitor" step. The labeling can then serve any
// number of RunLabeled broadcasts.
func LabelNetwork(net *Network, scheme string, opts ...Option) (*Labeling, error) {
	return LabelNetworkCtx(context.Background(), net, scheme, opts...)
}

// LabelNetworkCtx is LabelNetwork with cancellation: a done ctx aborts
// before (or, for searching schemes, between) the expensive work and
// returns ctx.Err().
func LabelNetworkCtx(ctx context.Context, net *Network, scheme string, opts ...Option) (*Labeling, error) {
	s, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	return s.Label(net.Graph, source, cfg)
}

// Run labels the network with the named scheme and executes one broadcast:
//
//	out, err := radiobcast.Run(net, "barb", radiobcast.WithWorkers(-1))
//
// A run whose broadcast does not complete is NOT an error — inspect
// out.AllInformed or call Verify(out), which checks the scheme's full
// guarantees. Errors mean the setup was impossible (unknown scheme, no
// labeling exists, …); match them with errors.Is against ErrUnknownScheme,
// ErrNilNetwork, ErrNodeOutOfRange.
func Run(net *Network, scheme string, opts ...Option) (*Outcome, error) {
	return RunCtx(context.Background(), net, scheme, opts...)
}

// RunCtx is Run with cancellation: the engine checks ctx between rounds,
// so a hung or oversized job stops within one round of cancellation. A
// cancelled run returns the partial Outcome observed so far TOGETHER with
// ctx.Err() — callers that only check the error lose nothing, callers
// serving deadlines can still report the prefix. The Outcome's
// Result.Interrupted is true in that case.
func RunCtx(ctx context.Context, net *Network, scheme string, opts ...Option) (*Outcome, error) {
	s, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	l, err := s.Label(net.Graph, source, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return finish(s, l, source, cfg)
}

// RunLabeled executes one broadcast over a previously computed labeling.
// The source defaults to the labeling's source; schemes whose labels are
// source-independent ("barb") accept any WithSource override.
func RunLabeled(l *Labeling, opts ...Option) (*Outcome, error) {
	return RunLabeledCtx(context.Background(), l, opts...)
}

// RunLabeledCtx is RunLabeled with cancellation (see RunCtx for the
// partial-result contract).
func RunLabeledCtx(ctx context.Context, l *Labeling, opts ...Option) (*Outcome, error) {
	s, cfg, source, err := prepareLabeled(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	return finish(s, l, source, cfg)
}

// Verify checks an outcome against the guarantees of the scheme that
// produced it (the paper's theorems for the λ family, collision-freeness
// for the slotted baselines, completion for the flooding family).
func Verify(out *Outcome) error {
	s, ok := Lookup(out.Scheme)
	if !ok {
		return unknownScheme(out.Scheme)
	}
	return s.Verify(out)
}

// Annotate renders the outcome's per-node transmit/receive history in the
// paper's Figure 1 annotation format (label, {transmit rounds}, (receive
// rounds)).
func Annotate(out *Outcome) string {
	var labels []string
	if out.Labeling != nil && out.Labeling.Labels != nil {
		labels = out.Labeling.Strings()
	} else {
		labels = make([]string, out.Graph.N())
	}
	return radio.Annotations(out.Result, labels)
}

func resolve(net *Network, scheme string, opts []Option) (Scheme, *Config, error) {
	if net == nil || net.Graph == nil {
		return nil, nil, nilNetwork()
	}
	s, ok := Lookup(scheme)
	if !ok {
		return nil, nil, unknownScheme(scheme)
	}
	cfg := newConfig(opts)
	if !cfg.coordinatorSet {
		cfg.Coordinator = net.Coordinator
	}
	if err := checkNode(net.Graph, cfg.sourceOr(net.Source), "source"); err != nil {
		return nil, nil, err
	}
	if err := checkNode(net.Graph, cfg.Coordinator, "coordinator"); err != nil {
		return nil, nil, err
	}
	return s, cfg, nil
}

// prepare runs the shared entry prologue: resolve network and scheme,
// install the context, honour a pre-existing cancellation, and settle the
// source. Both the package-level and the Session entry points sit on it.
func prepare(ctx context.Context, net *Network, scheme string, opts []Option) (Scheme, *Config, int, error) {
	s, cfg, err := resolve(net, scheme, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg.ctx = ctx
	if err := ctxErr(ctx); err != nil {
		return nil, nil, 0, err
	}
	if err := cfg.materializeFaults(net.Graph); err != nil {
		return nil, nil, 0, err
	}
	return s, cfg, cfg.sourceOr(net.Source), nil
}

// prepareLabeled is prepare for the pre-labeled entry points.
func prepareLabeled(ctx context.Context, l *Labeling, opts []Option) (Scheme, *Config, int, error) {
	s, cfg, err := resolveLabeled(l, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg.ctx = ctx
	if err := ctxErr(ctx); err != nil {
		return nil, nil, 0, err
	}
	source := cfg.sourceOr(l.Source)
	if err := checkNode(l.Graph, source, "source"); err != nil {
		return nil, nil, 0, err
	}
	if err := cfg.materializeFaults(l.Graph); err != nil {
		return nil, nil, 0, err
	}
	return s, cfg, source, nil
}

// materializeFaults turns the Config's declarative fault spec into a model
// instance bound to the run's graph and folds the historical Drop hook
// into it. It runs during preparation so an unusable spec is an error
// before anything executes, and builds a fresh instance per run — models
// are stateful and must not be shared across concurrent runs. On the
// clean path it leaves faultModel nil, so fault-free runs pay nothing.
func (c *Config) materializeFaults(g *Graph) error {
	if c.Fault == nil && c.Drop == nil {
		return nil
	}
	var m faults.Model
	if c.Fault != nil {
		var err error
		if m, err = c.Fault.materialize(g); err != nil {
			return err
		}
	}
	c.faultModel = faults.Compose(faults.DropFunc(c.Drop), m)
	return nil
}

// resolveLabeled validates a caller-supplied labeling before running on
// it; hand-assembled or wire-decoded labelings reach the schemes only
// through here, so the checks are deliberately defensive.
func resolveLabeled(l *Labeling, opts []Option) (Scheme, *Config, error) {
	if l == nil {
		return nil, nil, labelingMismatch("nil labeling")
	}
	if l.Graph == nil {
		return nil, nil, labelingMismatch("labeling for scheme %q has no graph", l.Scheme)
	}
	if l.Labels == nil && l.Schedule == nil {
		return nil, nil, labelingMismatch("labeling for scheme %q carries neither labels nor a schedule", l.Scheme)
	}
	if l.Labels != nil && len(l.Labels) != l.Graph.N() {
		return nil, nil, labelingMismatch("%d labels for %d nodes", len(l.Labels), l.Graph.N())
	}
	s, ok := Lookup(l.Scheme)
	if !ok {
		return nil, nil, unknownScheme(l.Scheme)
	}
	return s, newConfig(opts), nil
}

func checkNode(g *Graph, v int, role string) error {
	if v < 0 || v >= g.N() {
		return &NodeOutOfRangeError{Role: role, Node: v, N: g.N()}
	}
	return nil
}

// ctxErr reports a done context (nil-safe: a nil ctx never cancels).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func (c *Config) sourceOr(fallback int) int {
	if c.source >= 0 {
		return c.source
	}
	return fallback
}

// finish runs the scheme and decorates the outcome.
func finish(s Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	out, err := s.Run(l, source, cfg)
	if err != nil {
		return nil, err
	}
	return decorate(out, s, l, source, cfg)
}

// decorate fills the outcome fields common to all schemes, so adapters
// only populate what is specific to them. It is the post-run half of
// finish, split out so the sweep's batch folding — which obtains the raw
// Outcome through a scheme's plan/assemble seam instead of Run — applies
// the same finishing touches. When the run was cut short by the Config's
// context, the partial outcome is returned together with the ctx error.
func decorate(out *Outcome, s Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	out.Scheme = s.Name()
	out.Graph = l.Graph
	out.Source = source
	out.Mu = cfg.Mu
	if out.Labeling == nil {
		// Schemes may install their own labeling (centralized recomputes
		// its schedule for an overridden source); keep it.
		out.Labeling = l
	}
	out.Coverage, out.Degraded = degradation(out)
	if err := ctxErr(cfg.ctx); err != nil {
		return out, err
	}
	return out, nil
}
