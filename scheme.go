package radiobcast

import (
	"radiobcast/internal/baseline"
	"radiobcast/internal/core"
	"radiobcast/internal/graph"
	"radiobcast/internal/radio"
)

// Re-exported leaf types, so consumers of the facade never need to reach
// into internal packages.
type (
	// Graph is an undirected radio network topology.
	Graph = graph.Graph
	// Label is a binary-string node label (the paper's x1x2x3 bits).
	Label = core.Label
	// Protocol is a per-node deterministic state machine driven by the
	// synchronous radio engine.
	Protocol = radio.Protocol
	// Message is what a node transmits in a round.
	Message = radio.Message
	// Action is a protocol's per-round decision (transmit or listen).
	Action = radio.Action
	// Result aggregates everything observable about an engine run.
	Result = radio.Result
	// Trace records a run round by round (see WithTrace).
	Trace = radio.Trace
	// Sim is a reusable simulation engine owning all per-run buffers (see
	// NewSim and WithSim).
	Sim = radio.Sim
)

// NoReception is the sentinel Result.FirstReception returns for a node
// that never received a matching message. Engine rounds are 1-based, so
// the zero value cannot be confused with a real reception round.
const NoReception = radio.NoReception

// NewSim returns a reusable simulation engine. Passing it to consecutive
// runs via WithSim keeps every engine buffer across runs, which makes the
// steady state of a label-once/run-many loop allocation-free on the engine
// side. A Sim must not be shared by concurrent runs; the Sweep subsystem
// gives each worker its own.
func NewSim() *Sim { return radio.NewSim() }

// Labeling is the output of a Scheme's labeling phase: the per-node labels
// plus whatever scheme-specific structure the run phase needs. It plays
// the paper's "central monitor" role: compute it once, then run any number
// of broadcasts over it (λarb labelings even allow changing the source).
type Labeling struct {
	// Scheme is the registry name of the scheme that produced this
	// labeling (RunLabeled uses it to find the matching run logic).
	Scheme string
	// Graph is the labeled topology.
	Graph *Graph
	// Source is the node the labeling was computed for: the designated
	// source for source-specific schemes, the coordinator r for "barb".
	Source int
	// Labels holds one label per node (nil for the unlabeled centralized
	// baseline).
	Labels []Label
	// Stages is the §2.1 stage construction (λ-family schemes only).
	Stages *core.Stages
	// Z is the acknowledgement initiator of λack (−1 when absent).
	Z int
	// R is the coordinator of λarb (−1 when absent).
	R int
	// Delays are the flooding delays selected by 1-bit labels (schemes
	// "onebit" and "flooding").
	Delays baseline.FloodingDelays
	// Schedule is the centralized baseline's per-round transmitter plan.
	Schedule [][]int

	// core caches the internal labeling for the λ-family run paths.
	core *core.Labeling
}

// Bits returns the length of the labeling: the maximum label length in
// bits (§1.1 of the paper).
func (l *Labeling) Bits() int { return core.MaxLen(l.Labels) }

// Distinct returns the number of distinct label values.
func (l *Labeling) Distinct() int { return core.Distinct(l.Labels) }

// Strings renders the labels as binary strings, one per node.
func (l *Labeling) Strings() []string { return core.Strings(l.Labels) }

// Histogram counts nodes per label value.
func (l *Labeling) Histogram() map[Label]int { return core.Histogram(l.Labels) }

// checkLabels verifies the labeling carries one label per node — the
// precondition of every label-driven scheme's Run. Facade validation
// already rejects most malformed labelings; this closes the remaining
// cross case (e.g. a schedule-only labeling stamped with a label scheme's
// name), returning ErrLabelingMismatch instead of panicking downstream.
func (l *Labeling) checkLabels() error {
	if len(l.Labels) != l.Graph.N() {
		return labelingMismatch("scheme %q needs %d labels, labeling has %d", l.Scheme, l.Graph.N(), len(l.Labels))
	}
	return nil
}

// coreLabeling recovers the internal λ-family labeling, reconstructing it
// from the public fields when the Labeling was assembled by hand.
func (l *Labeling) coreLabeling() *core.Labeling {
	if l.core != nil {
		return l.core
	}
	return &core.Labeling{Labels: l.Labels, Stages: l.Stages, Z: l.Z, R: l.R}
}

// Outcome is the unified result of running any registered scheme. The
// first block is populated by every scheme; the later fields only by the
// schemes they belong to.
type Outcome struct {
	// Scheme is the registry name of the scheme that ran.
	Scheme string
	// Graph is the topology the run executed on.
	Graph *Graph
	// Source is the node that originated µ in this run.
	Source int
	// Mu is the broadcast message.
	Mu string
	// Labeling is the labeling the run executed under.
	Labeling *Labeling
	// Result is the raw engine observation (transmissions, receptions,
	// collisions, message sizes).
	Result *Result
	// InformedRound[v] is the round in which v first learned µ (0 for the
	// source, and for nodes never informed).
	InformedRound []int
	// AllInformed reports whether every node learned µ.
	AllInformed bool
	// CompletionRound is the largest InformedRound.
	CompletionRound int
	// Coverage is the delivered fraction of the network: informed nodes
	// (source included) over all nodes, in [0, 1]. Under faults this is
	// the graded success measure a binary AllInformed cannot express.
	Coverage float64
	// Degraded classifies the coverage (see Degradation): "none" for a
	// complete broadcast down to "total" when only the source knows µ.
	Degraded Degradation

	// AckRound is the round the source received the acknowledgement
	// (scheme "back"; 0 when absent).
	AckRound int

	// KnowsCompleteRound[v] is the absolute round from which v knows the
	// broadcast completed (scheme "barb"; 0 = never).
	KnowsCompleteRound []int
	// TotalRounds is the total length of the three-phase Barb execution.
	TotalRounds int
	// T is the completion estimate disseminated by Barb's coordinator.
	T int

	// inner retains the scheme-specific outcome for Verify.
	inner any
}

// Scheme is the single contract every algorithm in this repository
// implements: label a graph, derive per-node protocols, run, verify. All
// eight built-in schemes (b, back, barb, onebit, roundrobin, colorrobin,
// centralized, flooding) register implementations of this interface; new
// algorithms plug in via Register without touching any caller.
type Scheme interface {
	// Name is the registry key (e.g. "b", "barb", "roundrobin").
	Name() string
	// Describe is a one-line human description (label length, origin).
	Describe() string
	// Label computes the scheme's labeling of g for the given source
	// (schemes with a coordinator read it from cfg.Coordinator instead).
	Label(g *Graph, source int, cfg *Config) (*Labeling, error)
	// Protocols instantiates one fresh protocol per node for a broadcast
	// of mu from source under labeling l.
	Protocols(l *Labeling, source int, mu string) ([]Protocol, error)
	// Run executes a broadcast of cfg.Mu from source under labeling l and
	// reports the unified outcome. An unsuccessful broadcast is not an
	// error: it yields an Outcome with AllInformed == false that Verify
	// rejects. Errors are reserved for impossible setups.
	Run(l *Labeling, source int, cfg *Config) (*Outcome, error)
	// Verify checks the outcome against the scheme's guarantees (the
	// paper's theorems for the λ family, collision-freeness for the
	// slotted baselines, plain completion for flooding).
	Verify(out *Outcome) error
}
