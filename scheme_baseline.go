package radiobcast

import (
	"fmt"

	"radiobcast/internal/baseline"
)

func init() {
	Register(roundRobinScheme{})
	Register(colorRobinScheme{})
	Register(centralizedScheme{})
	Register(floodingScheme{})
}

// baselineOutcome maps the shared baseline result shape into the unified
// Outcome. Incompleteness is not an error at run level (Verify judges it).
func baselineOutcome(out *baseline.Outcome) *Outcome {
	return &Outcome{
		Result:          out.Result,
		InformedRound:   out.InformedRound,
		AllInformed:     out.AllInformed,
		CompletionRound: out.CompletionRound,
		inner:           out,
	}
}

func verifyComplete(out *Outcome, scheme string) error {
	if _, ok := out.inner.(*baseline.Outcome); !ok {
		return fmt.Errorf("radiobcast: outcome did not come from scheme %s", scheme)
	}
	if !out.AllInformed {
		return fmt.Errorf("radiobcast: %s broadcast incomplete after %d rounds", scheme, out.Result.Rounds)
	}
	return nil
}

func verifyCollisionFree(out *Outcome, scheme string) error {
	if err := verifyComplete(out, scheme); err != nil {
		return err
	}
	for v, c := range out.Result.Collisions {
		if c > 0 {
			return fmt.Errorf("radiobcast: %s is slotted but node %d observed %d collision rounds", scheme, v, c)
		}
	}
	return nil
}

// roundRobinScheme adapts the classical O(log n)-bit distinct-identifier
// baseline: node v transmits µ exactly in slot v of a 2^⌈log₂ n⌉ period.
type roundRobinScheme struct{}

func (roundRobinScheme) Name() string { return "roundrobin" }
func (roundRobinScheme) Describe() string {
	return "O(log n)-bit distinct identifiers, one transmission slot per node"
}

func (roundRobinScheme) Label(g *Graph, source int, _ *Config) (*Labeling, error) {
	return &Labeling{
		Scheme: "roundrobin", Graph: g, Source: source,
		Labels: baseline.RoundRobinLabels(g.N()), Z: -1, R: -1,
	}, nil
}

func (roundRobinScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return baseline.NewRoundRobinProtocols(l.Labels, source, mu), nil
}

func (r roundRobinScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if err := l.checkLabels(); err != nil {
		return nil, err
	}
	ps, _ := r.Protocols(l, source, cfg.Mu)
	maxRounds := baseline.SlottedMaxRounds(l.Graph, source, l.Bits())
	out, _ := baseline.Observe(l.Graph, ps, source, maxRounds, l.Labels, cfg.tuning())
	return baselineOutcome(out), nil
}

func (roundRobinScheme) Verify(out *Outcome) error {
	return verifyCollisionFree(out, "roundrobin")
}

// colorRobinScheme adapts the O(log Δ)-bit distance-2-colouring baseline:
// informed nodes transmit in the slot of their colour.
type colorRobinScheme struct{}

func (colorRobinScheme) Name() string { return "colorrobin" }
func (colorRobinScheme) Describe() string {
	return "O(log Δ)-bit distance-2 colouring, one transmission slot per colour"
}

func (colorRobinScheme) Label(g *Graph, source int, _ *Config) (*Labeling, error) {
	labels, _ := baseline.ColorRobinLabels(g)
	return &Labeling{
		Scheme: "colorrobin", Graph: g, Source: source,
		Labels: labels, Z: -1, R: -1,
	}, nil
}

func (colorRobinScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return baseline.NewColorRobinProtocols(l.Labels, source, mu), nil
}

func (c colorRobinScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if err := l.checkLabels(); err != nil {
		return nil, err
	}
	ps, _ := c.Protocols(l, source, cfg.Mu)
	maxRounds := baseline.SlottedMaxRounds(l.Graph, source, l.Bits())
	out, _ := baseline.Observe(l.Graph, ps, source, maxRounds, l.Labels, cfg.tuning())
	return baselineOutcome(out), nil
}

func (colorRobinScheme) Verify(out *Outcome) error {
	return verifyCollisionFree(out, "colorrobin")
}

// centralizedScheme adapts the known-topology reference point: a greedy
// controller precomputes a collision-free transmitter schedule; nodes get
// scripts, not labels.
type centralizedScheme struct{}

func (centralizedScheme) Name() string { return "centralized" }
func (centralizedScheme) Describe() string {
	return "centralized greedy schedule over full topology knowledge (no labels)"
}

func (centralizedScheme) Label(g *Graph, source int, _ *Config) (*Labeling, error) {
	return &Labeling{
		Scheme: "centralized", Graph: g, Source: source,
		Schedule: baseline.BuildSchedule(g, source), Z: -1, R: -1,
	}, nil
}

func (centralizedScheme) Protocols(l *Labeling, _ int, mu string) ([]Protocol, error) {
	if l.Schedule == nil {
		return nil, fmt.Errorf("radiobcast: centralized labeling has no schedule")
	}
	return baseline.ScheduledProtocols(l.Graph.N(), l.Schedule, mu), nil
}

func (c centralizedScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if source != l.Source || l.Schedule == nil {
		// The schedule is source-specific; recompute for a new source.
		l = &Labeling{
			Scheme: "centralized", Graph: l.Graph, Source: source,
			Schedule: baseline.BuildSchedule(l.Graph, source), Z: -1, R: -1,
		}
	}
	ps, err := c.Protocols(l, source, cfg.Mu)
	if err != nil {
		return nil, err
	}
	out, _ := baseline.Observe(l.Graph, ps, source, len(l.Schedule)+1, nil, cfg.tuning())
	o := baselineOutcome(out)
	o.Labeling = l
	return o, nil
}

func (centralizedScheme) Verify(out *Outcome) error {
	if err := verifyComplete(out, "centralized"); err != nil {
		return err
	}
	if want := len(out.Labeling.Schedule); out.CompletionRound > want {
		return fmt.Errorf("radiobcast: centralized run took %d rounds, schedule promises %d",
			out.CompletionRound, want)
	}
	return nil
}

// floodingScheme adapts plain one-bit delayed flooding with every node
// labeled 1 (forward once, one round after first reception). It is NOT
// universal — it collides on many topologies — and serves as the
// comparison point the verified one-bit schemes improve on.
type floodingScheme struct{}

func (floodingScheme) Name() string { return "flooding" }
func (floodingScheme) Describe() string {
	return "1-bit delayed flooding, all-1 labels (not universal; baseline for onebit)"
}

func (floodingScheme) Label(g *Graph, source int, _ *Config) (*Labeling, error) {
	labels := make([]Label, g.N())
	for v := range labels {
		labels[v] = Label("1")
	}
	return &Labeling{
		Scheme: "flooding", Graph: g, Source: source,
		Labels: labels, Delays: baseline.DefaultDelays, Z: -1, R: -1,
	}, nil
}

func (floodingScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return baseline.NewFloodingProtocols(l.Labels, l.Delays, source, mu), nil
}

func (f floodingScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if err := l.checkLabels(); err != nil {
		return nil, err
	}
	ps, _ := f.Protocols(l, source, cfg.Mu)
	maxRounds := baseline.FloodingMaxRounds(l.Graph.N())
	out, _ := baseline.Observe(l.Graph, ps, source, maxRounds, l.Labels, cfg.tuning())
	return baselineOutcome(out), nil
}

func (floodingScheme) Verify(out *Outcome) error {
	return verifyComplete(out, "flooding")
}
