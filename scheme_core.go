package radiobcast

import (
	"fmt"

	"radiobcast/internal/core"
	"radiobcast/internal/radio"
)

func init() {
	Register(bScheme{})
	Register(backScheme{})
	Register(barbScheme{})
}

// batchScheme is the seam the sweep's batch folding needs: a scheme that
// can split a run into (protocols, fully-tuned engine options, assemble)
// so that the middle step — the engine run itself — can be handed to
// radio.RunBatch together with other runs over the same graph. Each Run
// method of the λ-family schemes is exactly plan → radio.Run → assemble,
// so a folded cell is bit-identical to a standalone one by construction.
type batchScheme interface {
	Scheme
	plan(l *Labeling, source int, cfg *Config) (ps []radio.Protocol, base radio.Options, assemble func(*radio.Result) (*Outcome, error), err error)
}

// bScheme adapts the paper's 2-bit scheme λ with universal algorithm B
// (§2, Theorem 2.9).
type bScheme struct{}

func (bScheme) Name() string { return "b" }
func (bScheme) Describe() string {
	return "2-bit labeling λ + universal algorithm B (broadcast in ≤ 2n−3 rounds)"
}

func (bScheme) Label(g *Graph, source int, cfg *Config) (*Labeling, error) {
	l, err := core.Lambda(g, source, cfg.Build)
	if err != nil {
		return nil, err
	}
	return wrapCore("b", g, source, l), nil
}

func (bScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return core.NewBProtocols(l.Labels, source, mu), nil
}

func (s bScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	ps, base, assemble, err := s.plan(l, source, cfg)
	if err != nil {
		return nil, err
	}
	return assemble(radio.Run(l.Graph, ps, base))
}

func (bScheme) plan(l *Labeling, source int, cfg *Config) ([]radio.Protocol, radio.Options, func(*radio.Result) (*Outcome, error), error) {
	if err := l.checkLabels(); err != nil {
		return nil, radio.Options{}, nil, err
	}
	ps, base, asm := core.PlanBroadcast(l.Graph, l.coreLabeling(), source, cfg.Mu)
	assemble := func(res *radio.Result) (*Outcome, error) {
		out := asm(res)
		return &Outcome{
			Result:          out.Result,
			InformedRound:   out.InformedRound,
			AllInformed:     out.AllInformed,
			CompletionRound: out.CompletionRound,
			inner:           out,
		}, nil
	}
	return ps, base.With(cfg.tuning()), assemble, nil
}

func (bScheme) Verify(out *Outcome) error {
	b, ok := out.inner.(*core.BroadcastOutcome)
	if !ok {
		return fmt.Errorf("radiobcast: outcome did not come from scheme b")
	}
	return core.VerifyBroadcast(b, out.Mu)
}

// backScheme adapts the 3-bit scheme λack with acknowledged broadcast
// Back (§3, Theorem 3.9).
type backScheme struct{}

func (backScheme) Name() string { return "back" }
func (backScheme) Describe() string {
	return "3-bit labeling λack + algorithm Back (broadcast with acknowledgement)"
}

func (backScheme) Label(g *Graph, source int, cfg *Config) (*Labeling, error) {
	l, err := core.LambdaAck(g, source, cfg.Build)
	if err != nil {
		return nil, err
	}
	return wrapCore("back", g, source, l), nil
}

func (backScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return core.NewBackProtocols(l.Labels, source, mu), nil
}

func (s backScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	ps, base, assemble, err := s.plan(l, source, cfg)
	if err != nil {
		return nil, err
	}
	return assemble(radio.Run(l.Graph, ps, base))
}

func (backScheme) plan(l *Labeling, source int, cfg *Config) ([]radio.Protocol, radio.Options, func(*radio.Result) (*Outcome, error), error) {
	if err := l.checkLabels(); err != nil {
		return nil, radio.Options{}, nil, err
	}
	ps, base, asm := core.PlanAcknowledged(l.Graph, l.coreLabeling(), source, cfg.Mu)
	assemble := func(res *radio.Result) (*Outcome, error) {
		out := asm(res)
		return &Outcome{
			Result:          out.Result,
			InformedRound:   out.InformedRound,
			AllInformed:     out.AllInformed,
			CompletionRound: out.CompletionRound,
			AckRound:        out.AckRound,
			inner:           out,
		}, nil
	}
	return ps, base.With(cfg.tuning()), assemble, nil
}

func (backScheme) Verify(out *Outcome) error {
	a, ok := out.inner.(*core.AckOutcome)
	if !ok {
		return fmt.Errorf("radiobcast: outcome did not come from scheme back")
	}
	return core.VerifyAcknowledged(a, out.Mu)
}

// barbScheme adapts the 3-bit source-independent scheme λarb with the
// three-phase algorithm Barb (§4): labels depend only on the coordinator
// r, so one labeling serves broadcasts from any source.
type barbScheme struct{}

func (barbScheme) Name() string { return "barb" }
func (barbScheme) Describe() string {
	return "3-bit labeling λarb + algorithm Barb (any node may be the source)"
}

func (barbScheme) Label(g *Graph, _ int, cfg *Config) (*Labeling, error) {
	l, err := core.LambdaArb(g, cfg.Coordinator, cfg.Build)
	if err != nil {
		return nil, err
	}
	return wrapCore("barb", g, cfg.Coordinator, l), nil
}

func (barbScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return core.NewBarbProtocols(l.Labels, source, mu), nil
}

func (s barbScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	ps, base, assemble, err := s.plan(l, source, cfg)
	if err != nil {
		return nil, err
	}
	return assemble(radio.Run(l.Graph, ps, base))
}

func (barbScheme) plan(l *Labeling, source int, cfg *Config) ([]radio.Protocol, radio.Options, func(*radio.Result) (*Outcome, error), error) {
	if err := l.checkLabels(); err != nil {
		return nil, radio.Options{}, nil, err
	}
	ps, base, asm, err := core.PlanArbitrary(l.Graph, l.coreLabeling(), source, cfg.Mu)
	if err != nil {
		return nil, radio.Options{}, nil, err
	}
	assemble := func(res *radio.Result) (*Outcome, error) {
		out := asm(res)
		completion := 0
		for _, r := range out.MuKnownRound {
			if r > completion {
				completion = r
			}
		}
		return &Outcome{
			Result:             out.Result,
			InformedRound:      out.MuKnownRound,
			AllInformed:        out.AllKnowMu,
			CompletionRound:    completion,
			KnowsCompleteRound: out.KnowsCompleteRound,
			TotalRounds:        out.TotalRounds,
			T:                  out.T,
			inner:              out,
		}, nil
	}
	return ps, base.With(cfg.tuning()), assemble, nil
}

func (barbScheme) Verify(out *Outcome) error {
	a, ok := out.inner.(*core.ArbOutcome)
	if !ok {
		return fmt.Errorf("radiobcast: outcome did not come from scheme barb")
	}
	return core.VerifyArbitrary(out.Graph, a, out.Mu)
}

// wrapCore lifts an internal λ-family labeling into the public shape.
func wrapCore(scheme string, g *Graph, source int, l *core.Labeling) *Labeling {
	return &Labeling{
		Scheme: scheme,
		Graph:  g,
		Source: source,
		Labels: l.Labels,
		Stages: l.Stages,
		Z:      l.Z,
		R:      l.R,
		core:   l,
	}
}
