package radiobcast

import (
	"fmt"

	"radiobcast/internal/baseline"
	"radiobcast/internal/gjp"
)

func init() {
	Register(gjpScheme{})
}

// gjpScheme adapts the optimal-length scheme of Gańczorz–Jurdziński–Pelc
// (arXiv:2410.07382), which closes the paper's open question on the
// shortest labels enabling deterministic radio broadcast. The adaptation
// keeps their 1-bit mechanism on this repo's engine: a newly informed
// bit-1 node forwards µ two rounds after first hearing it, a newly
// informed bit-0 node sends a constant-size "stay" echo one round after,
// and a transmitter hearing a collision-free echo retransmits µ — so the
// echo steers the wave through regions with no fresh forwarders. Labels
// are constructed by exact stage simulation with backtracking and every
// labeling is verified against the engine before being returned; Label
// fails with an error when no 1-bit assignment sustains the wave
// (echo-controlled 1-bit broadcast, like onebit, is not universal).
type gjpScheme struct{}

func (gjpScheme) Name() string { return "gjp" }
func (gjpScheme) Describe() string {
	return "1-bit echo-controlled forwarding (Gańczorz–Jurdziński–Pelc optimal length), constructed by exact simulation"
}

func (gjpScheme) Label(g *Graph, source int, cfg *Config) (*Labeling, error) {
	budget := gjp.DefaultBudget
	if cfg.Quick {
		budget = gjp.QuickBudget
	}
	labels, err := gjp.Build(g, source, budget)
	if err != nil {
		return nil, fmt.Errorf("radiobcast: %w", err)
	}
	return &Labeling{
		Scheme: "gjp", Graph: g, Source: source,
		Labels: labels, Z: -1, R: -1,
	}, nil
}

func (gjpScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return gjp.NewProtocols(l.Labels, source, mu), nil
}

func (s gjpScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if err := l.checkLabels(); err != nil {
		return nil, err
	}
	ps, _ := s.Protocols(l, source, cfg.Mu)
	maxRounds := gjp.MaxRounds(l.Graph.N())
	out, _ := baseline.Observe(l.Graph, ps, source, maxRounds, l.Labels, cfg.tuning())
	return baselineOutcome(out), nil
}

func (gjpScheme) Verify(out *Outcome) error {
	if err := verifyComplete(out, "gjp"); err != nil {
		return err
	}
	if bits := out.Labeling.Bits(); bits > 1 {
		return fmt.Errorf("radiobcast: gjp labeling uses %d bits", bits)
	}
	return nil
}
