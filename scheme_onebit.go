package radiobcast

import (
	"fmt"

	"radiobcast/internal/baseline"
	"radiobcast/internal/onebit"
)

func init() {
	Register(onebitScheme{})
}

// onebitScheme adapts the verified single-bit schemes of §5: a machine-
// checked 1-bit labeling under the delayed-flooding protocol family. The
// paper gives no general construction, so labeling is a search — exhaustive
// over all 2^n labelings for small graphs, a seeded hill-climb otherwise —
// and every labeling returned has been verified to complete broadcast by
// exact simulation. Label fails with an error when no labeling is found
// (one-bit broadcast is not universal).
type onebitScheme struct{}

// onebitExhaustiveMax bounds the exhaustive 2^n search (beyond it the
// hill-climb takes over).
const onebitExhaustiveMax = 14

func (onebitScheme) Name() string { return "onebit" }
func (onebitScheme) Describe() string {
	return "verified 1-bit labeling (§5) under delayed flooding, found by search"
}

func (onebitScheme) Label(g *Graph, source int, cfg *Config) (*Labeling, error) {
	tries := 4000
	if cfg.Quick {
		tries = 400
	}
	for _, d := range []baseline.FloodingDelays{baseline.DefaultDelays, baseline.GridDelays} {
		var s *onebit.Scheme
		var ok bool
		if g.N() <= onebitExhaustiveMax {
			s, ok = onebit.SearchExhaustive(g, d, source)
		} else {
			s, ok = onebit.SearchRandom(g, d, source, tries, cfg.Seed)
		}
		if ok {
			return &Labeling{
				Scheme: "onebit", Graph: g, Source: source,
				Labels: s.Labels, Delays: s.Delays, Z: -1, R: -1,
			}, nil
		}
	}
	return nil, fmt.Errorf("radiobcast: no 1-bit labeling found for %v from source %d (one-bit broadcast is not universal)", g, source)
}

func (onebitScheme) Protocols(l *Labeling, source int, mu string) ([]Protocol, error) {
	return baseline.NewFloodingProtocols(l.Labels, l.Delays, source, mu), nil
}

func (o onebitScheme) Run(l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if err := l.checkLabels(); err != nil {
		return nil, err
	}
	ps, _ := o.Protocols(l, source, cfg.Mu)
	maxRounds := baseline.FloodingMaxRounds(l.Graph.N())
	out, _ := baseline.Observe(l.Graph, ps, source, maxRounds, l.Labels, cfg.tuning())
	return baselineOutcome(out), nil
}

func (onebitScheme) Verify(out *Outcome) error {
	if err := verifyComplete(out, "onebit"); err != nil {
		return err
	}
	if bits := out.Labeling.Bits(); bits > 1 {
		return fmt.Errorf("radiobcast: onebit labeling uses %d bits", bits)
	}
	return nil
}
