#!/bin/sh
# scripts/bench.sh — run the benchmark suite and record the results as
# BENCH_<n>.json at the repository root, so the performance trajectory of
# the hot paths is tracked PR over PR (BENCH_4.json is the pre-refactor
# baseline this series is measured against).
#
# Usage:
#   scripts/bench.sh <n> [bench-regex] [benchtime]
#
#   <n>           index of the BENCH_<n>.json file to write (required)
#   bench-regex   go test -bench pattern
#                 (default: the broadcast + baseline + sweep + labeling
#                 hot paths)
#   benchtime     go test -benchtime value (default: 1s)
#
# Examples:
#   scripts/bench.sh 5
#   scripts/bench.sh 5 'BenchmarkBroadcastB$' 3s
set -eu

cd "$(dirname "$0")/.."

n="${1:?usage: scripts/bench.sh <n> [bench-regex] [benchtime]}"
pattern="${2:-BenchmarkBroadcastB\$|BenchmarkBroadcastBack\$|BenchmarkBaselines\$|BenchmarkSweep\$|BenchmarkLabeling\$|BenchmarkSessionCacheMiss\$|BenchmarkSessionCacheHit\$|BenchmarkStoreHit\$}"
benchtime="${3:-1s}"
out="BENCH_${n}.json"

# Recorded baselines are append-only: overwriting BENCH_<n>.json would
# silently rewrite the series history. Pick the next free index instead.
if [ -e "$out" ]; then
  echo "error: $out already exists; refusing to overwrite a recorded baseline" >&2
  exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

cpu="$(awk -F': ' '/^cpu:/ {print $2; exit}' "$raw")"

{
  printf '{\n'
  printf '  "bench": %s,\n' "$n"
  printf '  "note": "recorded by scripts/bench.sh (pattern %s, benchtime %s)",\n' "$pattern" "$benchtime" |
    sed 's/\\\$/$/g'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
  printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
  printf '  "cpu": "%s",\n' "$cpu"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, $3, $5, $7)
      if (count++) printf(",\n")
      printf("%s", line)
    }
    END { printf("\n") }
  ' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out"
