package radiobcast

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"radiobcast/internal/core"
	"radiobcast/internal/store"
)

// Session is the serving object of the facade: it owns a pool of reusable
// simulation engines and an LRU cache of labelings keyed by (graph
// fingerprint, scheme, source), so the steady state of a serve-many-runs
// workload — the paper's "label once at a central monitor, then broadcast
// forever" regime — neither relabels nor reallocates engine buffers. A
// Session is safe for concurrent use; create one per process (or per
// tenant) and route every request through it:
//
//	sess := radiobcast.NewSession()
//	out, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("µ"))
//
// The first Run for a topology pays the labeling; every later Run on a
// structurally identical graph is a cache hit that goes straight to a
// pooled engine. Concurrent first requests for the same key are
// single-flighted: one computes, the rest wait for it and share the
// result. Stats reports hits, misses, coalesced waits and evictions.
//
// One caveat inherited from Graph's lazy caches (Freeze, Fingerprint):
// when a single *Graph value is shared by concurrent Runs, call its
// Freeze once before handing it out — afterwards all uses are read-only.
type Session struct {
	sims sync.Pool

	// Cache counters are plain atomics so Stats and the per-counter
	// accessors never contend with (or block behind) the cache lock —
	// the /metrics handler of a serving daemon reads them on every
	// scrape while request goroutines are mid-labeling.
	hits, misses, bypasses, evictions, coalesced atomic.Uint64
	storeHits, storeMisses, storeWrites          atomic.Uint64

	// store is the optional disk-backed L2 tier behind the LRU (see
	// WithStore); initErr records a store that failed to open, failing
	// every operation instead of silently serving without persistence.
	store        *store.Store
	storeDir     string
	storeMax     int64
	storePreload int
	initErr      error

	// opMu guards closed against ops.Add: begin takes the read side, so
	// any number of operations start concurrently; Close takes the write
	// side exactly once to flip closed, after which no new operation can
	// register and ops.Wait() observes a monotonically draining count.
	opMu   sync.RWMutex
	closed bool
	ops    sync.WaitGroup

	mu       sync.Mutex
	capacity int
	lru      list.List // of *cacheEntry, most recent first
	index    map[labelingKey]*list.Element
	// flights dedups concurrent label computations: the first miss on a
	// key becomes the leader and computes; later misses on the same key
	// wait on the flight instead of burning a core each on identical work.
	flights map[labelingKey]*flight
}

// flight is one in-progress labeling computation. The leader fills l/err
// and closes done; waiters read them only after done is closed (the
// happens-before edge), or abandon the wait when their own context ends.
type flight struct {
	done chan struct{}
	l    *Labeling
	err  error
}

// labelingKey identifies a cached labeling. The fingerprint is a 64-bit
// structural hash; n and m ride along so an (astronomically unlikely)
// hash collision between different-sized graphs still cannot alias.
// Coordinator is part of the key because "barb" labels depend on it.
type labelingKey struct {
	fp          uint64
	n, m        int
	scheme      string
	source      int
	coordinator int
}

type cacheEntry struct {
	key labelingKey
	l   *Labeling
}

// SessionStats counts the labeling cache's traffic. Entries is the
// current cache size; the counters are cumulative and monotonic (each is
// maintained atomically, so concurrent Stats readers never observe a
// counter going backwards).
type SessionStats struct {
	// Hits counts runs served from the cache (no labeling computed).
	Hits uint64
	// Misses counts labelings computed and inserted.
	Misses uint64
	// Bypasses counts labelings computed without consulting the cache
	// (non-default build options, or a zero-capacity cache).
	Bypasses uint64
	// Evictions counts LRU entries discarded to make room.
	Evictions uint64
	// Coalesced counts requests that waited on another request's
	// in-flight labeling of the same key instead of computing their own
	// (single-flight deduplication). A coalesced request is neither a hit
	// nor a miss: N concurrent first requests for one key are 1 miss and
	// N−1 coalesced waits.
	Coalesced uint64
	// Entries is the number of labelings currently cached.
	Entries int

	// StoreHits counts labelings served from the disk store instead of
	// computed: LRU misses satisfied by a store read, plus warm-start
	// preloads. A store hit is neither a Hit nor a Miss.
	StoreHits uint64
	// StoreMisses counts LRU misses that also missed the store and had
	// to compute (zero when no store is configured).
	StoreMisses uint64
	// StoreWrites counts labelings persisted to the store.
	StoreWrites uint64
	// StoreBytes is the current total size of stored blobs.
	StoreBytes uint64
	// StoreEntries is the current number of stored labelings.
	StoreEntries int
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// DefaultLabelingCacheSize is the labeling-cache capacity of NewSession
// unless WithLabelingCache overrides it.
const DefaultLabelingCacheSize = 128

// WithLabelingCache sets the labeling cache's capacity in entries; 0 (or
// negative) disables caching entirely.
func WithLabelingCache(capacity int) SessionOption {
	return func(s *Session) {
		if capacity < 0 {
			capacity = 0
		}
		s.capacity = capacity
	}
}

// DefaultStorePreload bounds how many of the store's most-recent entries
// NewSession preloads into the LRU when WithStorePreload does not say
// otherwise (the cache capacity bounds it too).
const DefaultStorePreload = 64

// WithStore attaches a persistent disk-backed store rooted at dir as a
// transparent L2 tier behind the LRU: an LRU miss reads the store before
// computing, and every computed (cacheable) labeling is written back in
// the portable wire format, so labelings survive the process and are
// shared between Sessions pointing at the same directory. If the store
// cannot be opened, every session operation fails with the open error
// (see Err) rather than silently serving without persistence.
func WithStore(dir string) SessionOption {
	return func(s *Session) { s.storeDir = dir }
}

// WithStoreBytes caps the store's total blob bytes; past the cap the
// least-recently-accessed blobs are evicted. 0 (the default) means
// unbounded.
func WithStoreBytes(max int64) SessionOption {
	return func(s *Session) { s.storeMax = max }
}

// WithStorePreload sets how many of the store's most-recent labelings
// NewSession decodes into the LRU up front (warm start); each preloaded
// entry counts as a StoreHit. 0 disables preloading; a negative value
// restores the default (min of DefaultStorePreload and the capacity).
func WithStorePreload(n int) SessionOption {
	return func(s *Session) { s.storePreload = n }
}

// NewSession returns a Session with an empty engine pool and labeling
// cache.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		capacity:     DefaultLabelingCacheSize,
		storePreload: -1,
		index:        map[labelingKey]*list.Element{},
		flights:      map[labelingKey]*flight{},
	}
	s.sims.New = func() any { return NewSim() }
	for _, o := range opts {
		o(s)
	}
	if s.storeDir != "" {
		st, err := store.Open(s.storeDir, store.Options{MaxBytes: s.storeMax})
		if err != nil {
			s.initErr = fmt.Errorf("radiobcast: opening labeling store: %w", err)
			return s
		}
		s.store = st
		s.preloadStore()
	}
	return s
}

// Err reports whether the session was constructed in a failed state
// (today: WithStore pointing at an unusable directory). A failed session
// refuses every operation with this error; callers that can abort early —
// the daemon, the labeler — check it right after NewSession.
func (s *Session) Err() error { return s.initErr }

// preloadStore warms the LRU with the store's most-recent labelings, so
// a restarted daemon serves its working set from memory immediately.
func (s *Session) preloadStore() {
	n := s.storePreload
	if n < 0 {
		n = DefaultStorePreload
	}
	if n > s.capacity {
		n = s.capacity
	}
	if n <= 0 {
		return
	}
	for _, k := range s.store.RecentKeys(n) {
		key := labelingKey{
			fp: k.Fingerprint, n: k.N, m: k.M,
			scheme: k.Scheme, source: k.Source, coordinator: k.Coordinator,
		}
		l, ok := s.storeGet(key)
		if !ok {
			continue
		}
		s.mu.Lock()
		if _, dup := s.index[key]; !dup {
			s.index[key] = s.lru.PushBack(&cacheEntry{key: key, l: l})
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the labeling cache's counters. It is safe
// under any number of concurrent readers and writers, and each counter is
// monotonic across snapshots: a later Stats never reports a smaller Hits
// (Misses, …) than an earlier one. The counters are read individually, so
// a snapshot taken mid-operation may be skewed by the operation in flight
// — fine for metrics, which is what this is for.
func (s *Session) Stats() SessionStats {
	st := SessionStats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Bypasses:    s.bypasses.Load(),
		Evictions:   s.evictions.Load(),
		Coalesced:   s.coalesced.Load(),
		Entries:     s.CacheEntries(),
		StoreHits:   s.storeHits.Load(),
		StoreMisses: s.storeMisses.Load(),
		StoreWrites: s.storeWrites.Load(),
	}
	if s.store != nil {
		st.StoreBytes = uint64(s.store.Bytes())
		st.StoreEntries = s.store.Entries()
	}
	return st
}

// CacheHits returns the cumulative cache-hit count (see SessionStats.Hits).
func (s *Session) CacheHits() uint64 { return s.hits.Load() }

// CacheMisses returns the cumulative miss count (see SessionStats.Misses).
func (s *Session) CacheMisses() uint64 { return s.misses.Load() }

// CacheBypasses returns the cumulative bypass count (see
// SessionStats.Bypasses).
func (s *Session) CacheBypasses() uint64 { return s.bypasses.Load() }

// CacheEvictions returns the cumulative eviction count (see
// SessionStats.Evictions).
func (s *Session) CacheEvictions() uint64 { return s.evictions.Load() }

// CacheCoalesced returns the cumulative count of requests deduplicated
// onto another request's in-flight labeling (see SessionStats.Coalesced).
func (s *Session) CacheCoalesced() uint64 { return s.coalesced.Load() }

// CacheEntries returns the number of labelings currently cached.
func (s *Session) CacheEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// StoreHits returns the cumulative count of labelings served from the
// disk store (see SessionStats.StoreHits).
func (s *Session) StoreHits() uint64 { return s.storeHits.Load() }

// StoreMisses returns the cumulative count of LRU misses that also
// missed the disk store (see SessionStats.StoreMisses).
func (s *Session) StoreMisses() uint64 { return s.storeMisses.Load() }

// StoreWrites returns the cumulative count of labelings persisted to the
// disk store (see SessionStats.StoreWrites).
func (s *Session) StoreWrites() uint64 { return s.storeWrites.Load() }

// StoreBytes returns the current total size of stored labeling blobs (0
// without a store).
func (s *Session) StoreBytes() uint64 {
	if s.store == nil {
		return 0
	}
	return uint64(s.store.Bytes())
}

// begin registers one in-flight operation, failing once the session is
// closed. Every public entry point pairs it with end, so Close can wait
// for the pooled Sims (and the cache) to quiesce.
func (s *Session) begin() error {
	if s.initErr != nil {
		return s.initErr
	}
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	if s.closed {
		return fmt.Errorf("radiobcast: %w", ErrSessionClosed)
	}
	s.ops.Add(1)
	return nil
}

func (s *Session) end() { s.ops.Done() }

// Close drains the session: new Run/Label/RunLabeled/Sweep calls fail
// immediately with ErrSessionClosed, while operations already in flight
// run to completion — Close blocks until the last one returns its pooled
// Sim (or until ctx expires, returning ctx.Err() with the session still
// draining). Closing an already-closed session waits again but is
// otherwise a no-op. A nil ctx waits without a deadline.
//
// Close does not cancel in-flight work; callers wanting a bounded drain
// pass the same deadline to the operations' contexts (the daemon does
// exactly that) or to ctx here.
//
// With a store attached, Close flushes (fsyncs) and closes its index
// after the drain — store reads and writes happen inside registered
// operations, so none can be in flight by the time the store goes away.
// If ctx expires first, the session is still draining and the store is
// closed by the drain goroutine once the last operation returns.
func (s *Session) Close(ctx context.Context) error {
	s.opMu.Lock()
	s.closed = true
	s.opMu.Unlock()
	done := make(chan error, 1)
	go func() {
		s.ops.Wait()
		var err error
		if s.store != nil {
			err = s.store.Close() // idempotent: safe across repeated Closes
		}
		done <- err
	}()
	if ctx == nil {
		return <-done
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Label resolves the network and returns the scheme's labeling, serving
// it from the session cache when possible (see Run for the cache key).
func (s *Session) Label(ctx context.Context, net *Network, scheme string, opts ...Option) (*Labeling, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	return s.labelCached(ctx, sch, net.Graph, source, cfg)
}

// Run labels (or cache-hits) the network and executes one broadcast on a
// pooled engine. It is RunCtx with the session's cache and Sim pool
// in front: steady-state serving neither relabels nor reallocates engine
// buffers. The cancellation contract is RunCtx's — partial Outcome plus
// ctx.Err() on a cancelled run.
func (s *Session) Run(ctx context.Context, net *Network, scheme string, opts ...Option) (*Outcome, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	l, err := s.labelCached(ctx, sch, net.Graph, source, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// RunLabeled executes one broadcast over a caller-supplied labeling on a
// pooled engine (the labeling cache is not consulted — the caller already
// has the artifact, e.g. from ReadLabeling).
func (s *Session) RunLabeled(ctx context.Context, l *Labeling, opts ...Option) (*Outcome, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepareLabeled(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// finishPooled is finish with a session-pooled Sim installed unless the
// caller brought their own via WithSim.
func (s *Session) finishPooled(sch Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if cfg.Sim == nil {
		sim := s.sims.Get().(*Sim)
		defer s.sims.Put(sim)
		cfg.Sim = sim
	}
	return finish(sch, l, source, cfg)
}

// cacheable reports whether a labeling under cfg is a pure function of
// (graph, scheme, source, coordinator). Non-default build options, quick
// mode and non-default search seeds change the labels, so those label
// calls bypass the cache instead of poisoning it.
func cacheable(cfg *Config) bool {
	return cfg.Build == (core.BuildOptions{}) && !cfg.Quick && cfg.Seed == 1
}

// labelCached serves sch.Label through the LRU with single-flight
// deduplication. The labeling itself is computed outside the session lock
// — concurrent misses on different keys label in parallel — but
// concurrent misses on the *same* key do the work exactly once: the first
// becomes the leader, computes, inserts, and wakes the others, which wait
// on the flight (counted as coalesced) and return the leader's labeling.
// A waiter whose own context ends abandons the wait with ctx.Err(); the
// leader is unaffected. Labeling errors are delivered to every request of
// the flight but are not cached — the next request retries.
//
// With a store attached, the disk tier joins the same flight: the leader
// first tries a store read (a hit skips the compute entirely and counts
// as StoreHits, not Misses), and a computed labeling is written back
// before the flight is released, so N concurrent first requests for an
// unstored key are still one compute and one store write.
func (s *Session) labelCached(ctx context.Context, sch Scheme, g *Graph, source int, cfg *Config) (*Labeling, error) {
	if s.capacity <= 0 || !cacheable(cfg) {
		s.bypasses.Add(1)
		return sch.Label(g, source, cfg)
	}
	key := labelingKey{
		fp: g.Fingerprint(), n: g.N(), m: g.M(),
		scheme: sch.Name(), source: source, coordinator: cfg.Coordinator,
	}
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		l := el.Value.(*cacheEntry).l
		s.mu.Unlock()
		s.hits.Add(1)
		return l, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		if ctx == nil {
			<-f.done
			return f.l, f.err
		}
		select {
		case <-f.done:
			return f.l, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	defer func() {
		if f.l == nil && f.err == nil {
			// sch.Label panicked out from under us; don't strand the
			// waiters with a nil result (the panic itself propagates to
			// this leader's caller after the deferred cleanup).
			f.err = fmt.Errorf("radiobcast: labeling %s aborted", sch.Name())
		}
		s.mu.Lock()
		delete(s.flights, key)
		if f.err == nil {
			if _, ok := s.index[key]; !ok {
				s.index[key] = s.lru.PushFront(&cacheEntry{key: key, l: f.l})
				for s.lru.Len() > s.capacity {
					oldest := s.lru.Back()
					s.lru.Remove(oldest)
					delete(s.index, oldest.Value.(*cacheEntry).key)
					s.evictions.Add(1)
				}
			}
		}
		s.mu.Unlock()
		close(f.done)
	}()
	if s.store != nil {
		if l, ok := s.storeGet(key); ok {
			f.l = l
			return f.l, nil
		}
		s.storeMisses.Add(1)
	}
	s.misses.Add(1)
	f.l, f.err = sch.Label(g, source, cfg)
	if f.err == nil && s.store != nil {
		s.storeWrite(key, f.l)
	}
	return f.l, f.err
}

// storeKey maps the LRU key onto the store's exported key type.
func storeKey(k labelingKey) store.Key {
	return store.Key{
		Fingerprint: k.fp, N: k.n, M: k.m,
		Scheme: k.scheme, Source: k.source, Coordinator: k.coordinator,
	}
}

// storeGet reads and decodes one labeling from the disk store. The store
// already guarantees the bytes hash to their content address; decoding
// the wire format (with its own CRC) and cross-checking the graph against
// the key closes the loop. Anything inconsistent is dropped from the
// store and demoted to a miss — never an error.
func (s *Session) storeGet(key labelingKey) (*Labeling, bool) {
	data, ok := s.store.Get(storeKey(key))
	if !ok {
		return nil, false
	}
	l := &Labeling{}
	if err := l.UnmarshalBinary(data); err != nil ||
		l.Scheme != key.scheme || l.Graph.N() != key.n || l.Graph.M() != key.m {
		s.store.Drop(storeKey(key))
		return nil, false
	}
	// Freeze up front so the decoded graph's lazy caches are read-only
	// before the labeling is shared through the LRU.
	l.Graph.Freeze()
	if l.Graph.Fingerprint() != key.fp {
		s.store.Drop(storeKey(key))
		return nil, false
	}
	s.storeHits.Add(1)
	return l, true
}

// storeWrite persists one computed labeling. Failures are deliberately
// swallowed: the store is a cache tier, and a write error (disk full,
// permissions) must not fail a request the compute already satisfied.
func (s *Session) storeWrite(key labelingKey, l *Labeling) {
	data, err := l.MarshalBinary()
	if err != nil {
		return
	}
	if s.store.Put(storeKey(key), data) == nil {
		s.storeWrites.Add(1)
	}
}
