package radiobcast

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"radiobcast/internal/core"
)

// Session is the serving object of the facade: it owns a pool of reusable
// simulation engines and an LRU cache of labelings keyed by (graph
// fingerprint, scheme, source), so the steady state of a serve-many-runs
// workload — the paper's "label once at a central monitor, then broadcast
// forever" regime — neither relabels nor reallocates engine buffers. A
// Session is safe for concurrent use; create one per process (or per
// tenant) and route every request through it:
//
//	sess := radiobcast.NewSession()
//	out, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("µ"))
//
// The first Run for a topology pays the labeling; every later Run on a
// structurally identical graph is a cache hit that goes straight to a
// pooled engine. Concurrent first requests for the same key are
// single-flighted: one computes, the rest wait for it and share the
// result. Stats reports hits, misses, coalesced waits and evictions.
//
// One caveat inherited from Graph's lazy caches (Freeze, Fingerprint):
// when a single *Graph value is shared by concurrent Runs, call its
// Freeze once before handing it out — afterwards all uses are read-only.
type Session struct {
	sims sync.Pool

	// Cache counters are plain atomics so Stats and the per-counter
	// accessors never contend with (or block behind) the cache lock —
	// the /metrics handler of a serving daemon reads them on every
	// scrape while request goroutines are mid-labeling.
	hits, misses, bypasses, evictions, coalesced atomic.Uint64

	// opMu guards closed against ops.Add: begin takes the read side, so
	// any number of operations start concurrently; Close takes the write
	// side exactly once to flip closed, after which no new operation can
	// register and ops.Wait() observes a monotonically draining count.
	opMu   sync.RWMutex
	closed bool
	ops    sync.WaitGroup

	mu       sync.Mutex
	capacity int
	lru      list.List // of *cacheEntry, most recent first
	index    map[labelingKey]*list.Element
	// flights dedups concurrent label computations: the first miss on a
	// key becomes the leader and computes; later misses on the same key
	// wait on the flight instead of burning a core each on identical work.
	flights map[labelingKey]*flight
}

// flight is one in-progress labeling computation. The leader fills l/err
// and closes done; waiters read them only after done is closed (the
// happens-before edge), or abandon the wait when their own context ends.
type flight struct {
	done chan struct{}
	l    *Labeling
	err  error
}

// labelingKey identifies a cached labeling. The fingerprint is a 64-bit
// structural hash; n and m ride along so an (astronomically unlikely)
// hash collision between different-sized graphs still cannot alias.
// Coordinator is part of the key because "barb" labels depend on it.
type labelingKey struct {
	fp          uint64
	n, m        int
	scheme      string
	source      int
	coordinator int
}

type cacheEntry struct {
	key labelingKey
	l   *Labeling
}

// SessionStats counts the labeling cache's traffic. Entries is the
// current cache size; the counters are cumulative and monotonic (each is
// maintained atomically, so concurrent Stats readers never observe a
// counter going backwards).
type SessionStats struct {
	// Hits counts runs served from the cache (no labeling computed).
	Hits uint64
	// Misses counts labelings computed and inserted.
	Misses uint64
	// Bypasses counts labelings computed without consulting the cache
	// (non-default build options, or a zero-capacity cache).
	Bypasses uint64
	// Evictions counts LRU entries discarded to make room.
	Evictions uint64
	// Coalesced counts requests that waited on another request's
	// in-flight labeling of the same key instead of computing their own
	// (single-flight deduplication). A coalesced request is neither a hit
	// nor a miss: N concurrent first requests for one key are 1 miss and
	// N−1 coalesced waits.
	Coalesced uint64
	// Entries is the number of labelings currently cached.
	Entries int
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// DefaultLabelingCacheSize is the labeling-cache capacity of NewSession
// unless WithLabelingCache overrides it.
const DefaultLabelingCacheSize = 128

// WithLabelingCache sets the labeling cache's capacity in entries; 0 (or
// negative) disables caching entirely.
func WithLabelingCache(capacity int) SessionOption {
	return func(s *Session) {
		if capacity < 0 {
			capacity = 0
		}
		s.capacity = capacity
	}
}

// NewSession returns a Session with an empty engine pool and labeling
// cache.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		capacity: DefaultLabelingCacheSize,
		index:    map[labelingKey]*list.Element{},
		flights:  map[labelingKey]*flight{},
	}
	s.sims.New = func() any { return NewSim() }
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the labeling cache's counters. It is safe
// under any number of concurrent readers and writers, and each counter is
// monotonic across snapshots: a later Stats never reports a smaller Hits
// (Misses, …) than an earlier one. The counters are read individually, so
// a snapshot taken mid-operation may be skewed by the operation in flight
// — fine for metrics, which is what this is for.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Bypasses:  s.bypasses.Load(),
		Evictions: s.evictions.Load(),
		Coalesced: s.coalesced.Load(),
		Entries:   s.CacheEntries(),
	}
}

// CacheHits returns the cumulative cache-hit count (see SessionStats.Hits).
func (s *Session) CacheHits() uint64 { return s.hits.Load() }

// CacheMisses returns the cumulative miss count (see SessionStats.Misses).
func (s *Session) CacheMisses() uint64 { return s.misses.Load() }

// CacheBypasses returns the cumulative bypass count (see
// SessionStats.Bypasses).
func (s *Session) CacheBypasses() uint64 { return s.bypasses.Load() }

// CacheEvictions returns the cumulative eviction count (see
// SessionStats.Evictions).
func (s *Session) CacheEvictions() uint64 { return s.evictions.Load() }

// CacheCoalesced returns the cumulative count of requests deduplicated
// onto another request's in-flight labeling (see SessionStats.Coalesced).
func (s *Session) CacheCoalesced() uint64 { return s.coalesced.Load() }

// CacheEntries returns the number of labelings currently cached.
func (s *Session) CacheEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// begin registers one in-flight operation, failing once the session is
// closed. Every public entry point pairs it with end, so Close can wait
// for the pooled Sims (and the cache) to quiesce.
func (s *Session) begin() error {
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	if s.closed {
		return fmt.Errorf("radiobcast: %w", ErrSessionClosed)
	}
	s.ops.Add(1)
	return nil
}

func (s *Session) end() { s.ops.Done() }

// Close drains the session: new Run/Label/RunLabeled/Sweep calls fail
// immediately with ErrSessionClosed, while operations already in flight
// run to completion — Close blocks until the last one returns its pooled
// Sim (or until ctx expires, returning ctx.Err() with the session still
// draining). Closing an already-closed session waits again but is
// otherwise a no-op. A nil ctx waits without a deadline.
//
// Close does not cancel in-flight work; callers wanting a bounded drain
// pass the same deadline to the operations' contexts (the daemon does
// exactly that) or to ctx here.
func (s *Session) Close(ctx context.Context) error {
	s.opMu.Lock()
	s.closed = true
	s.opMu.Unlock()
	done := make(chan struct{})
	go func() { s.ops.Wait(); close(done) }()
	if ctx == nil {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Label resolves the network and returns the scheme's labeling, serving
// it from the session cache when possible (see Run for the cache key).
func (s *Session) Label(ctx context.Context, net *Network, scheme string, opts ...Option) (*Labeling, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	return s.labelCached(ctx, sch, net.Graph, source, cfg)
}

// Run labels (or cache-hits) the network and executes one broadcast on a
// pooled engine. It is RunCtx with the session's cache and Sim pool
// in front: steady-state serving neither relabels nor reallocates engine
// buffers. The cancellation contract is RunCtx's — partial Outcome plus
// ctx.Err() on a cancelled run.
func (s *Session) Run(ctx context.Context, net *Network, scheme string, opts ...Option) (*Outcome, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	l, err := s.labelCached(ctx, sch, net.Graph, source, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// RunLabeled executes one broadcast over a caller-supplied labeling on a
// pooled engine (the labeling cache is not consulted — the caller already
// has the artifact, e.g. from ReadLabeling).
func (s *Session) RunLabeled(ctx context.Context, l *Labeling, opts ...Option) (*Outcome, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sch, cfg, source, err := prepareLabeled(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// finishPooled is finish with a session-pooled Sim installed unless the
// caller brought their own via WithSim.
func (s *Session) finishPooled(sch Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if cfg.Sim == nil {
		sim := s.sims.Get().(*Sim)
		defer s.sims.Put(sim)
		cfg.Sim = sim
	}
	return finish(sch, l, source, cfg)
}

// cacheable reports whether a labeling under cfg is a pure function of
// (graph, scheme, source, coordinator). Non-default build options, quick
// mode and non-default search seeds change the labels, so those label
// calls bypass the cache instead of poisoning it.
func cacheable(cfg *Config) bool {
	return cfg.Build == (core.BuildOptions{}) && !cfg.Quick && cfg.Seed == 1
}

// labelCached serves sch.Label through the LRU with single-flight
// deduplication. The labeling itself is computed outside the session lock
// — concurrent misses on different keys label in parallel — but
// concurrent misses on the *same* key do the work exactly once: the first
// becomes the leader (counted as the miss), computes, inserts, and wakes
// the others, which wait on the flight (counted as coalesced) and return
// the leader's labeling. A waiter whose own context ends abandons the
// wait with ctx.Err(); the leader is unaffected. Labeling errors are
// delivered to every request of the flight but are not cached — the next
// request retries.
func (s *Session) labelCached(ctx context.Context, sch Scheme, g *Graph, source int, cfg *Config) (*Labeling, error) {
	if s.capacity <= 0 || !cacheable(cfg) {
		s.bypasses.Add(1)
		return sch.Label(g, source, cfg)
	}
	key := labelingKey{
		fp: g.Fingerprint(), n: g.N(), m: g.M(),
		scheme: sch.Name(), source: source, coordinator: cfg.Coordinator,
	}
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		l := el.Value.(*cacheEntry).l
		s.mu.Unlock()
		s.hits.Add(1)
		return l, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		if ctx == nil {
			<-f.done
			return f.l, f.err
		}
		select {
		case <-f.done:
			return f.l, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	s.misses.Add(1)

	defer func() {
		if f.l == nil && f.err == nil {
			// sch.Label panicked out from under us; don't strand the
			// waiters with a nil result (the panic itself propagates to
			// this leader's caller after the deferred cleanup).
			f.err = fmt.Errorf("radiobcast: labeling %s aborted", sch.Name())
		}
		s.mu.Lock()
		delete(s.flights, key)
		if f.err == nil {
			if _, ok := s.index[key]; !ok {
				s.index[key] = s.lru.PushFront(&cacheEntry{key: key, l: f.l})
				for s.lru.Len() > s.capacity {
					oldest := s.lru.Back()
					s.lru.Remove(oldest)
					delete(s.index, oldest.Value.(*cacheEntry).key)
					s.evictions.Add(1)
				}
			}
		}
		s.mu.Unlock()
		close(f.done)
	}()
	f.l, f.err = sch.Label(g, source, cfg)
	return f.l, f.err
}
