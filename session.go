package radiobcast

import (
	"container/list"
	"context"
	"sync"

	"radiobcast/internal/core"
)

// Session is the serving object of the facade: it owns a pool of reusable
// simulation engines and an LRU cache of labelings keyed by (graph
// fingerprint, scheme, source), so the steady state of a serve-many-runs
// workload — the paper's "label once at a central monitor, then broadcast
// forever" regime — neither relabels nor reallocates engine buffers. A
// Session is safe for concurrent use; create one per process (or per
// tenant) and route every request through it:
//
//	sess := radiobcast.NewSession()
//	out, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("µ"))
//
// The first Run for a topology pays the labeling; every later Run on a
// structurally identical graph is a cache hit that goes straight to a
// pooled engine. Stats reports hits, misses and evictions.
//
// One caveat inherited from Graph's lazy caches (Freeze, Fingerprint):
// when a single *Graph value is shared by concurrent Runs, call its
// Freeze once before handing it out — afterwards all uses are read-only.
type Session struct {
	sims sync.Pool

	mu       sync.Mutex
	capacity int
	lru      list.List // of *cacheEntry, most recent first
	index    map[labelingKey]*list.Element
	stats    SessionStats
}

// labelingKey identifies a cached labeling. The fingerprint is a 64-bit
// structural hash; n and m ride along so an (astronomically unlikely)
// hash collision between different-sized graphs still cannot alias.
// Coordinator is part of the key because "barb" labels depend on it.
type labelingKey struct {
	fp          uint64
	n, m        int
	scheme      string
	source      int
	coordinator int
}

type cacheEntry struct {
	key labelingKey
	l   *Labeling
}

// SessionStats counts the labeling cache's traffic. Entries is the
// current cache size; the counters are cumulative.
type SessionStats struct {
	// Hits counts runs served from the cache (no labeling computed).
	Hits uint64
	// Misses counts labelings computed and inserted.
	Misses uint64
	// Bypasses counts labelings computed without consulting the cache
	// (non-default build options, or a zero-capacity cache).
	Bypasses uint64
	// Evictions counts LRU entries discarded to make room.
	Evictions uint64
	// Entries is the number of labelings currently cached.
	Entries int
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// DefaultLabelingCacheSize is the labeling-cache capacity of NewSession
// unless WithLabelingCache overrides it.
const DefaultLabelingCacheSize = 128

// WithLabelingCache sets the labeling cache's capacity in entries; 0 (or
// negative) disables caching entirely.
func WithLabelingCache(capacity int) SessionOption {
	return func(s *Session) {
		if capacity < 0 {
			capacity = 0
		}
		s.capacity = capacity
	}
}

// NewSession returns a Session with an empty engine pool and labeling
// cache.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{capacity: DefaultLabelingCacheSize, index: map[labelingKey]*list.Element{}}
	s.sims.New = func() any { return NewSim() }
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the labeling cache's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	return st
}

// Label resolves the network and returns the scheme's labeling, serving
// it from the session cache when possible (see Run for the cache key).
func (s *Session) Label(ctx context.Context, net *Network, scheme string, opts ...Option) (*Labeling, error) {
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	return s.labelCached(sch, net.Graph, source, cfg)
}

// Run labels (or cache-hits) the network and executes one broadcast on a
// pooled engine. It is RunCtx with the session's cache and Sim pool
// in front: steady-state serving neither relabels nor reallocates engine
// buffers. The cancellation contract is RunCtx's — partial Outcome plus
// ctx.Err() on a cancelled run.
func (s *Session) Run(ctx context.Context, net *Network, scheme string, opts ...Option) (*Outcome, error) {
	sch, cfg, source, err := prepare(ctx, net, scheme, opts)
	if err != nil {
		return nil, err
	}
	l, err := s.labelCached(sch, net.Graph, source, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// RunLabeled executes one broadcast over a caller-supplied labeling on a
// pooled engine (the labeling cache is not consulted — the caller already
// has the artifact, e.g. from ReadLabeling).
func (s *Session) RunLabeled(ctx context.Context, l *Labeling, opts ...Option) (*Outcome, error) {
	sch, cfg, source, err := prepareLabeled(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	return s.finishPooled(sch, l, source, cfg)
}

// finishPooled is finish with a session-pooled Sim installed unless the
// caller brought their own via WithSim.
func (s *Session) finishPooled(sch Scheme, l *Labeling, source int, cfg *Config) (*Outcome, error) {
	if cfg.Sim == nil {
		sim := s.sims.Get().(*Sim)
		defer s.sims.Put(sim)
		cfg.Sim = sim
	}
	return finish(sch, l, source, cfg)
}

// cacheable reports whether a labeling under cfg is a pure function of
// (graph, scheme, source, coordinator). Non-default build options, quick
// mode and non-default search seeds change the labels, so those label
// calls bypass the cache instead of poisoning it.
func cacheable(cfg *Config) bool {
	return cfg.Build == (core.BuildOptions{}) && !cfg.Quick && cfg.Seed == 1
}

// labelCached serves sch.Label through the LRU. The labeling itself is
// computed outside the session lock — concurrent misses on different keys
// label in parallel; concurrent misses on the same key may both compute,
// and the second insert is dropped (both labelings are identical, so
// either serves).
func (s *Session) labelCached(sch Scheme, g *Graph, source int, cfg *Config) (*Labeling, error) {
	if s.capacity <= 0 || !cacheable(cfg) {
		s.mu.Lock()
		s.stats.Bypasses++
		s.mu.Unlock()
		return sch.Label(g, source, cfg)
	}
	key := labelingKey{
		fp: g.Fingerprint(), n: g.N(), m: g.M(),
		scheme: sch.Name(), source: source, coordinator: cfg.Coordinator,
	}
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		l := el.Value.(*cacheEntry).l
		s.mu.Unlock()
		return l, nil
	}
	s.stats.Misses++
	s.mu.Unlock()

	l, err := sch.Label(g, source, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.index[key]; !ok {
		s.index[key] = s.lru.PushFront(&cacheEntry{key: key, l: l})
		for s.lru.Len() > s.capacity {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.index, oldest.Value.(*cacheEntry).key)
			s.stats.Evictions++
		}
	}
	s.mu.Unlock()
	return l, nil
}
