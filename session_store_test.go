// Tests for the Session's disk tier: the persistent labeling store as a
// transparent L2 behind the in-memory LRU. The contract under test is the
// acceptance scenario — a second process pointed at the same directory
// serves bit-identical labelings with zero recomputation — plus the
// corruption discipline (a damaged store file is a miss, never an error)
// and drain/flush semantics of Close.
package radiobcast_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"radiobcast"
	"radiobcast/internal/store"
)

// storeNet builds a small frozen network for store tests.
func storeNet(t testing.TB, family string, n int) *radiobcast.Network {
	t.Helper()
	net, err := radiobcast.Family(family, n)
	if err != nil {
		t.Fatal(err)
	}
	net.Graph.Freeze()
	net.Graph.Fingerprint()
	return net
}

// blobPath returns the content-addressed file the store wrote for the
// given wire bytes.
func blobPath(dir string, data []byte) string {
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	return filepath.Join(dir, "objects", h[:2], h[2:])
}

// TestSessionStoreSecondSessionServesFromDisk is the acceptance path: one
// session computes and persists, a second session (a fresh process, in
// production) serves the same key from disk without calling Label, and
// the wire bytes are bit-identical.
func TestSessionStoreSecondSessionServesFromDisk(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	dir := t.TempDir()
	net := storeNet(t, "grid", 36)
	ctx := context.Background()

	a := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	la, err := a.Label(ctx, net, "hook-b")
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Misses != 1 || st.StoreMisses != 1 || st.StoreWrites != 1 {
		t.Fatalf("first session stats = %+v, want 1 miss / 1 store miss / 1 store write", st)
	}
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}

	b := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	lb, err := b.Label(ctx, net, "hook-b")
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.StoreHits != 1 || st.Misses != 0 || st.StoreMisses != 0 {
		t.Fatalf("second session stats = %+v, want 1 store hit / 0 misses", st)
	}
	if got := hookB.labels.Load(); got != 1 {
		t.Fatalf("Label called %d times across two sessions, want 1", got)
	}

	wa, err := la.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := lb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa, wb) {
		t.Fatal("store-served labeling is not bit-identical to the computed one")
	}

	// The disk-served labeling must drive a verifiably correct broadcast.
	out, err := b.Run(ctx, net, "hook-b", radiobcast.WithMessage("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := radiobcast.Verify(out); err != nil {
		t.Fatal(err)
	}
	// The Run was served from the LRU (warmed by the store hit above):
	// still zero computes.
	if got := hookB.labels.Load(); got != 1 {
		t.Fatalf("Label called %d times after Run, want 1", got)
	}
}

// TestSessionStoreCorruptionDemotesToMiss flips every byte of the stored
// blob in turn (the codec corruption harness, applied at the store layer)
// and then truncates it at every length: in all cases a fresh session must
// treat the damage as a miss — quarantine, recompute, re-persist — and
// never surface an error or a wrong labeling.
func TestSessionStoreCorruptionDemotesToMiss(t *testing.T) {
	dir := t.TempDir()
	net := storeNet(t, "path", 8)
	ctx := context.Background()

	seed := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := seed.Err(); err != nil {
		t.Fatal(err)
	}
	l, err := seed.Label(ctx, net, "b")
	if err != nil {
		t.Fatal(err)
	}
	want, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(ctx); err != nil {
		t.Fatal(err)
	}
	path := blobPath(dir, want)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("blob not on disk: %v", err)
	}

	check := func(t *testing.T, mutate func([]byte) []byte, what string) {
		t.Helper()
		bad := mutate(append([]byte(nil), want...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		sess := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
		if err := sess.Err(); err != nil {
			t.Fatal(err)
		}
		got, err := sess.Label(ctx, net, "b")
		if err != nil {
			t.Fatalf("%s: Label returned error %v, want silent recompute", what, err)
		}
		st := sess.Stats()
		if st.StoreHits != 0 || st.StoreMisses != 1 || st.Misses != 1 || st.StoreWrites != 1 {
			t.Fatalf("%s: stats = %+v, want miss + recompute + rewrite", what, st)
		}
		w, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, want) {
			t.Fatalf("%s: recomputed labeling differs from original", what)
		}
		if err := sess.Close(ctx); err != nil {
			t.Fatal(err)
		}
		// The recompute re-persisted the canonical bytes under the same
		// content address, healing the store for the next iteration.
		healed, err := os.ReadFile(path)
		if err != nil || !bytes.Equal(healed, want) {
			t.Fatalf("%s: store not healed after recompute (err=%v)", what, err)
		}
	}

	for i := range want {
		i := i
		check(t, func(b []byte) []byte { b[i] ^= 0x5a; return b }, fmt.Sprintf("flip byte %d", i))
	}
	for n := 0; n < len(want); n++ {
		check(t, func(b []byte) []byte { return b[:n] }, fmt.Sprintf("truncate to %d", n))
	}
}

// TestSessionStoreWrongLabelingDropped covers the layer above the content
// hash: bytes that ARE a valid wire labeling but for the wrong key (hash
// intact, so the store is happy) must be caught by the session's decode
// cross-check and dropped.
func TestSessionStoreWrongLabelingDropped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	netA := storeNet(t, "path", 8)
	netB := storeNet(t, "cycle", 9)

	seed := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := seed.Err(); err != nil {
		t.Fatal(err)
	}
	lb, err := seed.Label(ctx, netB, "b")
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := lb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Plant netB's labeling under netA's key, through the store API so the
	// content address is correct.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := store.Key{
		Fingerprint: netA.Graph.Fingerprint(),
		N:           netA.Graph.N(), M: netA.Graph.M(),
		Scheme: "b", Source: 0, Coordinator: 0,
	}
	if err := st.Put(key, wrong); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sess := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
	if err := sess.Err(); err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	la, err := sess.Label(ctx, netA, "b")
	if err != nil {
		t.Fatal(err)
	}
	if la.Graph.N() != 8 {
		t.Fatalf("served labeling for n=%d under netA's key", la.Graph.N())
	}
	if s := sess.Stats(); s.StoreHits != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want the planted entry demoted to a miss", s)
	}
}

// TestSessionStoreConcurrentSameKey hammers one key from two sessions
// sharing a directory — the single-flight layer dedups within a session,
// the store's content addressing dedups across them. Run under -race.
func TestSessionStoreConcurrentSameKey(t *testing.T) {
	dir := t.TempDir()
	net := storeNet(t, "grid", 25)
	ctx := context.Background()

	sessions := []*radiobcast.Session{
		radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0)),
		radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0)),
	}
	for _, s := range sessions {
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wires := make([][]byte, 16)
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := sessions[i%2].Label(ctx, net, "b")
			if err != nil {
				errs[i] = err
				return
			}
			wires[i], errs[i] = l.MarshalBinary()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < len(wires); i++ {
		if !bytes.Equal(wires[i], wires[0]) {
			t.Fatalf("goroutine %d produced different wire bytes", i)
		}
	}
	for i, s := range sessions {
		if err := s.Close(ctx); err != nil {
			t.Fatalf("close session %d: %v", i, err)
		}
	}
	// Exactly one blob on disk despite the contention.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Entries() != 1 || st.Bytes() != int64(len(wires[0])) {
		t.Fatalf("store holds %d entries / %d bytes, want 1 entry, one copy", st.Entries(), st.Bytes())
	}
}

// TestSessionStorePreload: NewSession against a populated directory warms
// the LRU, so the first Label is already an in-memory hit.
func TestSessionStorePreload(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	dir := t.TempDir()
	ctx := context.Background()
	nets := []*radiobcast.Network{
		storeNet(t, "path", 8),
		storeNet(t, "cycle", 9),
		storeNet(t, "star", 10),
	}
	seed := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := seed.Err(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		if _, err := seed.Label(ctx, n, "hook-b"); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(ctx); err != nil {
		t.Fatal(err)
	}
	computes := hookB.labels.Load()

	warm := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := warm.Err(); err != nil {
		t.Fatal(err)
	}
	defer warm.Close(ctx)
	st := warm.Stats()
	if st.StoreHits != 3 || st.Entries != 3 {
		t.Fatalf("after preload: stats = %+v, want 3 store hits / 3 entries", st)
	}
	for _, n := range nets {
		if _, err := warm.Label(ctx, n, "hook-b"); err != nil {
			t.Fatal(err)
		}
	}
	st = warm.Stats()
	if st.Hits != 3 || st.Misses != 0 || st.StoreMisses != 0 {
		t.Fatalf("after labels: stats = %+v, want 3 LRU hits, zero misses", st)
	}
	if got := hookB.labels.Load(); got != computes {
		t.Fatalf("preloaded session recomputed: Label calls went %d -> %d", computes, got)
	}

	// WithStorePreload(0) must leave the LRU cold.
	cold := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
	if err := cold.Err(); err != nil {
		t.Fatal(err)
	}
	defer cold.Close(ctx)
	if st := cold.Stats(); st.Entries != 0 || st.StoreHits != 0 {
		t.Fatalf("preload disabled but stats = %+v", st)
	}
}

// TestSessionStoreOpenError: an unusable store directory surfaces through
// Err() and fails every operation, rather than silently running storeless.
func TestSessionStoreOpenError(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sess := radiobcast.NewSession(radiobcast.WithStore(file))
	if sess.Err() == nil {
		t.Fatal("Err() = nil for store dir that is a regular file")
	}
	net := storeNet(t, "path", 8)
	if _, err := sess.Label(context.Background(), net, "b"); err == nil {
		t.Fatal("Label succeeded on a session whose store failed to open")
	}
	if err := sess.Close(context.Background()); err != nil && !errors.Is(err, radiobcast.ErrSessionClosed) {
		t.Fatalf("Close: %v", err)
	}
}

// TestSessionCloseFlushesStore extends the drain test to the disk tier:
// Close must be safe with store-backed operations still in flight, and
// after it returns the index must be durable — a reopened store sees
// every entry the session wrote.
func TestSessionCloseFlushesStore(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	dir := t.TempDir()
	ctx := context.Background()
	nets := []*radiobcast.Network{
		storeNet(t, "path", 8),
		storeNet(t, "cycle", 9),
		storeNet(t, "star", 10),
		storeNet(t, "grid", 16),
	}
	sess := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
	if err := sess.Err(); err != nil {
		t.Fatal(err)
	}

	// Gate inside Label so every racer is past the store read (a store
	// operation is genuinely in flight) when Close is called.
	entered := make(chan struct{}, len(nets))
	release := make(chan struct{})
	gate := func() {
		entered <- struct{}{}
		<-release
	}
	hookB.onLabel.Store(&gate)

	finished := make(chan error, len(nets))
	for _, n := range nets {
		n := n
		go func() {
			_, err := sess.Label(ctx, n, "hook-b")
			finished <- err
		}()
	}
	for range nets {
		<-entered
	}
	closed := make(chan error, 1)
	go func() { closed <- sess.Close(ctx) }()
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close with store ops in flight: %v", err)
	}
	for range nets {
		if err := <-finished; err != nil && !errors.Is(err, radiobcast.ErrSessionClosed) {
			t.Fatalf("in-flight Label failed with %v", err)
		}
	}

	// Durability: a fresh store handle on the same directory must replay
	// the index and serve every entry the drained session persisted.
	want := int(sess.StoreWrites())
	if want == 0 {
		t.Fatal("no store writes recorded; gate broke the flight path")
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Entries() != want {
		t.Fatalf("reopened store has %d entries, want %d", st.Entries(), want)
	}
	for _, k := range st.RecentKeys(-1) {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("reopened store misses key %+v", k)
		}
	}
}

// BenchmarkStoreHit measures the cold-process path the daemon takes after
// a restart: the LRU is empty, every labeling is served by reading and
// decoding the store blob. Compare with BenchmarkSessionCacheHit (pure
// in-memory) in session_test.go; the delta is the price of durability.
func BenchmarkStoreHit(b *testing.B) {
	dir := b.TempDir()
	net := storeNet(b, "grid", 1024)
	ctx := context.Background()
	seed := radiobcast.NewSession(radiobcast.WithStore(dir))
	if err := seed.Err(); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Label(ctx, net, "b"); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := radiobcast.NewSession(radiobcast.WithStore(dir), radiobcast.WithStorePreload(0))
		if err := sess.Err(); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Label(ctx, net, "b"); err != nil {
			b.Fatal(err)
		}
		if sess.StoreHits() != 1 {
			b.Fatal("iteration did not hit the store")
		}
		if err := sess.Close(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
