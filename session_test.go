// Tests for the Session serving object: the labeling cache (hits keyed by
// graph structure, eviction, bypass), the pooled-engine allocation
// guarantee, and bit-identity with the plain facade.
package radiobcast_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"radiobcast"
)

// TestSessionCacheHitSkipsRelabeling pins the core serving property: the
// first Run labels, every subsequent Run on the same topology serves the
// cached labeling — the scheme's Label is never called again.
func TestSessionCacheHitSkipsRelabeling(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	sess := radiobcast.NewSession()
	net := figNet(t)
	for i := 0; i < 5; i++ {
		out, err := sess.Run(context.Background(), net, "hook-b", radiobcast.WithMessage("m"))
		if err != nil || !out.AllInformed {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := radiobcast.Verify(out); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := hookB.labels.Load(); got != 1 {
		t.Fatalf("Label called %d times for 5 runs, want 1 (cache must serve the rest)", got)
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != 4 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits / 1 entry", st)
	}
}

// TestSessionCacheKeyedByStructure: a labeling computed for one *Graph
// serves any structurally identical one (the key is the fingerprint, not
// the pointer), while a different topology or source misses.
func TestSessionCacheKeyedByStructure(t *testing.T) {
	sess := radiobcast.NewSession()
	ctx := context.Background()
	a, _ := radiobcast.Family("grid", 16)
	b, _ := radiobcast.Family("grid", 16) // same structure, different object
	c, _ := radiobcast.Family("path", 16)
	if _, err := sess.Run(ctx, a, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, b, "b"); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("structurally identical graph missed: %+v", st)
	}
	if _, err := sess.Run(ctx, c, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, a, "b", radiobcast.WithSource(3)); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Misses != 3 {
		t.Fatalf("different topology/source should miss: %+v", st)
	}
}

func TestSessionCacheEviction(t *testing.T) {
	sess := radiobcast.NewSession(radiobcast.WithLabelingCache(2))
	ctx := context.Background()
	for _, fam := range []string{"path", "grid", "cycle"} {
		net, err := radiobcast.Family(fam, 16)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(ctx, net, "b"); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	// The LRU victim is the oldest entry ("path"): rerunning it misses.
	net, _ := radiobcast.Family("path", 16)
	if _, err := sess.Run(ctx, net, "b"); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("evicted entry should miss: %+v", st)
	}
}

// TestSessionCacheBypass: label-affecting options (quick mode, custom
// seeds, build ablations) must not poison the cache — they bypass it.
func TestSessionCacheBypass(t *testing.T) {
	sess := radiobcast.NewSession()
	ctx := context.Background()
	net := figNet(t)
	if _, err := sess.Run(ctx, net, "b", radiobcast.WithQuick()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, net, "b", radiobcast.WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Bypasses != 2 || st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 2 bypasses and an untouched cache", st)
	}
}

// TestSessionRunMatchesFacade: the served path (cache + pooled Sim) is
// bit-identical to the plain facade.
func TestSessionRunMatchesFacade(t *testing.T) {
	sess := radiobcast.NewSession()
	for _, scheme := range []string{"b", "back", "barb", "roundrobin", "centralized"} {
		net, err := radiobcast.Family("grid", 25)
		if err != nil {
			t.Fatal(err)
		}
		want, err := radiobcast.Run(net, scheme, radiobcast.WithMessage("m"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // miss path, then hit path
			got, err := sess.Run(context.Background(), net, scheme, radiobcast.WithMessage("m"))
			if err != nil {
				t.Fatalf("%s run %d: %v", scheme, i, err)
			}
			if !sameResults(want.Result, got.Result) {
				t.Fatalf("%s run %d: session diverged from facade", scheme, i)
			}
		}
	}
}

// TestSessionSteadyStateAllocs pins the acceptance criterion: the cache-
// hit + pooled-Sim serving path stays within the facade's existing alloc
// budget (≤ 40 allocs/run, independent of n and traffic).
func TestSessionSteadyStateAllocs(t *testing.T) {
	net, err := radiobcast.Family("grid", 256)
	if err != nil {
		t.Fatal(err)
	}
	sess := radiobcast.NewSession()
	ctx := context.Background()
	run := func() {
		out, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("m"))
		if err != nil || !out.AllInformed {
			t.Fatalf("run failed: %v", err)
		}
	}
	run() // warm-up: labels the topology and sizes the pooled Sim
	// 100 iterations so that a GC clearing the Sim pool mid-measurement
	// (one iteration then pays a full buffer rebuild) cannot push the
	// average over budget; the budget itself stays per-run.
	allocs := testing.AllocsPerRun(100, run)
	const budget = 40
	if allocs > budget {
		t.Fatalf("steady-state Session.Run does %.0f allocs/run, want ≤ %d", allocs, budget)
	}
}

// TestSessionSweepReusesCache: a second sweep over the same grid serves
// every labeling from the session cache.
func TestSessionSweepReusesCache(t *testing.T) {
	sess := radiobcast.NewSession()
	spec := radiobcast.SweepSpec{
		Families: []string{"path", "grid"},
		Sizes:    []int{16, 25},
		Schemes:  []string{"b", "back"},
		Workers:  2,
	}
	runSweepOnce := func() {
		t.Helper()
		for res, err := range sess.Sweep(context.Background(), spec) {
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("%s: %v", res.Cell, res.Err)
			}
		}
	}
	runSweepOnce()
	missesAfterFirst := sess.Stats().Misses
	if missesAfterFirst == 0 {
		t.Fatal("first sweep computed no labelings through the cache")
	}
	runSweepOnce()
	st := sess.Stats()
	if st.Misses != missesAfterFirst {
		t.Fatalf("second sweep relabeled: misses %d → %d", missesAfterFirst, st.Misses)
	}
	if st.Hits < missesAfterFirst {
		t.Fatalf("second sweep did not hit the cache: %+v", st)
	}
}

// TestSessionStatsConcurrent hammers the cache from writer goroutines
// while readers snapshot Stats and the per-counter accessors, checking
// (under -race) that snapshots are safe and each counter is monotonic
// across successive reads.
func TestSessionStatsConcurrent(t *testing.T) {
	sess := radiobcast.NewSession()
	nets := make([]*radiobcast.Network, 4)
	for i := range nets {
		net, err := radiobcast.Family("path", 8+4*i)
		if err != nil {
			t.Fatal(err)
		}
		net.Graph.Freeze()
		net.Graph.Fingerprint()
		nets[i] = net
	}
	ctx := context.Background()
	done := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 25; i++ {
				if _, err := sess.Run(ctx, nets[(w+i)%len(nets)], "b"); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var prev radiobcast.SessionStats
		for {
			st := sess.Stats()
			if st.Hits < prev.Hits || st.Misses < prev.Misses ||
				st.Bypasses < prev.Bypasses || st.Evictions < prev.Evictions {
				t.Errorf("counter went backwards: %+v after %+v", st, prev)
				return
			}
			if acc := sess.CacheHits(); acc < st.Hits {
				t.Errorf("accessor behind an earlier snapshot: %d < %d", acc, st.Hits)
				return
			}
			prev = st
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	writers.Wait()
	close(done)
	<-readerDone
}

// TestSessionCloseDrains pins the drain hook: Close blocks until in-flight
// runs return their pooled Sims, and a deadline ctx bounds the wait.
func TestSessionCloseDrains(t *testing.T) {
	sess := radiobcast.NewSession()
	net, err := radiobcast.Family("grid", 256)
	if err != nil {
		t.Fatal(err)
	}
	net.Graph.Freeze()
	net.Graph.Fingerprint()
	ctx := context.Background()
	if _, err := sess.Run(ctx, net, "b"); err != nil { // warm the cache
		t.Fatal(err)
	}
	started := make(chan struct{})
	finished := make(chan error, 8)
	var inFlight sync.WaitGroup
	for i := 0; i < 8; i++ {
		inFlight.Add(1)
		go func() {
			defer inFlight.Done()
			started <- struct{}{}
			_, err := sess.Run(ctx, net, "b")
			finished <- err
		}()
	}
	for i := 0; i < 8; i++ {
		<-started
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	inFlight.Wait()
	close(finished)
	for err := range finished {
		// Each racer either got in before Close (nil error) or was turned
		// away with the sentinel — never anything else, never a torn state.
		if err != nil && !errors.Is(err, radiobcast.ErrSessionClosed) {
			t.Fatalf("in-flight run failed with %v", err)
		}
	}
	// After Close returns, the session must reject new work immediately.
	if _, err := sess.Run(ctx, net, "b"); !errors.Is(err, radiobcast.ErrSessionClosed) {
		t.Fatalf("post-drain Run: err = %v, want ErrSessionClosed", err)
	}
}

// BenchmarkSessionCacheHit measures the steady-state serving path: every
// iteration is a cache hit on a pooled engine. Compare with
// BenchmarkSessionRelabelEveryRun to see what the cache buys.
func BenchmarkSessionCacheHit(b *testing.B) {
	net, err := radiobcast.Family("grid", 1024)
	if err != nil {
		b.Fatal(err)
	}
	sess := radiobcast.NewSession()
	ctx := context.Background()
	if _, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("m")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("m")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionRelabelEveryRun is the counterfactual: the same run
// with the labeling recomputed every time (cache disabled).
func BenchmarkSessionRelabelEveryRun(b *testing.B) {
	net, err := radiobcast.Family("grid", 1024)
	if err != nil {
		b.Fatal(err)
	}
	sess := radiobcast.NewSession(radiobcast.WithLabelingCache(0))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(ctx, net, "b", radiobcast.WithMessage("m")); err != nil {
			b.Fatal(err)
		}
	}
}
