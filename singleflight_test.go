// Tests for the Session's single-flight deduplication of concurrent
// label computations.
package radiobcast_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"radiobcast"
)

// TestSessionSingleFlight pins the dedup contract: N concurrent requests
// missing on the same key perform exactly one λ construction — one miss,
// N−1 coalesced waits, zero extra Label calls — and every request
// observes the identical labeling.
func TestSessionSingleFlight(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	sess := radiobcast.NewSession()
	net := figNet(t)
	// The graph is shared across goroutines: freeze and fingerprint once
	// up front so its lazy caches are read-only afterwards.
	net.Graph.Freeze()
	net.Graph.Fingerprint()

	const n = 8
	release := make(chan struct{})
	entered := make(chan struct{}, n)
	block := func() {
		entered <- struct{}{}
		<-release
	}
	hookB.onLabel.Store(&block)

	var wg sync.WaitGroup
	labelings := make([]*radiobcast.Labeling, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labelings[i], errs[i] = sess.Label(context.Background(), net, "hook-b")
		}(i)
	}

	// Exactly one goroutine may become the leader and enter Label; the
	// other n−1 must pile onto its flight while it blocks.
	<-entered
	deadline := time.Now().Add(10 * time.Second)
	for sess.CacheCoalesced() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", sess.CacheCoalesced(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if labelings[i] != labelings[0] {
			t.Fatalf("request %d observed a different labeling object", i)
		}
	}
	if got := hookB.labels.Load(); got != 1 {
		t.Fatalf("Label called %d times for %d concurrent requests, want 1", got, n)
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / %d coalesced / 0 hits / 1 entry", st, n-1)
	}

	// The flight is gone: one more request is a plain cache hit.
	if _, err := sess.Label(context.Background(), net, "hook-b"); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Hits != 1 {
		t.Fatalf("post-flight request should hit the cache: %+v", st)
	}
}

// TestSessionSingleFlightWaiterCancel: a coalesced waiter whose context
// ends abandons the wait with ctx.Err() while the leader (and the cache
// insert) proceed unaffected.
func TestSessionSingleFlightWaiterCancel(t *testing.T) {
	hookB.reset()
	defer hookB.reset()
	sess := radiobcast.NewSession()
	net := figNet(t)
	net.Graph.Freeze()
	net.Graph.Fingerprint()

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	block := func() {
		entered <- struct{}{}
		<-release
	}
	hookB.onLabel.Store(&block)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := sess.Label(context.Background(), net, "hook-b")
		leaderDone <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiterDone := make(chan error, 1)
	go func() {
		_, err := sess.Label(ctx, net, "hook-b")
		waiterDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for sess.CacheCoalesced() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Coalesced != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 coalesced / 1 entry", st)
	}
}
