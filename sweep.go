package radiobcast

import (
	"fmt"
	"sync"

	"radiobcast/internal/sweep"
)

// SweepSpec describes a batched grid of broadcast runs: the cross product
// families × sizes × schemes × sources × fault rates × repeats, executed
// by one worker pool. Graphs are built and frozen once per (family, size)
// and labelings once per (family, size, scheme, source); all cells that
// differ only in fault rate or repeat share them, which is the paper's
// label-once/run-many regime run as a single job. Each worker owns a
// reusable Sim, so the steady state of a large sweep allocates per cell
// only the protocols and the Outcome.
type SweepSpec struct {
	// Families names the graph families to sweep (see FamilyNames).
	Families []string
	// Sizes are the requested graph sizes (generators may round; the
	// actual size is reported per cell).
	Sizes []int
	// Schemes names the registered schemes to run (see SchemeNames).
	Schemes []string
	// Sources are the broadcast sources. Values are node ids; a negative
	// value counts from the end (−1 = highest-numbered node). Values are
	// clamped into the actual node range. Default: {0}.
	Sources []int
	// FaultRates are the per-transmission jam probabilities to sweep,
	// applied through the deterministic FaultRate model. Rate 0 is the
	// fault-free channel; only fault-free cells are Verify-checked.
	// Default: {0}.
	FaultRates []float64
	// Repeats runs every (family, size, scheme, source, rate) cell this
	// many times with distinct fault seeds (repeat i uses Seed+i), so
	// faulty-channel results can be averaged. Default: 1.
	Repeats int
	// Mu is the broadcast message (default "µ").
	Mu string
	// MaxRounds overrides every scheme's default round bound when > 0.
	MaxRounds int
	// Workers sizes the worker pool (≤ 0 → GOMAXPROCS). Each cell runs
	// the sequential engine; parallelism comes from running cells
	// concurrently, which scales better than parallelising single runs.
	Workers int
	// Seed is the base seed of the fault model (default 1).
	Seed int64
	// DenseEngine forces the dense reference engine in every cell (see
	// WithDenseEngine).
	DenseEngine bool
	// OnCell, when non-nil, streams every finished cell as it completes
	// (in completion order, which under a concurrent pool is not grid
	// order; the slice returned by RunSweep is always in grid order).
	// It is called from worker goroutines but never concurrently.
	OnCell func(CellResult)
}

// SweepCell identifies one point of the sweep grid.
type SweepCell struct {
	Family    string
	Size      int // requested size (see CellResult.N for the actual one)
	Scheme    string
	Source    int // resolved source node id
	FaultRate float64
	Repeat    int // 0-based repeat index
}

// CellResult is the outcome of one sweep cell.
type CellResult struct {
	// Cell is the grid point this result belongs to.
	Cell SweepCell
	// N is the actual node count of the generated graph.
	N int
	// Outcome is the unified run outcome (nil when Err is a setup error).
	Outcome *Outcome
	// Verified reports that the cell ran fault-free and the scheme's
	// guarantees held. Faulty cells are never verified: broken broadcasts
	// are their data, reported through Outcome.AllInformed.
	Verified bool
	// Err is a setup error (labeling failed) or, on a fault-free cell, a
	// Verify failure. It is nil for a faulty cell that merely failed to
	// inform everyone.
	Err error
}

// String renders the cell coordinates compactly.
func (c SweepCell) String() string {
	s := fmt.Sprintf("%s/n=%d/%s/src=%d", c.Family, c.Size, c.Scheme, c.Source)
	if c.FaultRate > 0 {
		s += fmt.Sprintf("/drop=%g", c.FaultRate)
	}
	if c.Repeat > 0 {
		s += fmt.Sprintf("/rep=%d", c.Repeat)
	}
	return s
}

// netKey identifies a shared frozen graph; labKey a shared labeling.
type netKey struct {
	family string
	size   int
}

type labKey struct {
	netKey
	scheme string
	source int
}

type labEntry struct {
	l   *Labeling
	err error
}

// RunSweep executes the sweep and returns one CellResult per grid point,
// in grid order (families, then sizes, schemes, sources, fault rates,
// repeats — the nesting order of the spec fields). It returns a non-nil
// error only for an unusable spec: an empty grid, an unknown family or
// scheme. Per-cell failures are reported in the cells, so one impossible
// labeling does not abort a large batch.
func RunSweep(spec SweepSpec) ([]CellResult, error) {
	if spec.Repeats <= 0 {
		spec.Repeats = 1
	}
	if len(spec.Sources) == 0 {
		spec.Sources = []int{0}
	}
	if len(spec.FaultRates) == 0 {
		spec.FaultRates = []float64{0}
	}
	if spec.Mu == "" {
		spec.Mu = "µ"
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if len(spec.Families) == 0 || len(spec.Sizes) == 0 || len(spec.Schemes) == 0 {
		return nil, fmt.Errorf("radiobcast: sweep needs at least one family, size and scheme")
	}
	for _, s := range spec.Schemes {
		if _, ok := Lookup(s); !ok {
			return nil, fmt.Errorf("radiobcast: sweep names unknown scheme %q (registered: %v)", s, SchemeNames())
		}
	}

	// Phase 1: build and freeze one graph per (family, size). Freezing
	// here makes the shared graphs read-only for the concurrent phases.
	nets := make(map[netKey]*Network)
	for _, fam := range spec.Families {
		for _, size := range spec.Sizes {
			k := netKey{fam, size}
			if _, ok := nets[k]; ok {
				continue
			}
			net, err := Family(fam, size)
			if err != nil {
				return nil, err
			}
			net.Graph.Freeze()
			nets[k] = net
		}
	}

	// Phase 2: compute each distinct labeling once, in parallel across
	// keys. Cells differing only in fault rate or repeat share the entry.
	var labKeys []labKey
	seen := make(map[labKey]bool)
	for _, fam := range spec.Families {
		for _, size := range spec.Sizes {
			for _, scheme := range spec.Schemes {
				for _, src := range spec.Sources {
					k := labKey{netKey{fam, size}, scheme, resolveSource(src, nets[netKey{fam, size}].Graph.N())}
					if !seen[k] {
						seen[k] = true
						labKeys = append(labKeys, k)
					}
				}
			}
		}
	}
	entries := sweep.Map(labKeys, spec.Workers, func(k labKey) labEntry {
		net := nets[k.netKey]
		l, err := LabelNetwork(net, k.scheme, WithSource(k.source), WithMessage(spec.Mu))
		if err != nil {
			err = fmt.Errorf("label %s/n=%d/%s/src=%d: %w", k.family, k.size, k.scheme, k.source, err)
		}
		return labEntry{l, err}
	})
	labelings := make(map[labKey]labEntry, len(labKeys))
	for i, k := range labKeys {
		labelings[k] = entries[i]
	}

	// Phase 3: run every cell on the pool; worker w reuses sims[w].
	cells := enumerateCells(spec, nets)
	sims := make([]*Sim, sweep.Workers(len(cells), spec.Workers))
	for i := range sims {
		sims[i] = NewSim()
	}
	var streamMu sync.Mutex
	results := sweep.MapIdx(cells, spec.Workers, func(w int, c SweepCell) CellResult {
		res := runCell(spec, c, nets, labelings, sims[w])
		if spec.OnCell != nil {
			streamMu.Lock()
			spec.OnCell(res)
			streamMu.Unlock()
		}
		return res
	})
	return results, nil
}

// enumerateCells lists the grid in spec nesting order with resolved
// sources.
func enumerateCells(spec SweepSpec, nets map[netKey]*Network) []SweepCell {
	var cells []SweepCell
	for _, fam := range spec.Families {
		for _, size := range spec.Sizes {
			n := nets[netKey{fam, size}].Graph.N()
			for _, scheme := range spec.Schemes {
				for _, src := range spec.Sources {
					for _, rate := range spec.FaultRates {
						for rep := 0; rep < spec.Repeats; rep++ {
							cells = append(cells, SweepCell{
								Family: fam, Size: size, Scheme: scheme,
								Source: resolveSource(src, n), FaultRate: rate, Repeat: rep,
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// resolveSource maps a requested source onto the actual node range:
// negative values count from the end, and out-of-range values clamp.
func resolveSource(src, n int) int {
	if src < 0 {
		src = n + src
	}
	if src < 0 {
		src = 0
	}
	if src >= n {
		src = n - 1
	}
	return src
}

func runCell(spec SweepSpec, c SweepCell, nets map[netKey]*Network, labelings map[labKey]labEntry, sim *Sim) CellResult {
	net := nets[netKey{c.Family, c.Size}]
	res := CellResult{Cell: c, N: net.Graph.N()}
	entry := labelings[labKey{netKey{c.Family, c.Size}, c.Scheme, c.Source}]
	if entry.err != nil {
		res.Err = entry.err
		return res
	}
	opts := []Option{
		WithMessage(spec.Mu),
		WithSource(c.Source),
		WithSim(sim),
	}
	if spec.MaxRounds > 0 {
		opts = append(opts, WithMaxRounds(spec.MaxRounds))
	}
	if spec.DenseEngine {
		opts = append(opts, WithDenseEngine())
	}
	if c.FaultRate > 0 {
		opts = append(opts, WithFaults(FaultRate(c.FaultRate, spec.Seed+int64(c.Repeat))))
	}
	out, err := RunLabeled(entry.l, opts...)
	if err != nil {
		res.Err = fmt.Errorf("run %s: %w", c, err)
		return res
	}
	res.Outcome = out
	if c.FaultRate == 0 {
		if err := Verify(out); err != nil {
			res.Err = fmt.Errorf("verify %s: %w", c, err)
		} else {
			res.Verified = true
		}
	}
	return res
}
