package radiobcast

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"radiobcast/internal/radio"
	"radiobcast/internal/sweep"
)

// SweepSpec describes a batched grid of broadcast runs: the cross product
// families × sizes × schemes × sources × fault rates × repeats, executed
// by one worker pool. Graphs are built and frozen once per (family, size)
// and labelings once per (family, size, scheme, source); all cells that
// differ only in fault rate or repeat share them, which is the paper's
// label-once/run-many regime run as a single job. Each worker owns a
// reusable Sim, so the steady state of a large sweep allocates per cell
// only the protocols and the Outcome.
type SweepSpec struct {
	// Families names the graph families to sweep (see FamilyNames).
	Families []string
	// Sizes are the requested graph sizes (generators may round; the
	// actual size is reported per cell).
	Sizes []int
	// Schemes names the registered schemes to run (see SchemeNames).
	Schemes []string
	// Sources are the broadcast sources. Values are node ids; a negative
	// value counts from the end (−1 = highest-numbered node). Values are
	// clamped into the actual node range. Default: {0}.
	Sources []int
	// FaultRates are the per-transmission jam probabilities to sweep,
	// applied through the deterministic FaultRate model. Rate 0 is the
	// fault-free channel; only fault-free cells are Verify-checked.
	// Default: {0}.
	FaultRates []float64
	// Faults are additional fault-model points of the fault axis, one
	// sweep column per spec (jamming budgets, crash rates, churn
	// schedules, duty cycles, compositions). They extend FaultRates: the
	// axis is all FaultRates entries followed by all Faults entries. Specs
	// with Seed 0 inherit the sweep's Seed; every repeat adds its index,
	// so repeats see distinct fault patterns. Cells on this axis are
	// never Verify-checked — degradation is their data.
	Faults []FaultSpec
	// Repeats runs every (family, size, scheme, source, rate) cell this
	// many times with distinct fault seeds (repeat i uses Seed+i), so
	// faulty-channel results can be averaged. Default: 1.
	Repeats int
	// Mu is the broadcast message (default "µ").
	Mu string
	// MaxRounds overrides every scheme's default round bound when > 0.
	MaxRounds int
	// Workers sizes the worker pool (≤ 0 → GOMAXPROCS). Each cell runs
	// the sequential engine; parallelism comes from running cells
	// concurrently, which scales better than parallelising single runs.
	Workers int
	// Seed is the base seed of the fault model (default 1).
	Seed int64
	// DenseEngine forces the dense reference engine in every cell (see
	// WithDenseEngine).
	DenseEngine bool
	// OnCell, when non-nil, streams every finished cell as it completes
	// (in completion order, which under a concurrent pool is not grid
	// order; the slice returned by RunSweep is always in grid order). It
	// is honoured by RunSweep/RunSweepCtx and never called concurrently.
	// Session.Sweep ignores it: there the iterator IS the stream.
	OnCell func(CellResult)
}

// SweepCell identifies one point of the sweep grid.
type SweepCell struct {
	Family    string
	Size      int // requested size (see CellResult.N for the actual one)
	Scheme    string
	Source    int // resolved source node id
	FaultRate float64
	// Fault labels the cell's point on the Faults axis (the spec's model
	// name, "#index"-suffixed when ambiguous); empty for the FaultRates
	// axis, where FaultRate carries the point.
	Fault  string
	Repeat int // 0-based repeat index

	// fspec is the Faults-axis spec behind Fault (nil on the rate axis).
	fspec *FaultSpec
}

// Faulted reports whether the cell runs under a non-clean channel (either
// fault axis); such cells are never Verify-checked.
func (c SweepCell) Faulted() bool { return c.FaultRate > 0 || c.fspec != nil || c.Fault != "" }

// CellResult is the outcome of one sweep cell.
type CellResult struct {
	// Cell is the grid point this result belongs to.
	Cell SweepCell
	// Index is the cell's position in grid order (families, then sizes,
	// schemes, sources, the fault axis — FaultRates entries before Faults
	// entries — and repeats; the nesting order of the spec fields). Streaming consumers receive cells in completion
	// order; Index lets them re-establish grid order, as RunSweep does.
	Index int
	// N is the actual node count of the generated graph.
	N int
	// Outcome is the unified run outcome (nil when Err is a setup error).
	Outcome *Outcome
	// Verified reports that the cell ran fault-free and the scheme's
	// guarantees held. Faulty cells are never verified: broken broadcasts
	// are their data, reported through Outcome.AllInformed.
	Verified bool
	// Err is a setup error (labeling failed), a Verify failure on a
	// fault-free cell, or the context's error when the run was cancelled
	// mid-cell (then Outcome holds the partial prefix). It is nil for a
	// faulty cell that merely failed to inform everyone.
	Err error
}

// String renders the cell coordinates compactly.
func (c SweepCell) String() string {
	s := fmt.Sprintf("%s/n=%d/%s/src=%d", c.Family, c.Size, c.Scheme, c.Source)
	if c.FaultRate > 0 {
		s += fmt.Sprintf("/drop=%g", c.FaultRate)
	}
	if c.Fault != "" {
		s += "/fault=" + c.Fault
	}
	if c.Repeat > 0 {
		s += fmt.Sprintf("/rep=%d", c.Repeat)
	}
	return s
}

// netKey identifies a shared frozen graph; labKey a shared labeling.
type netKey struct {
	family string
	size   int
}

type labKey struct {
	netKey
	scheme string
	source int
}

type labEntry struct {
	l   *Labeling
	err error
}

// normalize applies the spec defaults in place and validates the grid.
func (spec *SweepSpec) normalize() error {
	if spec.Repeats <= 0 {
		spec.Repeats = 1
	}
	if len(spec.Sources) == 0 {
		spec.Sources = []int{0}
	}
	if len(spec.FaultRates) == 0 {
		spec.FaultRates = []float64{0}
	}
	if spec.Mu == "" {
		spec.Mu = "µ"
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if len(spec.Families) == 0 || len(spec.Sizes) == 0 || len(spec.Schemes) == 0 {
		return fmt.Errorf("radiobcast: sweep needs at least one family, size and scheme")
	}
	for _, s := range spec.Schemes {
		if _, ok := Lookup(s); !ok {
			return fmt.Errorf("radiobcast: sweep: %w", unknownScheme(s))
		}
	}
	for i := range spec.Faults {
		if err := spec.Faults[i].validate(); err != nil {
			return fmt.Errorf("radiobcast: sweep: faults[%d]: %w", i, err)
		}
	}
	return nil
}

// faultLabels names the Faults-axis points: the spec's model name, with a
// "#index" suffix when two specs would otherwise collide.
func faultLabels(specs []FaultSpec) []string {
	labels := make([]string, len(specs))
	seen := make(map[string]int, len(specs))
	for i := range specs {
		labels[i] = specs[i].name()
		seen[labels[i]]++
	}
	for i, l := range labels {
		if seen[l] > 1 {
			labels[i] = fmt.Sprintf("%s#%d", l, i)
		}
	}
	return labels
}

// Sweep executes the spec's grid on a worker pool and streams the results
// as a range-over-func iterator, in completion order:
//
//	for cell, err := range sess.Sweep(ctx, spec) {
//		if err != nil { ... }          // bad spec, or ctx cancelled
//		serve(cell)
//	}
//
// Consumers see each finished cell the moment it completes — no
// end-of-grid barrier — and may break out early, which stops the pool
// without leaking goroutines. Cancelling ctx stops the grid within one
// cell per worker (and each in-flight run within one engine round); every
// result finished before the cut-off is still yielded, and the iterator
// then yields ctx.Err() last. Per-cell failures travel inside CellResult
// (one impossible labeling must not abort a million-cell job); the error
// half of the pair is reserved for whole-sweep failures.
//
// Labelings are served through the session cache, so repeated sweeps over
// the same topologies skip straight to the runs; each cell runs on a
// session-pooled engine.
func (s *Session) Sweep(ctx context.Context, spec SweepSpec) iter.Seq2[CellResult, error] {
	return func(yield func(CellResult, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		// The whole grid is one session operation: Session.Close started
		// mid-sweep lets the sweep drain, while a sweep started after
		// Close fails up front.
		if err := s.begin(); err != nil {
			yield(CellResult{}, err)
			return
		}
		defer s.end()
		if err := spec.normalize(); err != nil {
			yield(CellResult{}, err)
			return
		}

		// Phase 1: build and freeze one graph per (family, size). Freezing
		// (and fingerprinting) here makes the shared graphs read-only for
		// the concurrent phases.
		nets := make(map[netKey]*Network)
		for _, fam := range spec.Families {
			for _, size := range spec.Sizes {
				k := netKey{fam, size}
				if _, ok := nets[k]; ok {
					continue
				}
				net, err := Family(fam, size)
				if err != nil {
					yield(CellResult{}, err)
					return
				}
				net.Graph.Freeze()
				net.Graph.Fingerprint()
				nets[k] = net
			}
		}
		if err := ctx.Err(); err != nil {
			yield(CellResult{}, err)
			return
		}

		// Phase 2: compute each distinct labeling once, in parallel across
		// keys, through the session cache. Cells differing only in fault
		// rate or repeat share the entry. The keys are derived from the
		// cell enumeration itself, so the grid order and source
		// resolution have exactly one source of truth.
		cells := enumerateCells(spec, nets)
		var labKeys []labKey
		seen := make(map[labKey]bool)
		for _, c := range cells {
			k := labKey{netKey{c.Family, c.Size}, c.Scheme, c.Source}
			if !seen[k] {
				seen[k] = true
				labKeys = append(labKeys, k)
			}
		}
		entries, err := sweep.MapIdxCtx(ctx, labKeys, spec.Workers, func(_ int, k labKey) labEntry {
			net := nets[k.netKey]
			l, err := s.Label(ctx, net, k.scheme, WithSource(k.source), WithMessage(spec.Mu))
			if err != nil {
				err = fmt.Errorf("label %s/n=%d/%s/src=%d: %w", k.family, k.size, k.scheme, k.source, err)
			}
			return labEntry{l, err}
		})
		if err != nil {
			yield(CellResult{}, err)
			return
		}
		labelings := make(map[labKey]labEntry, len(labKeys))
		for i, k := range labKeys {
			labelings[k] = entries[i]
		}

		// Phase 3: run every cell on the pool, streaming results in
		// completion order. Contiguous cells that share a frozen graph
		// and whose scheme exposes the plan/assemble seam are folded into
		// lockstep batches executed by radio.RunBatch — one pass over the
		// graph per round serves every lane of the group — so the
		// label-once/run-many regime of repeats, sources and fault seeds
		// runs with the graph hot in cache. An early break abandons the
		// stream (workers drop undeliverable results and exit — no leak),
		// while plain cancellation keeps draining, so every cell finished
		// before the cut-off is still yielded.
		groups := groupCells(spec, cells, labelings)
		inner, cancel := context.WithCancel(ctx)
		defer cancel()
		results, abandon := sweep.StreamIdx(inner, len(groups), spec.Workers, func(_, gi int) []CellResult {
			g := groups[gi]
			if len(g) == 1 {
				sim := s.sims.Get().(*Sim)
				defer s.sims.Put(sim)
				return []CellResult{s.runCell(inner, spec, cells[g[0]], g[0], nets, labelings, sim)}
			}
			return s.runCellBatch(inner, spec, cells, g, nets, labelings)
		})
		defer abandon()
		for batch := range results {
			for _, res := range batch {
				if !yield(res, nil) {
					return
				}
			}
		}
		if err := ctx.Err(); err != nil {
			yield(CellResult{}, err)
		}
	}
}

// RunSweep executes the sweep and returns one CellResult per grid point,
// in grid order. It returns a non-nil error only for an unusable spec: an
// empty grid, an unknown family or scheme. Per-cell failures are reported
// in the cells, so one impossible labeling does not abort a large batch.
func RunSweep(spec SweepSpec) ([]CellResult, error) {
	return RunSweepCtx(context.Background(), spec)
}

// RunSweepCtx is RunSweep with cancellation: it collects the stream of a
// one-off Session's Sweep and, when ctx is cancelled mid-grid, returns
// every cell finished before the cut-off (in grid order) together with
// ctx.Err(). spec.OnCell, when set, observes cells in completion order as
// they finish, exactly as before.
func RunSweepCtx(ctx context.Context, spec SweepSpec) ([]CellResult, error) {
	var results []CellResult
	var sweepErr error
	sess := NewSession()
	for res, err := range sess.Sweep(ctx, spec) {
		if err != nil {
			sweepErr = err
			break
		}
		if spec.OnCell != nil {
			spec.OnCell(res)
		}
		results = append(results, res)
	}
	if sweepErr != nil && len(results) == 0 {
		return nil, sweepErr
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	return results, sweepErr
}

// enumerateCells lists the grid in spec nesting order with resolved
// sources.
func enumerateCells(spec SweepSpec, nets map[netKey]*Network) []SweepCell {
	labels := faultLabels(spec.Faults)
	var cells []SweepCell
	for _, fam := range spec.Families {
		for _, size := range spec.Sizes {
			n := nets[netKey{fam, size}].Graph.N()
			for _, scheme := range spec.Schemes {
				for _, src := range spec.Sources {
					addReps := func(c SweepCell) {
						c.Family, c.Size, c.Scheme = fam, size, scheme
						c.Source = resolveSource(src, n)
						for rep := 0; rep < spec.Repeats; rep++ {
							c.Repeat = rep
							cells = append(cells, c)
						}
					}
					for _, rate := range spec.FaultRates {
						addReps(SweepCell{FaultRate: rate})
					}
					for i := range spec.Faults {
						addReps(SweepCell{Fault: labels[i], fspec: &spec.Faults[i]})
					}
				}
			}
		}
	}
	return cells
}

// resolveSource maps a requested source onto the actual node range:
// negative values count from the end, and out-of-range values clamp.
func resolveSource(src, n int) int {
	if src < 0 {
		src = n + src
	}
	if src < 0 {
		src = 0
	}
	if src >= n {
		src = n - 1
	}
	return src
}

// cellOptions builds the run options of one sweep cell; both the solo
// path (runCell) and the folded path (runCellBatch) go through it, so a
// cell's configuration cannot depend on which path executed it.
func cellOptions(spec SweepSpec, c SweepCell, sim *Sim) []Option {
	opts := []Option{
		WithMessage(spec.Mu),
		WithSource(c.Source),
		WithSim(sim),
	}
	if spec.MaxRounds > 0 {
		opts = append(opts, WithMaxRounds(spec.MaxRounds))
	}
	if spec.DenseEngine {
		opts = append(opts, WithDenseEngine())
	}
	switch {
	case c.fspec != nil:
		// Copy the shared spec so each cell materializes its own stateful
		// model, with the repeat index folded into the seed.
		fs := *c.fspec
		if fs.Seed == 0 {
			fs.Seed = spec.Seed
		}
		fs.Seed += int64(c.Repeat)
		opts = append(opts, WithFaultSpec(fs))
	case c.FaultRate > 0:
		opts = append(opts, FaultRate(c.FaultRate, spec.Seed+int64(c.Repeat)))
	}
	return opts
}

func (s *Session) runCell(ctx context.Context, spec SweepSpec, c SweepCell, idx int, nets map[netKey]*Network, labelings map[labKey]labEntry, sim *Sim) CellResult {
	net := nets[netKey{c.Family, c.Size}]
	res := CellResult{Cell: c, Index: idx, N: net.Graph.N()}
	entry := labelings[labKey{netKey{c.Family, c.Size}, c.Scheme, c.Source}]
	if entry.err != nil {
		res.Err = entry.err
		return res
	}
	out, err := RunLabeledCtx(ctx, entry.l, cellOptions(spec, c, sim)...)
	if err != nil {
		res.Outcome = out // partial on cancellation, nil otherwise
		res.Err = fmt.Errorf("run %s: %w", c, err)
		return res
	}
	res.Outcome = out
	if !c.Faulted() {
		if err := Verify(out); err != nil {
			res.Err = fmt.Errorf("verify %s: %w", c, err)
		} else {
			res.Verified = true
		}
	}
	return res
}

// sweepBatchCap bounds the lanes of one folded batch. Lockstep lanes
// multiply the engine's per-round working set, so past a handful of
// lanes the shared-graph cache win turns into cache pressure; eight
// keeps the batch within typical L2 budgets for the sweep's graph sizes.
const sweepBatchCap = 8

// groupCells partitions the grid (in order, preserving indices) into the
// units phase 3 dispatches: contiguous cells that share a frozen graph
// and can run through a scheme's plan/assemble seam form batches of up
// to sweepBatchCap, everything else stays a singleton. enumerateCells
// nests the fault axis and repeats innermost, so the cells sharing a
// graph — and usually a labeling too — are adjacent by construction.
func groupCells(spec SweepSpec, cells []SweepCell, labelings map[labKey]labEntry) [][]int {
	foldable := func(c SweepCell) bool {
		if spec.DenseEngine {
			return false
		}
		sch, ok := Lookup(c.Scheme)
		if !ok {
			return false
		}
		if _, ok := sch.(batchScheme); !ok {
			return false
		}
		return labelings[labKey{netKey{c.Family, c.Size}, c.Scheme, c.Source}].err == nil
	}
	var groups [][]int
	for i := 0; i < len(cells); {
		if !foldable(cells[i]) {
			groups = append(groups, []int{i})
			i++
			continue
		}
		k := netKey{cells[i].Family, cells[i].Size}
		j := i + 1
		for j < len(cells) && j-i < sweepBatchCap &&
			(netKey{cells[j].Family, cells[j].Size}) == k && foldable(cells[j]) {
			j++
		}
		group := make([]int, j-i)
		for x := range group {
			group[x] = i + x
		}
		groups = append(groups, group)
		i = j
	}
	return groups
}

// runCellBatch executes one folded group: each cell's plan — protocols
// plus fully tuned engine options — is collected and handed to
// radio.RunBatch, which advances the lanes in lockstep over the shared
// graph; each lane's Result is then assembled and decorated exactly as a
// standalone run's would be. Folded cells are therefore bit-identical to
// unfolded ones (the schemes' Run methods are the same plan → run →
// assemble composition), which the sweep equivalence tests pin.
func (s *Session) runCellBatch(ctx context.Context, spec SweepSpec, cells []SweepCell, group []int, nets map[netKey]*Network, labelings map[labKey]labEntry) []CellResult {
	net := nets[netKey{cells[group[0]].Family, cells[group[0]].Size}]
	out := make([]CellResult, len(group))
	type lane struct {
		pos      int // index into out
		sch      Scheme
		l        *Labeling
		source   int
		cfg      *Config
		assemble func(*radio.Result) (*Outcome, error)
	}
	var lanes []lane
	var runs []radio.BatchRun
	sims := make([]*Sim, 0, len(group))
	defer func() {
		for _, sim := range sims {
			s.sims.Put(sim)
		}
	}()
	for pos, ci := range group {
		c := cells[ci]
		out[pos] = CellResult{Cell: c, Index: ci, N: net.Graph.N()}
		entry := labelings[labKey{netKey{c.Family, c.Size}, c.Scheme, c.Source}]
		sim := s.sims.Get().(*Sim)
		sims = append(sims, sim)
		sch, cfg, source, err := prepareLabeled(ctx, entry.l, cellOptions(spec, c, sim))
		if err != nil {
			out[pos].Err = fmt.Errorf("run %s: %w", c, err)
			continue
		}
		ps, base, assemble, err := sch.(batchScheme).plan(entry.l, source, cfg)
		if err != nil {
			out[pos].Err = fmt.Errorf("run %s: %w", c, err)
			continue
		}
		lanes = append(lanes, lane{pos, sch, entry.l, source, cfg, assemble})
		runs = append(runs, radio.BatchRun{Protos: ps, Opt: base})
	}
	if len(runs) == 0 {
		return out
	}
	for li, res := range radio.RunBatch(net.Graph, runs) {
		ln := lanes[li]
		o, err := ln.assemble(res)
		if err == nil {
			o, err = decorate(o, ln.sch, ln.l, ln.source, ln.cfg)
		}
		r := &out[ln.pos]
		r.Outcome = o // partial on cancellation
		if err != nil {
			r.Err = fmt.Errorf("run %s: %w", r.Cell, err)
			continue
		}
		if !r.Cell.Faulted() {
			if err := Verify(o); err != nil {
				r.Err = fmt.Errorf("verify %s: %w", r.Cell, err)
			} else {
				r.Verified = true
			}
		}
	}
	return out
}
