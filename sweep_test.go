// Tests for the engine-mode equivalence contract, the WithTrace/WithFaults
// facade paths, the steady-state allocation guarantee of reused Sims, and
// the Sweep batch subsystem.
package radiobcast_test

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"radiobcast"
	"radiobcast/internal/radio"
)

func sameResults(a, b *radio.Result) bool {
	return a.Rounds == b.Rounds &&
		a.TotalTransmissions == b.TotalTransmissions &&
		a.MaxMessageBits == b.MaxMessageBits &&
		a.SilentStopped == b.SilentStopped &&
		reflect.DeepEqual(a.Transmits, b.Transmits) &&
		reflect.DeepEqual(a.Receives, b.Receives) &&
		reflect.DeepEqual(a.Collisions, b.Collisions)
}

// TestEngineModesBitIdentical pins the refactor's core contract on the
// full scheme × family matrix: the sparse-wakeup fast path, the dense
// reference engine and the parallel engine produce bit-identical raw
// Results (not just equal summaries) over one shared labeling.
func TestEngineModesBitIdentical(t *testing.T) {
	type fam struct {
		name string
		n    int
	}
	general := []fam{{"path", 12}, {"cycle", 9}, {"grid", 16}, {"gnp-sparse", 14}, {"complete", 8}, {"star", 9}}
	matrix := map[string][]fam{
		"b":           general,
		"back":        general,
		"barb":        general,
		"roundrobin":  general,
		"colorrobin":  general,
		"centralized": general,
		"onebit":      {{"path", 8}, {"grid", 9}},
		"flooding":    {{"path", 8}, {"star", 9}},
		"gjp":         {{"path", 12}, {"cycle", 9}, {"grid", 16}, {"star", 9}},
	}
	for scheme, fams := range matrix {
		for _, f := range fams {
			t.Run(scheme+"/"+f.name, func(t *testing.T) {
				net, err := radiobcast.Family(f.name, f.n)
				if err != nil {
					t.Fatal(err)
				}
				l, err := radiobcast.LabelNetwork(net, scheme, radiobcast.WithMessage("m"))
				if err != nil {
					t.Fatal(err)
				}
				run := func(opts ...radiobcast.Option) *radiobcast.Outcome {
					t.Helper()
					out, err := radiobcast.RunLabeled(l, append(opts, radiobcast.WithMessage("m"))...)
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				ref := run(radiobcast.WithDenseEngine())
				for mode, out := range map[string]*radiobcast.Outcome{
					"sparse":         run(),
					"sparse-sim":     run(radiobcast.WithSim(radiobcast.NewSim())),
					"scalar":         run(radiobcast.WithScalarEngine()),
					"parallel":       run(radiobcast.WithWorkers(4)),
					"dense-parallel": run(radiobcast.WithDenseEngine(), radiobcast.WithWorkers(4)),
				} {
					if !sameResults(ref.Result, out.Result) {
						t.Fatalf("mode %s diverged from the dense reference engine", mode)
					}
					if !reflect.DeepEqual(ref.InformedRound, out.InformedRound) {
						t.Fatalf("mode %s: informed rounds differ", mode)
					}
				}
			})
		}
	}
}

// TestWithTraceMatchesResult cross-checks the WithTrace facade path: the
// trace's per-round transmitter and delivery records must agree exactly
// with the Result's per-node transmit/receive logs.
func TestWithTraceMatchesResult(t *testing.T) {
	for _, scheme := range []string{"b", "back", "centralized"} {
		t.Run(scheme, func(t *testing.T) {
			net, err := radiobcast.Family("grid", 25)
			if err != nil {
				t.Fatal(err)
			}
			tr := &radiobcast.Trace{}
			out, err := radiobcast.Run(net, scheme,
				radiobcast.WithMessage("m"), radiobcast.WithTrace(tr))
			if err != nil {
				t.Fatal(err)
			}
			res := out.Result

			// Rebuild the per-round views from the Result.
			txByRound := map[int]map[int]bool{}
			for v, rounds := range res.Transmits {
				for _, r := range rounds {
					if txByRound[r] == nil {
						txByRound[r] = map[int]bool{}
					}
					txByRound[r][v] = true
				}
			}
			rxByRound := map[int]map[int]bool{}
			for v, recs := range res.Receives {
				for _, rec := range recs {
					if rxByRound[rec.Round] == nil {
						rxByRound[rec.Round] = map[int]bool{}
					}
					rxByRound[rec.Round][v] = true
				}
			}

			tracedRounds := map[int]bool{}
			for _, round := range tr.Rounds {
				tracedRounds[round.Round] = true
				gotTx := map[int]bool{}
				for _, tx := range round.Transmitters {
					gotTx[tx.Node] = true
				}
				if !reflect.DeepEqual(gotTx, orEmpty(txByRound[round.Round])) {
					t.Fatalf("round %d: trace transmitters %v, result %v",
						round.Round, gotTx, txByRound[round.Round])
				}
				gotRx := map[int]bool{}
				for _, rx := range round.Deliveries {
					gotRx[rx.Node] = true
				}
				if !reflect.DeepEqual(gotRx, orEmpty(rxByRound[round.Round])) {
					t.Fatalf("round %d: trace deliveries %v, result %v",
						round.Round, gotRx, rxByRound[round.Round])
				}
			}
			// Every active round must appear in the trace.
			for r := range txByRound {
				if !tracedRounds[r] {
					t.Fatalf("round %d has transmissions but no trace record", r)
				}
			}
		})
	}
}

func orEmpty(m map[int]bool) map[int]bool {
	if m == nil {
		return map[int]bool{}
	}
	return m
}

// TestWithFaultsSuppressesDelivery pins the fault path end to end: with
// every transmission jammed, traffic still flows (nodes believe they
// transmitted) but nothing is ever delivered.
func TestWithFaultsSuppressesDelivery(t *testing.T) {
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := radiobcast.Run(net, "b",
		radiobcast.WithMessage("m"),
		radiobcast.WithFaults(func(node, round int) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalTransmissions == 0 {
		t.Fatal("jammed run recorded no transmissions; Drop should jam, not silence, the sender")
	}
	for v, recs := range out.Result.Receives {
		if len(recs) != 0 {
			t.Fatalf("node %d received %d messages through a fully jammed channel", v, len(recs))
		}
	}
	if out.AllInformed {
		t.Fatal("broadcast claims completion with every transmission jammed")
	}
	for v, r := range out.InformedRound {
		if v != out.Source && r != radiobcast.NoReception {
			t.Fatalf("node %d marked informed in round %d under a fully jammed channel", v, r)
		}
	}
}

// TestFaultRateDeterministic pins the seeded fault model: same (rate,
// seed) jams the same transmissions, different seeds differ, and the
// rate bounds behave — rate 0 is the clean channel, rate 1 jams every
// transmission, NaN and negative rates are typed errors.
func TestFaultRateDeterministic(t *testing.T) {
	net, err := radiobcast.Family("grid", 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...radiobcast.Option) *radiobcast.Outcome {
		t.Helper()
		out, err := radiobcast.Run(net, "b", append(opts, radiobcast.WithMessage("m"))...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(radiobcast.FaultRate(0.3, 7))
	b := run(radiobcast.FaultRate(0.3, 7))
	c := run(radiobcast.FaultRate(0.3, 8))
	if !sameResults(a.Result, b.Result) {
		t.Fatal("FaultRate with identical (rate, seed) disagreed with itself")
	}
	if sameResults(a.Result, c.Result) {
		t.Fatal("FaultRate with different seeds never disagreed (suspicious)")
	}

	clean := run(radiobcast.FaultRate(0, 1))
	if !clean.AllInformed {
		t.Fatal("rate 0 should be the clean channel")
	}
	jammedAll := run(radiobcast.FaultRate(1, 1))
	if jammedAll.Result.TotalTransmissions == 0 {
		t.Fatal("rate 1 silenced the senders; it should jam, not silence")
	}
	for v, recs := range jammedAll.Result.Receives {
		if len(recs) != 0 {
			t.Fatalf("node %d received %d messages at fault rate 1", v, len(recs))
		}
	}

	for _, bad := range []float64{-0.5, math.NaN()} {
		_, err := radiobcast.Run(net, "b", radiobcast.FaultRate(bad, 1))
		if !errors.Is(err, radiobcast.ErrBadFaultSpec) {
			t.Fatalf("FaultRate(%v) error = %v, want ErrBadFaultSpec", bad, err)
		}
		var bfe *radiobcast.BadFaultSpecError
		if !errors.As(err, &bfe) {
			t.Fatalf("FaultRate(%v) error is no *BadFaultSpecError: %v", bad, err)
		}
	}
}

// TestRunLabeledSteadyStateAllocs pins the label-once/run-many regime the
// refactor exists for: with a reused Sim, a steady-state RunLabeled
// allocates only the per-run protocols and outcome — the count must not
// scale with traffic or rounds (the pre-refactor engine did thousands of
// allocations on this workload).
func TestRunLabeledSteadyStateAllocs(t *testing.T) {
	net, err := radiobcast.Family("grid", 256)
	if err != nil {
		t.Fatal(err)
	}
	l, err := radiobcast.LabelNetwork(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	sim := radiobcast.NewSim()
	run := func() {
		out, err := radiobcast.RunLabeled(l, radiobcast.WithMessage("m"), radiobcast.WithSim(sim))
		if err != nil || !out.AllInformed {
			t.Fatalf("run failed: %v", err)
		}
	}
	run() // warm-up sizes the Sim's buffers
	allocs := testing.AllocsPerRun(10, run)
	// Fresh protocols, the detached Result, the outcome assembly and the
	// option slice: a fixed small budget, independent of n and traffic.
	const budget = 40
	if allocs > budget {
		t.Fatalf("steady-state RunLabeled does %.0f allocs/run, want ≤ %d", allocs, budget)
	}
}

// TestRunSweepMatchesIndividualRuns pins the Sweep subsystem's sharing:
// every cell of a batched job must be bit-identical to the same run
// performed standalone through the plain facade.
func TestRunSweepMatchesIndividualRuns(t *testing.T) {
	spec := radiobcast.SweepSpec{
		Families:   []string{"path", "grid"},
		Sizes:      []int{16, 36},
		Schemes:    []string{"b", "roundrobin", "centralized", "gjp"},
		Sources:    []int{0, -1},
		FaultRates: []float64{0, 0.05},
		Repeats:    2,
		Mu:         "m",
		Workers:    4,
	}
	results, err := radiobcast.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Families) * len(spec.Sizes) * len(spec.Schemes) *
		len(spec.Sources) * len(spec.FaultRates) * spec.Repeats
	if len(results) != want {
		t.Fatalf("sweep returned %d cells, want %d", len(results), want)
	}
	for _, c := range results {
		if c.Err != nil {
			t.Fatalf("%s: %v", c.Cell, c.Err)
		}
		if c.Cell.FaultRate == 0 && !c.Verified {
			t.Fatalf("%s: fault-free cell not verified", c.Cell)
		}
		if c.Cell.FaultRate > 0 && c.Verified {
			t.Fatalf("%s: faulty cell claims verification", c.Cell)
		}

		// Reproduce the cell standalone.
		net, err := radiobcast.Family(c.Cell.Family, c.Cell.Size)
		if err != nil {
			t.Fatal(err)
		}
		opts := []radiobcast.Option{
			radiobcast.WithMessage("m"),
			radiobcast.WithSource(c.Cell.Source),
		}
		if c.Cell.FaultRate > 0 {
			opts = append(opts, radiobcast.FaultRate(c.Cell.FaultRate, 1+int64(c.Cell.Repeat)))
		}
		solo, err := radiobcast.Run(net.At(c.Cell.Source), c.Cell.Scheme, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(solo.Result, c.Outcome.Result) {
			t.Fatalf("%s: sweep cell diverged from standalone run", c.Cell)
		}
	}
}

// TestRunSweepStreaming checks the OnCell stream: every grid cell is
// delivered exactly once, and the returned slice is in grid order.
func TestRunSweepStreaming(t *testing.T) {
	var streamed []radiobcast.SweepCell
	spec := radiobcast.SweepSpec{
		Families: []string{"path"},
		Sizes:    []int{8, 12},
		Schemes:  []string{"b", "back"},
		Workers:  3,
		OnCell:   func(c radiobcast.CellResult) { streamed = append(streamed, c.Cell) },
	}
	results, err := radiobcast.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(results) {
		t.Fatalf("streamed %d cells, returned %d", len(streamed), len(results))
	}
	seen := map[string]int{}
	for _, c := range streamed {
		seen[c.String()]++
	}
	var wantOrder []string
	for _, size := range spec.Sizes {
		for _, scheme := range spec.Schemes {
			wantOrder = append(wantOrder, fmt.Sprintf("path/n=%d/%s/src=0", size, scheme))
		}
	}
	for i, c := range results {
		if c.Cell.String() != wantOrder[i] {
			t.Fatalf("result %d is %s, want grid order %s", i, c.Cell, wantOrder[i])
		}
		if seen[c.Cell.String()] != 1 {
			t.Fatalf("cell %s streamed %d times", c.Cell, seen[c.Cell.String()])
		}
	}
}

// TestRunSweepDeterministic pins run-to-run reproducibility of a faulty
// concurrent sweep (shared labelings plus the seeded fault model).
func TestRunSweepDeterministic(t *testing.T) {
	spec := radiobcast.SweepSpec{
		Families:   []string{"grid"},
		Sizes:      []int{25},
		Schemes:    []string{"b"},
		FaultRates: []float64{0.1},
		Repeats:    3,
		Workers:    4,
		Seed:       9,
	}
	a, err := radiobcast.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := radiobcast.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !sameResults(a[i].Outcome.Result, b[i].Outcome.Result) {
			t.Fatalf("%s: repeated sweep diverged", a[i].Cell)
		}
	}
}

// TestRunSweepSpecErrors checks that unusable specs fail fast.
func TestRunSweepSpecErrors(t *testing.T) {
	if _, err := radiobcast.RunSweep(radiobcast.SweepSpec{}); err == nil {
		t.Fatal("empty spec did not error")
	}
	if _, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"path"}, Sizes: []int{8}, Schemes: []string{"nope"},
	}); err == nil {
		t.Fatal("unknown scheme did not error")
	}
	if _, err := radiobcast.RunSweep(radiobcast.SweepSpec{
		Families: []string{"no-such-family"}, Sizes: []int{8}, Schemes: []string{"b"},
	}); err == nil {
		t.Fatal("unknown family did not error")
	}
}
