// hookScheme instruments a real scheme with test-observable Label/Run
// hooks. The facade registry is global and append-only, so each name is
// registered once at package init and tests install the hooks they need;
// tests in this package do not run in parallel.
package radiobcast_test

import (
	"sync/atomic"

	"radiobcast"
)

type hookScheme struct {
	radiobcast.Scheme
	name    string
	labels  atomic.Int64 // Label invocations
	runs    atomic.Int64 // Run invocations
	onRun   atomic.Pointer[func()]
	onLabel atomic.Pointer[func()]
}

func (h *hookScheme) Name() string { return h.name }

func (h *hookScheme) Label(g *radiobcast.Graph, source int, cfg *radiobcast.Config) (*radiobcast.Labeling, error) {
	h.labels.Add(1)
	if f := h.onLabel.Load(); f != nil {
		(*f)()
	}
	l, err := h.Scheme.Label(g, source, cfg)
	if l != nil {
		l.Scheme = h.name
	}
	return l, err
}

func (h *hookScheme) Run(l *radiobcast.Labeling, source int, cfg *radiobcast.Config) (*radiobcast.Outcome, error) {
	h.runs.Add(1)
	if f := h.onRun.Load(); f != nil {
		(*f)()
	}
	return h.Scheme.Run(l, source, cfg)
}

// reset clears hooks and counters between tests.
func (h *hookScheme) reset() {
	h.onRun.Store(nil)
	h.onLabel.Store(nil)
	h.labels.Store(0)
	h.runs.Store(0)
}

var hookB = func() *hookScheme {
	inner, ok := radiobcast.Lookup("b")
	if !ok {
		panic("scheme b not registered")
	}
	h := &hookScheme{Scheme: inner, name: "hook-b"}
	radiobcast.Register(h)
	return h
}()
