// Differential test at the facade seam: the word-parallel and scalar
// stage builders must produce byte-identical wire-format labelings, so a
// labeling shipped by a monitor running either pipeline replays the same
// everywhere.
package radiobcast_test

import (
	"bytes"
	"testing"

	"radiobcast"
	"radiobcast/internal/core"
)

func TestWireBytesBitsetScalarIdentical(t *testing.T) {
	for _, family := range []string{"figure1", "path", "grid", "gnp-sparse", "btree", "complete"} {
		net, err := radiobcast.Family(family, 24)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		for _, scheme := range []string{"b", "back", "barb"} {
			bit, err := radiobcast.LabelNetwork(net, scheme)
			if err != nil {
				t.Fatalf("%s/%s: bitset: %v", family, scheme, err)
			}
			sca, err := radiobcast.LabelNetwork(net, scheme,
				radiobcast.WithBuild(core.BuildOptions{Scalar: true}))
			if err != nil {
				t.Fatalf("%s/%s: scalar: %v", family, scheme, err)
			}
			var bw, sw bytes.Buffer
			if err := radiobcast.WriteLabeling(&bw, bit); err != nil {
				t.Fatalf("%s/%s: write bitset: %v", family, scheme, err)
			}
			if err := radiobcast.WriteLabeling(&sw, sca); err != nil {
				t.Fatalf("%s/%s: write scalar: %v", family, scheme, err)
			}
			if !bytes.Equal(bw.Bytes(), sw.Bytes()) {
				t.Fatalf("%s/%s: wire bytes differ (%d vs %d bytes)",
					family, scheme, bw.Len(), sw.Len())
			}
		}
	}
}
